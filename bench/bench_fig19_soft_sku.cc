/**
 * @file
 * Fig 19: the headline result — μSKU's composed soft SKUs versus the
 * stock and hand-tuned production configurations for Web (Skylake),
 * Web (Broadwell), and Ads1, each from a full independent-sweep run
 * with prolonged validation.
 *
 * The sweep engine is parallel and deterministic: pass --jobs=N (or
 * --jobs=auto) and every target is tuned twice — serially and with N
 * workers — the two reports are byte-compared, and the wall-clock
 * speedup is printed.  A parallel sweep that changed a single byte of
 * the design-space map would abort the bench.
 *
 * --trace-out=FILE records every run (serial and parallel, all three
 * targets, disambiguated by run tag) as one Chrome trace; --progress
 * renders a live sweep progress line.  --cache-dir=DIR persists the
 * A/B outcomes: a repeat invocation replays every comparison from disk
 * and still byte-compares clean.
 */

#include <chrono>
#include <cstdlib>

#include "common.hh"
#include "core/usku.hh"
#include "util/cli.hh"
#include "util/thread_pool.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct TunedRun
{
    UskuReport report;
    std::string serialized;
    double wallSec = 0.0;
};

/** One full μSKU run in a fresh environment (no caches carried over
 *  in memory; --cache-dir replays persist across runs by design). */
TunedRun
tune(const WorkloadProfile &service, const PlatformSpec &platform,
     const SimOptions &opts, const ToolOptions &tool, unsigned jobs,
     std::uint64_t runTag)
{
    ProductionEnvironment env(service, platform, opts.seed, opts);

    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.seed = opts.seed;
    spec.normalize();

    UskuOptions options = UskuOptions::fromTool(tool);
    options.jobs = jobs;
    // Each tuned run gets its own span root tag, so serial and
    // parallel runs of the same target keep distinct trace paths.
    options.traceTag = runTag;

    TunedRun run;
    double start = nowSec();
    Usku usku(env, options);
    run.report = usku.run(spec);
    run.wallSec = nowSec() - start;
    run.serialized = run.report.toJson().dump(2);
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 19", "soft-SKU gains over stock and hand-tuned "
                          "servers");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;
    ToolOptions tool =
        ToolOptions::fromArgs(args, ThreadPool::hardwareThreads());
    tool.apply();
    const unsigned jobs = tool.jobs;
    std::uint64_t runTag = 0;

    struct Target
    {
        const char *service;
        const char *platform;
        const char *label;
    };
    TextTable table;
    table.header({"target", "vs stock", "vs hand-tuned", "validated",
                  "A/B hours", "soft SKU"});
    TextTable engine;
    engine.header({"target", "A/B tests", "cache hits", "serial s",
                   format("jobs=%u s", jobs), "speedup", "identical"});

    for (const Target &t :
         {Target{"web", "skylake18", "Web (Skylake)"},
          Target{"web", "broadwell16", "Web (Broadwell)"},
          Target{"ads1", "skylake18", "Ads1"}}) {
        const WorkloadProfile &service = serviceByName(t.service);
        const PlatformSpec &platform = platformByName(t.platform);

        TunedRun serial =
            tune(service, platform, opts, tool, 1, ++runTag);
        TunedRun parallel =
            jobs > 1
                ? tune(service, platform, opts, tool, jobs, ++runTag)
                : serial;

        // Determinism is the contract that makes the parallel sweep
        // usable for A/B science: bit-identical or bust.
        if (parallel.serialized != serial.serialized) {
            std::fprintf(stderr,
                         "FATAL: %s report differs between --jobs 1 "
                         "and --jobs %u\n", t.label, jobs);
            return 1;
        }

        const UskuReport &report = serial.report;
        table.row({t.label,
                   format("%+.2f%%", report.gainOverStockPercent()),
                   format("%+.2f%%", report.gainOverProductionPercent()),
                   report.validation.stable ? "stable" : "n.s.",
                   format("%.1f", report.measurementHours),
                   report.softSku.describe()});
        engine.row({t.label,
                    format("%llu", static_cast<unsigned long long>(
                                       report.abComparisons)),
                    format("%llu", static_cast<unsigned long long>(
                                       report.cacheHits)),
                    format("%.2f", serial.wallSec),
                    format("%.2f", parallel.wallSec),
                    format("%.2fx", parallel.wallSec > 0.0
                                        ? serial.wallSec / parallel.wallSec
                                        : 1.0),
                    "yes"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n", engine.render().c_str());
    note("Sweep engine: --jobs %u (of %u hardware threads); reports "
         "verified byte-identical between serial and parallel runs.",
         jobs, ThreadPool::hardwareThreads());
    note("Paper: soft SKUs beat stock by 6.2%% / 7.2%% / 2.5%% and even "
         "the hand-tuned production configs by 4.5%% / 3.0%% / 2.5%%, "
         "with the full sweep taking 5-10 hours of A/B measurement.");
    tool.writeTrace();
    return 0;
}
