/**
 * @file
 * Fig 19: the headline result — μSKU's composed soft SKUs versus the
 * stock and hand-tuned production configurations for Web (Skylake),
 * Web (Broadwell), and Ads1, each from a full independent-sweep run
 * with prolonged validation.
 */

#include "common.hh"
#include "core/usku.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 19", "soft-SKU gains over stock and hand-tuned "
                          "servers");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    struct Target
    {
        const char *service;
        const char *platform;
        const char *label;
    };
    TextTable table;
    table.header({"target", "vs stock", "vs hand-tuned", "validated",
                  "A/B hours", "soft SKU"});

    for (const Target &t :
         {Target{"web", "skylake18", "Web (Skylake)"},
          Target{"web", "broadwell16", "Web (Broadwell)"},
          Target{"ads1", "skylake18", "Ads1"}}) {
        const WorkloadProfile &service = serviceByName(t.service);
        const PlatformSpec &platform = platformByName(t.platform);
        ProductionEnvironment env(service, platform, opts.seed, opts);

        InputSpec spec;
        spec.microservice = service.name;
        spec.platform = platform.name;
        spec.seed = opts.seed;
        spec.normalize();

        Usku tool(env);
        UskuReport report = tool.run(spec);
        table.row({t.label,
                   format("%+.2f%%", report.gainOverStockPercent()),
                   format("%+.2f%%", report.gainOverProductionPercent()),
                   report.validation.stable ? "stable" : "n.s.",
                   format("%.1f", report.measurementHours),
                   report.softSku.describe()});
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper: soft SKUs beat stock by 6.2%% / 7.2%% / 2.5%% and even "
         "the hand-tuned production configs by 4.5%% / 3.0%% / 2.5%%, "
         "with the full sweep taking 5-10 hours of A/B measurement.");
    return 0;
}
