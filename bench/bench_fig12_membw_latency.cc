/**
 * @file
 * Fig 12: each platform's memory bandwidth-vs-latency stress curve
 * (Intel MLC-style) with every microservice's measured operating point
 * plotted against it.
 */

#include "common.hh"
#include "mem/stress.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 12", "memory bandwidth vs loaded latency");

    for (const PlatformSpec *platform : {&skylake18(), &skylake20()}) {
        std::printf("%s stress-test curve:\n", platform->name.c_str());
        auto curve = memoryStressCurve(*platform, 12);
        TextTable table;
        table.header({"bandwidth GB/s", "latency ns", ""});
        for (const StressPoint &p : curve) {
            table.row({format("%.0f", p.bandwidthGBs),
                       format("%.0f", p.latencyNs),
                       barRow("", p.latencyNs, 500.0, 30, "")});
        }
        std::printf("%s\n", table.render().c_str());
    }

    SimOptions opts = defaultSimOptions(args);
    std::printf("service operating points:\n");
    TextTable table;
    table.header({"uservice", "platform", "bandwidth GB/s", "latency ns",
                  "util of peak"});
    for (const WorkloadProfile *service : allMicroservices()) {
        const PlatformSpec &platform =
            platformByName(service->defaultPlatform);
        CounterSet c = productionCounters(*service, opts);
        table.row({service->displayName, platform.name,
                   format("%.0f", c.memBandwidthGBs),
                   format("%.0f", c.memLatencyNs),
                   format("%.0f%%", c.memBandwidthGBs /
                                        platform.peakMemBandwidthGBs *
                                        100.0)});
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper: the curves sit on a horizontal asymptote then grow "
         "exponentially near saturation; every service operates below "
         "the knee (latency SLOs forbid more), with Ads2/Cache1 needing "
         "the higher-bandwidth Skylake20 and Ads2 sitting above the "
         "curve (bursty traffic).");
    return 0;
}
