/**
 * @file
 * Fig 3: maximum achievable CPU utilization (user vs kernel/IO share)
 * at peak load under each service's QoS constraints.
 */

#include "common.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 3", "CPU utilization at peak load (user/kernel)");

    SimOptions opts = defaultSimOptions(args);

    TextTable table;
    table.header({"uservice", "user%", "kernel+IO%", "total%", ""});
    for (const WorkloadProfile *service : allMicroservices()) {
        const PlatformSpec &platform =
            platformByName(service->defaultPlatform);
        CounterSet counters = productionCounters(*service, opts);
        ServiceOperatingPoint op =
            solveOperatingPoint(*service, platform, counters, opts.seed);
        double user = op.userUtilization * 100.0;
        double kernel = op.kernelUtilization * 100.0;
        table.row({service->displayName, format("%.0f", user),
                   format("%.0f", kernel),
                   format("%.0f", user + kernel),
                   barRow("", user + kernel, 100.0, 30,
                          format("%.0f%%", user + kernel))});
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper: utilization is capped well below 100%% for most services "
         "(QoS headroom); Cache tiers run lowest with the largest "
         "kernel share; Web runs hottest.");
    return 0;
}
