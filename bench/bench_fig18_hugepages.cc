/**
 * @file
 * Fig 18: (a) transparent-huge-page modes vs the production madvise
 * default; (b) the static-huge-page count sweep with its sweet spot.
 * Ads1 is excluded from SHP exactly as μSKU's configurator excludes it
 * (no hugetlbfs API use).
 */

#include "common.hh"
#include "core/ab_test.hh"
#include "core/design_space.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 18", "transparent & static huge pages (A/B)");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    std::printf("(a) THP modes, gain over madvise:\n\n");
    struct Target
    {
        const char *service;
        const char *platform;
    };
    for (const Target &t : {Target{"web", "skylake18"},
                            Target{"web", "broadwell16"},
                            Target{"ads1", "skylake18"}}) {
        const WorkloadProfile &service = serviceByName(t.service);
        const PlatformSpec &platform = platformByName(t.platform);
        ProductionEnvironment env(service, platform, opts.seed, opts);
        InputSpec spec;
        spec.microservice = service.name;
        spec.platform = platform.name;
        spec.normalize();
        ABTester tester(env, spec);

        KnobConfig base = productionConfig(platform, service);
        TextTable table;
        table.header({"mode", "gain%", "ci%"});
        for (ThpMode mode : {ThpMode::Always, ThpMode::Never}) {
            KnobConfig candidate = base;
            candidate.thp = mode;
            ABTestResult result = tester.compare(base, candidate);
            table.row({"THP " + thpModeName(mode),
                       format("%+.2f", result.gainPercent()),
                       format("%.2f", result.gainCiPercent())});
        }
        std::printf("%s (%s):\n%s\n", service.displayName.c_str(),
                    platform.name.c_str(), table.render().c_str());
    }

    std::printf("(b) SHP count sweep, gain over no SHPs:\n\n");
    std::string reason;
    if (!knobApplicable(KnobId::Shp, skylake18(), ads1Profile(), &reason))
        std::printf("Ads1 excluded: %s\n\n", reason.c_str());

    for (const char *platformName : {"skylake18", "broadwell16"}) {
        const WorkloadProfile &service = serviceByName("web");
        const PlatformSpec &platform = platformByName(platformName);
        ProductionEnvironment env(service, platform, opts.seed, opts);
        InputSpec spec;
        spec.microservice = service.name;
        spec.platform = platform.name;
        spec.normalize();
        ABTester tester(env, spec);

        KnobConfig base = productionConfig(platform, service);
        int productionShp = base.shpCount;
        base.shpCount = 0;

        std::printf("Web (%s), production reserves %d SHPs:\n",
                    platform.name.c_str(), productionShp);
        TextTable table;
        table.header({"SHPs", "gain%", "ci%", ""});
        for (int count = 100; count <= 600; count += 100) {
            KnobConfig candidate = base;
            candidate.shpCount = count;
            ABTestResult result = tester.compare(base, candidate);
            table.row({format("%d", count),
                       format("%+.2f", result.gainPercent()),
                       format("%.2f", result.gainCiPercent()),
                       barRow("", result.gainPercent() + 1.0, 8.0, 24,
                              "")});
        }
        std::printf("%s\n", table.render().c_str());
    }
    note("Paper: THP always-on helps only Web (Skylake) (+1.87%%, TLB "
         "relief); SHP has a sweet spot — 300 pages beat the 200 "
         "production hand-tune on Skylake (+1.4%%), 400 beat 488 on "
         "Broadwell (+1.0%%), and over-reserving wastes pinned memory.");
    return 0;
}
