/**
 * @file
 * Fig 15: core-count scaling for Web on Skylake18 and Broadwell16,
 * reported as throughput gain over 2 physical cores against the ideal
 * linear slope.  Ads1 is excluded exactly as in the paper: its load
 * balancing cannot meet QoS with fewer cores (μSKU's applicability
 * filter enforces this).
 */

#include "common.hh"
#include "core/design_space.hh"
#include "sim/production_env.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 15", "core-count scaling (gain over 2 cores)");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    // The paper's exclusion, via the configurator's applicability rule.
    std::string reason;
    if (!knobApplicable(KnobId::CoreCount, skylake18(), ads1Profile(),
                        &reason)) {
        std::printf("Ads1 excluded from core scaling: %s\n\n",
                    reason.c_str());
    }

    for (const char *platformName : {"skylake18", "broadwell16"}) {
        const WorkloadProfile &service = serviceByName("web");
        const PlatformSpec &platform = platformByName(platformName);
        ProductionEnvironment env(service, platform, opts.seed, opts);

        KnobConfig base = productionConfig(platform, service);
        base.activeCores = 2;
        double mips2 = env.trueMips(base);

        std::printf("Web (%s):\n", platform.name.c_str());
        TextTable table;
        table.header({"cores", "gain over 2 cores (x)", "ideal (x)",
                      "efficiency"});
        for (int cores = 2; cores <= platform.totalCores(); cores += 2) {
            KnobConfig config = base;
            config.activeCores = cores;
            double gain = env.trueMips(config) / mips2;
            double ideal = cores / 2.0;
            table.row({format("%d", cores), format("%.2f", gain),
                       format("%.1f", ideal),
                       format("%.2f", gain / ideal)});
        }
        std::printf("%s\n", table.render().c_str());
    }
    note("Paper: near-linear to ~8 cores, then LLC interference bends "
         "the curve (end-to-end slopes 0.34-0.36 vs ideal 0.5); the "
         "best soft SKU still uses every core.");
    return 0;
}
