/**
 * @file
 * Table 3: the paper's findings-and-opportunities summary, with each
 * finding re-checked against this reproduction's measurements.
 */

#include <cmath>

#include "common.hh"
#include "util/logging.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Table 3", "summary of findings (re-verified)");

    SimOptions opts = defaultSimOptions(args);

    // Gather the fleet's counters once.
    std::vector<const WorkloadProfile *> fleet = allMicroservices();
    std::vector<CounterSet> counters;
    counters.reserve(fleet.size());
    for (const WorkloadProfile *service : fleet)
        counters.push_back(productionCounters(*service, opts));

    auto byName = [&](const char *name) -> const CounterSet & {
        for (size_t i = 0; i < fleet.size(); ++i) {
            if (fleet[i]->name == name)
                return counters[i];
        }
        fatal("service %s missing", name);
    };

    double ipcLo = 1e9, ipcHi = 0.0, feHi = 0.0, beHi = 0.0, bsHi = 0.0;
    double bwUtilHi = 0.0;
    for (size_t i = 0; i < fleet.size(); ++i) {
        const CounterSet &c = counters[i];
        ipcLo = std::min(ipcLo, c.coreIpc);
        ipcHi = std::max(ipcHi, c.coreIpc);
        feHi = std::max(feHi, c.topdown.frontEnd);
        beHi = std::max(beHi, c.topdown.backEnd);
        bsHi = std::max(bsHi, c.topdown.badSpeculation);
        const PlatformSpec &p = platformByName(fleet[i]->defaultPlatform);
        bwUtilHi = std::max(bwUtilHi,
                            c.memBandwidthGBs / p.peakMemBandwidthGBs);
    }

    TextTable table;
    table.header({"finding", "measured here", "opportunity"});
    table.row({"Diversity among microservices",
               format("IPC spread %.1fx; see Fig 1", ipcHi / ipcLo),
               "\"soft\" SKUs"});
    table.row({"Some uservices compute-intensive",
               format("Feed1 runs %.0f%% of request life",
                      feed1Profile().request.runningFraction * 100),
               "more cores, wider SMT"});
    table.row({"Some uservices emit frequent requests",
               format("Web blocked %.0f%% of request life",
                      (1 - webProfile().request.runningFraction) * 100),
               "concurrency, fast thread switch, faster I/O"});
    table.row({"CPU under-utilization from QoS",
               format("caps range %.0f-%.0f%%",
                      cache1Profile().cpuUtilizationCap * 100,
                      webProfile().cpuUtilizationCap * 100),
               "tail-latency optimizations"});
    table.row({"High context-switch penalty",
               format("Cache1 up to %.0f%% of CPU-second",
                      cache1Profile().contextSwitch
                          .penaltyFractionUpper() * 100),
               "coalesced I/O, user-space drivers, vDSO"});
    table.row({"Substantial floating point",
               format("Feed1 FP share %.0f%%",
                      byName("feed1").classFraction(1) * 100),
               "SIMD / dense-compute optimization"});
    table.row({"Large front-end stalls & code footprints",
               format("worst FE %.0f%% (Web); Web LLC code %.2f MPKI",
                      feHi * 100,
                      byName("web").mpkiOf(byName("web").llc,
                                           AccessType::Code)),
               "AutoFDO, larger I-cache, CDP, ITLB opts"});
    table.row({"Branch mispredictions",
               format("worst bad-spec %.0f%% of slots", bsHi * 100),
               "wider/sophisticated predictors"});
    table.row({"Low LLC capacity utility beyond knee",
               "knee ~8 ways (Fig 10)",
               "trade LLC capacity for cores"});
    table.row({"Memory bandwidth under-utilized",
               format("max util %.0f%% of peak", bwUtilHi * 100),
               "trade bandwidth for latency (prefetch)"});

    std::printf("%s\n", table.render().c_str());
    return 0;
}
