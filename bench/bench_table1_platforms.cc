/**
 * @file
 * Table 1: key attributes of the Skylake18, Skylake20, and Broadwell16
 * server platforms.
 */

#include "common.hh"

using namespace softsku;

int
main()
{
    printBanner("Table 1", "Skylake18, Skylake20, Broadwell16 attributes");

    TextTable table;
    table.header({"attribute", "Skylake18", "Skylake20", "Broadwell16"});
    auto platforms = allPlatforms();

    auto row = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name};
        for (const PlatformSpec *p : platforms)
            cells.push_back(getter(*p));
        table.row(cells);
    };

    row("Microarchitecture",
        [](const PlatformSpec &p) { return p.microarchitecture; });
    row("Number of sockets",
        [](const PlatformSpec &p) { return format("%d", p.sockets); });
    row("Cores/socket",
        [](const PlatformSpec &p) { return format("%d", p.coresPerSocket); });
    row("SMT", [](const PlatformSpec &p) { return format("%d", p.smtWays); });
    row("Cache block size",
        [](const PlatformSpec &p) { return format("%d B", p.l1i.lineBytes); });
    row("L1-I$ (per core)", [](const PlatformSpec &p) {
        return format("%llu KiB",
                      static_cast<unsigned long long>(p.l1i.sizeBytes / 1024));
    });
    row("L1-D$ (per core)", [](const PlatformSpec &p) {
        return format("%llu KiB",
                      static_cast<unsigned long long>(p.l1d.sizeBytes / 1024));
    });
    row("Private L2$ (per core)", [](const PlatformSpec &p) {
        return format("%llu KiB",
                      static_cast<unsigned long long>(p.l2.sizeBytes / 1024));
    });
    row("Shared LLC (per socket)", [](const PlatformSpec &p) {
        return format("%.2f MiB",
                      static_cast<double>(p.llc.sizeBytes) / (1024 * 1024));
    });
    row("LLC ways",
        [](const PlatformSpec &p) { return format("%d", p.llc.ways); });
    row("Core freq (sustained)", [](const PlatformSpec &p) {
        return format("%.1f-%.1f GHz", p.coreFreqMinGHz, p.coreFreqMaxGHz);
    });
    row("Uncore freq", [](const PlatformSpec &p) {
        return format("%.1f-%.1f GHz", p.uncoreFreqMinGHz,
                      p.uncoreFreqMaxGHz);
    });
    row("Peak DRAM bandwidth", [](const PlatformSpec &p) {
        return format("%.0f GB/s", p.peakMemBandwidthGBs);
    });
    row("Intel RDT (CAT/CDP)", [](const PlatformSpec &p) {
        return std::string(p.supportsRdt ? "yes" : "no");
    });

    std::printf("%s\n", table.render().c_str());
    return 0;
}
