/**
 * @file
 * Batched simulator core microbenchmark: the evidence behind the
 * `--sim-core=batched` default.
 *
 * Two measurements, one gate:
 *
 *   1. RNG fill loop (the gated inner loop).  The batched core's hot
 *      loop is SimdXoshiroBank::fillInterleaved — W xoshiro256**
 *      lanes stepped per vector op into the interleaved draw buffer.
 *      The scalar baseline is W independent `Rng` streams writing the
 *      same buffer one draw at a time, i.e. exactly what the scalar
 *      core (and the pool's divergent-lane fallback) does.  Outputs
 *      must be byte-identical — the bench exits nonzero otherwise —
 *      and on an AVX-512 backend the speedup must clear
 *      `--min-speedup` (default 4).  On lesser backends the gate
 *      relaxes to "faster than scalar" (avx2) or "parity" (scalar
 *      fallback): the fallback exists for correctness, not speed.
 *
 *   2. End-to-end simulateService vs runSimBatch across every
 *      microservice on its fleet platform.  Equivalence is the hard
 *      invariant (bit-identical CounterSets at any lane width); the
 *      wall-clock ratio is recorded for EXPERIMENTS.md but not gated —
 *      the sampling kernels are branchy and memory-bound, so whole-run
 *      speedup is modest next to the fill loop.
 *
 * `--json-out=FILE` dumps everything for BENCH_sim_core.json.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hh"
#include "sim/batched_core.hh"
#include "stats/rng.hh"
#include "stats/simd_rng.hh"
#include "util/json.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-reps wall time of @p fn, in seconds. */
template <class Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        Clock::time_point start = Clock::now();
        fn();
        double t = secondsSince(start);
        if (t < best)
            best = t;
    }
    return best;
}

/** Scalar baseline: W independent Rng streams into the interleaved
 *  layout, one draw at a time. */
void
scalarFill(std::vector<Rng> &rngs, std::uint64_t *out, std::size_t n)
{
    const std::size_t lanes = rngs.size();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t w = 0; w < lanes; ++w)
            out[i * lanes + w] = rngs[w].next();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Simulator core",
                "SIMD lane-bank fill loop + batched-vs-scalar "
                "end-to-end equivalence");

    const std::string backend = SimdXoshiroBank::backendName();
    const std::size_t lanes = kSimdWidth;
    const auto rows =
        static_cast<std::size_t>(args.getInt("fill-rows", 1 << 20));
    const int reps = static_cast<int>(args.getInt("reps", 7));
    const double minSpeedup = args.getDouble("min-speedup", 4.0);
    bool failed = false;

    note("backend %s, width %zu, %zu rows x %d reps", backend.c_str(),
         lanes, rows, reps);

    // ---- Part 1: the gated RNG fill loop. ----
    std::vector<std::uint64_t> seeds;
    for (std::size_t w = 0; w < lanes; ++w)
        seeds.push_back(0x5EED + 0x9E37 * w);

    std::vector<std::uint64_t> simdOut(rows * lanes);
    std::vector<std::uint64_t> scalarOut(rows * lanes);

    // Correctness first: one fill from fresh state must replay each
    // lane's scalar Rng stream exactly.
    {
        SimdXoshiroBank bank(seeds);
        bank.fillInterleaved(simdOut.data(), rows);
        std::vector<Rng> rngs;
        for (std::uint64_t seed : seeds)
            rngs.emplace_back(seed);
        scalarFill(rngs, scalarOut.data(), rows);
        if (std::memcmp(simdOut.data(), scalarOut.data(),
                        simdOut.size() * sizeof(std::uint64_t)) != 0) {
            std::fprintf(stderr, "FATAL: %s fill diverges from the "
                                 "scalar Rng streams\n",
                         backend.c_str());
            failed = true;
        }
    }

    // Then speed.  Fresh generators per rep; best-of keeps the turbo
    // and scheduler noise out of the checked-in number.
    double simdSec = bestOf(reps, [&] {
        SimdXoshiroBank bank(seeds);
        bank.fillInterleaved(simdOut.data(), rows);
    });
    double scalarSec = bestOf(reps, [&] {
        std::vector<Rng> rngs;
        for (std::uint64_t seed : seeds)
            rngs.emplace_back(seed);
        scalarFill(rngs, scalarOut.data(), rows);
    });
    double fillSpeedup = simdSec > 0.0 ? scalarSec / simdSec : 0.0;

    note("fill loop: scalar %.1f Mdraw/s, %s %.1f Mdraw/s -> %.2fx",
         rows * lanes / scalarSec / 1e6, backend.c_str(),
         rows * lanes / simdSec / 1e6, fillSpeedup);

    // The gate scales with what the hardware offers: the scalar
    // fallback cannot beat itself and AVX2 has half the lane width.
    double requiredSpeedup = minSpeedup;
    if (backend == "avx2")
        requiredSpeedup = 1.5;
    else if (backend == "scalar")
        requiredSpeedup = 0.8;
    if (fillSpeedup < requiredSpeedup) {
        std::fprintf(stderr,
                     "FATAL: fill speedup %.2fx below the %.2fx gate "
                     "for backend %s\n",
                     fillSpeedup, requiredSpeedup, backend.c_str());
        failed = true;
    }

    // ---- Part 2: end-to-end equivalence + recorded speedup. ----
    SimOptions opts = defaultSimOptions(args);

    std::vector<SimJob> jobs;
    std::vector<const WorkloadProfile *> services = allMicroservices();
    for (const WorkloadProfile *service : services) {
        SimJob job;
        job.profile = service;
        job.platform = &platformByName(service->defaultPlatform);
        job.knobs = productionConfig(*job.platform, *service);
        job.options = opts;
        jobs.push_back(job);
    }

    double scalarE2e = bestOf(3, [&] {
        for (const SimJob &job : jobs)
            simulateService(*job.profile, *job.platform, job.knobs,
                            job.options);
    });
    std::vector<CounterSet> batched;
    double batchedE2e = bestOf(3, [&] {
        batched = runSimBatch(jobs);
    });
    double e2eSpeedup = batchedE2e > 0.0 ? scalarE2e / batchedE2e : 0.0;

    Json perService = Json::array();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        CounterSet solo =
            simulateService(*jobs[i].profile, *jobs[i].platform,
                            jobs[i].knobs, jobs[i].options);
        bool identical = solo == batched[i];
        if (!identical) {
            std::fprintf(stderr,
                         "FATAL: batched counters differ from scalar "
                         "for %s\n", jobs[i].profile->name.c_str());
            failed = true;
        }
        Json row = Json::object();
        row.set("service", Json(jobs[i].profile->name));
        row.set("platform", Json(jobs[i].platform->name));
        row.set("bit_identical", Json(identical));
        perService.push(std::move(row));
    }

    note("end to end (mixed services): %zu jobs, scalar %.2fs vs "
         "batched %.2fs -> %.2fx (recorded, not gated)", jobs.size(),
         scalarE2e, batchedE2e, e2eSpeedup);

    // The sweep-shaped case: one service, one seed, a lane group of
    // knob variants.  Same profile + seed means every lane consumes
    // the main stream in lockstep, which is the pool's vector fast
    // path — this is the shape prepareConfigs() batches all day.
    std::vector<SimJob> sweepJobs;
    {
        const WorkloadProfile &web = webProfile();
        const PlatformSpec &platform =
            platformByName(web.defaultPlatform);
        KnobConfig base = productionConfig(platform, web);
        for (std::size_t w = 0; w < lanes; ++w) {
            SimJob job;
            job.profile = &web;
            job.platform = &platform;
            job.knobs = base;
            job.knobs.coreFreqGHz = 1.6 + 0.1 * static_cast<double>(w % 7);
            job.options = opts;
            sweepJobs.push_back(job);
        }
    }
    double scalarSweep = bestOf(3, [&] {
        for (const SimJob &job : sweepJobs)
            simulateService(*job.profile, *job.platform, job.knobs,
                            job.options);
    });
    std::vector<CounterSet> batchedSweep;
    double batchedSweepSec = bestOf(3, [&] {
        batchedSweep = runSimBatch(sweepJobs);
    });
    double sweepSpeedup =
        batchedSweepSec > 0.0 ? scalarSweep / batchedSweepSec : 0.0;
    for (std::size_t i = 0; i < sweepJobs.size(); ++i) {
        CounterSet solo =
            simulateService(*sweepJobs[i].profile, *sweepJobs[i].platform,
                            sweepJobs[i].knobs, sweepJobs[i].options);
        if (!(solo == batchedSweep[i])) {
            std::fprintf(stderr, "FATAL: batched counters differ from "
                                 "scalar in the lockstep sweep "
                                 "(lane %zu)\n", i);
            failed = true;
        }
    }

    note("end to end (lockstep sweep): %zu web lanes, scalar %.2fs vs "
         "batched %.2fs -> %.2fx (recorded, not gated)",
         sweepJobs.size(), scalarSweep, batchedSweepSec, sweepSpeedup);

    if (args.has("json-out")) {
        Json doc = Json::object();
        doc.set("bench", Json("sim_core"));
        doc.set("simd_backend", Json(backend));
        doc.set("simd_width", Json(static_cast<double>(lanes)));
        doc.set("fill_rows", Json(static_cast<double>(rows)));
        doc.set("reps", Json(static_cast<double>(reps)));
        doc.set("fill_scalar_mdraws_per_sec",
                Json(rows * lanes / scalarSec / 1e6));
        doc.set("fill_simd_mdraws_per_sec",
                Json(rows * lanes / simdSec / 1e6));
        doc.set("fill_speedup", Json(fillSpeedup));
        doc.set("fill_speedup_gate", Json(requiredSpeedup));
        doc.set("end_to_end_scalar_sec", Json(scalarE2e));
        doc.set("end_to_end_batched_sec", Json(batchedE2e));
        doc.set("end_to_end_speedup", Json(e2eSpeedup));
        doc.set("lockstep_sweep_scalar_sec", Json(scalarSweep));
        doc.set("lockstep_sweep_batched_sec", Json(batchedSweepSec));
        doc.set("lockstep_sweep_speedup", Json(sweepSpeedup));
        doc.set("services", std::move(perService));
        std::ofstream out(args.get("json-out"));
        out << doc.dump(2) << "\n";
        note("json written to %s", args.get("json-out").c_str());
    }

    if (failed) {
        std::fprintf(stderr, "bench_sim_core FAILED\n");
        return 1;
    }
    std::printf("bench_sim_core OK (%s, %.2fx fill)\n", backend.c_str(),
                fillSpeedup);
    return 0;
}
