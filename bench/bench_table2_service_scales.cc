/**
 * @file
 * Table 2: average request throughput, request latency, and path
 * length across the seven microservices — the six-orders-of-magnitude
 * diversity the paper opens with.
 *
 * These are the calibrated service-level scales.  (The paper's own
 * Table 2 rows are not per-server self-consistent — O(1000) QPS at
 * O(10^9) instructions/query exceeds any single server — so they are
 * reported as the service scales they are, not re-derived from the
 * per-server QoS solver.)
 */

#include <cmath>

#include "common.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

std::string
orderOf(double v)
{
    if (v <= 0.0)
        return "-";
    double exp = std::floor(std::log10(v));
    return format("O(10^%d)", static_cast<int>(exp));
}

std::string
latencyText(double sec)
{
    if (sec >= 1.0)
        return format("%.1f s", sec);
    if (sec >= 1e-3)
        return format("%.1f ms", sec * 1e3);
    return format("%.0f us", sec * 1e6);
}

} // namespace

int
main()
{
    printBanner("Table 2", "request throughput, latency, path length");

    TextTable table;
    table.header({"uservice", "throughput (QPS)", "order", "req latency",
                  "insn/query", "order"});
    for (const WorkloadProfile *service : allMicroservices()) {
        table.row({service->displayName,
                   format("%.0f", service->request.peakQps),
                   orderOf(service->request.peakQps),
                   latencyText(service->request.requestLatencySec),
                   format("%.1e", service->request.pathLengthInsns),
                   orderOf(service->request.pathLengthInsns)});
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper: QPS spans O(10) [Feed2/Ads1] to O(100K) [Cache1/2]; "
         "latency spans O(us) to O(s);");
    note("path length spans O(10^3) [Cache] to O(10^9) [Feed/Ads]; work "
         "per query varies by six orders of magnitude.");
    return 0;
}
