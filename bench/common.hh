/**
 * @file
 * Shared helpers for the figure/table bench harnesses.
 *
 * Every bench binary reproduces one table or figure from the paper's
 * evaluation; these helpers keep window sizing and measurement wiring
 * uniform across them.
 */

#ifndef SOFTSKU_BENCH_COMMON_HH
#define SOFTSKU_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/knobs.hh"
#include "services/services.hh"
#include "sim/qos.hh"
#include "sim/service_sim.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace softsku::bench {

/** Default windows: big enough for stable counters, fast enough to
 *  keep a full figure under ~30 s of wall clock. */
inline SimOptions
defaultSimOptions(const CliArgs &args)
{
    SimOptions opts;
    opts.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    opts.warmupInstructions = static_cast<std::uint64_t>(
        args.getInt("warmup", 700'000));
    opts.measureInstructions = static_cast<std::uint64_t>(
        args.getInt("insns", 900'000));
    return opts;
}

/** Simulate one service on its fleet platform under production knobs. */
inline CounterSet
productionCounters(const WorkloadProfile &service, const SimOptions &opts)
{
    const PlatformSpec &platform = platformByName(service.defaultPlatform);
    KnobConfig knobs = productionConfig(platform, service);
    return simulateService(service, platform, knobs, opts);
}

/** Paper-vs-measured annotation line for EXPERIMENTS.md cross-checks. */
inline void
note(const char *fmt, ...)
{
    va_list va;
    va_start(va, fmt);
    std::vprintf(fmt, va);
    va_end(va);
    std::printf("\n");
}

} // namespace softsku::bench

#endif // SOFTSKU_BENCH_COMMON_HH
