/**
 * @file
 * Blast radius: staged rollouts under correlated failure domains.
 *
 * Servers arrive rack-by-rack, so a naive id-ordered wave converts one
 * blast radius at a time — and a rack-scoped hardware event during the
 * rollout is indistinguishable from a bad configuration when every
 * health signal comes from the same sick domain.  This bench runs the
 * same hostile scenarios under the naive posture and the
 * blast-radius-aware one (stratified waves, per-rack control quorum,
 * domain-triaged verdicts) and enforces the claims:
 *
 *   1. A rack that silently degrades is *excluded* by the aware
 *      posture (the rollout resumes and completes), while the naive
 *      posture falsely blames the configuration and aborts for good.
 *   2. No aware wave ever lands more than half its conversions inside
 *      one rack; the naive planner routinely converts a whole rack
 *      per wave.
 *   3. The full pipeline — tuning plus rollout, faults armed — is
 *      byte-identical at --jobs 1, 2, and 8.
 *
 * `--json-out=FILE` dumps the numbers for BENCH_blast_radius.json.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common.hh"
#include "core/usku.hh"
#include "sim/fleet.hh"
#include "util/json.hh"
#include "util/thread_pool.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

/** The correlated hostile plan every scenario runs under. */
const char *kPlanSpec = "mild,rack=0.002,drift=0.05";

/** One hostile scenario, injected the same way for both postures. */
struct Scenario
{
    const char *name;
    const char *story;
    void (*inject)(FleetSlice &fleet);
};

void
injectNothing(FleetSlice &)
{
}

/** Rack 0 — the canary's rack — silently degrades during the canary
 *  soak.  The canary regresses hard against the fleet-wide control. */
void
injectCanaryRackStorm(FleetSlice &fleet)
{
    for (int i = 0; i < 8; ++i)
        fleet.scheduleDegradation(i, 2500.0, 0.70);
}

/** Rack 2 loses half its throughput mid-wave (thermal event). */
void
injectMidWaveRackStorm(FleetSlice &fleet)
{
    for (int i = 16; i < 24; ++i)
        fleet.scheduleDegradation(i, 4700.0, 0.50);
}

/** A directed rack power event while the waves are converting. */
void
injectRackPowerEvent(FleetSlice &fleet)
{
    fleet.scheduleRackOutage(3, 4000.0, 1800.0);
}

RolloutResult
runRollout(const SimOptions &opts, const KnobConfig &winner,
           const Scenario &scenario, bool aware)
{
    const WorkloadProfile &service = serviceByName("web");
    const PlatformSpec &platform = platformByName("skylake18");
    ProductionEnvironment env(service, platform, opts.seed, opts);
    env.setFaults(FaultPlan::fromSpec(kPlanSpec), opts.seed);

    KnobConfig production = productionConfig(platform, service);
    FleetSlice fleet(env, 32, production,
                     FleetTopology::fromSpec("4x2"));
    scenario.inject(fleet);

    RolloutPolicy policy;
    if (aware) {
        policy = RolloutPolicy::blastRadiusAware();
    } else {
        // The naive posture still gets the resume budget — the point
        // is the planner and the verdicts, not a handicap.
        policy.resumeAttempts = 2;
    }
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    OdsStore ods;
    return fleet.rollout(winner, policy, ods);
}

/** Tune web:skylake18 under the hostile plan, then deploy the winner
 *  with the aware posture against the mid-wave storm.  The whole
 *  artifact must be thread-count invariant. */
std::string
pipelineFingerprint(const SimOptions &opts, unsigned jobs,
                    const Scenario &scenario)
{
    const WorkloadProfile &service = serviceByName("web");
    const PlatformSpec &platform = platformByName("skylake18");
    ProductionEnvironment env(service, platform, opts.seed, opts);
    env.setFaults(FaultPlan::fromSpec(kPlanSpec), opts.seed);

    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.seed = opts.seed;
    spec.normalize();

    UskuOptions options;
    options.jobs = jobs;
    options.robustness = RobustnessPolicy::hostile();
    Usku tool(env, options);
    UskuReport report = tool.run(spec);

    KnobConfig production = productionConfig(platform, service);
    FleetSlice fleet(env, 32, production,
                     FleetTopology::fromSpec("4x2"));
    scenario.inject(fleet);
    OdsStore ods;
    RolloutPolicy policy = RolloutPolicy::blastRadiusAware();
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;
    RolloutResult rollout = fleet.rollout(report.softSku, policy, ods);

    Json doc = Json::object();
    doc.set("report", report.toJson());
    doc.set("rollout", rollout.toJson());
    return doc.dump(2);
}

const char *
outcome(const RolloutResult &r)
{
    if (r.completed)
        return "completed";
    return r.configBlamed ? "config blamed" : "domain fault";
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Blast radius",
                "stratified rollouts vs correlated rack failures");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    const Scenario scenarios[] = {
        {"calm fleet", "no directed event", injectNothing},
        {"canary-rack storm", "rack 0 degrades during canary soak",
         injectCanaryRackStorm},
        {"mid-wave rack storm", "rack 2 halves mid-rollout",
         injectMidWaveRackStorm},
        {"rack power event", "rack 3 dark for 30 min of waves",
         injectRackPowerEvent},
    };

    // The deployable winner: the production config plus THP — a
    // runtime-only knob, so conversions charge no reboot downtime and
    // every health signal is about performance, not availability.
    KnobConfig production =
        productionConfig(platformByName("skylake18"),
                         serviceByName("web"));
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    TextTable table;
    table.header({"scenario", "posture", "outcome", "converted",
                  "resumes", "racks out", "rack events",
                  "max wave share", "waves rolled back"});

    bool failed = false;
    int naiveConfigBlamed = 0, awareConfigBlamed = 0;
    Json rows = Json::array();
    for (const Scenario &scenario : scenarios) {
        RolloutResult naive = runRollout(opts, winner, scenario, false);
        RolloutResult aware = runRollout(opts, winner, scenario, true);
        naiveConfigBlamed += naive.configBlamed;
        awareConfigBlamed += aware.configBlamed;

        struct Row
        {
            const RolloutResult *r;
            const char *posture;
        };
        for (const Row &row : {Row{&naive, "naive"}, Row{&aware, "aware"}}) {
            const RolloutResult &r = *row.r;
            table.row({scenario.name, row.posture, outcome(r),
                       format("%d", r.serversConverted),
                       format("%d", r.resumes),
                       format("%d", r.domainsExcluded),
                       format("%d", r.rackEvents),
                       format("%.0f%%", r.maxWaveDomainShare * 100.0),
                       format("%d", r.wavesRolledBack)});
            Json entry = Json::object();
            entry.set("scenario", Json(std::string(scenario.name)));
            entry.set("posture", Json(std::string(row.posture)));
            entry.set("rollout", r.toJson());
            rows.push(std::move(entry));
        }

        // Claim 2: the aware planner never concentrates a wave.
        if (aware.maxWaveDomainShare > 0.5) {
            std::fprintf(stderr,
                         "FATAL: %s: aware wave put %.0f%% of its "
                         "conversions in one rack\n", scenario.name,
                         aware.maxWaveDomainShare * 100.0);
            failed = true;
        }
    }

    // Claim 1, sharpened on the canary-rack storm: the naive posture
    // blames the config and gives up; the aware posture excludes the
    // sick rack and finishes the fleet.
    RolloutResult naiveStorm =
        runRollout(opts, winner, scenarios[1], false);
    RolloutResult awareStorm =
        runRollout(opts, winner, scenarios[1], true);
    if (!(naiveStorm.aborted && naiveStorm.configBlamed)) {
        std::fprintf(stderr, "FATAL: canary-rack storm did not trick "
                             "the naive posture into a config abort\n");
        failed = true;
    }
    if (!awareStorm.completed || awareStorm.configBlamed ||
        awareStorm.domainsExcluded < 1) {
        std::fprintf(stderr, "FATAL: aware posture did not exclude the "
                             "sick rack and complete\n");
        failed = true;
    }
    if (awareConfigBlamed >= naiveConfigBlamed) {
        std::fprintf(stderr,
                     "FATAL: aware posture config-blamed %d rollouts "
                     "vs naive %d\n", awareConfigBlamed,
                     naiveConfigBlamed);
        failed = true;
    }

    // Claim 3: pipeline fingerprint is thread-count invariant.
    const unsigned jobLevels[] = {1, 2, 8};
    std::string fingerprint;
    bool identical = true;
    for (unsigned jobs : jobLevels) {
        std::string fp = pipelineFingerprint(opts, jobs, scenarios[2]);
        if (fingerprint.empty())
            fingerprint = fp;
        else if (fp != fingerprint)
            identical = false;
    }
    if (!identical) {
        std::fprintf(stderr, "FATAL: tune+rollout artifact differs "
                             "across --jobs 1/2/8\n");
        failed = true;
    }

    std::printf("%s\n", table.render().c_str());
    note("plan: %s on a 4x2 topology, 32 servers, 8 per rack "
         "(contiguous delivery order)", kPlanSpec);
    note("naive = id-ordered waves, no domain verdicts (resume budget "
         "2); aware = RolloutPolicy::blastRadiusAware()");
    note("config-blamed aborts: naive %d, aware %d; tune+rollout "
         "byte-identical across --jobs 1/2/8: %s", naiveConfigBlamed,
         awareConfigBlamed, identical ? "yes" : "NO");

    const std::string jsonOut = args.get("json-out");
    if (!jsonOut.empty()) {
        Json doc = Json::object();
        doc.set("bench", Json("blast_radius"));
        doc.set("seed", Json(static_cast<std::uint64_t>(opts.seed)));
        doc.set("plan", Json(std::string(kPlanSpec)));
        doc.set("topology", Json("4x2"));
        doc.set("servers", Json(static_cast<int>(32)));
        doc.set("scenarios", std::move(rows));
        Json aggregate = Json::object();
        aggregate.set("naive_config_blamed",
                      Json(static_cast<int>(naiveConfigBlamed)));
        aggregate.set("aware_config_blamed",
                      Json(static_cast<int>(awareConfigBlamed)));
        aggregate.set("jobs_invariant", Json(identical));
        doc.set("aggregate", std::move(aggregate));
        std::ofstream out(jsonOut, std::ios::binary);
        out << doc.dump(2) << "\n";
        note("wrote %s", jsonOut.c_str());
    }

    return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
