/**
 * @file
 * Memory-tier knobs on a far-memory platform: sweep the mba /
 * tier_policy / far_mem_ratio axes for Web on skylake18cxl and enforce
 * the PR's two invariants, not just report:
 *
 *   1. Determinism: the report must be byte-identical across
 *      --jobs=1/2/8 (deterministic replay extends to the new knobs).
 *   2. Legacy isolation: the same sweep on the no-far-tier skylake18
 *      never mentions a memory-tier knob — not in the spec, not in any
 *      serialized config.
 *
 * The table records each arm's measured gain so the tier model's shape
 * (MBA throttling hurts, promotion beats static placement) is visible
 * in CI logs.  `--json-out=FILE` dumps the numbers for
 * BENCH_memory_tier.json.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common.hh"
#include "core/knob_registry.hh"
#include "core/usku.hh"
#include "util/json.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

UskuReport
tune(const char *platform, const std::vector<KnobId> &knobs,
     const SimOptions &opts, unsigned jobs)
{
    ProductionEnvironment env(webProfile(), platformByName(platform),
                              opts.seed, opts);
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = platform;
    spec.seed = opts.seed;
    spec.knobs = knobs;
    spec.normalize();

    UskuOptions options;
    options.jobs = jobs;
    Usku tool(env, options);
    return tool.run(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Memory tier",
                "mba / tier_policy / far_mem_ratio on a far-memory "
                "platform");

    SimOptions opts = defaultSimOptions(args);
    const std::vector<KnobId> tierKnobs = {
        KnobId::Mba, KnobId::TierPolicyKnob, KnobId::FarMemRatio};
    bool failed = false;

    // Invariant 1: byte-identical reports at every thread count.
    UskuReport report = tune("skylake18cxl", tierKnobs, opts, 1);
    std::string canonical = report.toJson().dump(2);
    for (unsigned jobs : {2u, 8u}) {
        UskuReport other = tune("skylake18cxl", tierKnobs, opts, jobs);
        if (other.toJson().dump(2) != canonical) {
            std::fprintf(stderr,
                         "FATAL: skylake18cxl report differs between "
                         "--jobs 1 and --jobs %u\n", jobs);
            failed = true;
        }
    }

    // Invariant 2: a no-far-tier platform never mentions the knobs.
    UskuReport legacy = tune("skylake18", {}, opts, 1);
    std::string legacyJson = legacy.toJson().dump(2);
    for (const char *key : {"\"mba\"", "\"tier_policy\"",
                            "\"far_mem_ratio\""}) {
        if (legacyJson.find(key) != std::string::npos) {
            std::fprintf(stderr,
                         "FATAL: %s leaked into the skylake18 report\n",
                         key);
            failed = true;
        }
    }

    TextTable table;
    table.header({"knob", "setting", "gain%", "signif", "samples"});
    Json rows = Json::array();
    for (const KnobSweep &sweep : report.map.sweeps) {
        for (const KnobOutcome &outcome : sweep.outcomes) {
            table.row({knobKey(sweep.id), outcome.value.label,
                       outcome.isBaseline
                           ? "base"
                           : format("%+.2f", outcome.gainPercent),
                       outcome.significant ? "yes" : "no",
                       format("%llu", (unsigned long long)
                                          outcome.samples)});
            Json row = Json::object();
            row.set("knob", Json(knobKey(sweep.id)));
            row.set("setting", Json(outcome.value.label));
            row.set("baseline", Json(outcome.isBaseline));
            row.set("gain_percent", Json(outcome.gainPercent));
            row.set("significant", Json(outcome.significant));
            row.set("samples", Json(outcome.samples));
            rows.push(std::move(row));
        }
        table.separator();
    }
    std::fputs(table.render().c_str(), stdout);

    note("soft SKU: %s", report.softSku.describe().c_str());
    note("gain over production %+.2f%%, over stock %+.2f%%",
         report.gainOverProductionPercent(), report.gainOverStockPercent());
    note("legacy guard: skylake18 report carries zero memory-tier keys "
         "and the identical seven-knob sweep set");

    const std::string jsonOut = args.get("json-out");
    if (!jsonOut.empty()) {
        Json doc = Json::object();
        doc.set("bench", Json("memory_tier"));
        doc.set("seed", Json(static_cast<std::uint64_t>(opts.seed)));
        doc.set("warmup_instructions",
                Json(static_cast<std::uint64_t>(
                    opts.warmupInstructions)));
        doc.set("measure_instructions",
                Json(static_cast<std::uint64_t>(
                    opts.measureInstructions)));
        doc.set("service", Json("web"));
        doc.set("platform", Json("skylake18cxl"));
        doc.set("soft_sku", Json(report.softSku.describe()));
        doc.set("gain_over_production_percent",
                Json(report.gainOverProductionPercent()));
        doc.set("gain_over_stock_percent",
                Json(report.gainOverStockPercent()));
        doc.set("jobs_byte_identical", Json(!failed));
        doc.set("arms", std::move(rows));
        std::ofstream out(jsonOut, std::ios::binary);
        out << doc.dump(2) << "\n";
        note("wrote %s", jsonOut.c_str());
    }

    return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
