/**
 * @file
 * Ablations of this reproduction's own design choices (DESIGN.md §5-6):
 *
 *  (1) paired vs unpaired A/B statistics — how many samples each needs
 *      to resolve a small true effect under diurnal load;
 *  (2) SRRIP vs strict LRU in the shared LLC — what adaptive
 *      replacement buys the code/data miss profile;
 *  (3) foreign-core interference injection on/off — what multi-core
 *      LLC sharing contributes to the measured misses.
 */

#include "common.hh"
#include "sim/production_env.hh"
#include "stats/running_stat.hh"
#include "stats/students_t.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

void
ablatePairing(const SimOptions &opts)
{
    std::printf("(1) paired vs unpaired statistics\n\n");
    ProductionEnvironment env(webProfile(), skylake18(), opts.seed, opts);
    env.noise().diurnalAmplitude = 0.10;

    // A deliberately subtle true effect: the SHP 200 → 300 step
    // (a fraction of a percent), the kind μSKU must routinely resolve.
    KnobConfig base = productionConfig(skylake18(), webProfile());
    KnobConfig better = base;
    better.shpCount = 300;

    // Draw paired samples spread across a day; test both ways.
    TextTable table;
    table.header({"samples", "paired p", "paired verdict",
                  "unpaired (Welch) p", "unpaired verdict"});
    RunningStat ratios, armA, armB;
    double clock = 0.0;
    for (int n : {50, 100, 200, 400, 800}) {
        while (ratios.count() < static_cast<std::uint64_t>(n)) {
            clock += 300.0;
            PairedSample s = env.samplePair(base, better, clock);
            ratios.add(s.mipsB / s.mipsA - 1.0);
            armA.add(s.mipsA);
            armB.add(s.mipsB);
        }
        WelchResult paired = pairedTTest(ratios, 0.95);
        WelchResult unpaired = welchTTest(armA, armB, 0.95);
        table.row({format("%d", n), format("%.2g", paired.pValue),
                   paired.significant ? "significant" : "-",
                   format("%.2g", unpaired.pValue),
                   unpaired.significant ? "significant" : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    note("Pairing resolves the few-percent effect orders of magnitude "
         "sooner; the unpaired test drowns in the diurnal swing — this "
         "is why μSKU A/B-tests simultaneously-measured server pairs.");
}

void
ablateReplacement(const SimOptions &opts)
{
    std::printf("\n(2) LLC replacement: SRRIP vs strict LRU\n\n");
    TextTable table;
    table.header({"service", "policy", "LLC code MPKI", "LLC data MPKI",
                  "IPC"});
    for (const char *name : {"web", "cache2", "feed2"}) {
        const WorkloadProfile &service = serviceByName(name);
        const PlatformSpec &platform =
            platformByName(service.defaultPlatform);
        KnobConfig knobs = productionConfig(platform, service);
        for (bool lru : {false, true}) {
            SimOptions ablated = opts;
            ablated.llcLru = lru;
            CounterSet c = simulateService(service, platform, knobs,
                                           ablated);
            table.row({service.displayName, lru ? "LRU" : "SRRIP",
                       format("%.2f", c.mpkiOf(c.llc, AccessType::Code)),
                       format("%.2f", c.mpkiOf(c.llc, AccessType::Data)),
                       format("%.2f", c.coreIpc)});
        }
        table.separator();
    }
    std::printf("%s\n", table.render().c_str());
    note("SRRIP's promote-on-reuse and distant prefetch insertion "
         "protect hot code and reused data from one-shot streams — "
         "strict LRU inflates the miss profile.");
}

void
ablateInterference(const SimOptions &opts)
{
    std::printf("\n(3) foreign-core LLC interference injection\n\n");
    TextTable table;
    table.header({"service", "interference", "LLC code MPKI",
                  "LLC data MPKI", "IPC"});
    for (const char *name : {"web", "ads1"}) {
        const WorkloadProfile &service = serviceByName(name);
        const PlatformSpec &platform =
            platformByName(service.defaultPlatform);
        KnobConfig knobs = productionConfig(platform, service);
        for (bool off : {false, true}) {
            SimOptions ablated = opts;
            ablated.disableInterference = off;
            CounterSet c = simulateService(service, platform, knobs,
                                           ablated);
            table.row({service.displayName, off ? "off" : "on",
                       format("%.2f", c.mpkiOf(c.llc, AccessType::Code)),
                       format("%.2f", c.mpkiOf(c.llc, AccessType::Data)),
                       format("%.2f", c.coreIpc)});
        }
        table.separator();
    }
    std::printf("%s\n", table.render().c_str());
    note("Without the other 17 cores' traffic the LLC looks private and "
         "data misses collapse — multi-core sharing pressure is what "
         "the Fig 10/15 capacity sensitivity rides on.");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Ablations", "design choices of this reproduction");
    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;
    ablatePairing(opts);
    ablateReplacement(opts);
    ablateInterference(opts);
    return 0;
}
