/**
 * @file
 * Robustness: μSKU under hostile production.  Sweeps the fault plan
 * from benign to severe and, for each level, runs the full pipeline —
 * sweep, composition, prolonged validation — with the fault defenses
 * armed (retries, MAD filtering, the QoS guardrail).
 *
 * Two invariants are enforced, not just reported:
 *   1. Determinism: with faults active, the report must be
 *      byte-identical between --jobs 1 and --jobs N.  A fault schedule
 *      that depended on thread interleaving would be useless for
 *      regression hunting.
 *   2. Stability: under the moderate plan the composed soft SKU must
 *      match the benign winner knob-for-knob.  The defenses exist
 *      precisely so that a lossy, crashing fleet does not change the
 *      *science*.
 */

#include <cstdio>
#include <cstdlib>

#include "common.hh"
#include "core/usku.hh"
#include "util/thread_pool.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

struct Level
{
    const char *name;
    const char *spec;
    bool mustMatchBenign;
};

UskuReport
tune(const SimOptions &opts, const FaultPlan &plan, unsigned jobs)
{
    const WorkloadProfile &service = serviceByName("web");
    const PlatformSpec &platform = platformByName("skylake18");
    ProductionEnvironment env(service, platform, opts.seed, opts);
    if (plan.any())
        env.setFaults(plan, opts.seed);

    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.seed = opts.seed;
    spec.normalize();

    UskuOptions options;
    options.jobs = jobs;
    if (plan.any())
        options.robustness = RobustnessPolicy::hostile();

    Usku tool(env, options);
    return tool.run(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Robustness", "soft-SKU composition under injected "
                              "production faults");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;
    const unsigned jobs = args.getJobs(ThreadPool::hardwareThreads());

    const Level levels[] = {
        {"off", "off", true},
        {"mild", "mild", true},
        {"moderate", "moderate", true},
        {"severe", "severe", false},
    };

    TextTable table;
    table.header({"faults", "soft SKU", "vs production", "validated",
                  "injected", "rejected", "retries", "qos aborts",
                  "deterministic"});

    KnobConfig benignSku;
    bool failed = false;
    for (const Level &level : levels) {
        FaultPlan plan = FaultPlan::fromSpec(level.spec);
        UskuReport report = tune(opts, plan, 1);

        // Invariant 1: byte-identical replay at any thread count.
        bool identical = true;
        if (jobs > 1) {
            UskuReport parallel = tune(opts, plan, jobs);
            identical = parallel.toJson().dump(2) ==
                        report.toJson().dump(2);
        }
        if (!identical) {
            std::fprintf(stderr,
                         "FATAL: faults=%s report differs between "
                         "--jobs 1 and --jobs %u\n", level.name, jobs);
            failed = true;
        }

        if (level.spec == std::string("off"))
            benignSku = report.softSku;
        // Invariant 2: moderate faults must not change the winner.
        if (level.mustMatchBenign && !(report.softSku == benignSku)) {
            std::fprintf(stderr,
                         "FATAL: faults=%s changed the composed soft "
                         "SKU (%s vs benign %s)\n", level.name,
                         report.softSku.describe().c_str(),
                         benignSku.describe().c_str());
            failed = true;
        }

        table.row({level.name,
                   report.softSku.describe(),
                   format("%+.2f%%", report.gainOverProductionPercent()),
                   report.validation.stable ? "stable" : "n.s.",
                   format("%llu", static_cast<unsigned long long>(
                                      report.faults.faultsInjected())),
                   format("%llu", static_cast<unsigned long long>(
                                      report.faults.samplesRejected)),
                   format("%llu", static_cast<unsigned long long>(
                                      report.faults.retries)),
                   format("%llu", static_cast<unsigned long long>(
                                      report.faults.guardrailAborts)),
                   identical ? "yes" : "NO"});
    }

    std::printf("%s\n", table.render().c_str());
    note("Fault plans are seeded and replayable: same --seed and plan "
         "reproduce the identical fault schedule at any --jobs value.");
    note("Defenses: bounded retries on crashed comparisons (fresh "
         "substreams), MAD outlier rejection before the paired t-test, "
         "QoS guardrail on candidates whose p99/capacity collapses.");
    note("Expectation: the composed soft SKU is unchanged through the "
         "moderate plan; only the severe plan (10%%/hr crashes, 8%% "
         "dropout) may distort the map.");
    return failed ? 1 : 0;
}
