/**
 * @file
 * Fig 1: variation (max/min ratio) of system-level and architectural
 * traits across the seven microservices — the diversity argument the
 * whole paper rests on.
 */

#include <algorithm>
#include <cmath>

#include "common.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 1", "diversity across microservices (max/min ratio, "
                         "log scale)");

    SimOptions opts = defaultSimOptions(args);

    struct Trait
    {
        std::string name;
        std::vector<double> values;
    };
    std::vector<Trait> traits{
        {"Throughput (QPS)", {}},      {"Req. latency", {}},
        {"CPU util.", {}},             {"Context switches", {}},
        {"IPC", {}},                   {"LLC code MPKI", {}},
        {"ITLB MPKI", {}},             {"Mem. bandwidth util.", {}},
    };

    for (const WorkloadProfile *service : allMicroservices()) {
        const PlatformSpec &platform =
            platformByName(service->defaultPlatform);
        CounterSet c = productionCounters(*service, opts);
        ServiceOperatingPoint op =
            solveOperatingPoint(*service, platform, c, opts.seed);
        traits[0].values.push_back(service->request.peakQps);
        traits[1].values.push_back(service->request.requestLatencySec);
        traits[2].values.push_back(op.cpuUtilization);
        traits[3].values.push_back(
            service->contextSwitch.switchesPerSecond);
        traits[4].values.push_back(c.coreIpc);
        traits[5].values.push_back(
            std::max(c.mpkiOf(c.llc, AccessType::Code), 0.01));
        traits[6].values.push_back(std::max(c.itlbMpki(), 0.01));
        traits[7].values.push_back(c.memBandwidthGBs /
                                   platform.peakMemBandwidthGBs);
    }

    TextTable table;
    table.header({"trait", "min", "max", "range (x)", "log10"});
    for (const Trait &t : traits) {
        double lo = *std::min_element(t.values.begin(), t.values.end());
        double hi = *std::max_element(t.values.begin(), t.values.end());
        double ratio = lo > 0 ? hi / lo : 0.0;
        table.row({t.name, format("%.3g", lo), format("%.3g", hi),
                   format("%.3g", ratio),
                   format("%.1f", std::log10(std::max(ratio, 1.0)))});
    }
    std::printf("%s\n", table.render().c_str());

    note("Paper: system-level traits vary by up to ~10^4-10^6x "
         "(throughput, latency, switches);");
    note("architectural traits (IPC, MPKI, bandwidth) by ~10^1-10^2x.");
    return 0;
}
