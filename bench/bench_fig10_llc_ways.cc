/**
 * @file
 * Fig 10: LLC code+data MPKI as CAT enables 2, 4, 6, 8, 10, then all
 * 11 ways — the capacity-sensitivity sweep.  Cache is omitted as in
 * the paper (it cannot meet QoS with reduced LLC).
 */

#include "common.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 10", "LLC MPKI vs enabled LLC ways (CAT)");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    const char *names[] = {"web", "feed1", "feed2", "ads1", "ads2"};
    const int waySteps[] = {2, 4, 6, 8, 10, 11};

    TextTable table;
    table.header({"uservice", "ways", "code MPKI", "data MPKI",
                  "total", ""});
    for (const char *name : names) {
        const WorkloadProfile &service = serviceByName(name);
        const PlatformSpec &platform =
            platformByName(service.defaultPlatform);
        for (int ways : waySteps) {
            KnobConfig knobs = productionConfig(platform, service);
            SimOptions wayOpts = opts;
            wayOpts.catWays = ways == platform.llc.ways ? 0 : ways;
            CounterSet c = simulateService(service, platform, knobs,
                                           wayOpts);
            double code = c.mpkiOf(c.llc, AccessType::Code);
            double data = c.mpkiOf(c.llc, AccessType::Data);
            table.row({service.displayName, format("%d", ways),
                       format("%.2f", code), format("%.2f", data),
                       format("%.2f", code + data),
                       barRow("", code + data, 20.0, 24, "")});
        }
        table.separator();
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper: most services show a knee around 8 ways (the primary "
         "working set fits); Feed1's and Ads2's largest working sets "
         "never fit, so their curves keep falling to the last way.");
    return 0;
}
