/**
 * @file
 * Fig 7: top-down pipeline-slot breakdown (retiring / front-end / bad
 * speculation / back-end) for the microservices, the SPEC CPU2006
 * stand-ins, and Google's reported services.
 */

#include "common.hh"
#include "services/reported.hh"
#include "services/spec_suite.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 7", "top-down slot breakdown (%)");

    SimOptions opts = defaultSimOptions(args);

    TextTable table;
    table.header({"workload", "ret", "fe", "bs", "be",
                  "|ret=# fe== bs=+ be=:|"});
    auto add = [&](const std::string &name, double ret, double fe,
                   double bs, double be) {
        table.row({name, format("%.0f", ret), format("%.0f", fe),
                   format("%.0f", bs), format("%.0f", be),
                   stackedBarRow("", {ret, fe, bs, be}, 40)});
    };

    for (const WorkloadProfile *service : allMicroservices()) {
        CounterSet c = productionCounters(*service, opts);
        add(service->displayName, c.topdown.retiring * 100,
            c.topdown.frontEnd * 100, c.topdown.badSpeculation * 100,
            c.topdown.backEnd * 100);
    }
    table.separator();
    for (const WorkloadProfile *spec : specSuite()) {
        const PlatformSpec &platform = platformByName(spec->defaultPlatform);
        CounterSet c = simulateService(*spec, platform,
                                       stockConfig(platform, *spec), opts);
        add(spec->displayName, c.topdown.retiring * 100,
            c.topdown.frontEnd * 100, c.topdown.badSpeculation * 100,
            c.topdown.backEnd * 100);
    }
    table.separator();
    for (const auto &w : googleKanev15())
        add(w.name + " [" + w.source + "]", w.retiringPct, w.frontEndPct,
            w.badSpecPct, w.backEndPct);
    for (const auto &w : googleAyers18())
        add(w.name + " [" + w.source + "]", w.retiringPct, w.frontEndPct,
            w.badSpecPct, w.backEndPct);

    std::printf("%s\n", table.render().c_str());
    note("Paper: microservices retire in only 22-40%% of slots; Web and "
         "the Cache tiers lose ~37%% to the front end (far above SPEC); "
         "mispredicts claim 3-13%%; back-end stalls reach ~48%%.");
    return 0;
}
