/**
 * @file
 * google-benchmark microbenchmarks of the simulator's building blocks:
 * cache/TLB/BTB access paths, the workload generators, the statistics
 * primitives, and end-to-end simulated instructions per second.
 */

#include <benchmark/benchmark.h>

#include "arch/platform.hh"
#include "cache/cache.hh"
#include "core/knobs.hh"
#include "os/scheduler.hh"
#include "services/services.hh"
#include "sim/btb.hh"
#include "sim/service_sim.hh"
#include "stats/distributions.hh"
#include "stats/rng.hh"
#include "stats/running_stat.hh"
#include "tlb/tlb.hh"
#include "workload/address_space.hh"
#include "workload/codegen.hh"
#include "workload/datagen.hh"

using namespace softsku;

namespace {

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfDistribution zipf(static_cast<std::uint64_t>(state.range(0)), 1.0);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 10)->Arg(1 << 20);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache("bench", skylake18().llc, ReplPolicy::Srrip);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 22), AccessType::Data));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    TwoLevelTlb tlb("bench", skylake18().dtlb, skylake18().stlb);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.access(rng.below(1ull << 32), kPage4k));
    }
}
BENCHMARK(BM_TlbAccess);

void
BM_BtbAccess(benchmark::State &state)
{
    Btb btb(4096);
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(btb.access(rng.below(1 << 24) * 4));
}
BENCHMARK(BM_BtbAccess);

void
BM_CodegenStep(benchmark::State &state)
{
    const WorkloadProfile &profile = webProfile();
    AddressSpace space = layoutAddressSpace(profile);
    CodeGenerator codegen(profile, space.codeBase, 6);
    for (auto _ : state) {
        codegen.advance();
        benchmark::DoNotOptimize(codegen.pc());
    }
}
BENCHMARK(BM_CodegenStep);

void
BM_DatagenNext(benchmark::State &state)
{
    const WorkloadProfile &profile = webProfile();
    AddressSpace space = layoutAddressSpace(profile);
    DataGenerator datagen(profile, space, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(datagen.next().addr);
}
BENCHMARK(BM_DatagenNext);

void
BM_RunningStatAdd(benchmark::State &state)
{
    RunningStat stat;
    Rng rng(8);
    for (auto _ : state) {
        stat.add(rng.uniform());
        benchmark::DoNotOptimize(stat.mean());
    }
}
BENCHMARK(BM_RunningStatAdd);

void
BM_ThreadPoolDes(benchmark::State &state)
{
    ThreadPoolParams params;
    params.cores = 18;
    params.workers = 108;
    params.arrivalRatePerSec = 200.0;
    params.cpuTimePerRequestSec = 5e-3;
    params.blockingPhases = 4;
    params.blockingTimeSec = 2e-3;
    params.requestsToSimulate = 2000;
    params.warmupRequests = 200;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulateThreadPool(params, 9).completed);
    }
}
BENCHMARK(BM_ThreadPoolDes)->Unit(benchmark::kMillisecond);

void
BM_SimulatedInstructions(benchmark::State &state)
{
    const WorkloadProfile &profile = feed1Profile();
    const PlatformSpec &platform = platformByName(profile.defaultPlatform);
    KnobConfig knobs = productionConfig(platform, profile);
    SimOptions opts;
    opts.warmupInstructions = 50'000;
    opts.measureInstructions =
        static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulateService(profile, platform, knobs, opts).instructions);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatedInstructions)
    ->Arg(200'000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
