/**
 * @file
 * Fig 8: L1 and L2 code+data MPKI for the microservices, SPEC CPU2006,
 * and Google's reported Search1-Leaf.
 */

#include "common.hh"
#include "services/reported.hh"
#include "services/spec_suite.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 8", "L1 & L2 code/data MPKI");

    SimOptions opts = defaultSimOptions(args);

    TextTable table;
    table.header({"workload", "L1 code", "L1 data", "L2 code", "L2 data",
                  "L1 total bar"});
    auto add = [&](const std::string &name, const CounterSet &c) {
        double l1c = c.mpkiOf(c.l1i, AccessType::Code);
        double l1d = c.mpkiOf(c.l1d, AccessType::Data);
        table.row({name, format("%.1f", l1c), format("%.1f", l1d),
                   format("%.1f", c.mpkiOf(c.l2, AccessType::Code)),
                   format("%.1f", c.mpkiOf(c.l2, AccessType::Data)),
                   barRow("", l1c + l1d, 100.0, 30,
                          format("%.0f", l1c + l1d))});
    };

    for (const WorkloadProfile *service : allMicroservices())
        add(service->displayName, productionCounters(*service, opts));
    table.separator();
    for (const WorkloadProfile *spec : specSuite()) {
        const PlatformSpec &platform = platformByName(spec->defaultPlatform);
        add(spec->displayName,
            simulateService(*spec, platform, stockConfig(platform, *spec),
                            opts));
    }
    table.separator();
    for (const auto &w : googleAyers18()) {
        table.row({w.name + " [" + w.source + "]",
                   format("%.1f", w.l1iMpki), format("%.1f", w.l1dMpki),
                   format("%.1f", w.l2Mpki), "-", ""});
    }

    std::printf("%s\n", table.render().c_str());
    note("Paper: the microservices' L1 MPKI — especially code — are "
         "drastically above the comparison suites, with Cache1/Cache2 "
         "worst (pool switching thrashes L1-I).");
    return 0;
}
