/**
 * @file
 * Fig 11: ITLB MPKI and DTLB MPKI (split into load and store misses)
 * across the microservices and SPEC CPU2006 — Web's JIT code cache
 * makes its ITLB miss rate the fleet's outlier.
 */

#include "common.hh"
#include "services/spec_suite.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 11", "ITLB & DTLB (load/store) MPKI");

    SimOptions opts = defaultSimOptions(args);

    TextTable table;
    table.header({"workload", "iTLB", "dTLB ld", "dTLB st", "dTLB", ""});
    auto add = [&](const std::string &name, const CounterSet &c) {
        double total = c.dtlbMpki();
        double walkSplit = static_cast<double>(c.dtlbLoadMisses +
                                               c.dtlbStoreMisses);
        double loadShare =
            walkSplit > 0 ? static_cast<double>(c.dtlbLoadMisses) /
                                walkSplit
                          : 0.0;
        table.row({name, format("%.1f", c.itlbMpki()),
                   format("%.1f", total * loadShare),
                   format("%.1f", total * (1.0 - loadShare)),
                   format("%.1f", total),
                   barRow("", c.itlbMpki(), 20.0, 24,
                          format("i=%.1f", c.itlbMpki()))});
    };

    for (const WorkloadProfile *service : allMicroservices())
        add(service->displayName, productionCounters(*service, opts));
    table.separator();
    for (const WorkloadProfile *spec : specSuite()) {
        const PlatformSpec &platform = platformByName(spec->defaultPlatform);
        add(spec->displayName,
            simulateService(*spec, platform, stockConfig(platform, *spec),
                            opts));
    }

    std::printf("%s\n", table.render().c_str());
    note("Paper: ITLB misses mirror LLC code misses — Web drastically "
         "highest (JIT code cache), Cache tiers next, the rest "
         "negligible.  DTLB varies; Feed1 stays low (~5.8) despite its "
         "LLC data misses because dense feature vectors give page "
         "locality.");
    return 0;
}
