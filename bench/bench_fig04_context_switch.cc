/**
 * @file
 * Fig 4: fraction of a CPU-second spent context switching, bounded by
 * the literature's per-switch latency range (Tsafrir'07, Li'07) — the
 * paper's headline: Cache tiers can lose up to ~18% of CPU time.
 */

#include "common.hh"

using namespace softsku;
using namespace softsku::bench;

int
main()
{
    printBanner("Fig 4", "context-switch penalty range (% of CPU-second)");

    TextTable table;
    table.header({"uservice", "switches/s", "lower%", "upper%", ""});
    for (const WorkloadProfile *service : allMicroservices()) {
        const ContextSwitchModel &csw = service->contextSwitch;
        double lo = csw.penaltyFractionLower() * 100.0;
        double hi = csw.penaltyFractionUpper() * 100.0;
        table.row({service->displayName,
                   format("%.0f", csw.switchesPerSecond),
                   format("%.1f", lo), format("%.1f", hi),
                   barRow("", hi, 20.0, 30, format("%.1f-%.1f%%", lo, hi))});
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper: Cache1/Cache2 switch far more than the rest and may "
         "spend up to ~18%% of CPU time switching; all others are "
         "low single digits.");
    return 0;
}
