/**
 * @file
 * Fig 16: Code/Data Prioritization sweeps over every {data, code} LLC
 * way split — (a) Web (Skylake) and Ads1 gain from dedicating ways to
 * code; (b) Web (Broadwell) cannot, because it saturates memory
 * bandwidth under every CDP configuration.
 */

#include "common.hh"
#include "core/ab_test.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

void
sweepCdp(const char *serviceName, const char *platformName,
         const SimOptions &opts)
{
    const WorkloadProfile &service = serviceByName(serviceName);
    const PlatformSpec &platform = platformByName(platformName);
    ProductionEnvironment env(service, platform, opts.seed, opts);

    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.normalize();
    ABTester tester(env, spec);

    KnobConfig base = productionConfig(platform, service);   // CDP off

    std::printf("%s (%s), gain over CDP off {data ways, code ways}:\n",
                service.displayName.c_str(), platform.name.c_str());
    TextTable table;
    table.header({"split", "gain%", "ci%", "signif", ""});
    double best = -1e9;
    std::string bestLabel = "off";
    for (int data = 1; data < platform.llc.ways; ++data) {
        int code = platform.llc.ways - data;
        KnobConfig candidate = base;
        candidate.cdp = {true, data, code};
        ABTestResult result = tester.compare(base, candidate);
        if (result.significant && result.gainPercent() > best) {
            best = result.gainPercent();
            bestLabel = format("{%dd,%dc}", data, code);
        }
        table.row({format("{%dd,%dc}", data, code),
                   format("%+.2f", result.gainPercent()),
                   format("%.2f", result.gainCiPercent()),
                   result.significant ? "yes" : "no",
                   barRow("", result.gainPercent() + 15.0, 30.0, 24, "")});
    }
    std::printf("%s\nbest significant split: %s (%+.2f%%)\n\n",
                table.render().c_str(), bestLabel.c_str(),
                best > -1e8 ? best : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 16", "CDP: LLC code/data way partitioning (A/B)");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    std::printf("(a) Skylake:\n\n");
    sweepCdp("web", "skylake18", opts);
    sweepCdp("ads1", "skylake18", opts);

    std::printf("(b) Broadwell:\n\n");
    sweepCdp("web", "broadwell16", opts);

    note("Paper: Web (Skylake) gains up to 4.5%% at {6d,5c} — trading "
         "0.6 data MPKI for 0.3 code MPKI wins because code misses are "
         "unhidden; Ads1 gains 2.5%% at {9d,2c}; Web (Broadwell) gains "
         "nothing — it saturates memory bandwidth under every split.");
    return 0;
}
