/**
 * @file
 * Fig 6: per-core IPC across the seven microservices, the simulated
 * SPEC CPU2006 suite (Skylake20), and literature-reported values for
 * SPEC CPU2017, CloudSuite, and Google services (other platforms — the
 * paper compares spreads, not absolutes).
 */

#include "common.hh"
#include "services/reported.hh"
#include "services/spec_suite.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 6", "per-core IPC");

    SimOptions opts = defaultSimOptions(args);

    TextTable table;
    table.header({"workload", "group", "IPC", ""});
    auto add = [&](const std::string &name, const std::string &group,
                   double ipc) {
        table.row({name, group, format("%.2f", ipc),
                   barRow("", ipc, 4.0, 32, "")});
    };

    double lo = 1e9, hi = 0.0;
    for (const WorkloadProfile *service : allMicroservices()) {
        CounterSet c = productionCounters(*service, opts);
        add(service->displayName, "our microservices", c.coreIpc);
        lo = std::min(lo, c.coreIpc);
        hi = std::max(hi, c.coreIpc);
    }
    table.separator();
    for (const WorkloadProfile *spec : specSuite()) {
        const PlatformSpec &platform = platformByName(spec->defaultPlatform);
        CounterSet c = simulateService(*spec, platform,
                                       stockConfig(platform, *spec), opts);
        add(spec->displayName, "SPEC2006 (measured)", c.coreIpc);
    }
    table.separator();
    for (const auto &w : spec2017Limaye18())
        add(w.name, w.source, w.ipc);
    table.separator();
    for (const auto &w : cloudSuiteFerdman12())
        add(w.name, w.source, w.ipc);
    table.separator();
    for (const auto &w : googleKanev15())
        add(w.name, w.source, w.ipc);
    for (const auto &w : googleAyers18())
        add(w.name, w.source, w.ipc);

    std::printf("%s\n", table.render().c_str());
    note("Our microservice IPC spread: %.2f - %.2f (%.1fx).", lo, hi,
         hi / lo);
    note("Paper: none of the microservices exceed half of Skylake's "
         "theoretical peak (5.0); their IPC diversity exceeds Google's "
         "services and sits below most SPEC CPU2006 benchmarks.");
    return 0;
}
