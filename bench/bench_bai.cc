/**
 * @file
 * Adaptive search: racing vs the fixed-budget protocol.  For each
 * tunable target this harness composes the soft SKU twice — once with
 * the paper's fixed per-comparison protocol, once with the racing
 * best-arm engine — and enforces two invariants, not just reports:
 *
 *   1. Winner parity: racing must compose knob-for-knob the SAME soft
 *      SKU as the fixed protocol.  Early stopping is an efficiency
 *      feature; changing the science would make it worthless.
 *   2. Determinism: the race-mode report must be byte-identical
 *      between --jobs 1 and --jobs N.
 *
 * It then records the economics: live A/B samples per composed SKU
 * against (a) the paper's fixed per-comparison budget and (b) the
 * fixed protocol's own early-stopping actuals, plus cold wall time.
 * `--json-out=FILE` dumps the numbers for BENCH_adaptive_search.json.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common.hh"
#include "core/usku.hh"
#include "util/json.hh"
#include "util/thread_pool.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

struct Target
{
    const char *service;
    const char *platform;
};

struct ModeRun
{
    UskuReport report;
    double wallSec = 0.0;
};

ModeRun
tune(const Target &target, const SimOptions &opts, SearchMode search,
     unsigned jobs)
{
    auto t0 = std::chrono::steady_clock::now();
    ProductionEnvironment env(serviceByName(target.service),
                              platformByName(target.platform),
                              opts.seed, opts);
    InputSpec spec;
    spec.microservice = target.service;
    spec.platform = target.platform;
    spec.seed = opts.seed;
    spec.search = search;
    spec.normalize();

    UskuOptions options;
    options.jobs = jobs;
    Usku tool(env, options);
    ModeRun run;
    run.report = tool.run(spec);
    run.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return run;
}

/** Live samples paid across all non-baseline sweep arms. */
std::uint64_t
samplesPaid(const UskuReport &report)
{
    std::uint64_t paid = 0;
    for (const KnobSweep &sweep : report.map.sweeps)
        for (const KnobOutcome &outcome : sweep.outcomes)
            if (!outcome.isBaseline)
                paid += outcome.samples;
    return paid;
}

std::uint64_t
armCount(const UskuReport &report)
{
    std::uint64_t arms = 0;
    for (const KnobSweep &sweep : report.map.sweeps)
        for (const KnobOutcome &outcome : sweep.outcomes)
            if (!outcome.isBaseline)
                arms += 1;
    return arms;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Adaptive search",
                "best-arm racing vs the fixed-budget A/B protocol");

    SimOptions opts = defaultSimOptions(args);
    const unsigned jobs = args.getJobs(ThreadPool::hardwareThreads());

    // The MIPS-tunable targets (cache1/2 are untunable by design:
    // their profiles reject MIPS as a throughput proxy).  One per
    // service keeps the smoke under a minute; the test-suite matrix
    // (UskuRace.WinnerMatchesFixedOnEveryTunableServicePlatform)
    // covers every service x platform pair.
    const Target targets[] = {
        {"web", "skylake18"},
        {"feed1", "broadwell16"},
        {"feed2", "skylake18"},
        {"ads1", "broadwell16"},
        {"ads2", "skylake18"},
    };

    TextTable table;
    table.header({"target", "soft SKU (race)", "parity", "arms",
                  "budget", "fixed paid", "race paid", "vs budget",
                  "vs fixed", "wall fixed", "wall race"});

    Json rows = Json::array();
    std::uint64_t totalBudget = 0;
    std::uint64_t totalFixed = 0;
    std::uint64_t totalRace = 0;
    bool failed = false;

    for (const Target &target : targets) {
        ModeRun fixed = tune(target, opts, SearchMode::Fixed, jobs);
        ModeRun race = tune(target, opts, SearchMode::Race, jobs);

        // Invariant 1: early stopping never changes the winner.
        bool parity = race.report.softSku == fixed.report.softSku;
        if (!parity) {
            std::fprintf(stderr,
                         "FATAL: %s/%s race composed %s but fixed "
                         "composed %s\n",
                         target.service, target.platform,
                         race.report.softSku.describe().c_str(),
                         fixed.report.softSku.describe().c_str());
            failed = true;
        }

        // Invariant 2: byte-identical replay at any thread count.
        if (jobs > 1) {
            ModeRun serial = tune(target, opts, SearchMode::Race, 1);
            if (serial.report.toJson().dump(2) !=
                race.report.toJson().dump(2)) {
                std::fprintf(stderr,
                             "FATAL: %s/%s race report differs "
                             "between --jobs 1 and --jobs %u\n",
                             target.service, target.platform, jobs);
                failed = true;
            }
        }

        std::uint64_t arms = armCount(race.report);
        std::uint64_t budget =
            arms * race.report.spec.maxSamplesPerTest;
        std::uint64_t fixedPaid = samplesPaid(fixed.report);
        std::uint64_t racePaid = samplesPaid(race.report);
        totalBudget += budget;
        totalFixed += fixedPaid;
        totalRace += racePaid;

        table.row({format("%s/%s", target.service, target.platform),
                   race.report.softSku.describe(),
                   parity ? "match" : "MISMATCH",
                   format("%llu", (unsigned long long)arms),
                   format("%llu", (unsigned long long)budget),
                   format("%llu", (unsigned long long)fixedPaid),
                   format("%llu", (unsigned long long)racePaid),
                   format("%.1fx", budget / double(racePaid)),
                   format("%.2fx", fixedPaid / double(racePaid)),
                   format("%.1fs", fixed.wallSec),
                   format("%.1fs", race.wallSec)});

        Json row = Json::object();
        row.set("service", Json(target.service));
        row.set("platform", Json(target.platform));
        row.set("soft_sku", Json(race.report.softSku.describe()));
        row.set("winner_parity", Json(parity));
        row.set("arms", Json(arms));
        row.set("paper_budget_samples", Json(budget));
        row.set("fixed_paid_samples", Json(fixedPaid));
        row.set("race_paid_samples", Json(racePaid));
        row.set("savings_vs_budget", Json(budget / double(racePaid)));
        row.set("savings_vs_fixed", Json(fixedPaid / double(racePaid)));
        row.set("cold_wall_sec_fixed", Json(fixed.wallSec));
        row.set("cold_wall_sec_race", Json(race.wallSec));
        rows.push(std::move(row));
    }

    std::fputs(table.render().c_str(), stdout);
    note("aggregate: budget %llu, fixed paid %llu, race paid %llu "
         "(%.1fx vs budget, %.2fx vs fixed actuals)",
         (unsigned long long)totalBudget,
         (unsigned long long)totalFixed,
         (unsigned long long)totalRace,
         totalBudget / double(totalRace),
         totalFixed / double(totalRace));
    note("paper framing: a fixed ~30k-sample budget per paired "
         "comparison; racing composes the same SKU for the samples "
         "above (>=5x less than the budget on every target)");

    // The >=5x acceptance is against the paper's fixed per-comparison
    // budget; enforce it here so the smoke fails loudly on regression.
    if (totalRace * 5 > totalBudget) {
        std::fprintf(stderr,
                     "FATAL: aggregate race samples %llu exceed 1/5 of "
                     "the fixed budget %llu\n",
                     (unsigned long long)totalRace,
                     (unsigned long long)totalBudget);
        failed = true;
    }

    const std::string jsonOut = args.get("json-out");
    if (!jsonOut.empty()) {
        Json doc = Json::object();
        doc.set("bench", Json("adaptive_search"));
        doc.set("seed", Json(static_cast<std::uint64_t>(opts.seed)));
        doc.set("warmup_instructions",
                Json(static_cast<std::uint64_t>(
                    opts.warmupInstructions)));
        doc.set("measure_instructions",
                Json(static_cast<std::uint64_t>(
                    opts.measureInstructions)));
        doc.set("targets", std::move(rows));
        Json aggregate = Json::object();
        aggregate.set("paper_budget_samples", Json(totalBudget));
        aggregate.set("fixed_paid_samples", Json(totalFixed));
        aggregate.set("race_paid_samples", Json(totalRace));
        aggregate.set("savings_vs_budget",
                      Json(totalBudget / double(totalRace)));
        aggregate.set("savings_vs_fixed",
                      Json(totalFixed / double(totalRace)));
        doc.set("aggregate", std::move(aggregate));
        std::ofstream out(jsonOut, std::ios::binary);
        out << doc.dump(2) << "\n";
        note("wrote %s", jsonOut.c_str());
    }

    return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
