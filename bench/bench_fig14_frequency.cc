/**
 * @file
 * Fig 14: μSKU's (a) core-frequency and (b) uncore-frequency scaling
 * A/B studies for Web (Skylake), Web (Broadwell), and Ads1, reported
 * as gains over the lowest setting.
 */

#include "common.hh"
#include "core/ab_test.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

void
sweepFrequency(const char *serviceName, const char *platformName,
               bool uncore, const SimOptions &opts)
{
    const WorkloadProfile &service = serviceByName(serviceName);
    const PlatformSpec &platform = platformByName(platformName);
    ProductionEnvironment env(service, platform, opts.seed, opts);

    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.normalize();
    ABTester tester(env, spec);

    KnobConfig base = productionConfig(platform, service);
    if (uncore)
        base.uncoreFreqGHz = platform.uncoreFreqMinGHz;
    else
        base.coreFreqGHz = platform.coreFreqMinGHz;

    std::printf("%s (%s), gain over %.1f GHz %s frequency:\n",
                service.displayName.c_str(), platform.name.c_str(),
                uncore ? platform.uncoreFreqMinGHz
                       : platform.coreFreqMinGHz,
                uncore ? "uncore" : "core");

    double maxGHz = uncore ? platform.uncoreFreqMaxGHz
                           : (platform.coreFreqMaxGHz -
                              (service.usesAvx ? 0.2 : 0.0));
    TextTable table;
    table.header({"GHz", "gain%", "ci%", ""});
    for (double f = (uncore ? platform.uncoreFreqMinGHz
                            : platform.coreFreqMinGHz) + 0.1;
         f <= maxGHz + 1e-9; f += 0.1) {
        KnobConfig candidate = base;
        if (uncore)
            candidate.uncoreFreqGHz = f;
        else
            candidate.coreFreqGHz = f;
        ABTestResult result = tester.compare(base, candidate);
        table.row({format("%.1f", f),
                   format("%+.2f", result.gainPercent()),
                   format("%.2f", result.gainCiPercent()),
                   barRow("", result.gainPercent(), 20.0, 24, "")});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 14", "core & uncore frequency scaling (A/B)");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    std::printf("(a) core frequency:\n\n");
    sweepFrequency("web", "skylake18", false, opts);
    sweepFrequency("web", "broadwell16", false, opts);
    sweepFrequency("ads1", "skylake18", false, opts);

    std::printf("(b) uncore frequency:\n\n");
    sweepFrequency("web", "skylake18", true, opts);
    sweepFrequency("web", "broadwell16", true, opts);
    sweepFrequency("ads1", "skylake18", true, opts);

    note("Paper: throughput rises steeply to ~1.9 GHz then with "
         "diminishing returns; the maximum core and uncore frequencies "
         "win everywhere, matching the hand-tuned production settings.");
    return 0;
}
