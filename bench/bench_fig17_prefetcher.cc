/**
 * @file
 * Fig 17: the five prefetcher configurations vs all-prefetchers-off,
 * for Web (Skylake), Web (Broadwell), and Ads1.  The inversion to
 * reproduce: bandwidth-rich Skylake wants everything on; bandwidth-
 * starved Broadwell runs fastest with prefetchers off.
 */

#include "common.hh"
#include "core/ab_test.hh"
#include "prefetch/config.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 17", "prefetcher configurations (A/B)");

    SimOptions opts = defaultSimOptions(args);
    opts.warmupInstructions = 500'000;
    opts.measureInstructions = 700'000;

    struct Target
    {
        const char *service;
        const char *platform;
    };
    for (const Target &t : {Target{"web", "skylake18"},
                            Target{"web", "broadwell16"},
                            Target{"ads1", "skylake18"}}) {
        const WorkloadProfile &service = serviceByName(t.service);
        const PlatformSpec &platform = platformByName(t.platform);
        ProductionEnvironment env(service, platform, opts.seed, opts);

        InputSpec spec;
        spec.microservice = service.name;
        spec.platform = platform.name;
        spec.normalize();
        ABTester tester(env, spec);

        KnobConfig base = productionConfig(platform, service);
        base.prefetch = PrefetcherPreset::AllOff;

        std::printf("%s (%s), gain over all prefetchers off "
                    "(production = %s):\n",
                    service.displayName.c_str(), platform.name.c_str(),
                    prefetcherPresetName(
                        productionConfig(platform, service).prefetch)
                        .c_str());
        TextTable table;
        table.header({"configuration", "gain%", "ci%", ""});
        for (PrefetcherPreset preset : allPrefetcherPresets()) {
            if (preset == PrefetcherPreset::AllOff)
                continue;
            KnobConfig candidate = base;
            candidate.prefetch = preset;
            ABTestResult result = tester.compare(base, candidate);
            table.row({prefetcherPresetName(preset),
                       format("%+.2f", result.gainPercent()),
                       format("%.2f", result.gainCiPercent()),
                       barRow("", result.gainPercent() + 10.0, 40.0, 24,
                              "")});
        }
        std::printf("%s\n", table.render().c_str());
    }
    note("Paper: Web (Skylake) and Ads1 are not bandwidth bound — all "
         "prefetchers on wins; Web (Broadwell) is — turning every "
         "prefetcher OFF beats its hand-tuned production setting by "
         "~3%%.");
    return 0;
}
