/**
 * @file
 * Fig 5: instruction-type breakdown (branch / FP / arithmetic / load /
 * store) for the seven microservices and the SPEC CPU2006 comparison
 * suite, measured from retired-instruction class counts.
 */

#include "common.hh"
#include "services/spec_suite.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

void
printRow(TextTable &table, const std::string &name, const CounterSet &c)
{
    double parts[5];
    for (int i = 0; i < 5; ++i)
        parts[i] = c.classFraction(i) * 100.0;
    // classCounts order: Branch, Float, Arith, Load, Store.
    table.row({name, format("%.0f", parts[0]), format("%.0f", parts[1]),
               format("%.0f", parts[2]), format("%.0f", parts[3]),
               format("%.0f", parts[4]),
               stackedBarRow("", {parts[0], parts[1], parts[2], parts[3],
                                  parts[4]}, 40)});
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 5", "instruction mix: branch/FP/arith/load/store (%)");

    SimOptions opts = defaultSimOptions(args);
    // Mix measurement needs no cache fidelity; shrink the window.
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 400'000;

    TextTable table;
    table.header({"workload", "br", "fp", "ar", "ld", "st",
                  "|branch=# fp== arith=+ load=: store=~|"});

    for (const WorkloadProfile *service : allMicroservices())
        printRow(table, service->displayName,
                 productionCounters(*service, opts));
    table.separator();
    for (const WorkloadProfile *spec : specSuite()) {
        const PlatformSpec &platform = platformByName(spec->defaultPlatform);
        KnobConfig knobs = stockConfig(platform, *spec);
        printRow(table, spec->displayName,
                 simulateService(*spec, platform, knobs, opts));
    }
    std::printf("%s\n", table.render().c_str());

    note("Paper: FP appears only in the ranking services (Feed1 "
         "dominated by it, then Ads1/Feed2/Ads2); Cache needs heavy "
         "arithmetic/branches for parsing and marshalling, and its "
         "load/store share does not stand out from other services.");
    return 0;
}
