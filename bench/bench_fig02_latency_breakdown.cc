/**
 * @file
 * Fig 2: (a) running vs blocked share of a request's life for Web,
 * Feed1, Feed2, Ads1, Ads2 (Cache omitted — its concurrent paths defy
 * the split); (b) Web's blocked time decomposed into queue, scheduler,
 * and I/O latency — the thread-over-subscription signature.
 */

#include "common.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 2", "request latency breakdown");

    SimOptions opts = defaultSimOptions(args);
    const char *names[] = {"web", "feed1", "feed2", "ads1", "ads2"};

    std::printf("(a) running vs blocked (%%):\n\n");
    TextTable table;
    table.header({"uservice", "running", "blocked", ""});
    ThreadPoolResult webPool;
    for (const char *name : names) {
        const WorkloadProfile &service = serviceByName(name);
        const PlatformSpec &platform =
            platformByName(service.defaultPlatform);
        CounterSet counters = productionCounters(service, opts);
        ServiceOperatingPoint op =
            solveOperatingPoint(service, platform, counters, opts.seed);
        if (service.name == "web")
            webPool = op.pool;
        double running = op.pool.runningShare() * 100.0;
        double blocked = op.pool.blockedShare() * 100.0;
        table.row({service.displayName, format("%.0f", running),
                   format("%.0f", blocked),
                   stackedBarRow("", {running, blocked}, 40)});
    }
    std::printf("%s\n", table.render().c_str());
    note("Paper Fig 2a: Web 28/72, Feed1 95/5, Feed2 69/31, Ads1 62/38, "
         "Ads2 90/10.");

    std::printf("\n(b) Web's breakdown (%%):\n\n");
    TextTable webTable;
    webTable.header({"component", "share"});
    webTable.row({"Running",
                  format("%.0f", webPool.runningFraction * 100)});
    webTable.row({"Queue latency",
                  format("%.0f", webPool.queueFraction * 100)});
    webTable.row({"Scheduler latency",
                  format("%.0f", webPool.schedulerFraction * 100)});
    webTable.row({"IO latency", format("%.0f", webPool.ioFraction * 100)});
    std::printf("%s\n", webTable.render().c_str());
    note("Paper Fig 2b: Running 28, Queue 10, Scheduler 28, IO 34 — "
         "scheduler delay from worker over-subscription.");
    return 0;
}
