/**
 * @file
 * Fleet-scale telemetry: the sharded, rollup-backed ODS store against
 * the single-map baseline it replaced.
 *
 * The paper's ODS ingests samples from every server in the fleet while
 * dashboards and health checks pound it with windowed percentile
 * queries (Sec. 2.2).  This bench drives both store designs through
 * the same storm — 10⁴–10⁵ simulated servers, each streaming a latency
 * series while worker threads query full-history percentiles of
 * already-streamed servers — and enforces the claims:
 *
 *   1. Throughput: the sharded store with resolution rollups sustains
 *      at least --min-speedup (default 4x) the combined append+query
 *      throughput of a single-map, single-mutex store whose aggregate
 *      copies and sorts every sample in the window.  The win is
 *      algorithmic — O(buckets) sketch folds against O(n log n) sorts
 *      — so it holds at any core count.
 *   2. Fidelity: rolled-up aggregates match the exact baseline —
 *      count identical, mean to float tolerance, p99 within the log
 *      bin width (3%).
 *
 * `--json-out=FILE` dumps the numbers for BENCH_fleet_telemetry.json.
 * The CI smoke runs a small fleet with a relaxed --min-speedup; the
 * checked-in JSON comes from the full 10⁴-server run.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "telemetry/ods.hh"
#include "util/json.hh"

using namespace softsku;
using namespace softsku::bench;

namespace {

/**
 * The seed's store design, made thread-safe the only way a single map
 * can be: one mutex over everything.  Aggregation copies the window
 * and sorts it — exact, and O(n log n) per query.
 */
class BaselineStore
{
  public:
    void append(const std::string &series, double timeSec, double value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        series_[series].push_back({timeSec, value});
    }

    OdsAggregate aggregate(const std::string &series, double fromSec,
                           double toSec) const
    {
        std::vector<double> values;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = series_.find(series);
            if (it == series_.end())
                return {};
            for (const OdsPoint &p : it->second) {
                if (p.timeSec >= fromSec && p.timeSec <= toSec)
                    values.push_back(p.value);
            }
        }
        OdsAggregate agg;
        if (values.empty())
            return agg;
        std::sort(values.begin(), values.end());
        agg.count = values.size();
        double sum = 0.0;
        for (double v : values)
            sum += v;
        agg.mean = sum / static_cast<double>(values.size());
        agg.min = values.front();
        agg.max = values.back();
        auto nearestRank = [&](double q) {
            auto rank = static_cast<size_t>(
                std::ceil(q * static_cast<double>(values.size())));
            rank = std::clamp<size_t>(rank, 1, values.size());
            return values[rank - 1];
        };
        agg.p50 = nearestRank(0.50);
        agg.p95 = nearestRank(0.95);
        agg.p99 = nearestRank(0.99);
        return agg;
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<OdsPoint>> series_;
};

/** Deterministic per-(server, sample) latency: diurnal-ish wave plus a
 *  heavy tail every 97th sample — a p99 worth measuring. */
double
sampleValue(int server, int i)
{
    double base = 100.0 + static_cast<double>(server % 17);
    double wave = 10.0 * std::sin(static_cast<double>(i) * 0.05);
    double v = base + wave;
    if (i % 97 == 0)
        v *= 3.0;
    return v;
}

struct Workload
{
    int servers = 10000;
    int pointsPerServer = 1440;  //!< 2.5s cadence over one hour
    int queriesPerServer = 300;  //!< full-window percentile reads
    int threads = 4;
    double spanSec = 3600.0;
};

struct PhaseResult
{
    double wallSec = 0.0;
    std::uint64_t appends = 0;
    std::uint64_t queries = 0;

    double throughput() const
    {
        return wallSec > 0.0
                   ? static_cast<double>(appends + queries) / wallSec
                   : 0.0;
    }
};

std::string
serverSeries(int server)
{
    return "fleet.bench.server" + std::to_string(server) + ".latency";
}

/**
 * Run the storm against one store.  Threads own disjoint server
 * stripes; each streams its servers' series in order, firing
 * full-window queries at servers that finished streaming earlier (the
 * dashboard pattern: history is read while new data lands).  @p query
 * and @p maintain abstract over the two store types.
 */
template <typename AppendFn, typename QueryFn, typename MaintainFn>
PhaseResult
runStorm(const Workload &load, AppendFn append, QueryFn query,
         MaintainFn maintain)
{
    PhaseResult result;
    std::atomic<std::uint64_t> appends{0}, queries{0};
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(load.threads));
    for (int w = 0; w < load.threads; ++w) {
        workers.emplace_back([&, w] {
            double cadence = load.spanSec /
                             static_cast<double>(load.pointsPerServer);
            std::uint64_t myAppends = 0, myQueries = 0;
            int done = 0;
            for (int s = w; s < load.servers; s += load.threads) {
                std::string series = serverSeries(s);
                for (int i = 0; i < load.pointsPerServer; ++i) {
                    append(series, static_cast<double>(i) * cadence,
                           sampleValue(s, i));
                    ++myAppends;
                }
                // Storm the history of servers this thread already
                // finished (plus this one when none are), spread
                // uniformly — a dashboard reads everyone's history
                // while new data streams in.
                for (int q = 0; q < load.queriesPerServer; ++q) {
                    unsigned mix =
                        static_cast<unsigned>(q) * 2654435761u +
                        static_cast<unsigned>(s) * 97u;
                    int back =
                        done > 0
                            ? static_cast<int>(
                                  mix % static_cast<unsigned>(done)) +
                                  1
                            : 0;
                    int target = s - back * load.threads;
                    query(serverSeries(target), 0.0, load.spanSec);
                    ++myQueries;
                }
                ++done;
                if (done % 16 == 0)
                    maintain(load.spanSec);
            }
            appends.fetch_add(myAppends, std::memory_order_relaxed);
            queries.fetch_add(myQueries, std::memory_order_relaxed);
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    result.wallSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    result.appends = appends.load();
    result.queries = queries.load();
    return result;
}

/** The bench's aggressive retention: raw for a minute, 1-min buckets
 *  for ten, 10-min buckets forever — wide-window queries land on
 *  sketches, the way a month-old dashboard window would. */
OdsRetention
benchRetention()
{
    OdsRetention r;
    r.rawHorizonSec = 60.0;
    r.midHorizonSec = 600.0;
    r.midBucketSec = 60.0;
    r.longBucketSec = 600.0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fleet telemetry",
                "sharded rollup ODS vs single-map baseline");

    Workload load;
    load.servers =
        static_cast<int>(args.getInt("servers", load.servers));
    load.pointsPerServer =
        static_cast<int>(args.getInt("points", load.pointsPerServer));
    load.queriesPerServer =
        static_cast<int>(args.getInt("queries", load.queriesPerServer));
    load.threads =
        static_cast<int>(args.getInt("threads", load.threads));
    const double minSpeedup = args.getDouble("min-speedup", 4.0);

    note("%d servers x %d points, %d queries/server, %d threads",
         load.servers, load.pointsPerServer, load.queriesPerServer,
         load.threads);

    // Phase 1: the single-map baseline.
    BaselineStore baseline;
    PhaseResult base = runStorm(
        load,
        [&](const std::string &s, double t, double v) {
            baseline.append(s, t, v);
        },
        [&](const std::string &s, double from, double to) {
            baseline.aggregate(s, from, to);
        },
        [](double) {});
    note("baseline: %.2fs wall, %.0f ops/s (%llu appends, %llu "
         "queries)",
         base.wallSec, base.throughput(),
         static_cast<unsigned long long>(base.appends),
         static_cast<unsigned long long>(base.queries));

    // Phase 2: the sharded store, rollups armed, same storm.
    OdsStoreOptions options;
    options.shards = 64;
    options.retention = benchRetention();
    OdsStore sharded(options);
    PhaseResult shard = runStorm(
        load,
        [&](const std::string &s, double t, double v) {
            sharded.append(s, t, v);
        },
        [&](const std::string &s, double from, double to) {
            sharded.aggregate(s, from, to);
        },
        [&](double now) { sharded.downsample(now); });
    note("sharded: %.2fs wall, %.0f ops/s (%llu appends, %llu "
         "queries)",
         shard.wallSec, shard.throughput(),
         static_cast<unsigned long long>(shard.appends),
         static_cast<unsigned long long>(shard.queries));

    double speedup = base.wallSec > 0.0 && shard.wallSec > 0.0
                         ? shard.throughput() / base.throughput()
                         : 0.0;
    OdsStoreStats stats = sharded.stats();
    note("speedup: %.2fx (minimum %.2fx); sharded store holds %llu "
         "raw points + %llu rollup buckets after %llu folds",
         speedup, minSpeedup,
         static_cast<unsigned long long>(stats.rawPoints),
         static_cast<unsigned long long>(stats.rollupBuckets),
         static_cast<unsigned long long>(stats.downsampledPoints));

    bool failed = false;
    if (speedup < minSpeedup) {
        std::fprintf(stderr,
                     "FATAL: sharded throughput only %.2fx the "
                     "baseline (need %.2fx)\n", speedup, minSpeedup);
        failed = true;
    }

    // Claim 2: rolled-up answers match the exact baseline.
    sharded.downsample(load.spanSec);
    double maxMeanErr = 0.0, maxP99Err = 0.0;
    std::uint64_t countMismatches = 0;
    int sampled = 0;
    for (int s = 0; s < load.servers; s += std::max(1, load.servers / 64)) {
        OdsAggregate exact =
            baseline.aggregate(serverSeries(s), 0.0, load.spanSec);
        OdsAggregate rolled =
            sharded.aggregate(serverSeries(s), 0.0, load.spanSec);
        if (exact.count != rolled.count)
            ++countMismatches;
        if (exact.mean != 0.0) {
            maxMeanErr = std::max(
                maxMeanErr,
                std::fabs(rolled.mean - exact.mean) / exact.mean);
        }
        if (exact.p99 != 0.0) {
            maxP99Err = std::max(
                maxP99Err,
                std::fabs(rolled.p99 - exact.p99) / exact.p99);
        }
        ++sampled;
    }
    note("fidelity over %d sampled series: count mismatches %llu, "
         "max mean err %.4f%%, max p99 err %.2f%%",
         sampled, static_cast<unsigned long long>(countMismatches),
         maxMeanErr * 100.0, maxP99Err * 100.0);
    if (countMismatches > 0 || maxMeanErr > 1e-6 || maxP99Err > 0.03) {
        std::fprintf(stderr, "FATAL: rolled-up aggregates drifted from "
                             "the exact baseline\n");
        failed = true;
    }

    const std::string jsonOut = args.get("json-out");
    if (!jsonOut.empty()) {
        Json doc = Json::object();
        doc.set("bench", Json("fleet_telemetry"));
        doc.set("servers", Json(load.servers));
        doc.set("points_per_server", Json(load.pointsPerServer));
        doc.set("queries_per_server", Json(load.queriesPerServer));
        doc.set("threads", Json(load.threads));
        doc.set("shards", Json(static_cast<int>(options.shards)));
        auto phase = [](const PhaseResult &r) {
            Json p = Json::object();
            p.set("wall_sec", Json(r.wallSec));
            p.set("appends", Json(r.appends));
            p.set("queries", Json(r.queries));
            p.set("ops_per_sec", Json(r.throughput()));
            return p;
        };
        doc.set("baseline", phase(base));
        doc.set("sharded", phase(shard));
        doc.set("speedup", Json(speedup));
        doc.set("min_speedup", Json(minSpeedup));
        Json fidelity = Json::object();
        fidelity.set("sampled_series", Json(sampled));
        fidelity.set("count_mismatches", Json(countMismatches));
        fidelity.set("max_mean_err_percent", Json(maxMeanErr * 100.0));
        fidelity.set("max_p99_err_percent", Json(maxP99Err * 100.0));
        doc.set("fidelity", std::move(fidelity));
        Json store = Json::object();
        store.set("raw_points", Json(stats.rawPoints));
        store.set("rollup_buckets", Json(stats.rollupBuckets));
        store.set("downsampled_points", Json(stats.downsampledPoints));
        doc.set("sharded_store", std::move(store));
        std::ofstream out(jsonOut, std::ios::binary);
        out << doc.dump(2) << "\n";
        note("wrote %s", jsonOut.c_str());
    }

    return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
