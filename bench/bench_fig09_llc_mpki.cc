/**
 * @file
 * Fig 9: LLC code and data MPKI.  The headline anomaly: Web sustains
 * non-negligible LLC *instruction* misses in steady state — almost
 * unheard of — due to its JIT code cache.
 */

#include "common.hh"
#include "services/reported.hh"
#include "services/spec_suite.hh"

using namespace softsku;
using namespace softsku::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    printBanner("Fig 9", "LLC code/data MPKI");

    SimOptions opts = defaultSimOptions(args);

    TextTable table;
    table.header({"workload", "LLC data", "LLC code", ""});
    auto add = [&](const std::string &name, double data, double code) {
        table.row({name, format("%.2f", data), format("%.2f", code),
                   barRow("", data + code, 25.0, 30,
                          format("%.1f", data + code))});
    };

    double webCode = 0.0, othersMaxCode = 0.0;
    for (const WorkloadProfile *service : allMicroservices()) {
        CounterSet c = productionCounters(*service, opts);
        double code = c.mpkiOf(c.llc, AccessType::Code);
        add(service->displayName, c.mpkiOf(c.llc, AccessType::Data), code);
        if (service->name == "web")
            webCode = code;
        else
            othersMaxCode = std::max(othersMaxCode, code);
    }
    table.separator();
    for (const WorkloadProfile *spec : specSuite()) {
        const PlatformSpec &platform = platformByName(spec->defaultPlatform);
        CounterSet c = simulateService(*spec, platform,
                                       stockConfig(platform, *spec), opts);
        add(spec->displayName, c.mpkiOf(c.llc, AccessType::Data),
            c.mpkiOf(c.llc, AccessType::Code));
    }
    table.separator();
    for (const auto &w : googleAyers18()) {
        table.row({w.name + " [" + w.source + "]",
                   format("%.2f", w.llcMpki), "~0", ""});
    }

    std::printf("%s\n", table.render().c_str());
    note("Measured: Web LLC code MPKI %.2f vs next-highest service %.2f "
         "(%.1fx).", webCode, std::max(othersMaxCode, 0.01),
         webCode / std::max(othersMaxCode, 0.01));
    note("Paper: LLC data misses are high across services (Feed1 ~9.3); "
         "Web's 1.7 LLC *code* MPKI is the unusual, expensive one — "
         "out-of-order execution cannot hide instruction stalls.");
    return 0;
}
