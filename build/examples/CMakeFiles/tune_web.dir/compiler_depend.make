# Empty compiler generated dependencies file for tune_web.
# This may be replaced when dependencies are built.
