file(REMOVE_RECURSE
  "CMakeFiles/tune_web.dir/tune_web.cpp.o"
  "CMakeFiles/tune_web.dir/tune_web.cpp.o.d"
  "tune_web"
  "tune_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
