file(REMOVE_RECURSE
  "CMakeFiles/custom_service.dir/custom_service.cpp.o"
  "CMakeFiles/custom_service.dir/custom_service.cpp.o.d"
  "custom_service"
  "custom_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
