# Empty compiler generated dependencies file for custom_service.
# This may be replaced when dependencies are built.
