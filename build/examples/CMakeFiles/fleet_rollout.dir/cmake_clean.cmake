file(REMOVE_RECURSE
  "CMakeFiles/fleet_rollout.dir/fleet_rollout.cpp.o"
  "CMakeFiles/fleet_rollout.dir/fleet_rollout.cpp.o.d"
  "fleet_rollout"
  "fleet_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
