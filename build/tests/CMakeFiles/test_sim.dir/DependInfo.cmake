
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/fleet_test.cc" "tests/CMakeFiles/test_sim.dir/sim/fleet_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/fleet_test.cc.o.d"
  "/root/repo/tests/sim/knob_properties_test.cc" "tests/CMakeFiles/test_sim.dir/sim/knob_properties_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/knob_properties_test.cc.o.d"
  "/root/repo/tests/sim/machine_test.cc" "tests/CMakeFiles/test_sim.dir/sim/machine_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/machine_test.cc.o.d"
  "/root/repo/tests/sim/production_env_test.cc" "tests/CMakeFiles/test_sim.dir/sim/production_env_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/production_env_test.cc.o.d"
  "/root/repo/tests/sim/qos_test.cc" "tests/CMakeFiles/test_sim.dir/sim/qos_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/qos_test.cc.o.d"
  "/root/repo/tests/sim/service_sim_test.cc" "tests/CMakeFiles/test_sim.dir/sim/service_sim_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/service_sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/softsku.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
