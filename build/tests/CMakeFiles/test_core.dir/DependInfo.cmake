
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ab_test_test.cc" "tests/CMakeFiles/test_core.dir/core/ab_test_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ab_test_test.cc.o.d"
  "/root/repo/tests/core/design_space_test.cc" "tests/CMakeFiles/test_core.dir/core/design_space_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/design_space_test.cc.o.d"
  "/root/repo/tests/core/report_writer_test.cc" "tests/CMakeFiles/test_core.dir/core/report_writer_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/report_writer_test.cc.o.d"
  "/root/repo/tests/core/usku_test.cc" "tests/CMakeFiles/test_core.dir/core/usku_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/usku_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/softsku.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
