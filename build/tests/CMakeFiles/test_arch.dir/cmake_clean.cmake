file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/msr_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/msr_test.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/platform_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/platform_test.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/topdown_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/topdown_test.cc.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
