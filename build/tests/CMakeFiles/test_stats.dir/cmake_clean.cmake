file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/distributions_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/distributions_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/histogram_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/histogram_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/rng_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/rng_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/running_stat_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/running_stat_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/students_t_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/students_t_test.cc.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
