# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
