file(REMOVE_RECURSE
  "../bench/bench_fig01_diversity"
  "../bench/bench_fig01_diversity.pdb"
  "CMakeFiles/bench_fig01_diversity.dir/bench_fig01_diversity.cc.o"
  "CMakeFiles/bench_fig01_diversity.dir/bench_fig01_diversity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
