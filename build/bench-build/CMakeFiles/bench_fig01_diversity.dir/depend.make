# Empty dependencies file for bench_fig01_diversity.
# This may be replaced when dependencies are built.
