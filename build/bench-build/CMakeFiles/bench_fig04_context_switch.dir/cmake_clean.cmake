file(REMOVE_RECURSE
  "../bench/bench_fig04_context_switch"
  "../bench/bench_fig04_context_switch.pdb"
  "CMakeFiles/bench_fig04_context_switch.dir/bench_fig04_context_switch.cc.o"
  "CMakeFiles/bench_fig04_context_switch.dir/bench_fig04_context_switch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
