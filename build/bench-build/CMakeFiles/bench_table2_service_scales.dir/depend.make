# Empty dependencies file for bench_table2_service_scales.
# This may be replaced when dependencies are built.
