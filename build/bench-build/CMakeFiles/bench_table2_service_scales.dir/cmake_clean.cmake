file(REMOVE_RECURSE
  "../bench/bench_table2_service_scales"
  "../bench/bench_table2_service_scales.pdb"
  "CMakeFiles/bench_table2_service_scales.dir/bench_table2_service_scales.cc.o"
  "CMakeFiles/bench_table2_service_scales.dir/bench_table2_service_scales.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_service_scales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
