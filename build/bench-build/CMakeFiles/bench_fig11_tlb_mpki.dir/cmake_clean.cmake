file(REMOVE_RECURSE
  "../bench/bench_fig11_tlb_mpki"
  "../bench/bench_fig11_tlb_mpki.pdb"
  "CMakeFiles/bench_fig11_tlb_mpki.dir/bench_fig11_tlb_mpki.cc.o"
  "CMakeFiles/bench_fig11_tlb_mpki.dir/bench_fig11_tlb_mpki.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tlb_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
