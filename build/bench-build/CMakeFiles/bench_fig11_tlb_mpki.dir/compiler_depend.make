# Empty compiler generated dependencies file for bench_fig11_tlb_mpki.
# This may be replaced when dependencies are built.
