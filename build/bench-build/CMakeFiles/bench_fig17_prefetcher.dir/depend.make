# Empty dependencies file for bench_fig17_prefetcher.
# This may be replaced when dependencies are built.
