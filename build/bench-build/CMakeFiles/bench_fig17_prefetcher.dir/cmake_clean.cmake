file(REMOVE_RECURSE
  "../bench/bench_fig17_prefetcher"
  "../bench/bench_fig17_prefetcher.pdb"
  "CMakeFiles/bench_fig17_prefetcher.dir/bench_fig17_prefetcher.cc.o"
  "CMakeFiles/bench_fig17_prefetcher.dir/bench_fig17_prefetcher.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
