file(REMOVE_RECURSE
  "../bench/bench_fig09_llc_mpki"
  "../bench/bench_fig09_llc_mpki.pdb"
  "CMakeFiles/bench_fig09_llc_mpki.dir/bench_fig09_llc_mpki.cc.o"
  "CMakeFiles/bench_fig09_llc_mpki.dir/bench_fig09_llc_mpki.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_llc_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
