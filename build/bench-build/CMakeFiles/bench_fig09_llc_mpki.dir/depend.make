# Empty dependencies file for bench_fig09_llc_mpki.
# This may be replaced when dependencies are built.
