file(REMOVE_RECURSE
  "../bench/bench_table3_findings"
  "../bench/bench_table3_findings.pdb"
  "CMakeFiles/bench_table3_findings.dir/bench_table3_findings.cc.o"
  "CMakeFiles/bench_table3_findings.dir/bench_table3_findings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
