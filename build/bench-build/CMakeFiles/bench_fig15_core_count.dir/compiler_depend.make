# Empty compiler generated dependencies file for bench_fig15_core_count.
# This may be replaced when dependencies are built.
