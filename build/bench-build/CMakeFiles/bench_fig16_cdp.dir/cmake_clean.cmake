file(REMOVE_RECURSE
  "../bench/bench_fig16_cdp"
  "../bench/bench_fig16_cdp.pdb"
  "CMakeFiles/bench_fig16_cdp.dir/bench_fig16_cdp.cc.o"
  "CMakeFiles/bench_fig16_cdp.dir/bench_fig16_cdp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
