file(REMOVE_RECURSE
  "../bench/bench_fig07_topdown"
  "../bench/bench_fig07_topdown.pdb"
  "CMakeFiles/bench_fig07_topdown.dir/bench_fig07_topdown.cc.o"
  "CMakeFiles/bench_fig07_topdown.dir/bench_fig07_topdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
