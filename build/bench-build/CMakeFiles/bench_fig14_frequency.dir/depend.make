# Empty dependencies file for bench_fig14_frequency.
# This may be replaced when dependencies are built.
