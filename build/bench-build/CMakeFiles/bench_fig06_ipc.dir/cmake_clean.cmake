file(REMOVE_RECURSE
  "../bench/bench_fig06_ipc"
  "../bench/bench_fig06_ipc.pdb"
  "CMakeFiles/bench_fig06_ipc.dir/bench_fig06_ipc.cc.o"
  "CMakeFiles/bench_fig06_ipc.dir/bench_fig06_ipc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
