# Empty compiler generated dependencies file for bench_fig08_l1l2_mpki.
# This may be replaced when dependencies are built.
