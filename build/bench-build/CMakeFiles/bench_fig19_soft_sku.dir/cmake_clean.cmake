file(REMOVE_RECURSE
  "../bench/bench_fig19_soft_sku"
  "../bench/bench_fig19_soft_sku.pdb"
  "CMakeFiles/bench_fig19_soft_sku.dir/bench_fig19_soft_sku.cc.o"
  "CMakeFiles/bench_fig19_soft_sku.dir/bench_fig19_soft_sku.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_soft_sku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
