# Empty compiler generated dependencies file for bench_fig19_soft_sku.
# This may be replaced when dependencies are built.
