# Empty compiler generated dependencies file for bench_fig10_llc_ways.
# This may be replaced when dependencies are built.
