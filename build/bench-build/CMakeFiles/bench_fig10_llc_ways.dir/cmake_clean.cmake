file(REMOVE_RECURSE
  "../bench/bench_fig10_llc_ways"
  "../bench/bench_fig10_llc_ways.pdb"
  "CMakeFiles/bench_fig10_llc_ways.dir/bench_fig10_llc_ways.cc.o"
  "CMakeFiles/bench_fig10_llc_ways.dir/bench_fig10_llc_ways.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_llc_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
