# Empty dependencies file for bench_fig18_hugepages.
# This may be replaced when dependencies are built.
