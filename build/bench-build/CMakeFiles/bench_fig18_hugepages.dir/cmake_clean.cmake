file(REMOVE_RECURSE
  "../bench/bench_fig18_hugepages"
  "../bench/bench_fig18_hugepages.pdb"
  "CMakeFiles/bench_fig18_hugepages.dir/bench_fig18_hugepages.cc.o"
  "CMakeFiles/bench_fig18_hugepages.dir/bench_fig18_hugepages.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_hugepages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
