# Empty compiler generated dependencies file for softsku.
# This may be replaced when dependencies are built.
