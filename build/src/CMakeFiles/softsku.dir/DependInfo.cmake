
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/msr.cc" "src/CMakeFiles/softsku.dir/arch/msr.cc.o" "gcc" "src/CMakeFiles/softsku.dir/arch/msr.cc.o.d"
  "/root/repo/src/arch/platform.cc" "src/CMakeFiles/softsku.dir/arch/platform.cc.o" "gcc" "src/CMakeFiles/softsku.dir/arch/platform.cc.o.d"
  "/root/repo/src/arch/topdown.cc" "src/CMakeFiles/softsku.dir/arch/topdown.cc.o" "gcc" "src/CMakeFiles/softsku.dir/arch/topdown.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/softsku.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/softsku.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/cdp.cc" "src/CMakeFiles/softsku.dir/cache/cdp.cc.o" "gcc" "src/CMakeFiles/softsku.dir/cache/cdp.cc.o.d"
  "/root/repo/src/core/ab_test.cc" "src/CMakeFiles/softsku.dir/core/ab_test.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/ab_test.cc.o.d"
  "/root/repo/src/core/configurator.cc" "src/CMakeFiles/softsku.dir/core/configurator.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/configurator.cc.o.d"
  "/root/repo/src/core/design_space.cc" "src/CMakeFiles/softsku.dir/core/design_space.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/design_space.cc.o.d"
  "/root/repo/src/core/design_space_map.cc" "src/CMakeFiles/softsku.dir/core/design_space_map.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/design_space_map.cc.o.d"
  "/root/repo/src/core/input_spec.cc" "src/CMakeFiles/softsku.dir/core/input_spec.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/input_spec.cc.o.d"
  "/root/repo/src/core/knobs.cc" "src/CMakeFiles/softsku.dir/core/knobs.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/knobs.cc.o.d"
  "/root/repo/src/core/report_writer.cc" "src/CMakeFiles/softsku.dir/core/report_writer.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/report_writer.cc.o.d"
  "/root/repo/src/core/soft_sku.cc" "src/CMakeFiles/softsku.dir/core/soft_sku.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/soft_sku.cc.o.d"
  "/root/repo/src/core/usku.cc" "src/CMakeFiles/softsku.dir/core/usku.cc.o" "gcc" "src/CMakeFiles/softsku.dir/core/usku.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/softsku.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/softsku.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/stress.cc" "src/CMakeFiles/softsku.dir/mem/stress.cc.o" "gcc" "src/CMakeFiles/softsku.dir/mem/stress.cc.o.d"
  "/root/repo/src/os/context_switch.cc" "src/CMakeFiles/softsku.dir/os/context_switch.cc.o" "gcc" "src/CMakeFiles/softsku.dir/os/context_switch.cc.o.d"
  "/root/repo/src/os/hugepage.cc" "src/CMakeFiles/softsku.dir/os/hugepage.cc.o" "gcc" "src/CMakeFiles/softsku.dir/os/hugepage.cc.o.d"
  "/root/repo/src/os/kernelfs.cc" "src/CMakeFiles/softsku.dir/os/kernelfs.cc.o" "gcc" "src/CMakeFiles/softsku.dir/os/kernelfs.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/CMakeFiles/softsku.dir/os/scheduler.cc.o" "gcc" "src/CMakeFiles/softsku.dir/os/scheduler.cc.o.d"
  "/root/repo/src/prefetch/config.cc" "src/CMakeFiles/softsku.dir/prefetch/config.cc.o" "gcc" "src/CMakeFiles/softsku.dir/prefetch/config.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/CMakeFiles/softsku.dir/prefetch/prefetcher.cc.o" "gcc" "src/CMakeFiles/softsku.dir/prefetch/prefetcher.cc.o.d"
  "/root/repo/src/services/ads.cc" "src/CMakeFiles/softsku.dir/services/ads.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/ads.cc.o.d"
  "/root/repo/src/services/caches.cc" "src/CMakeFiles/softsku.dir/services/caches.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/caches.cc.o.d"
  "/root/repo/src/services/feeds.cc" "src/CMakeFiles/softsku.dir/services/feeds.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/feeds.cc.o.d"
  "/root/repo/src/services/registry.cc" "src/CMakeFiles/softsku.dir/services/registry.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/registry.cc.o.d"
  "/root/repo/src/services/reported.cc" "src/CMakeFiles/softsku.dir/services/reported.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/reported.cc.o.d"
  "/root/repo/src/services/spec_suite.cc" "src/CMakeFiles/softsku.dir/services/spec_suite.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/spec_suite.cc.o.d"
  "/root/repo/src/services/web.cc" "src/CMakeFiles/softsku.dir/services/web.cc.o" "gcc" "src/CMakeFiles/softsku.dir/services/web.cc.o.d"
  "/root/repo/src/sim/btb.cc" "src/CMakeFiles/softsku.dir/sim/btb.cc.o" "gcc" "src/CMakeFiles/softsku.dir/sim/btb.cc.o.d"
  "/root/repo/src/sim/fleet.cc" "src/CMakeFiles/softsku.dir/sim/fleet.cc.o" "gcc" "src/CMakeFiles/softsku.dir/sim/fleet.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/softsku.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/softsku.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/production_env.cc" "src/CMakeFiles/softsku.dir/sim/production_env.cc.o" "gcc" "src/CMakeFiles/softsku.dir/sim/production_env.cc.o.d"
  "/root/repo/src/sim/qos.cc" "src/CMakeFiles/softsku.dir/sim/qos.cc.o" "gcc" "src/CMakeFiles/softsku.dir/sim/qos.cc.o.d"
  "/root/repo/src/sim/service_sim.cc" "src/CMakeFiles/softsku.dir/sim/service_sim.cc.o" "gcc" "src/CMakeFiles/softsku.dir/sim/service_sim.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/CMakeFiles/softsku.dir/stats/distributions.cc.o" "gcc" "src/CMakeFiles/softsku.dir/stats/distributions.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/softsku.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/softsku.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/CMakeFiles/softsku.dir/stats/rng.cc.o" "gcc" "src/CMakeFiles/softsku.dir/stats/rng.cc.o.d"
  "/root/repo/src/stats/running_stat.cc" "src/CMakeFiles/softsku.dir/stats/running_stat.cc.o" "gcc" "src/CMakeFiles/softsku.dir/stats/running_stat.cc.o.d"
  "/root/repo/src/stats/students_t.cc" "src/CMakeFiles/softsku.dir/stats/students_t.cc.o" "gcc" "src/CMakeFiles/softsku.dir/stats/students_t.cc.o.d"
  "/root/repo/src/telemetry/emon.cc" "src/CMakeFiles/softsku.dir/telemetry/emon.cc.o" "gcc" "src/CMakeFiles/softsku.dir/telemetry/emon.cc.o.d"
  "/root/repo/src/telemetry/ods.cc" "src/CMakeFiles/softsku.dir/telemetry/ods.cc.o" "gcc" "src/CMakeFiles/softsku.dir/telemetry/ods.cc.o.d"
  "/root/repo/src/telemetry/tmam_report.cc" "src/CMakeFiles/softsku.dir/telemetry/tmam_report.cc.o" "gcc" "src/CMakeFiles/softsku.dir/telemetry/tmam_report.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/softsku.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/softsku.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/softsku.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/softsku.dir/util/cli.cc.o.d"
  "/root/repo/src/util/json.cc" "src/CMakeFiles/softsku.dir/util/json.cc.o" "gcc" "src/CMakeFiles/softsku.dir/util/json.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/softsku.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/softsku.dir/util/logging.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/softsku.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/softsku.dir/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/softsku.dir/util/table.cc.o" "gcc" "src/CMakeFiles/softsku.dir/util/table.cc.o.d"
  "/root/repo/src/workload/address_space.cc" "src/CMakeFiles/softsku.dir/workload/address_space.cc.o" "gcc" "src/CMakeFiles/softsku.dir/workload/address_space.cc.o.d"
  "/root/repo/src/workload/codegen.cc" "src/CMakeFiles/softsku.dir/workload/codegen.cc.o" "gcc" "src/CMakeFiles/softsku.dir/workload/codegen.cc.o.d"
  "/root/repo/src/workload/datagen.cc" "src/CMakeFiles/softsku.dir/workload/datagen.cc.o" "gcc" "src/CMakeFiles/softsku.dir/workload/datagen.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/softsku.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/softsku.dir/workload/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
