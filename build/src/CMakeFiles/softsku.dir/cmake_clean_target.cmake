file(REMOVE_RECURSE
  "libsoftsku.a"
)
