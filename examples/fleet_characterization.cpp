/**
 * @file
 * Fleet characterization: run all seven production microservices on
 * their fleet platforms and print the cross-service comparison the
 * paper's Section 2 builds — IPC, top-down breakdown, cache/TLB MPKI,
 * and memory operating points, side by side.
 *
 * Usage: fleet_characterization [--seed=1] [--insns=1500000]
 *                               [--log-level=silent|error|warn|info|debug]
 */

#include <cstdio>

#include "core/knobs.hh"
#include "services/services.hh"
#include "sim/service_sim.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace softsku;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    setLogLevel(args.getLogLevel(LogLevel::Info));
    SimOptions options;
    options.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    options.measureInstructions =
        static_cast<std::uint64_t>(args.getInt("insns", 1'500'000));

    std::printf("SoftSKU fleet characterization (7 microservices)\n\n");

    TextTable table;
    table.header({"service", "platform", "IPC", "ret%", "fe%", "bs%",
                  "be%", "L1I", "L1D", "L2c", "L2d", "LLCc", "LLCd",
                  "iTLB", "dTLB", "mbw", "lat"});

    for (const WorkloadProfile *service : allMicroservices()) {
        const PlatformSpec &platform =
            platformByName(service->defaultPlatform);
        KnobConfig knobs = productionConfig(platform, *service);
        CounterSet c = simulateService(*service, platform, knobs, options);
        table.row({
            service->displayName,
            platform.name,
            format("%.2f", c.coreIpc),
            format("%.0f", c.topdown.retiring * 100),
            format("%.0f", c.topdown.frontEnd * 100),
            format("%.0f", c.topdown.badSpeculation * 100),
            format("%.0f", c.topdown.backEnd * 100),
            format("%.1f", c.mpkiOf(c.l1i, AccessType::Code)),
            format("%.1f", c.mpkiOf(c.l1d, AccessType::Data)),
            format("%.1f", c.mpkiOf(c.l2, AccessType::Code)),
            format("%.1f", c.mpkiOf(c.l2, AccessType::Data)),
            format("%.2f", c.mpkiOf(c.llc, AccessType::Code)),
            format("%.2f", c.mpkiOf(c.llc, AccessType::Data)),
            format("%.1f", c.itlbMpki()),
            format("%.1f", c.dtlbMpki()),
            format("%.0f", c.memBandwidthGBs),
            format("%.0f", c.memLatencyNs),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Columns: top-down slot %%s (ret/fe/bs/be), MPKI per cache "
                "level (c=code, d=data),\nTLB MPKI, memory bandwidth (GB/s) "
                "and loaded latency (ns).\n");
    return 0;
}
