/**
 * @file
 * Fleet rollout: take the soft SKU μSKU found for a service and deploy
 * it across a fleet slice the way an operator would — canary, soak,
 * staged waves, reboot downtime for boot-time knobs — with fleet
 * telemetry landing in the ODS store throughout.  Also demonstrates
 * the fungibility story: the same servers are then redeployed to a
 * different microservice's soft SKU.
 *
 * Usage: fleet_rollout [--service=web] [--platform=skylake18]
 *                      [--servers=16] [--seed=1] [--report=path.md]
 *                      [--resume-attempts=N] [--jobs=N|auto]
 *                      [--faults=off|mild|moderate|severe|k=v,..]
 *                      [--fault-seed=N] [--domains=RACKS[xREGIONS]]
 *                      [--naive-waves] [--quorum=N] [--cache-dir=DIR]
 *                      [--health-report] [--emit=DIR]
 *                      [--trace-out=FILE] [--metrics]
 *                      [--log-level=silent|error|warn|info|debug]
 *
 * --health-report prints the FleetHealthView dashboard over the
 * rollout window: top regressed fleet series and the per-rack health
 * matrix, read from the same ODS store the health checks used.
 *
 * --emit=DIR writes one dashboard JSON per target into DIR as
 * <service>.<platform>.v<schema>.json: the tuning report, the rollout
 * verdict, and the health view in one schema-versioned file a
 * dashboard can poll.
 *
 * --trace-out records the whole pipeline — sweep comparisons,
 * validation chunks, then the rollout's soak/canary/wave/health-check/
 * rollback phases — as Chrome trace_event JSON for chrome://tracing
 * or Perfetto.
 *
 * --faults runs the whole pipeline — sweep and rollout — in hostile
 * production mode: crashes, telemetry dropout, surges, apply failures
 * and stuck reboots, all seeded and replayable.  The rollout falls
 * back on its health checks: canary judged from paired telemetry,
 * per-wave load-normalized health gates, automatic rollback.
 *
 * --resume-attempts lets the rollout pick itself back up after a
 * wave-health rollback: re-baseline on the surviving servers,
 * re-canary, and retry the waves up to N times before giving up.
 *
 * --domains gives the fleet a failure-domain topology (racks, and
 * optionally regions: "8" or "8x2") and switches the rollout to the
 * blast-radius-aware posture: waves stratified across racks, a
 * per-rack quorum of unconverted control servers, domain-triaged
 * health verdicts (a dead or regressed rack is excluded and the
 * rollout resumes; only a regression no control group shares is
 * blamed on the config), and conversion pauses during surge windows.
 * --naive-waves keeps the id-ordered wave planner for comparison, and
 * --quorum overrides the per-rack control holdback.
 */

#include <cstdio>

#include "core/report_writer.hh"
#include "core/usku.hh"
#include "services/services.hh"
#include "sim/fleet.hh"
#include "telemetry/health_view.hh"
#include "telemetry/series_names.hh"
#include "telemetry/tmam_report.hh"
#include "util/cli.hh"
#include "util/strings.hh"

using namespace softsku;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ToolOptions tool = ToolOptions::fromArgs(args);
    tool.apply();
    const WorkloadProfile &service =
        serviceByName(args.get("service", "web"));
    const PlatformSpec &platform =
        platformByName(args.get("platform", service.defaultPlatform));
    int serverCount = static_cast<int>(args.getInt("servers", 16));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    SimOptions simOpts;
    simOpts.warmupInstructions = 600'000;
    simOpts.measureInstructions = 800'000;
    if (tool.simCore == "scalar")
        simOpts.core = SimCoreKind::Scalar;
    ProductionEnvironment env(service, platform, seed, simOpts);

    // Fault arming (and the hostile robustness escalation) now rides
    // in through UskuOptions::fromTool; the Usku constructor arms the
    // environment, which this tool's fleet slice shares.
    Usku usku(env, UskuOptions::fromTool(tool));

    // Step 1: what does the bottleneck picture look like?
    KnobConfig production = productionConfig(platform, service);
    const CounterSet &counters = env.counters(production);
    std::printf("%s\n%s\n\n",
                renderTmamReport(counters, service.displayName).c_str(),
                suggestKnobs(counters,
                             platform.peakMemBandwidthGBs).c_str());

    // Step 2: let μSKU find the soft SKU.
    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.seed = seed;
    spec.applySearchOverrides(tool);
    spec.normalize();
    UskuReport report = usku.run(spec);
    std::printf("%s\n", report.summary().c_str());
    if (args.has("report"))
        writeMarkdownReport(report, args.get("report"));

    // Step 3: staged rollout across the fleet slice.  With a real
    // topology the blast-radius-aware posture is the default; the
    // tuning run's own metrics are persisted into the same ODS store
    // the rollout health checks read.
    FleetTopology topology = FleetTopology::fromSpec(tool.domains);
    FleetSlice fleet(env, serverCount, production, topology);
    OdsStore ods;
    ods.recordSnapshot(report.metrics, 0.0);
    RolloutPolicy policy;
    if (!topology.trivial() && !args.has("naive-waves"))
        policy = RolloutPolicy::blastRadiusAware();
    if (args.has("quorum"))
        policy.domainQuorum = static_cast<int>(args.getInt("quorum", 1));
    if (args.has("resume-attempts"))
        policy.resumeAttempts =
            static_cast<int>(args.getInt("resume-attempts", 0));
    RolloutResult rollout =
        fleet.rollout(report.softSku, policy, ods);

    std::printf("\nrollout: %s — %d/%d servers converted, canary "
                "%+.2f%%, fleet %+.2f%%, %d resume(s), finished after "
                "%.1f h\n",
                rollout.completed ? "completed"
                                  : (rollout.aborted ? "ABORTED"
                                                     : "incomplete"),
                rollout.serversConverted, serverCount,
                rollout.canaryGainPercent, rollout.fleetGainPercent,
                rollout.resumes, rollout.finishedAtSec / 3600.0);
    if (tool.faults.any())
        std::printf("rollout faults: %d crashes, %d apply failures, "
                    "%d stuck reboots, %d excluded, %d waves rolled "
                    "back\n",
                    rollout.serverCrashes, rollout.applyFailures,
                    rollout.stuckReboots, rollout.serversExcluded,
                    rollout.wavesRolledBack);
    if (!topology.trivial())
        std::printf("blast radius: %d racks x %d regions, %d rack "
                    "event(s), %d rack(s) excluded, %d surge "
                    "pause(s), max wave-in-one-rack share %.0f%%, "
                    "verdict %s\n",
                    topology.racks, topology.regions,
                    rollout.rackEvents, rollout.domainsExcluded,
                    rollout.surgePauses,
                    rollout.maxWaveDomainShare * 100.0,
                    rollout.completed
                        ? "healthy"
                        : (rollout.configBlamed ? "config blamed"
                                                : "domain fault"));

    auto mips = ods.aggregate(fleetSeriesName(service.name, "mips"), 0,
                              1e18);
    std::printf("fleet telemetry: %llu samples, mean %.0f MIPS, "
                "p95 %.0f, p99 %.0f MIPS\n",
                static_cast<unsigned long long>(mips.count), mips.mean,
                mips.p95, mips.p99);

    FleetHealthView health(ods);
    FleetHealthReport healthReport =
        health.report(service.name, 0.0, rollout.finishedAtSec);
    if (args.has("health-report"))
        std::printf("\n%s", healthReport.renderText().c_str());

    if (!tool.emitDir.empty()) {
        Json doc = Json::object();
        doc.set("schema_version", Json(kReportSchemaVersion));
        doc.set("service", Json(service.name));
        doc.set("platform", Json(platform.name));
        doc.set("report", report.toJson());
        doc.set("rollout", rollout.toJson());
        doc.set("health", healthReport.toJson());
        emitTargetReport(tool.emitDir, service.name, platform.name, doc);
    }

    ods.publishGauges();
    if (tool.metrics) {
        MetricsSnapshot snap = usku.fullMetrics();
        snap.append(MetricsRegistry::global().snapshot());
        std::printf("\n%s\n", snap.renderTable().c_str());
    }
    tool.writeTrace();
    return 0;
}
