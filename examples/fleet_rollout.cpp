/**
 * @file
 * Fleet rollout: take the soft SKU μSKU found for a service and deploy
 * it across a fleet slice the way an operator would — canary, soak,
 * staged waves, reboot downtime for boot-time knobs — with fleet
 * telemetry landing in the ODS store throughout.  Also demonstrates
 * the fungibility story: the same servers are then redeployed to a
 * different microservice's soft SKU.
 *
 * Usage: fleet_rollout [--service=web] [--platform=skylake18]
 *                      [--servers=16] [--seed=1] [--report=path.md]
 *                      [--faults=off|mild|moderate|severe|k=v,..]
 *                      [--fault-seed=N] [--trace-out=FILE] [--metrics]
 *                      [--log-level=silent|error|warn|info|debug]
 *
 * --trace-out records the whole pipeline — sweep comparisons,
 * validation chunks, then the rollout's soak/canary/wave/health-check/
 * rollback phases — as Chrome trace_event JSON for chrome://tracing
 * or Perfetto.
 *
 * --faults runs the whole pipeline — sweep and rollout — in hostile
 * production mode: crashes, telemetry dropout, surges, apply failures
 * and stuck reboots, all seeded and replayable.  The rollout falls
 * back on its health checks: canary judged from paired telemetry,
 * per-wave load-normalized health gates, automatic rollback.
 */

#include <cstdio>

#include "core/report_writer.hh"
#include "core/usku.hh"
#include "obs/trace.hh"
#include "services/services.hh"
#include "sim/fleet.hh"
#include "telemetry/tmam_report.hh"
#include "util/cli.hh"
#include "util/strings.hh"

using namespace softsku;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    setLogLevel(args.getLogLevel(LogLevel::Info));
    const std::string traceOut = args.get("trace-out");
    if (!traceOut.empty())
        Tracer::global().enable();
    const WorkloadProfile &service =
        serviceByName(args.get("service", "web"));
    const PlatformSpec &platform =
        platformByName(args.get("platform", service.defaultPlatform));
    int serverCount = static_cast<int>(args.getInt("servers", 16));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    SimOptions simOpts;
    simOpts.warmupInstructions = 600'000;
    simOpts.measureInstructions = 800'000;
    ProductionEnvironment env(service, platform, seed, simOpts);

    UskuOptions options;
    FaultPlan plan;
    if (args.has("faults"))
        plan = FaultPlan::fromSpec(args.get("faults", "off"));
    if (plan.any()) {
        auto faultSeed = static_cast<std::uint64_t>(
            args.getInt("fault-seed", 1));
        env.setFaults(plan, faultSeed);
        options.robustness = RobustnessPolicy::hostile();
        std::printf("hostile production mode: %s (fault seed %llu)\n\n",
                    plan.describe().c_str(),
                    static_cast<unsigned long long>(faultSeed));
    }

    // Step 1: what does the bottleneck picture look like?
    KnobConfig production = productionConfig(platform, service);
    const CounterSet &counters = env.counters(production);
    std::printf("%s\n%s\n\n",
                renderTmamReport(counters, service.displayName).c_str(),
                suggestKnobs(counters,
                             platform.peakMemBandwidthGBs).c_str());

    // Step 2: let μSKU find the soft SKU.
    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.seed = seed;
    spec.normalize();
    Usku tool(env, options);
    UskuReport report = tool.run(spec);
    std::printf("%s\n", report.summary().c_str());
    if (args.has("report"))
        writeMarkdownReport(report, args.get("report"));

    // Step 3: staged rollout across the fleet slice.
    FleetSlice fleet(env, serverCount, production);
    OdsStore ods;
    RolloutPolicy policy;
    RolloutResult rollout =
        fleet.rollout(report.softSku, policy, ods);

    std::printf("\nrollout: %s — %d/%d servers converted, canary "
                "%+.2f%%, fleet %+.2f%%, finished after %.1f h\n",
                rollout.completed ? "completed"
                                  : (rollout.aborted ? "ABORTED"
                                                     : "incomplete"),
                rollout.serversConverted, serverCount,
                rollout.canaryGainPercent, rollout.fleetGainPercent,
                rollout.finishedAtSec / 3600.0);
    if (plan.any())
        std::printf("rollout faults: %d crashes, %d apply failures, "
                    "%d stuck reboots, %d excluded, %d waves rolled "
                    "back\n",
                    rollout.serverCrashes, rollout.applyFailures,
                    rollout.stuckReboots, rollout.serversExcluded,
                    rollout.wavesRolledBack);

    auto mips = ods.aggregate("fleet." + service.name + ".mips", 0, 1e18);
    std::printf("fleet telemetry: %llu samples, mean %.0f MIPS, "
                "p99 %.0f MIPS\n",
                static_cast<unsigned long long>(mips.count), mips.mean,
                mips.p99);

    if (args.has("metrics")) {
        MetricsSnapshot snap = tool.fullMetrics();
        snap.append(MetricsRegistry::global().snapshot());
        std::printf("\n%s\n", snap.renderTable().c_str());
    }
    if (!traceOut.empty()) {
        if (Tracer::global().writeChromeTrace(traceOut))
            inform("trace written to %s (%zu spans)", traceOut.c_str(),
                   Tracer::global().spanCount());
        else
            warn("could not write trace to %s", traceOut.c_str());
    }
    return 0;
}
