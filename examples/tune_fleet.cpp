/**
 * @file
 * Fleet-wide tuning: one μSKU run per service×platform target, all
 * sharing a single work-stealing pool (core/orchestrator.hh).
 *
 * Usage:
 *   tune_fleet [--targets=web:skylake18,ads1:skylake18,web:broadwell16]
 *              [--sweep=independent|exhaustive|hillclimb] [--seed=1]
 *              [--jobs=N|auto] [--faults=off|mild|moderate|severe|k=v,..]
 *              [--fault-seed=N] [--cache-dir=DIR] [--trace-out=FILE]
 *              [--rollout=SERVERS] [--domains=RACKS[xREGIONS]]
 *              [--naive-waves] [--emit=DIR] [--metrics] [--progress]
 *              [--json] [--verify]
 *              [--log-level=silent|error|warn|info|debug]
 *
 * Each target's report is byte-identical to tuning that target alone,
 * at any --jobs value; --verify re-runs the fleet sequentially and
 * asserts exactly that, printing the shared-pool speedup.
 *
 * --cache-dir persists every measured A/B comparison; a repeat
 * invocation replays them (cache hits == comparisons) and emits the
 * same reports without touching the simulator.
 *
 * --rollout deploys every target's winning soft SKU across a
 * SERVERS-wide fleet slice after tuning, sequentially in target
 * order.  --domains gives those slices a failure-domain topology and
 * arms the blast-radius-aware rollout posture (stratified waves,
 * per-rack control quorum, domain-triaged verdicts); --naive-waves
 * keeps the id-ordered planner for comparison.  Tool metrics and
 * fleet telemetry land in one shared ODS store.
 *
 * --emit=DIR writes one dashboard JSON per target into DIR as
 * <service>.<platform>.v<schema>.json: {schema_version, target,
 * report, rollout?, health?} — the rollout and health sections appear
 * when --rollout ran.  File names are schema-versioned so dashboards
 * poll stable paths.
 */

#include <cstdio>

#include "core/orchestrator.hh"
#include "core/report_writer.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace softsku;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ToolOptions tool = ToolOptions::fromArgs(args);
    tool.apply();

    // Modest simulation windows keep a three-target fleet interactive.
    SimOptions simOpts;
    simOpts.warmupInstructions = 600'000;
    simOpts.measureInstructions = 800'000;
    if (tool.simCore == "scalar")
        simOpts.core = SimCoreKind::Scalar;

    std::vector<TuneTarget> targets = TuneTarget::parseList(
        args.get("targets", "web:skylake18,ads1:skylake18,"
                            "web:broadwell16"),
        simOpts);
    SweepMode sweep = sweepModeFromString(args.get("sweep", "independent"));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    for (TuneTarget &target : targets) {
        target.spec.sweep = sweep;
        target.spec.seed = seed;
    }

    FleetOrchestrator orchestrator(
        FleetOrchestratorOptions::fromTool(tool));
    FleetTuneResult fleet = orchestrator.tuneAll(targets);

    if (args.has("verify")) {
        // Re-tune sequentially (no pool, no driver threads) and demand
        // byte-identical reports — the determinism contract the
        // orchestrator is built on.
        FleetOrchestratorOptions serialOptions =
            FleetOrchestratorOptions::fromTool(tool);
        serialOptions.jobs = 1;
        serialOptions.cacheDir.clear();  // measure, don't replay
        FleetTuneResult serial =
            FleetOrchestrator(serialOptions).tuneAll(targets);
        for (size_t i = 0; i < targets.size(); ++i) {
            std::string pooled = fleet.reports[i].toJson().dump(2);
            std::string alone = serial.reports[i].toJson().dump(2);
            if (pooled != alone) {
                fatal("verify FAILED: %s report differs between "
                      "shared-pool and sequential runs",
                      targets[i].name().c_str());
            }
        }
        std::printf("verify OK: %zu reports byte-identical "
                    "(shared pool %.1fs vs sequential %.1fs, %.2fx)\n",
                    targets.size(), fleet.wallSec, serial.wallSec,
                    fleet.wallSec > 0.0 ? serial.wallSec / fleet.wallSec
                                        : 0.0);
    }

    // Optional phase 2: deploy every winner across a fleet slice.
    std::vector<FleetRolloutOutcome> rollouts;
    bool doRollout = args.has("rollout");
    if (doRollout) {
        FleetRolloutPlan plan;
        plan.servers = static_cast<int>(args.getInt("rollout", 32));
        plan.topology = FleetTopology::fromSpec(tool.domains);
        if (!plan.topology.trivial() && !args.has("naive-waves"))
            plan.policy = RolloutPolicy::blastRadiusAware();
        OdsStore ods;
        rollouts =
            orchestrator.rolloutAll(targets, fleet, plan, ods);
    }

    tool.writeTrace();

    if (!tool.emitDir.empty()) {
        for (size_t i = 0; i < targets.size(); ++i) {
            Json doc = Json::object();
            doc.set("schema_version", Json(kReportSchemaVersion));
            doc.set("target", Json(targets[i].name()));
            doc.set("report", fleet.reports[i].toJson());
            if (doRollout) {
                doc.set("rollout", rollouts[i].rollout.toJson());
                doc.set("health", rollouts[i].health);
            }
            emitTargetReport(tool.emitDir,
                             targets[i].spec.microservice,
                             targets[i].spec.platform, doc);
        }
    }

    if (args.has("json")) {
        Json doc = Json::array();
        for (size_t i = 0; i < fleet.reports.size(); ++i) {
            Json entry = fleet.reports[i].toJson();
            if (doRollout)
                entry.set("rollout", rollouts[i].rollout.toJson());
            doc.push(std::move(entry));
        }
        std::printf("%s\n", doc.dump(2).c_str());
        return 0;
    }

    TextTable table;
    table.header({"target", "gain% vs prod", "validated", "A/B tests",
                  "cache hits", "hours"});
    for (size_t i = 0; i < targets.size(); ++i) {
        const UskuReport &report = fleet.reports[i];
        table.row({targets[i].name(),
                   format("%+.2f", report.gainOverProductionPercent()),
                   report.validation.stable ? "stable" : "unstable",
                   format("%llu", static_cast<unsigned long long>(
                                      report.abComparisons)),
                   format("%llu", static_cast<unsigned long long>(
                                      report.cacheHits)),
                   format("%.1f", report.measurementHours)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("fleet: %llu A/B tests (%llu cache-served) across %zu "
                "targets in %.1fs wall\n",
                static_cast<unsigned long long>(fleet.totalComparisons()),
                static_cast<unsigned long long>(fleet.totalCacheHits()),
                targets.size(), fleet.wallSec);

    if (doRollout) {
        TextTable deploys;
        deploys.header({"target", "rollout", "converted", "fleet gain%",
                        "resumes", "racks out", "verdict"});
        for (const FleetRolloutOutcome &outcome : rollouts) {
            const RolloutResult &r = outcome.rollout;
            deploys.row(
                {outcome.target,
                 r.completed ? "completed"
                             : (r.aborted ? "aborted" : "incomplete"),
                 format("%d", r.serversConverted),
                 format("%+.2f", r.fleetGainPercent),
                 format("%d", r.resumes),
                 format("%d", r.domainsExcluded),
                 r.completed ? "healthy"
                             : (r.configBlamed ? "config blamed"
                                               : "domain fault")});
        }
        std::printf("%s\n", deploys.render().c_str());
    }
    return 0;
}
