/**
 * @file
 * Quickstart: characterize one microservice on one platform.
 *
 * Usage:
 *   quickstart [--service=web] [--platform=skylake18] [--seed=1]
 *              [--insns=1500000]
 *
 * Runs the trace-driven simulator for the chosen service under its
 * stock knob configuration and prints the counter set the paper's
 * characterization section is built from: IPC, top-down breakdown,
 * MPKI at every cache level, TLB misses, and the memory operating
 * point.
 */

#include <cstdio>

#include "core/knobs.hh"
#include "services/services.hh"
#include "sim/service_sim.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace softsku;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const WorkloadProfile &service =
        serviceByName(args.get("service", "web"));
    const PlatformSpec &platform =
        platformByName(args.get("platform", service.defaultPlatform));

    SimOptions options;
    options.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    options.measureInstructions =
        static_cast<std::uint64_t>(args.getInt("insns", 1'500'000));

    KnobConfig knobs = stockConfig(platform, service);
    std::printf("SoftSKU quickstart: %s on %s\n", service.displayName.c_str(),
                platform.name.c_str());
    std::printf("knobs: %s\n\n", knobs.describe().c_str());

    CounterSet counters = simulateService(service, platform, knobs, options);

    TextTable table;
    table.header({"metric", "value"});
    table.row({"instructions", format("%llu",
        static_cast<unsigned long long>(counters.instructions))});
    table.row({"IPC (per core)", format("%.2f", counters.coreIpc)});
    table.row({"MIPS per core", format("%.0f", counters.mipsPerCore)});
    table.row({"platform MIPS", format("%.0f", counters.platformMips)});
    table.separator();
    table.row({"retiring slots", format("%.1f%%",
        counters.topdown.retiring * 100)});
    table.row({"front-end slots", format("%.1f%%",
        counters.topdown.frontEnd * 100)});
    table.row({"bad speculation", format("%.1f%%",
        counters.topdown.badSpeculation * 100)});
    table.row({"back-end slots", format("%.1f%%",
        counters.topdown.backEnd * 100)});
    table.separator();
    table.row({"L1-I code MPKI", format("%.1f",
        counters.mpkiOf(counters.l1i, AccessType::Code))});
    table.row({"L1-D data MPKI", format("%.1f",
        counters.mpkiOf(counters.l1d, AccessType::Data))});
    table.row({"L2 code MPKI", format("%.1f",
        counters.mpkiOf(counters.l2, AccessType::Code))});
    table.row({"L2 data MPKI", format("%.1f",
        counters.mpkiOf(counters.l2, AccessType::Data))});
    table.row({"LLC code MPKI", format("%.2f",
        counters.mpkiOf(counters.llc, AccessType::Code))});
    table.row({"LLC data MPKI", format("%.2f",
        counters.mpkiOf(counters.llc, AccessType::Data))});
    table.separator();
    table.row({"ITLB MPKI", format("%.2f", counters.itlbMpki())});
    table.row({"DTLB MPKI", format("%.2f", counters.dtlbMpki())});
    table.row({"branch mispredict MPKI", format("%.2f",
        counters.branchMpki())});
    table.separator();
    table.row({"memory bandwidth", format("%.1f GB/s",
        counters.memBandwidthGBs)});
    table.row({"memory latency", format("%.0f ns", counters.memLatencyNs)});
    table.row({"context switch share", format("%.1f%%",
        counters.cswPenaltyFraction * 100)});

    std::printf("%s\n", table.render().c_str());
    return 0;
}
