/**
 * @file
 * End-to-end μSKU run: tune a microservice's soft SKU via A/B testing
 * in the simulated production environment, then print the design-space
 * map, the composed soft SKU, and its validated gains.
 *
 * Usage:
 *   tune_web [--service=web] [--platform=skylake18]
 *            [--sweep=independent|exhaustive|hillclimb]
 *            [--knobs=cdp,thp,shp] [--list-knobs] [--seed=1] [--json]
 *            [--jobs=N|auto] [--faults=off|mild|moderate|severe|k=v,..]
 *            [--fault-seed=N] [--cache-dir=DIR] [--trace-out=FILE]
 *            [--metrics] [--progress]
 *            [--log-level=silent|error|warn|info|debug]
 *
 * --knobs restricts the sweep to the named registry keys (the shared
 * ToolOptions flag); --list-knobs prints the knob registry — key,
 * name, reboot requirement, platform availability — and exits.
 *
 * --jobs parallelizes the A/B sweep across N worker threads; the
 * report is bit-identical for every N (deterministic replay).
 *
 * --cache-dir persists every measured A/B comparison to disk; a repeat
 * run with the same service/platform/seed/fault plan replays them all
 * (the report counts them as cache hits) and emits a byte-identical
 * report without re-simulating.
 *
 * --trace-out writes a Chrome trace_event JSON of every sweep
 * comparison, retry, cache hit, and validation chunk — load it in
 * chrome://tracing or Perfetto.  --metrics prints the flight-recorder
 * registry (deterministic + operational rows); --progress renders a
 * live done/total + ETA line on stderr while the sweep runs.
 *
 * --faults arms hostile-production mode: seeded server crashes, EMON
 * dropout/corruption, load surges, apply failures, and stuck reboots
 * perturb the sweep, and the tool's fault defenses (retries, robust
 * filtering, the QoS guardrail) switch on.  Same seed + plan replay
 * byte-identically at any --jobs value.
 */

#include <cstdio>

#include "core/knob_registry.hh"
#include "core/usku.hh"
#include "services/services.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace softsku;

namespace {

/** --list-knobs: the registry as a table, one row per descriptor. */
void
printKnobRegistry()
{
    TextTable table;
    table.header({"key", "name", "reboot", "availability"});
    for (const KnobDescriptor &d : knobRegistry()) {
        std::string availability = "all platforms";
        if (d.availableOn) {
            std::vector<std::string> names;
            for (const PlatformSpec *platform : allPlatforms()) {
                if (d.availableOn(*platform))
                    names.push_back(platform->name);
            }
            availability = names.empty() ? "none" : join(names, ", ");
        }
        table.row({d.key, d.displayName, d.requiresReboot ? "yes" : "no",
                   availability});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("list-knobs")) {
        printKnobRegistry();
        return 0;
    }
    ToolOptions tool = ToolOptions::fromArgs(args);
    tool.apply();

    InputSpec spec;
    spec.microservice = args.get("service", "web");
    spec.platform = args.get("platform", "skylake18");
    spec.sweep = sweepModeFromString(args.get("sweep", "independent"));
    spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    spec.applySearchOverrides(tool);
    spec.normalize();

    const WorkloadProfile &service = serviceByName(spec.microservice);
    const PlatformSpec &platform = platformByName(spec.platform);

    // Modest simulation windows keep a full sweep interactive.
    SimOptions simOpts;
    simOpts.warmupInstructions = 700'000;
    simOpts.measureInstructions = 900'000;
    if (tool.simCore == "scalar")
        simOpts.core = SimCoreKind::Scalar;
    ProductionEnvironment env(service, platform, spec.seed, simOpts);

    // Fault arming, robustness escalation, shared pool sizing, and the
    // persistent cache all ride in through UskuOptions now.
    Usku usku(env, UskuOptions::fromTool(tool));
    UskuReport report = usku.run(spec);

    tool.writeTrace();

    if (args.has("json")) {
        std::printf("%s\n", report.toJson().dump(2).c_str());
        if (tool.metrics)
            std::fprintf(stderr, "%s\n",
                         usku.fullMetrics().renderTable().c_str());
        return 0;
    }

    std::printf("%s\n", report.summary().c_str());

    if (tool.metrics)
        std::printf("%s\n", usku.fullMetrics().renderTable().c_str());

    TextTable table;
    table.header({"knob", "setting", "gain%", "ci%", "signif", "samples"});
    for (const KnobSweep &sweep : report.map.sweeps) {
        for (const KnobOutcome &outcome : sweep.outcomes) {
            table.row({knobKey(sweep.id),
                       outcome.value.label,
                       outcome.isBaseline
                           ? "base"
                           : format("%+.2f", outcome.gainPercent),
                       format("%.2f", outcome.gainCiPercent),
                       outcome.significant ? "yes" : "no",
                       format("%llu", static_cast<unsigned long long>(
                                          outcome.samples))});
        }
        table.separator();
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
