/**
 * @file
 * Defining and tuning a *new* microservice with the public API.
 *
 * The paper argues μSKU's value is highest for services that have no
 * dedicated performance-tuning engineers (Sec. 6.2).  This example
 * plays such a team: it defines a custom "thumbnailer" microservice
 * profile from scratch (image re-encoding: dense compute over
 * streaming buffers plus a metadata cache), characterizes it on both
 * Skylake platforms, and lets μSKU find its soft SKU.
 *
 * Usage: custom_service [--platform=skylake18] [--seed=1]
 */

#include <cstdio>

#include "core/usku.hh"
#include "services/services.hh"
#include "sim/qos.hh"
#include "sim/service_sim.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace softsku;

namespace {

/** A hypothetical image-thumbnailing microservice. */
WorkloadProfile
makeThumbnailer()
{
    WorkloadProfile p;
    p.name = "thumbnailer";
    p.displayName = "Thumbnailer";
    p.domain = "media";
    p.defaultPlatform = "skylake18";

    // Dense pixel math with a modest control plane.
    p.mix = {.branch = 0.10,
             .floating = 0.28,
             .arith = 0.25,
             .load = 0.26,
             .store = 0.11};

    p.request.peakQps = 800.0;
    p.request.requestLatencySec = 2e-2;
    p.request.pathLengthInsns = 4e7;
    p.request.runningFraction = 0.85;
    p.request.blockingPhases = 1;      // fetch source image
    p.request.workersPerCore = 2.0;
    p.request.sloLatencyMultiplier = 4.0;

    p.codeFootprintBytes = 10ull << 20;
    p.codeZipfSkew = 1.4;
    p.avgFunctionBytes = 512;
    p.avgBasicBlockBytes = 44;
    p.callFraction = 0.16;
    p.branchMispredictRate = 0.007;

    p.dataRegions = {
        {.name = "pixel_buffers",
         .sizeBytes = 512ull << 20,
         .pattern = DataPattern::Sequential,
         .strideBytes = 64,
         .weight = 0.55,
         .zipfSkew = 0.0,
         .madviseHuge = true,
         .thpFriendliness = 0.9},
        {.name = "metadata_cache",
         .sizeBytes = 256ull << 20,
         .pattern = DataPattern::Random,
         .strideBytes = 64,
         .weight = 0.30,
         .zipfSkew = 0.9,
         .hotBytes = 24ull << 20,
         .coldFraction = 0.04,
         .madviseHuge = false,
         .thpFriendliness = 0.6},
        {.name = "encode_scratch",
         .sizeBytes = 64ull << 20,
         .pattern = DataPattern::Strided,
         .strideBytes = 128,
         .weight = 0.15,
         .zipfSkew = 0.0,
         .madviseHuge = false,
         .thpFriendliness = 0.8},
    };

    p.contextSwitch.switchesPerSecond = 4000.0;
    p.kernelTimeShare = 0.04;
    p.switchDisturbance = 0.12;

    p.baseCpi = 0.42;
    p.smtThroughputScale = 1.22;
    p.cpuUtilizationCap = 0.80;
    p.dataMlp = 6.0;
    p.dataMidReuseFraction = 0.45;
    p.sharedDataFraction = 0.35;
    p.writebackFraction = 0.35;

    p.usesAvx = true;                  // SIMD pixel kernels
    p.usesShp = false;                 // no hugetlbfs use
    p.toleratesReboot = true;
    p.mipsValidMetric = true;
    p.validate();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    WorkloadProfile service = makeThumbnailer();
    const PlatformSpec &platform =
        platformByName(args.get("platform", service.defaultPlatform));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    std::printf("Custom microservice: %s on %s\n\n",
                service.displayName.c_str(), platform.name.c_str());

    // Step 1: characterize under the production defaults.
    KnobConfig production = productionConfig(platform, service);
    CounterSet counters =
        simulateService(service, platform, production, SimOptions{});
    ServiceOperatingPoint op =
        solveOperatingPoint(service, platform, counters, seed);

    TextTable table;
    table.header({"metric", "value"});
    table.row({"IPC (per core)", format("%.2f", counters.coreIpc)});
    table.row({"front-end slots",
               format("%.0f%%", counters.topdown.frontEnd * 100)});
    table.row({"back-end slots",
               format("%.0f%%", counters.topdown.backEnd * 100)});
    table.row({"L1-I MPKI",
               format("%.1f", counters.mpkiOf(counters.l1i,
                                              AccessType::Code))});
    table.row({"LLC data MPKI",
               format("%.2f", counters.mpkiOf(counters.llc,
                                              AccessType::Data))});
    table.row({"memory bandwidth",
               format("%.0f GB/s", counters.memBandwidthGBs)});
    table.row({"peak QPS under SLO", format("%.0f", op.peakQps)});
    table.row({"p99 latency at peak",
               format("%.1f ms", op.p99LatencySec * 1e3)});
    table.row({"CPU utilization", format("%.0f%%",
               op.cpuUtilization * 100)});
    std::printf("%s\n", table.render().c_str());

    // Step 2: hand the service to μSKU.
    InputSpec spec;
    spec.microservice = service.name;
    spec.platform = platform.name;
    spec.seed = seed;
    spec.normalize();

    SimOptions simOpts;
    simOpts.warmupInstructions = 600'000;
    simOpts.measureInstructions = 800'000;
    ProductionEnvironment env(service, platform, seed, simOpts);
    Usku tool(env);
    UskuReport report = tool.run(spec);
    std::printf("%s\n", report.summary().c_str());
    return 0;
}
