/** @file Integration tests for the trace-driven service simulator. */

#include <gtest/gtest.h>

#include "sim/btb.hh"
#include "services/services.hh"
#include "sim/service_sim.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 250'000;
    opts.measureInstructions = 350'000;
    return opts;
}

TEST(Btb, HitAfterInstallAndLru)
{
    Btb btb(16, 4);
    EXPECT_FALSE(btb.access(0x100));
    EXPECT_TRUE(btb.access(0x100));
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.misses(), 1u);
    btb.flush();
    EXPECT_FALSE(btb.access(0x100));
}

TEST(ServiceSim, DeterministicUnderSeed)
{
    SimOptions opts = fastOptions();
    CounterSet a = simulateService(feed1Profile(), skylake18(),
                                   KnobConfig{}, opts);
    CounterSet b = simulateService(feed1Profile(), skylake18(),
                                   KnobConfig{}, opts);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1i.misses[0], b.l1i.misses[0]);
    EXPECT_EQ(a.llc.misses[1], b.llc.misses[1]);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.platformMips, b.platformMips);
}

TEST(ServiceSim, DifferentSeedsYieldSimilarButNotIdentical)
{
    SimOptions a = fastOptions();
    SimOptions b = fastOptions();
    b.seed = 2;
    CounterSet ca = simulateService(webProfile(), skylake18(),
                                    KnobConfig{}, a);
    CounterSet cb = simulateService(webProfile(), skylake18(),
                                    KnobConfig{}, b);
    EXPECT_NE(ca.l1d.misses[1], cb.l1d.misses[1]);
    EXPECT_NEAR(ca.ipc, cb.ipc, ca.ipc * 0.12);
}

TEST(ServiceSim, CountersInternallyConsistent)
{
    CounterSet c = simulateService(ads1Profile(), skylake18(),
                                   KnobConfig{}, fastOptions());
    EXPECT_EQ(c.instructions, 350'000u);
    // Class counts sum to instructions.
    std::uint64_t classes = 0;
    for (std::uint64_t count : c.classCounts)
        classes += count;
    EXPECT_EQ(classes, c.instructions);
    // Misses never exceed accesses; hierarchy misses only shrink.
    for (const CacheStats *s : {&c.l1i, &c.l1d, &c.l2, &c.llc}) {
        EXPECT_LE(s->misses[0], s->accesses[0]);
        EXPECT_LE(s->misses[1], s->accesses[1]);
    }
    EXPECT_LE(c.l2.misses[0], c.l1i.misses[0]);
    EXPECT_LE(c.llc.misses[0], c.l2.misses[0]);
    EXPECT_LE(c.mispredicts, c.branches);
    // Top-down sums to ~1 and IPC is positive and sane.
    EXPECT_NEAR(c.topdown.total(), 1.0, 1e-6);
    EXPECT_GT(c.ipc, 0.05);
    EXPECT_LT(c.ipc, 4.0);
    EXPECT_GT(c.platformMips, 0.0);
}

TEST(ServiceSim, InstructionMixTracksProfile)
{
    CounterSet c = simulateService(feed1Profile(), skylake18(),
                                   KnobConfig{}, fastOptions());
    EXPECT_NEAR(c.classFraction(1), feed1Profile().mix.floating, 0.02);
    EXPECT_NEAR(c.classFraction(0), feed1Profile().mix.branch, 0.02);
}

TEST(ServiceSim, CoreFrequencyRaisesThroughputSublinearly)
{
    SimOptions opts = fastOptions();
    KnobConfig slow;
    slow.coreFreqGHz = 1.6;
    KnobConfig fast;
    fast.coreFreqGHz = 2.2;
    double mipsSlow = simulateService(webProfile(), skylake18(), slow,
                                      opts).platformMips;
    double mipsFast = simulateService(webProfile(), skylake18(), fast,
                                      opts).platformMips;
    EXPECT_GT(mipsFast, mipsSlow);
    // Sub-linear: memory stalls don't scale with core frequency.
    EXPECT_LT(mipsFast / mipsSlow, 2.2 / 1.6);
}

TEST(ServiceSim, CatWaysReduceCapacity)
{
    SimOptions opts = fastOptions();
    SimOptions catOpts = opts;
    catOpts.catWays = 2;
    CounterSet full = simulateService(webProfile(), skylake18(),
                                      KnobConfig{}, opts);
    CounterSet small = simulateService(webProfile(), skylake18(),
                                       KnobConfig{}, catOpts);
    EXPECT_GT(small.llc.totalMisses(), full.llc.totalMisses());
}

TEST(ServiceSim, ThpNeverRaisesTlbMisses)
{
    SimOptions opts = fastOptions();
    KnobConfig never;
    never.thp = ThpMode::Never;
    never.shpCount = 0;
    KnobConfig always;
    always.thp = ThpMode::Always;
    always.shpCount = 0;
    CounterSet cNever = simulateService(webProfile(), skylake18(), never,
                                        opts);
    CounterSet cAlways = simulateService(webProfile(), skylake18(),
                                         always, opts);
    EXPECT_GT(cNever.dtlbWalks, cAlways.dtlbWalks);
    EXPECT_GE(cNever.itlbWalks, cAlways.itlbWalks);
}

TEST(ServiceSim, PrefetchersReduceDemandMissesButAddTraffic)
{
    SimOptions opts = fastOptions();
    KnobConfig off;
    off.prefetch = PrefetcherPreset::AllOff;
    KnobConfig on;
    on.prefetch = PrefetcherPreset::AllOn;
    CounterSet cOff = simulateService(feed1Profile(), skylake18(), off,
                                      opts);
    CounterSet cOn = simulateService(feed1Profile(), skylake18(), on,
                                     opts);
    // Demand misses at L1D drop for the streaming-heavy Feed1...
    EXPECT_LT(cOn.l1d.misses[1], cOff.l1d.misses[1]);
    // ...while prefetch DRAM traffic appears.
    EXPECT_EQ(cOff.dramPrefetchFills, 0u);
    EXPECT_GT(cOn.dramPrefetchFills, 0u);
}

TEST(ServiceSim, ContextSwitchesHappenAtProfileRate)
{
    CounterSet c = simulateService(cache1Profile(), skylake20(),
                                   KnobConfig{}, fastOptions());
    EXPECT_GT(c.contextSwitches, 5u);
    EXPECT_NEAR(c.cswPenaltyFraction,
                cache1Profile().contextSwitch.penaltyFractionMid(), 1e-9);
}

/** Property sweep: every service simulates sanely on every platform. */
class FleetSweep
    : public testing::TestWithParam<std::tuple<int, const char *>>
{
};

TEST_P(FleetSweep, SimulationIsSane)
{
    auto [serviceIdx, platformName] = GetParam();
    const WorkloadProfile &service = *allMicroservices()[serviceIdx];
    const PlatformSpec &platform = platformByName(platformName);
    KnobConfig knobs = productionConfig(platform, service);
    SimOptions opts;
    opts.warmupInstructions = 120'000;
    opts.measureInstructions = 150'000;
    CounterSet c = simulateService(service, platform, knobs, opts);
    EXPECT_GT(c.ipc, 0.02);
    EXPECT_LT(c.ipc, 4.0);
    EXPECT_GT(c.memBandwidthGBs, 0.0);
    EXPECT_LE(c.memBandwidthGBs, platform.peakMemBandwidthGBs);
    EXPECT_GE(c.memLatencyNs, 60.0);
    EXPECT_NEAR(c.topdown.total(), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllServicesAllPlatforms, FleetSweep,
    testing::Combine(testing::Range(0, 7),
                     testing::Values("skylake18", "skylake20",
                                     "broadwell16")));

} // namespace
} // namespace softsku
