/**
 * @file
 * Golden harness for the batched simulator core: the batched path must
 * reproduce the scalar path *bit for bit* at every layer —
 *
 *   - SimdXoshiroBank lane w replays Rng(seeds[w])'s raw stream;
 *   - BufferedRng's derived draws (uniform, Lemire below, Box-Muller
 *     gaussian with its cached spare) match Rng's exactly;
 *   - LaneStreamPool stays exact when lanes consume at different
 *     rates (the divergent slow path);
 *   - runSimBatch CounterSets equal simulateService's for every
 *     service × platform, any lane width, ragged final groups, mixed
 *     profiles/seeds/windows in one batch;
 *   - whole μSKU report JSON and summaries are byte-identical between
 *     SimCoreKind::Scalar and SimCoreKind::Batched, across --jobs and
 *     under fault injection.
 *
 * These tests are what lets SimCoreKind::Batched be the default.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "arch/platform.hh"
#include "core/usku.hh"
#include "services/services.hh"
#include "sim/batched_core.hh"
#include "sim/production_env.hh"
#include "sim/service_sim.hh"
#include "sim/sim_core.hh"
#include "stats/rng.hh"
#include "stats/simd_rng.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 60'000;
    opts.measureInstructions = 80'000;
    return opts;
}

TEST(SimBatch, BankLanesReplayScalarRngStreams)
{
    for (std::size_t laneCount : {1u, 4u, 5u, 8u, 16u}) {
        std::vector<std::uint64_t> seeds;
        for (std::size_t w = 0; w < laneCount; ++w)
            seeds.push_back(0xF00D ^ (w * 977 + 3));
        SimdXoshiroBank bank(seeds);
        constexpr std::size_t kDraws = 513;  // odd: exercises remainders
        std::vector<std::uint64_t> out(kDraws * laneCount);
        bank.fillInterleaved(out.data(), kDraws);
        for (std::size_t w = 0; w < laneCount; ++w) {
            Rng scalar(seeds[w]);
            for (std::size_t i = 0; i < kDraws; ++i)
                ASSERT_EQ(out[i * laneCount + w], scalar.next())
                    << "lane " << w << " draw " << i << " of "
                    << laneCount;
        }
    }
}

TEST(SimBatch, BankFillLaneMatchesScalarStream)
{
    std::vector<std::uint64_t> seeds = {11, 22, 33, 44};
    SimdXoshiroBank bank(seeds);
    std::vector<std::uint64_t> out(64 * seeds.size(), 0);
    bank.fillLane(2, out.data() + 2, seeds.size(), 64);
    Rng scalar(33);
    for (std::size_t i = 0; i < 64; ++i)
        ASSERT_EQ(out[i * seeds.size() + 2], scalar.next());
}

TEST(SimBatch, BufferedRngMatchesRngAcrossFullApi)
{
    std::vector<std::uint64_t> seeds = {5, 6, 7};
    LaneStreamPool pool(seeds);
    for (std::size_t w = 0; w < seeds.size(); ++w) {
        BufferedRng buffered(&pool, w);
        Rng scalar(seeds[w]);
        for (int round = 0; round < 2000; ++round) {
            ASSERT_EQ(buffered.next(), scalar.next());
            ASSERT_EQ(buffered.uniform(), scalar.uniform());
            ASSERT_EQ(buffered.below(97), scalar.below(97));
            ASSERT_EQ(buffered.range(-5, 40), scalar.range(-5, 40));
            // Box-Muller: both the fresh pair and the cached spare.
            ASSERT_EQ(buffered.gaussian(), scalar.gaussian());
            ASSERT_EQ(buffered.gaussian(3.0, 0.7),
                      scalar.gaussian(3.0, 0.7));
            ASSERT_EQ(buffered.exponential(2.5), scalar.exponential(2.5));
            ASSERT_EQ(buffered.chance(0.3), scalar.chance(0.3));
            ASSERT_EQ(buffered.logNormalMean(1.0, 0.01),
                      scalar.logNormalMean(1.0, 0.01));
            ASSERT_EQ(buffered.uniform(2.0, 9.0), scalar.uniform(2.0, 9.0));
        }
    }
}

TEST(SimBatch, PoolStaysExactWhenLaneConsumptionDiverges)
{
    // Lane 0 drinks 10x faster than lane 2: the pool's lockstep fast
    // path breaks and the starved lanes refill through the per-lane
    // scalar path.  Every lane must still replay its exact stream.
    std::vector<std::uint64_t> seeds = {101, 202, 303};
    LaneStreamPool pool(seeds, 256);
    std::vector<Rng> scalars;
    for (std::uint64_t s : seeds)
        scalars.emplace_back(s);
    std::vector<BufferedRng> lanes;
    for (std::size_t w = 0; w < seeds.size(); ++w)
        lanes.emplace_back(&pool, w);

    for (int round = 0; round < 400; ++round) {
        for (std::size_t w = 0; w < seeds.size(); ++w) {
            int draws = w == 0 ? 100 : 10;
            for (int d = 0; d < draws; ++d)
                ASSERT_EQ(lanes[w].next(), scalars[w].next())
                    << "lane " << w << " round " << round;
        }
    }
    EXPECT_GT(pool.scalarFills(), 0u);
}

TEST(SimBatch, LineRingOverwritesOldestAfterWrap)
{
    simcore::LineRing ring(3);
    EXPECT_TRUE(ring.empty());
    for (std::uint64_t line = 1; line <= 7; ++line)
        ring.push(line);
    // Capacity 3 after 7 pushes: cursor wrapped (4→slot0, 5→slot1,
    // 6→slot2, 7→slot0 again), so the live set is {5, 6, 7}.
    std::set<std::uint64_t> seen;
    Rng rng(42);
    for (int i = 0; i < 200; ++i)
        seen.insert(ring.sample(rng));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7}));
}

TEST(SimBatch, BatchedMatchesScalarOnEveryServiceAndPlatform)
{
    SimOptions opts = fastOptions();
    for (const PlatformSpec *platform : allPlatforms()) {
        // One batch holding all seven services on this platform: mixed
        // profiles in one lane group exercises divergent-lane refills.
        std::vector<SimJob> jobs;
        for (const WorkloadProfile *service : allMicroservices())
            jobs.push_back(SimJob{service, platform, KnobConfig{}, opts});
        std::vector<CounterSet> batched = runSimBatch(jobs);
        ASSERT_EQ(batched.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            CounterSet scalar =
                simulateService(*jobs[i].profile, *jobs[i].platform,
                                jobs[i].knobs, jobs[i].options);
            EXPECT_TRUE(batched[i] == scalar)
                << jobs[i].profile->name << " on " << platform->name
                << ": batched CounterSet diverged from scalar";
        }
    }
}

TEST(SimBatch, LaneWidthNeverChangesResults)
{
    // Same-profile same-seed lanes with different knobs: the lockstep
    // fast path.  Five jobs at widths 1/4/8 cover ragged final groups
    // on every width.
    SimOptions opts = fastOptions();
    const WorkloadProfile &service = webProfile();
    const PlatformSpec &platform = skylake18();
    std::vector<KnobConfig> configs(5);
    configs[1].coreFreqGHz = 2.0;
    configs[2].thp = ThpMode::Never;
    configs[3].prefetch = PrefetcherPreset::AllOff;
    configs[4].activeCores = 12;

    std::vector<SimJob> jobs;
    for (const KnobConfig &config : configs)
        jobs.push_back(SimJob{&service, &platform, config, opts});

    std::vector<CounterSet> scalar;
    for (const SimJob &job : jobs)
        scalar.push_back(simulateService(*job.profile, *job.platform,
                                         job.knobs, job.options));
    for (std::size_t width : {1u, 4u, 8u}) {
        std::vector<CounterSet> batched = runSimBatch(jobs, width);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            EXPECT_TRUE(batched[i] == scalar[i])
                << "config " << i << " at lane width " << width;
    }
}

TEST(SimBatch, MixedSeedsWindowsAndCatWaysStayExact)
{
    const WorkloadProfile &service = cache1Profile();
    const PlatformSpec &platform = broadwell16();
    std::vector<SimJob> jobs;
    for (int i = 0; i < 3; ++i) {
        SimOptions opts = fastOptions();
        opts.seed = 1 + static_cast<std::uint64_t>(i);
        opts.warmupInstructions += static_cast<std::uint64_t>(i) * 7'000;
        opts.measureInstructions += static_cast<std::uint64_t>(i) * 11'000;
        if (i == 2)
            opts.catWays = 4;
        jobs.push_back(SimJob{&service, &platform, KnobConfig{}, opts});
    }
    std::vector<CounterSet> batched = runSimBatch(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        CounterSet scalar =
            simulateService(*jobs[i].profile, *jobs[i].platform,
                            jobs[i].knobs, jobs[i].options);
        EXPECT_TRUE(batched[i] == scalar) << "job " << i;
    }
}

TEST(SimBatch, CxlPlatformBatchesExactly)
{
    // The CXL platform exercises the far-tier resolve() inside the
    // vectorized roll-up; keep it pinned explicitly.
    SimOptions opts = fastOptions();
    KnobConfig tiered;
    tiered.farMemRatio = 0.25;
    tiered.tierPolicy = TierPolicy::Static;
    std::vector<SimJob> jobs = {
        SimJob{&webProfile(), &skylake18cxl(), KnobConfig{}, opts},
        SimJob{&webProfile(), &skylake18cxl(), tiered, opts},
    };
    std::vector<CounterSet> batched = runSimBatch(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        CounterSet scalar =
            simulateService(*jobs[i].profile, *jobs[i].platform,
                            jobs[i].knobs, jobs[i].options);
        EXPECT_TRUE(batched[i] == scalar) << "job " << i;
    }
}

TEST(SimBatch, PrepareConfigsFillsCacheBitIdentically)
{
    SimOptions opts = fastOptions();
    KnobConfig noThp;
    noThp.thp = ThpMode::Never;

    SimOptions scalarOpts = opts;
    scalarOpts.core = SimCoreKind::Scalar;
    ProductionEnvironment lazy(webProfile(), skylake18(), 1, scalarOpts);
    ProductionEnvironment batched(webProfile(), skylake18(), 1, opts);
    batched.prepareConfigs({KnobConfig{}, noThp, KnobConfig{}});
    EXPECT_EQ(batched.configsSimulated(), 2u);

    EXPECT_TRUE(batched.counters(KnobConfig{}) ==
                lazy.counters(KnobConfig{}));
    EXPECT_TRUE(batched.counters(noThp) == lazy.counters(noThp));
    EXPECT_EQ(batched.trueMips(noThp), lazy.trueMips(noThp));
}

/** One full μSKU run with the requested core and thread count. */
UskuReport
runTool(SimCoreKind core, unsigned jobs, const FaultPlan &plan)
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    opts.core = core;
    ProductionEnvironment env(webProfile(), skylake18(), 1, opts);
    if (plan.any())
        env.setFaults(plan, 9);

    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = SweepMode::Independent;
    spec.knobs = {KnobId::Thp, KnobId::Shp};
    spec.seed = 1;
    spec.validationDurationSec = 6 * 3600.0;
    spec.normalize();

    UskuOptions options;
    options.jobs = jobs;
    if (plan.any())
        options.robustness = RobustnessPolicy::hostile();
    Usku tool(env, options);
    return tool.run(spec);
}

TEST(SimBatch, ReportByteIdenticalScalarVsBatchedAcrossJobs)
{
    const UskuReport reference =
        runTool(SimCoreKind::Scalar, 1, FaultPlan{});
    const std::string refJson = reference.toJson().dump(2);
    const std::string refSummary = reference.summary();
    for (unsigned jobs : {1u, 2u, 8u}) {
        UskuReport report = runTool(SimCoreKind::Batched, jobs, FaultPlan{});
        EXPECT_EQ(report.toJson().dump(2), refJson) << "jobs " << jobs;
        EXPECT_EQ(report.summary(), refSummary) << "jobs " << jobs;
    }
}

TEST(SimBatch, ReportByteIdenticalUnderModerateFaults)
{
    FaultPlan plan = FaultPlan::fromSpec("moderate");
    const UskuReport reference = runTool(SimCoreKind::Scalar, 1, plan);
    const std::string refJson = reference.toJson().dump(2);
    for (unsigned jobs : {1u, 2u}) {
        UskuReport report = runTool(SimCoreKind::Batched, jobs, plan);
        EXPECT_EQ(report.toJson().dump(2), refJson) << "jobs " << jobs;
    }
}

} // namespace
} // namespace softsku
