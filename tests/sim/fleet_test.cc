/** @file Tests for the fleet deployment / staged rollout model. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/fleet.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

TEST(Fleet, RebootRules)
{
    KnobConfig a = productionConfig(skylake18(), webProfile());
    KnobConfig b = a;
    b.thp = ThpMode::Always;
    EXPECT_FALSE(reconfigurationNeedsReboot(a, b));   // runtime knob
    b.shpCount = 300;
    EXPECT_TRUE(reconfigurationNeedsReboot(a, b));    // boot parameter
    KnobConfig c = a;
    c.activeCores = 8;
    EXPECT_TRUE(reconfigurationNeedsReboot(a, c));    // isolcpus
}

TEST(Fleet, ReconfigureChargesDowntime)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice fleet(env, 4, production);
    EXPECT_EQ(fleet.onlineServers(0.0), 4);

    KnobConfig shpChange = production;
    shpChange.shpCount = 300;
    EXPECT_TRUE(fleet.reconfigure(0, shpChange, 100.0, 300.0));
    EXPECT_EQ(fleet.onlineServers(150.0), 3);   // rebooting
    EXPECT_EQ(fleet.onlineServers(500.0), 4);   // back

    KnobConfig thpChange = production;
    thpChange.thp = ThpMode::Always;
    EXPECT_FALSE(fleet.reconfigure(1, thpChange, 100.0, 300.0));
    EXPECT_EQ(fleet.servers()[1].config.thp, ThpMode::Always);
}

TEST(Fleet, FleetMipsScalesWithServers)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().diurnalAmplitude = 0.0;
    env.noise().measurementSigma = 1e-6;
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice small(env, 2, production);
    FleetSlice large(env, 8, production);
    EXPECT_NEAR(large.fleetMips(0.0) / small.fleetMips(0.0), 4.0, 0.05);
}

TEST(Fleet, RolloutCompletesAndLogsTelemetry)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig softSku = production;
    softSku.thp = ThpMode::Always;   // a genuine winner

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(softSku, policy, ods);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.serversConverted, 8);
    EXPECT_GT(result.fleetGainPercent, 0.5);
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config.thp, ThpMode::Always);
    EXPECT_TRUE(ods.has("fleet.web.mips"));
    EXPECT_TRUE(ods.has("fleet.web.online"));
    EXPECT_GT(ods.aggregate("fleet.web.mips", 0, 1e9).count, 5u);
}

TEST(Fleet, RolloutAbortsOnCanaryRegression)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig bad = production;
    bad.coreFreqGHz = 1.6;   // ~10% regression

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 600.0;

    RolloutResult result = fleet.rollout(bad, policy, ods);
    EXPECT_TRUE(result.aborted);
    EXPECT_FALSE(result.completed);
    EXPECT_LT(result.canaryGainPercent, -1.0);
    // Every server is back on the production configuration.
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config, production);
}

} // namespace
} // namespace softsku
