/** @file Tests for the fleet deployment / staged rollout model. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/fleet.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

TEST(Fleet, RebootRules)
{
    KnobConfig a = productionConfig(skylake18(), webProfile());
    KnobConfig b = a;
    b.thp = ThpMode::Always;
    EXPECT_FALSE(reconfigurationNeedsReboot(a, b));   // runtime knob
    b.shpCount = 300;
    EXPECT_TRUE(reconfigurationNeedsReboot(a, b));    // boot parameter
    KnobConfig c = a;
    c.activeCores = 8;
    EXPECT_TRUE(reconfigurationNeedsReboot(a, c));    // isolcpus
}

TEST(Fleet, ReconfigureChargesDowntime)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice fleet(env, 4, production);
    EXPECT_EQ(fleet.onlineServers(0.0), 4);

    KnobConfig shpChange = production;
    shpChange.shpCount = 300;
    EXPECT_TRUE(fleet.reconfigure(0, shpChange, 100.0, 300.0));
    EXPECT_EQ(fleet.onlineServers(150.0), 3);   // rebooting
    EXPECT_EQ(fleet.onlineServers(500.0), 4);   // back

    KnobConfig thpChange = production;
    thpChange.thp = ThpMode::Always;
    EXPECT_FALSE(fleet.reconfigure(1, thpChange, 100.0, 300.0));
    EXPECT_EQ(fleet.servers()[1].config.thp, ThpMode::Always);
}

TEST(Fleet, FleetMipsScalesWithServers)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().diurnalAmplitude = 0.0;
    env.noise().measurementSigma = 1e-6;
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice small(env, 2, production);
    FleetSlice large(env, 8, production);
    EXPECT_NEAR(large.fleetMips(0.0) / small.fleetMips(0.0), 4.0, 0.05);
}

TEST(Fleet, RolloutCompletesAndLogsTelemetry)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig softSku = production;
    softSku.thp = ThpMode::Always;   // a genuine winner

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(softSku, policy, ods);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.serversConverted, 8);
    EXPECT_GT(result.fleetGainPercent, 0.5);
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config.thp, ThpMode::Always);
    EXPECT_TRUE(ods.has("fleet.web.mips"));
    EXPECT_TRUE(ods.has("fleet.web.online"));
    EXPECT_GT(ods.aggregate("fleet.web.mips", 0, 1e9).count, 5u);
}

TEST(Fleet, RolloutAbortsOnCanaryRegression)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig bad = production;
    bad.coreFreqGHz = 1.6;   // ~10% regression

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 600.0;

    RolloutResult result = fleet.rollout(bad, policy, ods);
    EXPECT_TRUE(result.aborted);
    EXPECT_FALSE(result.completed);
    EXPECT_LT(result.canaryGainPercent, -1.0);
    EXPECT_GE(result.canarySamples, 2u);
    // Every server is back on the production configuration.
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config, production);
}

TEST(Fleet, CanaryIsJudgedOnTelemetryNotGroundTruth)
{
    // The target config is a genuine winner (truth says +3%), but the
    // canary *host* silently lost 15% of its performance.  A judgment
    // that consulted the truth cache would proceed; the telemetry-based
    // one must abort — the samples are all the operator really has.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;
    ASSERT_GT(env.trueMips(winner), env.trueMips(production));

    FleetSlice fleet(env, 8, production);
    fleet.degradeServer(0, 0.85);   // canary hardware fault
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 600.0;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.aborted);
    EXPECT_FALSE(result.completed);
    EXPECT_LT(result.canaryGainPercent, -1.0);
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config, production);
}

TEST(Fleet, WaveHealthCheckRollsBackConvertedWaves)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 600.0;
    policy.waveIntervalSec = 600.0;
    // Timeline: baseline [0,1800), canary converts at 1800, soak to
    // 2400, wave 1 converts at 2400.  Mid-wave, three servers tank.
    fleet.scheduleDegradation(4, 2500.0, 0.75);
    fleet.scheduleDegradation(5, 2500.0, 0.75);
    fleet.scheduleDegradation(6, 2500.0, 0.75);

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.aborted);
    EXPECT_TRUE(result.rolledBack);
    EXPECT_FALSE(result.completed);
    EXPECT_GE(result.wavesRolledBack, 1);
    // Every converted server — canary included — is back on the
    // production configuration.
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config, production);
}

TEST(Fleet, ResumeAfterWaveRollbackFinishesTheFleet)
{
    // Same degradation storm as WaveHealthCheckRollsBackConvertedWaves,
    // but the operator allows one resume.  Attempt 1 rolls back when
    // three servers tank mid-wave; the resume re-baselines on the
    // now-degraded fleet (the regression is the new normal), re-runs
    // the canary, and attempt 2 converts everyone.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 600.0;
    policy.waveIntervalSec = 600.0;
    policy.resumeAttempts = 1;
    fleet.scheduleDegradation(4, 2500.0, 0.75);
    fleet.scheduleDegradation(5, 2500.0, 0.75);
    fleet.scheduleDegradation(6, 2500.0, 0.75);

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_EQ(result.resumes, 1);
    EXPECT_GE(result.wavesRolledBack, 1);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.serversConverted, 8);
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config, winner);
}

TEST(Fleet, ResumeSurvivesModerateFaultsDeterministically)
{
    // The same storm with the moderate fault plan armed on top: the
    // resumed attempt must cope with crashes and exclusions too, and
    // the whole ordeal replays bit-for-bit from the seeds.
    auto run = [] {
        ProductionEnvironment env(webProfile(), skylake18(), 1,
                                  fastOptions());
        env.setFaults(FaultPlan::fromSpec("moderate"), 21);
        KnobConfig production =
            productionConfig(skylake18(), webProfile());
        KnobConfig winner = production;
        winner.thp = ThpMode::Always;

        FleetSlice fleet(env, 16, production);
        OdsStore ods;
        RolloutPolicy policy;
        policy.canarySoakSec = 1800.0;
        policy.waveIntervalSec = 600.0;
        policy.resumeAttempts = 2;
        fleet.scheduleDegradation(10, 4000.0, 0.70);
        fleet.scheduleDegradation(11, 4000.0, 0.70);
        fleet.scheduleDegradation(12, 4000.0, 0.70);
        fleet.scheduleDegradation(13, 4000.0, 0.70);
        return fleet.rollout(winner, policy, ods);
    };

    RolloutResult first = run();
    EXPECT_GE(first.resumes, 1);
    EXPECT_GE(first.wavesRolledBack, 1);
    EXPECT_TRUE(first.completed);
    EXPECT_FALSE(first.aborted);

    RolloutResult second = run();
    EXPECT_EQ(second.resumes, first.resumes);
    EXPECT_EQ(second.wavesRolledBack, first.wavesRolledBack);
    EXPECT_EQ(second.serversConverted, first.serversConverted);
    EXPECT_DOUBLE_EQ(second.finishedAtSec, first.finishedAtSec);
    EXPECT_DOUBLE_EQ(second.fleetGainPercent, first.fleetGainPercent);
}

TEST(Fleet, RolloutWavePacingConvertsInWaveSizedSteps)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().measurementSigma = 1e-6;
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.baselineSoakSec = 600.0;
    policy.canarySoakSec = 600.0;
    policy.waveIntervalSec = 600.0;
    policy.waveFraction = 0.25;   // 2 servers per wave

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.serversConverted, 8);
    // 1 canary + ceil(7/2) = 4 waves: baseline 600 + soak 600 +
    // 4 × 600 of wave windows.
    EXPECT_DOUBLE_EQ(result.finishedAtSec, 600.0 + 600.0 + 4 * 600.0);
    EXPECT_GT(result.fleetGainPercent, 0.5);
}

TEST(Fleet, StuckRebootExcludesServerAndAbortsUnjudgeableCanary)
{
    // Every reboot hangs for an hour, far past the operator's 30 min
    // timeout.  The canary conversion needs a reboot (SHP change), so
    // the canary never comes back: it must be pulled from rotation and
    // the rollout aborted for lack of canary telemetry.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.setFaults(FaultPlan::fromSpec("stuck=1.0"), 7);
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig rebootful = production;
    rebootful.shpCount = 300;

    FleetSlice fleet(env, 8, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 1200.0;
    policy.rebootTimeoutSec = 900.0;

    RolloutResult result = fleet.rollout(rebootful, policy, ods);
    EXPECT_TRUE(result.aborted);
    EXPECT_EQ(result.canarySamples, 0u);
    EXPECT_GE(result.stuckReboots, 1);
    EXPECT_GE(result.serversExcluded, 1);
    EXPECT_TRUE(fleet.servers()[0].excluded);
}

TEST(Fleet, HostileRolloutSurvivesModerateFaults)
{
    // Under the moderate plan a genuine winner still rolls out: the
    // health machinery absorbs crashes and replacement drift without
    // spurious aborts, and telemetry records what happened.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.setFaults(FaultPlan::fromSpec("moderate"), 21);
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 16, production);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.rolledBack);
    EXPECT_GT(result.fleetGainPercent, 0.5);
    // Converted count excludes any servers the faults knocked out.
    EXPECT_GE(result.serversConverted,
              16 - result.serversExcluded);
}

TEST(Fleet, DegradeServerShowsUpInFleetTelemetry)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().diurnalAmplitude = 0.0;
    env.noise().measurementSigma = 1e-6;
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice fleet(env, 4, production);
    double healthy = fleet.fleetMips(0.0);
    fleet.degradeServer(2, 0.5);
    double degraded = fleet.fleetMips(0.0);
    // One of four servers at half speed → 12.5% fleet loss.
    EXPECT_NEAR(degraded / healthy, 0.875, 0.01);
    // Ground truth is deliberately blind to hardware drift.
    EXPECT_DOUBLE_EQ(env.trueMips(production),
                     env.trueMips(fleet.servers()[2].config));
}

} // namespace
} // namespace softsku
