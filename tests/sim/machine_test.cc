/** @file Tests for knob actuation and machine assembly. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/machine.hh"

namespace softsku {
namespace {

KnobConfig
exampleKnobs()
{
    KnobConfig knobs;
    knobs.coreFreqGHz = 1.8;
    knobs.uncoreFreqGHz = 1.5;
    knobs.activeCores = 10;
    knobs.cdp = {true, 6, 5};
    knobs.prefetch = PrefetcherPreset::DcuOnly;
    knobs.thp = ThpMode::Never;
    knobs.shpCount = 400;
    return knobs;
}

TEST(Actuation, RoundTripsThroughMsrAndKernelFs)
{
    MsrFile msr;
    KernelFs fs;
    KnobConfig knobs = exampleKnobs();
    actuateKnobs(knobs, skylake18(), msr, fs);
    KnobConfig readBack = effectiveKnobs(msr, fs, skylake18());
    EXPECT_EQ(readBack, knobs);
}

TEST(Actuation, UnsetSurfacesResolveToDefaults)
{
    MsrFile msr;
    KernelFs fs;
    KnobConfig cfg = effectiveKnobs(msr, fs, skylake18());
    EXPECT_DOUBLE_EQ(cfg.coreFreqGHz, 2.2);
    EXPECT_DOUBLE_EQ(cfg.uncoreFreqGHz, 1.8);
    EXPECT_EQ(cfg.activeCores, 18);
    EXPECT_FALSE(cfg.cdp.enabled);
    EXPECT_EQ(cfg.prefetch, PrefetcherPreset::AllOn);
    EXPECT_EQ(cfg.thp, ThpMode::Madvise);
    EXPECT_EQ(cfg.shpCount, 0);
}

TEST(ActuationDeathTest, OutOfRangeFrequenciesFatal)
{
    MsrFile msr;
    KernelFs fs;
    KnobConfig knobs;
    knobs.coreFreqGHz = 3.5;
    EXPECT_EXIT(actuateKnobs(knobs, skylake18(), msr, fs),
                testing::ExitedWithCode(1), "core frequency");
    knobs = KnobConfig{};
    knobs.uncoreFreqGHz = 1.0;
    EXPECT_EXIT(actuateKnobs(knobs, skylake18(), msr, fs),
                testing::ExitedWithCode(1), "uncore frequency");
}

TEST(Machine, AssembledPerKnobs)
{
    Machine machine(skylake18(), exampleKnobs());
    EXPECT_DOUBLE_EQ(machine.coreFreqGHz(), 1.8);
    EXPECT_DOUBLE_EQ(machine.uncoreFreqGHz(), 1.5);
    EXPECT_EQ(machine.activeCores(), 10);

    // CDP masks applied to the LLC.
    EXPECT_EQ(machine.llc().wayMask(AccessType::Data), 0b00000111111u);
    EXPECT_EQ(machine.llc().wayMask(AccessType::Code), 0b11111000000u);

    // DcuOnly preset: exactly one L1 prefetcher, no L2 prefetchers.
    EXPECT_EQ(machine.l1Prefetchers().size(), 1u);
    EXPECT_TRUE(machine.l2Prefetchers().empty());
}

TEST(Machine, AllOnPrefetchers)
{
    KnobConfig knobs;
    Machine machine(skylake18(), knobs);
    EXPECT_EQ(machine.l1Prefetchers().size(), 2u);
    EXPECT_EQ(machine.l2Prefetchers().size(), 2u);
}

TEST(Machine, GeometriesMatchPlatform)
{
    Machine machine(skylake20(), KnobConfig{});
    EXPECT_EQ(machine.l1i().sets(), skylake20().l1i.sets());
    EXPECT_EQ(machine.llc().ways(), skylake20().llc.ways);
    EXPECT_EQ(machine.activeCores(), 40);
}

TEST(Machine, ResolvedCoresZeroMeansAll)
{
    KnobConfig knobs;
    knobs.activeCores = 0;
    EXPECT_EQ(knobs.resolvedCores(skylake18()), 18);
    knobs.activeCores = 99;
    EXPECT_EQ(knobs.resolvedCores(skylake18()), 18);
    knobs.activeCores = 4;
    EXPECT_EQ(knobs.resolvedCores(skylake18()), 4);
}

TEST(Machine, FlushAllClearsState)
{
    Machine machine(skylake18(), KnobConfig{});
    machine.l1d().access(42, AccessType::Data);
    machine.llc().access(42, AccessType::Data);
    machine.dtlb().access(0x42000, 4096);
    machine.flushAll();
    EXPECT_EQ(machine.l1d().residentLines(), 0u);
    EXPECT_EQ(machine.llc().residentLines(), 0u);
    EXPECT_FALSE(machine.dtlb().l1().probe(0x42000, 4096));
}

TEST(Knobs, StockAndProductionConfigs)
{
    KnobConfig stock = stockConfig(skylake18(), webProfile());
    EXPECT_DOUBLE_EQ(stock.coreFreqGHz, 2.2);
    EXPECT_EQ(stock.thp, ThpMode::Always);
    EXPECT_EQ(stock.shpCount, 0);

    // AVX cap: Ads1 runs 0.2 GHz lower.
    KnobConfig ads1Stock = stockConfig(skylake18(), ads1Profile());
    EXPECT_DOUBLE_EQ(ads1Stock.coreFreqGHz, 2.0);

    KnobConfig prod = productionConfig(skylake18(), webProfile());
    EXPECT_EQ(prod.thp, ThpMode::Madvise);
    EXPECT_EQ(prod.shpCount, 200);
    EXPECT_EQ(prod.prefetch, PrefetcherPreset::AllOn);

    KnobConfig prodBdw = productionConfig(broadwell16(), webProfile());
    EXPECT_EQ(prodBdw.shpCount, 488);
    EXPECT_EQ(prodBdw.prefetch, PrefetcherPreset::L2StreamAndDcu);

    KnobConfig prodAds = productionConfig(skylake18(), ads1Profile());
    EXPECT_EQ(prodAds.shpCount, 0);
}

TEST(Knobs, JsonRoundTrip)
{
    KnobConfig knobs = exampleKnobs();
    KnobConfig parsed = KnobConfig::fromJson(knobs.toJson());
    EXPECT_EQ(parsed, knobs);
}

TEST(Knobs, DescribeMentionsEveryKnob)
{
    std::string text = exampleKnobs().describe();
    for (const char *token : {"1.8", "1.5", "10", "{6d,5c}", "dcu_only",
                              "never", "400"}) {
        EXPECT_NE(text.find(token), std::string::npos) << token;
    }
}

TEST(Knobs, RegistryComplete)
{
    EXPECT_EQ(allKnobIds().size(), 10u);
    for (KnobId id : allKnobIds())
        EXPECT_EQ(knobFromKey(knobKey(id)), id);
    EXPECT_TRUE(knobRequiresReboot(KnobId::CoreCount));
    EXPECT_TRUE(knobRequiresReboot(KnobId::Shp));
    EXPECT_FALSE(knobRequiresReboot(KnobId::Thp));
    // Memory-tier knobs actuate through runtime kernel files.
    EXPECT_FALSE(knobRequiresReboot(KnobId::Mba));
    EXPECT_FALSE(knobRequiresReboot(KnobId::TierPolicyKnob));
    EXPECT_FALSE(knobRequiresReboot(KnobId::FarMemRatio));
}

} // namespace
} // namespace softsku
