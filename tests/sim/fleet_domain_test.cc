/**
 * @file Tests for correlated failure domains and the blast-radius-aware
 * rollout planner: topology assignment, rack-scoped hazards, stratified
 * waves, domain-triaged health verdicts, and resume-after-exclusion.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "services/services.hh"
#include "sim/faults.hh"
#include "sim/fleet.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

TEST(FleetDomain, TopologySpecParsesAndAssignsContiguousRacks)
{
    EXPECT_TRUE(FleetTopology::fromSpec("").trivial());
    FleetTopology racksOnly = FleetTopology::fromSpec("8");
    EXPECT_EQ(racksOnly.racks, 8);
    EXPECT_EQ(racksOnly.regions, 1);
    FleetTopology full = FleetTopology::fromSpec("8x2");
    EXPECT_EQ(full.racks, 8);
    EXPECT_EQ(full.regions, 2);
    EXPECT_FALSE(full.trivial());

    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice fleet(env, 32, production, full);
    // Contiguous blocks of 4 per rack, racks 0-3 in region 0.
    EXPECT_EQ(fleet.servers()[0].rack, 0);
    EXPECT_EQ(fleet.servers()[3].rack, 0);
    EXPECT_EQ(fleet.servers()[4].rack, 1);
    EXPECT_EQ(fleet.servers()[31].rack, 7);
    EXPECT_EQ(fleet.servers()[0].region, 0);
    EXPECT_EQ(fleet.servers()[15].region, 0);
    EXPECT_EQ(fleet.servers()[16].region, 1);
    EXPECT_EQ(fleet.servers()[31].region, 1);
}

TEST(FleetDomain, RackCohortPerfIsPureAndBounded)
{
    FaultPlan plan = FaultPlan::fromSpec("crash=0.01,drift=0.05");
    EXPECT_DOUBLE_EQ(plan.rackDriftSigma, 0.05);
    FaultInjector a(plan, 42);
    FaultInjector b(plan, 42);
    bool cohortsDiffer = false;
    for (int rack = 0; rack < 8; ++rack) {
        double center = a.rackCohortPerf(rack);
        // Pure function of (plan, seed, rack): a second injector and a
        // substream copy agree exactly.
        EXPECT_DOUBLE_EQ(center, b.rackCohortPerf(rack));
        EXPECT_DOUBLE_EQ(center,
                         a.forStream(99).rackCohortPerf(rack));
        EXPECT_GE(center, plan.replacementPerfMin);
        EXPECT_LE(center, 1.0);
        if (std::abs(center - a.rackCohortPerf(0)) > 1e-9)
            cohortsDiffer = true;
        // Replacement draws cluster inside the rack's cohort band.
        for (int i = 0; i < 16; ++i) {
            double draw = a.replacementPerfFactorForRack(rack);
            EXPECT_GE(draw, center - plan.rackDriftSigma - 1e-12);
            EXPECT_LE(draw, center + plan.rackDriftSigma + 1e-12);
        }
    }
    EXPECT_TRUE(cohortsDiffer);

    // Without drift the rack draw degenerates to the uncorrelated one.
    FaultPlan flat = FaultPlan::fromSpec("crash=0.01");
    FaultInjector c(flat, 42), d(flat, 42);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(c.replacementPerfFactorForRack(3),
                         d.replacementPerfFactor());
}

TEST(FleetDomain, RackEventScheduleIsStatelessAndSubstreamInvariant)
{
    FaultPlan plan = FaultPlan::fromSpec("rack=0.2");
    EXPECT_TRUE(plan.any());
    FaultInjector a(plan, 7);
    // Exhaust some stateful decision stream first: the rack-event
    // schedule must not care how many draws happened before.
    for (int i = 0; i < 1000; ++i)
        (void)a.crash(60.0);
    FaultInjector fresh(plan, 7);
    int events = 0;
    for (int rack = 0; rack < 4; ++rack) {
        for (int hour = 0; hour < 200; ++hour) {
            double t = (hour + 1) * 3600.0;
            bool hit = a.rackEventInWindow(rack, t, 3600.0);
            EXPECT_EQ(hit, fresh.rackEventInWindow(rack, t, 3600.0));
            EXPECT_EQ(hit,
                      fresh.forStream(5).rackEventInWindow(rack, t,
                                                           3600.0));
            events += hit;
        }
    }
    // ~0.2/h for 800 rack-hours: some events, nowhere near all.
    EXPECT_GT(events, 20);
    EXPECT_LT(events, 600);
}

TEST(FleetDomain, DomainSurgeIsRegionScopedAndPure)
{
    FaultPlan plan = FaultPlan::fromSpec("dsurge=0.5,dsurge_mag=0.4");
    FaultInjector a(plan, 11);
    FaultInjector b(plan, 11);
    int surged = 0, differs = 0;
    for (int window = 0; window < 200; ++window) {
        double t = window * plan.surgeWindowSec + 1.0;
        double r0 = a.domainSurgeFactor(0, t);
        double r1 = a.domainSurgeFactor(1, t);
        EXPECT_DOUBLE_EQ(r0, b.domainSurgeFactor(0, t));
        EXPECT_GE(r0, 1.0);
        EXPECT_LE(r0, 1.0 + plan.domainSurgeMagnitude + 1e-12);
        surged += r0 > 1.0;
        differs += (r0 > 1.0) != (r1 > 1.0);
    }
    EXPECT_GT(surged, 50);    // rate 0.5: roughly half the windows
    EXPECT_LT(surged, 150);
    EXPECT_GT(differs, 20);   // regions surge on their own schedules

    // An unarmed plan is exactly neutral.
    FaultInjector off(FaultPlan{}, 11);
    EXPECT_DOUBLE_EQ(off.domainSurgeFactor(0, 12345.0), 1.0);
}

TEST(FleetDomain, OnlineBoundaryIsInclusiveAtOfflineUntil)
{
    // The pinned convention: a server whose offlineUntilSec lands
    // exactly on a telemetry tick counts as online for that tick —
    // for every consumer, since baseline, canary, and wave sampling
    // all go through FleetServer::online.
    FleetServer server;
    server.offlineUntilSec = 100.0;
    EXPECT_FALSE(server.online(99.999));
    EXPECT_TRUE(server.online(100.0));
    EXPECT_TRUE(server.online(100.001));

    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    FleetSlice fleet(env, 4, production);
    KnobConfig reboot = production;
    reboot.shpCount = 300;
    fleet.reconfigure(0, reboot, 100.0, 300.0);
    EXPECT_EQ(fleet.onlineServers(399.999), 3);
    EXPECT_EQ(fleet.onlineServers(400.0), 4);  // exact tick: online
}

TEST(FleetDomain, ScheduledRackOutageTakesWholeRackOffline)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 8, production, FleetTopology::fromSpec("2"));
    fleet.scheduleRackOutage(0, 2000.0, 900.0);
    OdsStore ods;
    RolloutPolicy policy;
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_EQ(result.rackEvents, 1);
    EXPECT_TRUE(result.completed);
    // Rack 0 went fully dark for the outage window; rack 1 never did.
    auto rack0 = ods.aggregate("fleet.web.rack0.online", 0, 1e9);
    auto rack1 = ods.aggregate("fleet.web.rack1.online", 0, 1e9);
    EXPECT_DOUBLE_EQ(rack0.min, 0.0);
    EXPECT_DOUBLE_EQ(rack1.min, 4.0);
    EXPECT_DOUBLE_EQ(rack0.max, 4.0);
}

TEST(RolloutStratify, WavesSpreadAcrossRacksNaivePlannerDoesNot)
{
    auto run = [](bool stratify) {
        ProductionEnvironment env(webProfile(), skylake18(), 1,
                                  fastOptions());
        KnobConfig production =
            productionConfig(skylake18(), webProfile());
        KnobConfig winner = production;
        winner.thp = ThpMode::Always;
        FleetSlice fleet(env, 32, production,
                         FleetTopology::fromSpec("4"));
        OdsStore ods;
        RolloutPolicy policy;
        policy.canarySoakSec = 1800.0;
        policy.waveIntervalSec = 600.0;
        policy.stratifyWaves = stratify;
        policy.domainQuorum = stratify ? 1 : 0;
        return fleet.rollout(winner, policy, ods);
    };

    RolloutResult naive = run(false);
    RolloutResult stratified = run(true);
    EXPECT_TRUE(naive.completed);
    EXPECT_TRUE(stratified.completed);
    EXPECT_EQ(naive.serversConverted, 32);
    EXPECT_EQ(stratified.serversConverted, 32);
    // Id-ordered waves land almost entirely inside one rack of the
    // contiguous placement; round-robin caps the per-rack share.
    EXPECT_GT(naive.maxWaveDomainShare, 0.5);
    EXPECT_LE(stratified.maxWaveDomainShare, 0.5);
}

TEST(RolloutStratify, DomainVerdictExcludesSickRackAndResumes)
{
    // Rack 0's cohort silently degrades mid-canary — the canary host
    // among them.  Verdicts off would blame the (healthy) config and
    // abort for good; domain triage sees rack 0's own control servers
    // regress, excludes the rack, and finishes the fleet without it.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 32, production, FleetTopology::fromSpec("8"));
    for (int i = 0; i < 4; ++i)
        fleet.scheduleDegradation(i, 2500.0, 0.70);
    OdsStore ods;
    RolloutPolicy policy = RolloutPolicy::blastRadiusAware();
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.configBlamed);
    EXPECT_EQ(result.resumes, 1);
    EXPECT_EQ(result.domainsExcluded, 1);
    EXPECT_EQ(result.serversExcluded, 4);
    EXPECT_EQ(result.serversConverted, 28);
    for (const FleetServer &server : fleet.servers()) {
        if (server.rack == 0) {
            EXPECT_TRUE(server.excluded);
            EXPECT_EQ(server.config, production);
        } else {
            EXPECT_FALSE(server.excluded);
            EXPECT_EQ(server.config, winner);
        }
    }
}

TEST(RolloutStratify, ConfigRegressionIsBlamedAndNeverResumed)
{
    // A genuinely bad config regresses the canary while every rack's
    // control group stays healthy: the verdict blames the config and
    // refuses to spend the resume budget on it.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig bad = production;
    bad.coreFreqGHz = 1.6;

    FleetSlice fleet(env, 32, production, FleetTopology::fromSpec("8"));
    OdsStore ods;
    RolloutPolicy policy = RolloutPolicy::blastRadiusAware();
    policy.canarySoakSec = 600.0;
    policy.resumeAttempts = 2;

    RolloutResult result = fleet.rollout(bad, policy, ods);
    EXPECT_TRUE(result.aborted);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.configBlamed);
    EXPECT_EQ(result.resumes, 0);
    EXPECT_EQ(result.domainsExcluded, 0);
    for (const FleetServer &server : fleet.servers())
        EXPECT_EQ(server.config, production);
}

TEST(RolloutStratify, ResumeAfterExclusionRebaselinesOnSurvivors)
{
    // Severe-ish hostile plan with every correlated hazard armed, a
    // directed degradation storm inside one rack mid-wave, and two
    // resumes allowed.  The rollout must exclude the sick rack,
    // re-baseline on exactly the surviving set, and the whole ordeal
    // must replay bit-for-bit (RolloutResult JSON compared byte-wise).
    auto run = [] {
        ProductionEnvironment env(webProfile(), skylake18(), 1,
                                  fastOptions());
        env.setFaults(
            FaultPlan::fromSpec(
                "crash=0.002,apply=0.02,rack=0.002,drift=0.05"),
            21);
        KnobConfig production =
            productionConfig(skylake18(), webProfile());
        KnobConfig winner = production;
        winner.thp = ThpMode::Always;

        FleetSlice fleet(env, 32, production,
                         FleetTopology::fromSpec("8x2"));
        for (int i = 8; i < 12; ++i)   // rack 2, whole cohort
            fleet.scheduleDegradation(i, 4700.0, 0.50);
        OdsStore ods;
        RolloutPolicy policy = RolloutPolicy::blastRadiusAware();
        policy.canarySoakSec = 1800.0;
        policy.waveIntervalSec = 600.0;
        return fleet.rollout(winner, policy, ods);
    };

    RolloutResult first = run();
    EXPECT_TRUE(first.completed);
    EXPECT_FALSE(first.configBlamed);
    EXPECT_GE(first.resumes, 1);
    EXPECT_GE(first.domainsExcluded, 1);
    EXPECT_GE(first.serversExcluded, 4);
    // Every live server converted: the resumed attempt rebaselined on
    // the surviving set, not the pre-exclusion fleet.
    EXPECT_EQ(first.serversConverted,
              32 - first.serversExcluded);

    RolloutResult second = run();
    EXPECT_EQ(first.toJson().dump(2), second.toJson().dump(2));
}

TEST(RolloutStratify, SurgePauseDefersConversionsDuringHotTelemetry)
{
    // The fleet's telemetry jumps 25% above the baseline soak right
    // after the canary (a surge the diurnal model knows nothing
    // about): the planner pauses conversions until the pause budget
    // runs out instead of shrinking the control pool mid-surge.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 16, production, FleetTopology::fromSpec("4"));
    for (int i = 0; i < 16; ++i) {
        fleet.degradeServer(i, 0.8);
        fleet.scheduleDegradation(i, 2000.0, 1.0);  // the "surge"
    }
    OdsStore ods;
    RolloutPolicy policy = RolloutPolicy::blastRadiusAware();
    policy.canarySoakSec = 600.0;
    policy.waveIntervalSec = 600.0;
    policy.surgePauseThreshold = 0.05;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.completed);
    EXPECT_GE(result.surgePauses, 1);
    EXPECT_EQ(result.serversConverted, 16);
}

TEST(RolloutStratify, TrivialTopologyIgnoresDomainKnobs)
{
    // Domain knobs on a 1x1 topology must not change the legacy
    // rollout: identical outcome with and without them.
    auto run = [](bool armed) {
        ProductionEnvironment env(webProfile(), skylake18(), 1,
                                  fastOptions());
        env.setFaults(FaultPlan::fromSpec("moderate"), 21);
        KnobConfig production =
            productionConfig(skylake18(), webProfile());
        KnobConfig winner = production;
        winner.thp = ThpMode::Always;
        FleetSlice fleet(env, 8, production);
        OdsStore ods;
        RolloutPolicy policy;
        policy.canarySoakSec = 1800.0;
        policy.waveIntervalSec = 600.0;
        if (armed) {
            policy.stratifyWaves = true;
            policy.domainQuorum = 2;
            policy.domainVerdicts = true;
        }
        return fleet.rollout(winner, policy, ods);
    };
    EXPECT_EQ(run(false).toJson().dump(2), run(true).toJson().dump(2));
}

} // namespace
} // namespace softsku
