/**
 * @file
 * Property tests on knob responses — the invariants the evaluation
 * figures rest on, checked structurally rather than by magnitude:
 * frequency responses are monotone, CAT capacity responses are
 * monotone, SHP has a waste-side penalty, THP never cannot beat THP
 * always on TLB pressure, and knob changes leave the generated
 * instruction stream untouched (the variance-control invariant).
 */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/service_sim.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 200'000;
    opts.measureInstructions = 300'000;
    return opts;
}

double
mipsWith(const WorkloadProfile &service, const PlatformSpec &platform,
         const KnobConfig &knobs, int catWays = 0)
{
    SimOptions opts = fastOptions();
    opts.catWays = catWays;
    return simulateService(service, platform, knobs, opts).platformMips;
}

/** Sweep each service on its fleet platform. */
class ServiceParam : public testing::TestWithParam<int>
{
  protected:
    const WorkloadProfile &service() const
    {
        return *allMicroservices()[GetParam()];
    }
    const PlatformSpec &platform() const
    {
        return platformByName(service().defaultPlatform);
    }
};

TEST_P(ServiceParam, CoreFrequencyMonotone)
{
    KnobConfig knobs = productionConfig(platform(), service());
    double last = 0.0;
    for (double f : {1.6, 1.8, 2.0}) {
        knobs.coreFreqGHz = f;
        double mips = mipsWith(service(), platform(), knobs);
        EXPECT_GT(mips, last * 0.995)
            << service().name << " @ " << f << " GHz";
        last = mips;
    }
}

TEST_P(ServiceParam, UncoreFrequencyMonotone)
{
    KnobConfig knobs = productionConfig(platform(), service());
    knobs.uncoreFreqGHz = 1.4;
    double slow = mipsWith(service(), platform(), knobs);
    knobs.uncoreFreqGHz = 1.8;
    double fast = mipsWith(service(), platform(), knobs);
    EXPECT_GE(fast, slow * 0.998) << service().name;
}

TEST_P(ServiceParam, CatCapacityMonotone)
{
    KnobConfig knobs = productionConfig(platform(), service());
    SimOptions opts = fastOptions();
    opts.catWays = 2;
    auto few = simulateService(service(), platform(), knobs, opts);
    opts.catWays = 0;
    auto all = simulateService(service(), platform(), knobs, opts);
    EXPECT_GE(few.llc.totalMisses(), all.llc.totalMisses())
        << service().name;
}

TEST_P(ServiceParam, MoreCoresMorePlatformThroughput)
{
    if (!service().toleratesReboot)
        GTEST_SKIP() << "service cannot take core-count reboots";
    KnobConfig knobs = productionConfig(platform(), service());
    knobs.activeCores = 4;
    double few = mipsWith(service(), platform(), knobs);
    knobs.activeCores = 0;
    double all = mipsWith(service(), platform(), knobs);
    EXPECT_GT(all, few * 1.5) << service().name;
}

INSTANTIATE_TEST_SUITE_P(Fleet, ServiceParam, testing::Range(0, 7));

TEST(KnobProperties, ThpOrderOnTlbWalks)
{
    // never >= madvise >= always in page-walk pressure, for every
    // service (the throughput order may vary; walk pressure may not).
    for (const WorkloadProfile *service : allMicroservices()) {
        const PlatformSpec &platform =
            platformByName(service->defaultPlatform);
        KnobConfig knobs = productionConfig(platform, *service);
        SimOptions opts = fastOptions();

        auto walks = [&](ThpMode mode) {
            KnobConfig k = knobs;
            k.thp = mode;
            CounterSet c = simulateService(*service, platform, k, opts);
            return c.dtlbWalks + c.itlbWalks;
        };
        std::uint64_t never = walks(ThpMode::Never);
        std::uint64_t madvise = walks(ThpMode::Madvise);
        std::uint64_t always = walks(ThpMode::Always);
        EXPECT_GE(never + 50, madvise) << service->name;
        EXPECT_GE(madvise + 50, always) << service->name;
    }
}

TEST(KnobProperties, ShpWasteIsPenalized)
{
    // For Web, a wildly over-reserved SHP pool must not beat the
    // fully-covering reservation (pinned memory has a cost).
    KnobConfig covering = productionConfig(skylake18(), webProfile());
    covering.shpCount = 300;
    KnobConfig wasteful = covering;
    wasteful.shpCount = 600;
    double good = mipsWith(webProfile(), skylake18(), covering);
    double bad = mipsWith(webProfile(), skylake18(), wasteful);
    EXPECT_GT(good, bad);
}

TEST(KnobProperties, StreamsInvariantAcrossKnobs)
{
    // The generated instruction mix (a pure workload property) must be
    // bit-identical across machine configurations — the variance
    // control that makes small A/B effects measurable.
    SimOptions opts = fastOptions();
    KnobConfig a = productionConfig(skylake18(), webProfile());
    KnobConfig b = a;
    b.thp = ThpMode::Never;
    b.cdp = {true, 6, 5};
    b.uncoreFreqGHz = 1.4;
    CounterSet ca = simulateService(webProfile(), skylake18(), a, opts);
    CounterSet cb = simulateService(webProfile(), skylake18(), b, opts);
    for (int cls = 0; cls < 5; ++cls)
        EXPECT_EQ(ca.classCounts[cls], cb.classCounts[cls]);
    EXPECT_EQ(ca.branches, cb.branches);
}

TEST(KnobProperties, CdpExtremePartitionsHurt)
{
    // Starving code of LLC ways must hurt the front-end-bound Web, and
    // starving data must structurally inflate LLC data misses (its
    // throughput verdict depends on window length, so assert the
    // mechanism, not the MIPS).
    KnobConfig base = productionConfig(skylake18(), webProfile());
    SimOptions opts = fastOptions();
    CounterSet off = simulateService(webProfile(), skylake18(), base,
                                     opts);
    KnobConfig starveCode = base;
    starveCode.cdp = {true, 10, 1};
    CounterSet codeStarved =
        simulateService(webProfile(), skylake18(), starveCode, opts);
    EXPECT_LT(codeStarved.platformMips, off.platformMips);
    EXPECT_GT(codeStarved.llc.misses[0], off.llc.misses[0]);

    KnobConfig starveData = base;
    starveData.cdp = {true, 1, 10};
    CounterSet dataStarved =
        simulateService(webProfile(), skylake18(), starveData, opts);
    EXPECT_GT(dataStarved.llc.misses[1], off.llc.misses[1]);
    EXPECT_LT(dataStarved.llc.misses[0], off.llc.misses[0]);
}

} // namespace
} // namespace softsku
