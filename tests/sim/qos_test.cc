/** @file Tests for the QoS operating-point solver. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/qos.hh"
#include "sim/service_sim.hh"

namespace softsku {
namespace {

CounterSet
countersFor(const WorkloadProfile &service)
{
    const PlatformSpec &platform = platformByName(service.defaultPlatform);
    SimOptions opts;
    opts.warmupInstructions = 200'000;
    opts.measureInstructions = 250'000;
    return simulateService(service, platform,
                           productionConfig(platform, service), opts);
}

TEST(Qos, RespectsSloAndUtilizationCap)
{
    const WorkloadProfile &service = feed2Profile();
    CounterSet c = countersFor(service);
    ServiceOperatingPoint op = solveOperatingPoint(
        service, platformByName(service.defaultPlatform), c);
    EXPECT_GT(op.peakQps, 0.0);
    EXPECT_LE(op.p99LatencySec, op.sloLatencySec * 1.02);
    EXPECT_LE(op.cpuUtilization, service.cpuUtilizationCap + 0.02);
    EXPECT_GT(op.userUtilization, op.kernelUtilization);
}

TEST(Qos, BreakdownFractionsSumToOne)
{
    const WorkloadProfile &service = webProfile();
    CounterSet c = countersFor(service);
    ServiceOperatingPoint op = solveOperatingPoint(
        service, platformByName(service.defaultPlatform), c);
    const ThreadPoolResult &pool = op.pool;
    EXPECT_NEAR(pool.runningFraction + pool.queueFraction +
                    pool.schedulerFraction + pool.ioFraction,
                1.0, 1e-9);
    // Web spends most of a request blocked (Fig 2a).
    EXPECT_LT(pool.runningShare(), 0.5);
}

TEST(Qos, LeafServicesMostlyRunning)
{
    const WorkloadProfile &service = feed1Profile();
    CounterSet c = countersFor(service);
    ServiceOperatingPoint op = solveOperatingPoint(
        service, platformByName(service.defaultPlatform), c);
    EXPECT_GT(op.pool.runningShare(), 0.85);
}

TEST(Qos, CacheKernelShareHighest)
{
    CounterSet cWeb = countersFor(webProfile());
    CounterSet cCache = countersFor(cache2Profile());
    ServiceOperatingPoint web =
        solveOperatingPoint(webProfile(), skylake18(), cWeb);
    ServiceOperatingPoint cache =
        solveOperatingPoint(cache2Profile(), skylake18(), cCache);
    double webKernelShare = web.kernelUtilization / web.cpuUtilization;
    double cacheKernelShare =
        cache.kernelUtilization / cache.cpuUtilization;
    EXPECT_GT(cacheKernelShare, webKernelShare * 2);
}

TEST(Qos, Deterministic)
{
    const WorkloadProfile &service = ads2Profile();
    CounterSet c = countersFor(service);
    const PlatformSpec &platform = platformByName(service.defaultPlatform);
    ServiceOperatingPoint a = solveOperatingPoint(service, platform, c, 5);
    ServiceOperatingPoint b = solveOperatingPoint(service, platform, c, 5);
    EXPECT_DOUBLE_EQ(a.peakQps, b.peakQps);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
}

} // namespace
} // namespace softsku
