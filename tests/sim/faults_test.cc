/** @file Tests for the deterministic fault-injection layer. */

#include <gtest/gtest.h>

#include <vector>

#include "services/services.hh"
#include "sim/faults.hh"
#include "sim/production_env.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

TEST(FaultPlan, DefaultIsNoOp)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.any());
    EXPECT_EQ(plan.describe(), "off");
}

TEST(FaultPlan, FromSpecPresets)
{
    EXPECT_FALSE(FaultPlan::fromSpec("off").any());
    FaultPlan mild = FaultPlan::fromSpec("mild");
    FaultPlan severe = FaultPlan::fromSpec("severe");
    EXPECT_TRUE(mild.any());
    EXPECT_TRUE(severe.any());
    EXPECT_GT(severe.crashPerHour, mild.crashPerHour);
    EXPECT_GT(severe.sampleDropRate, mild.sampleDropRate);
}

TEST(FaultPlan, FromSpecKeyValues)
{
    FaultPlan plan =
        FaultPlan::fromSpec("crash=0.5,drop=0.25,surge=0.1,stuck=0.3");
    EXPECT_DOUBLE_EQ(plan.crashPerHour, 0.5);
    EXPECT_DOUBLE_EQ(plan.sampleDropRate, 0.25);
    EXPECT_DOUBLE_EQ(plan.surgeWindowRate, 0.1);
    EXPECT_DOUBLE_EQ(plan.stuckRebootRate, 0.3);
    EXPECT_DOUBLE_EQ(plan.sampleCorruptRate, 0.0);
}

TEST(FaultPlan, FromSpecPresetWithOverride)
{
    FaultPlan plan = FaultPlan::fromSpec("moderate,drop=0.4");
    FaultPlan base = FaultPlan::fromSpec("moderate");
    EXPECT_DOUBLE_EQ(plan.sampleDropRate, 0.4);
    EXPECT_DOUBLE_EQ(plan.crashPerHour, base.crashPerHour);
}

TEST(FaultInjector, SameStreamReplaysIdenticalDecisions)
{
    FaultPlan plan = FaultPlan::fromSpec("moderate");
    FaultInjector parent(plan, 42);
    // Burn decisions on one parent; substreams must not care.
    for (int i = 0; i < 1000; ++i)
        (void)parent.dropSample();

    FaultInjector a = parent.forStream(7);
    FaultInjector b = FaultInjector(plan, 42).forStream(7);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(a.dropSample(), b.dropSample());
        EXPECT_EQ(a.crash(60.0), b.crash(60.0));
        EXPECT_EQ(a.applyFails(), b.applyFails());
    }
}

TEST(FaultInjector, DifferentStreamsDiffer)
{
    FaultPlan plan = FaultPlan::fromSpec("severe");
    FaultInjector a = FaultInjector(plan, 42).forStream(1);
    FaultInjector b = FaultInjector(plan, 42).forStream(2);
    int differ = 0;
    for (int i = 0; i < 2000; ++i)
        differ += a.dropSample() != b.dropSample();
    EXPECT_GT(differ, 0);
}

TEST(FaultInjector, SurgeFactorIsPureInTime)
{
    FaultPlan plan = FaultPlan::fromSpec("surge=0.3");
    FaultInjector a(plan, 9);
    FaultInjector b = FaultInjector(plan, 9).forStream(123);
    int surged = 0;
    for (int w = 0; w < 400; ++w) {
        double t = w * plan.surgeWindowSec + 1.0;
        double factor = a.surgeFactor(t);
        // Pure function of (plan, seed, time): stream and draw history
        // are irrelevant, and repeated queries agree.
        EXPECT_DOUBLE_EQ(factor, b.surgeFactor(t));
        EXPECT_DOUBLE_EQ(factor, a.surgeFactor(t));
        EXPECT_GE(factor, 1.0);
        EXPECT_LE(factor, 1.0 + plan.surgeMagnitude);
        surged += factor > 1.0;
    }
    // ~30% of windows should carry a surge.
    EXPECT_GT(surged, 60);
    EXPECT_LT(surged, 180);
}

TEST(FaultInjector, ZeroRatesDrawNothing)
{
    // With a zero plan every decision is false without consuming RNG
    // state: two injectors stay in lockstep even if one is asked far
    // more questions.
    FaultInjector a(FaultPlan{}, 5);
    FaultInjector b(FaultPlan{}, 5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(a.dropSample());
        EXPECT_FALSE(a.crash(300.0));
        EXPECT_FALSE(a.applyFails());
        EXPECT_FALSE(a.rebootSticks());
    }
    EXPECT_FALSE(b.dropSample());
    EXPECT_DOUBLE_EQ(a.surgeFactor(1234.5), 1.0);
}

TEST(FaultEnvironment, ZeroPlanIsByteIdenticalToBenign)
{
    // Arming an all-zero plan must not perturb a single sample.
    ProductionEnvironment benign(webProfile(), skylake18(), 1,
                                 fastOptions());
    ProductionEnvironment armed(webProfile(), skylake18(), 1,
                                fastOptions());
    armed.setFaults(FaultPlan{}, 77);

    KnobConfig config = productionConfig(skylake18(), webProfile());
    KnobConfig other = config;
    other.thp = ThpMode::Always;
    for (int i = 0; i < 500; ++i) {
        double t = 60.0 * i;
        PairedSample a = benign.samplePair(config, other, t);
        PairedSample b = armed.samplePair(config, other, t);
        EXPECT_EQ(a.mipsA, b.mipsA);
        EXPECT_EQ(a.mipsB, b.mipsB);
        EXPECT_FALSE(b.dropped);
    }
}

TEST(FaultEnvironment, ClonesReplayIdenticalFaultSchedules)
{
    FaultPlan plan = FaultPlan::fromSpec("severe");
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.setFaults(plan, 3);
    KnobConfig config = productionConfig(skylake18(), webProfile());
    double truth = env.trueMips(config);

    auto schedule = [&](std::uint64_t stream) {
        ProductionEnvironment slice = env.clone(stream);
        std::vector<double> readings;
        for (int i = 0; i < 2000; ++i) {
            PairedSample sample =
                slice.samplePairTruth(truth, truth, 60.0 * i);
            readings.push_back(sample.dropped ? -1.0 : sample.mipsA);
            readings.push_back(sample.dropped ? -1.0 : sample.mipsB);
        }
        return readings;
    };

    std::vector<double> first = schedule(11);
    EXPECT_EQ(schedule(11), first);   // same stream → same schedule
    EXPECT_NE(schedule(12), first);   // different stream → different
}

TEST(FaultEnvironment, HostileSamplesCarryInjectedHazards)
{
    FaultPlan plan = FaultPlan::fromSpec("drop=0.1,corrupt=0.05");
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.setFaults(plan, 3);
    KnobConfig config = productionConfig(skylake18(), webProfile());
    double truth = env.trueMips(config);

    int dropped = 0, corrupted = 0;
    for (int i = 0; i < 3000; ++i) {
        PairedSample sample = env.samplePairTruth(truth, truth, 60.0 * i);
        dropped += sample.dropped;
        corrupted += sample.corruptedA + sample.corruptedB;
    }
    // ~300 drops and ~300 corruptions expected.
    EXPECT_GT(dropped, 150);
    EXPECT_LT(dropped, 600);
    EXPECT_GT(corrupted, 150);
}

TEST(FaultTelemetry, MergeAccumulates)
{
    FaultTelemetry a, b;
    a.samplesDropped = 3;
    a.crashes = 1;
    b.samplesDropped = 2;
    b.retries = 4;
    b.guardrailAborts = 1;
    a.merge(b);
    EXPECT_EQ(a.samplesDropped, 5u);
    EXPECT_EQ(a.crashes, 1u);
    EXPECT_EQ(a.retries, 4u);
    EXPECT_EQ(a.faultsInjected(), 6u);
    EXPECT_TRUE(a.any());
    EXPECT_FALSE(FaultTelemetry{}.any());
}

} // namespace
} // namespace softsku
