/** @file Tests for the production measurement environment. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/production_env.hh"
#include "stats/running_stat.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

TEST(ProductionEnv, TruthIsCachedPerConfig)
{
    ProductionEnvironment env(feed1Profile(), skylake18(), 1,
                              fastOptions());
    KnobConfig a;
    double first = env.trueMips(a);
    EXPECT_EQ(env.configsSimulated(), 1u);
    EXPECT_DOUBLE_EQ(env.trueMips(a), first);
    EXPECT_EQ(env.configsSimulated(), 1u);

    KnobConfig b;
    b.thp = ThpMode::Never;
    env.trueMips(b);
    EXPECT_EQ(env.configsSimulated(), 2u);
}

TEST(ProductionEnv, LoadFactorIsDiurnalAndShared)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    RunningStat factors;
    for (double t = 0.0; t < 86400.0; t += 600.0)
        factors.add(env.loadFactor(t));
    EXPECT_NEAR(factors.mean(), 1.0, 0.01);
    EXPECT_GT(factors.max() - factors.min(), 0.02);
    // Pure function of time.
    EXPECT_DOUBLE_EQ(env.loadFactor(1234.5), env.loadFactor(1234.5));
}

TEST(ProductionEnv, PairedSamplesShareLoadFactor)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig a;
    KnobConfig b;
    b.thp = ThpMode::Never;
    double truthA = env.trueMips(a);
    double truthB = env.trueMips(b);

    // The ratio sample/truth differs between arms only by measurement
    // noise, not by load: correlation of the common-mode factor.
    RunningStat diffOfLogs;
    for (int i = 0; i < 400; ++i) {
        PairedSample s = env.samplePair(a, b, i * 30.0);
        double normA = s.mipsA / (truthA * s.loadFactor);
        double normB = s.mipsB / (truthB * s.loadFactor);
        diffOfLogs.add(normA - normB);
        EXPECT_NEAR(normA, 1.0, 0.1);
        EXPECT_NEAR(normB, 1.0, 0.1);
    }
    EXPECT_NEAR(diffOfLogs.mean(), 0.0, 0.005);
}

TEST(ProductionEnv, MeasurementNoiseMatchesSigma)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().diurnalAmplitude = 0.0;
    env.noise().codePushSigma = 0.0;
    KnobConfig cfg;
    double truth = env.trueMips(cfg);
    RunningStat samples;
    for (int i = 0; i < 3000; ++i)
        samples.add(env.sampleMips(cfg, i * 1.0) / truth);
    EXPECT_NEAR(samples.mean(), 1.0, 0.005);
    EXPECT_NEAR(samples.stddev(), env.noise().measurementSigma, 0.003);
}

TEST(ProductionEnv, CodePushesPerturbEpochs)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().diurnalAmplitude = 0.0;
    env.noise().measurementSigma = 1e-9;
    env.noise().codePushSigma = 0.01;
    env.noise().codePushIntervalSec = 3600.0;
    KnobConfig cfg;
    double epoch0 = env.sampleMips(cfg, 100.0);
    double epoch0Again = env.sampleMips(cfg, 200.0);
    double epoch5 = env.sampleMips(cfg, 5 * 3600.0 + 100.0);
    EXPECT_NEAR(epoch0, epoch0Again, epoch0 * 1e-6);
    EXPECT_NE(epoch0, epoch5);
    EXPECT_NEAR(epoch5, epoch0, epoch0 * 0.025);
}

TEST(ProductionEnv, ClonesWithSameStreamReplayIdentically)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig a;
    KnobConfig b;
    b.thp = ThpMode::Never;

    ProductionEnvironment first = env.clone(7);
    ProductionEnvironment second = env.clone(7);
    for (double t = 0.0; t < 600.0; t += 60.0) {
        PairedSample x = first.samplePair(a, b, t);
        PairedSample y = second.samplePair(a, b, t);
        EXPECT_DOUBLE_EQ(x.mipsA, y.mipsA);
        EXPECT_DOUBLE_EQ(x.mipsB, y.mipsB);
    }
}

TEST(ProductionEnv, ClonesWithDifferentStreamsDiverge)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig cfg;
    ProductionEnvironment s1 = env.clone(1);
    ProductionEnvironment s2 = env.clone(2);
    int same = 0;
    for (double t = 0.0; t < 600.0; t += 60.0)
        same += s1.samplePair(cfg, cfg, t).mipsA ==
                s2.samplePair(cfg, cfg, t).mipsA;
    EXPECT_LT(same, 2);
}

TEST(ProductionEnv, ClonesShareTheTruthCache)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig a;
    ProductionEnvironment slice = env.clone(3);
    double truth = slice.trueMips(a);
    // The clone's simulation is visible to the parent: no re-simulation.
    EXPECT_EQ(env.configsSimulated(), 1u);
    EXPECT_DOUBLE_EQ(env.trueMips(a), truth);
    EXPECT_EQ(env.configsSimulated(), 1u);

    KnobConfig b;
    b.thp = ThpMode::Never;
    env.trueMips(b);
    // ...and the parent's simulations are visible to later clones.
    ProductionEnvironment other = env.clone(4);
    other.trueMips(b);
    EXPECT_EQ(env.configsSimulated(), 2u);
}

} // namespace
} // namespace softsku
