/**
 * @file Byte-identity of rollout verdicts across ODS store layouts.
 *
 * Sharding the telemetry store is a concurrency optimization, not a
 * semantic change: the shard a series lands on decides which lock and
 * map hold it, never what its samples say.  These tests pin that down
 * the same way the blast-radius suite pins `--jobs` determinism —
 * serialize the whole RolloutResult to JSON and compare the strings
 * byte for byte across shard counts, on both the trivial topology and
 * the full 8x2 rack/region one.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "services/services.hh"
#include "sim/faults.hh"
#include "sim/fleet.hh"
#include "telemetry/ods.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

std::string
trivialRollout(int shards)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;   // a genuine winner

    FleetSlice fleet(env, 8, production);
    OdsStoreOptions options;
    options.shards = shards;
    OdsStore ods(options);
    RolloutPolicy policy;
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.completed);
    return result.toJson().dump(2);
}

std::string
domainRollout(int shards)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.setFaults(
        FaultPlan::fromSpec("crash=0.002,apply=0.02,drift=0.05"), 21);
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig winner = production;
    winner.thp = ThpMode::Always;

    FleetSlice fleet(env, 32, production,
                     FleetTopology::fromSpec("8x2"));
    OdsStoreOptions options;
    options.shards = shards;
    OdsStore ods(options);
    RolloutPolicy policy = RolloutPolicy::blastRadiusAware();
    policy.canarySoakSec = 1800.0;
    policy.waveIntervalSec = 600.0;

    RolloutResult result = fleet.rollout(winner, policy, ods);
    EXPECT_TRUE(result.completed);
    return result.toJson().dump(2);
}

TEST(OdsShardIdentity, TrivialTopologyVerdictIsShardCountInvariant)
{
    std::string one = trivialRollout(1);
    EXPECT_EQ(one, trivialRollout(4));
    EXPECT_EQ(one, trivialRollout(16));
}

TEST(OdsShardIdentity, DomainTopologyVerdictIsShardCountInvariant)
{
    std::string one = domainRollout(1);
    EXPECT_EQ(one, domainRollout(4));
    EXPECT_EQ(one, domainRollout(64));
}

TEST(OdsShardIdentity, QueryResultsMatchAcrossShardCounts)
{
    // Below the verdict level: the raw samples every health check
    // reads are identical point for point, series for series.
    auto fill = [](OdsStore &ods) {
        for (int s = 0; s < 24; ++s) {
            std::string name =
                "fleet.web.rack" + std::to_string(s % 6) + ".metric" +
                std::to_string(s);
            for (int i = 0; i < 200; ++i)
                ods.append(name, i * 30.0, 100.0 + s + 0.25 * (i % 9));
        }
    };
    OdsStoreOptions oneShard;
    oneShard.shards = 1;
    OdsStore a(oneShard);
    OdsStoreOptions manyShards;
    manyShards.shards = 32;
    OdsStore b(manyShards);
    fill(a);
    fill(b);

    std::vector<std::string> namesA = a.seriesNames();
    EXPECT_EQ(namesA, b.seriesNames());
    for (const std::string &name : namesA) {
        auto pa = a.query(name, 0.0, 1e9);
        auto pb = b.query(name, 0.0, 1e9);
        ASSERT_EQ(pa.size(), pb.size());
        for (size_t i = 0; i < pa.size(); ++i) {
            EXPECT_DOUBLE_EQ(pa[i].timeSec, pb[i].timeSec);
            EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value);
        }
        auto ga = a.aggregate(name, 0.0, 1e9);
        auto gb = b.aggregate(name, 0.0, 1e9);
        EXPECT_EQ(ga.count, gb.count);
        EXPECT_DOUBLE_EQ(ga.mean, gb.mean);
        EXPECT_DOUBLE_EQ(ga.p50, gb.p50);
        EXPECT_DOUBLE_EQ(ga.p95, gb.p95);
        EXPECT_DOUBLE_EQ(ga.p99, gb.p99);
    }
}

} // namespace
} // namespace softsku
