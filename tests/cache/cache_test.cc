/** @file Tests for the set-associative cache with CAT/CDP and SRRIP. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "stats/distributions.hh"
#include "cache/cdp.hh"

namespace softsku {
namespace {

CacheGeometry
smallGeometry()
{
    return {8 * 1024, 4, 64};   // 32 sets × 4 ways
}

TEST(Cache, HitAfterInstall)
{
    SetAssocCache cache("t", smallGeometry());
    EXPECT_FALSE(cache.access(100, AccessType::Data));   // cold miss
    EXPECT_TRUE(cache.access(100, AccessType::Data));    // hit
    EXPECT_TRUE(cache.probe(100));
    EXPECT_FALSE(cache.probe(101));
}

TEST(Cache, StatsCountByType)
{
    SetAssocCache cache("t", smallGeometry());
    cache.access(1, AccessType::Code);
    cache.access(1, AccessType::Code);
    cache.access(2, AccessType::Data);
    const CacheStats &stats = cache.stats();
    EXPECT_EQ(stats.accesses[0], 2u);
    EXPECT_EQ(stats.misses[0], 1u);
    EXPECT_EQ(stats.accesses[1], 1u);
    EXPECT_EQ(stats.misses[1], 1u);
    EXPECT_EQ(stats.totalAccesses(), 3u);
    EXPECT_DOUBLE_EQ(stats.mpki(AccessType::Code, 1000), 1.0);
}

TEST(Cache, LruEvictsOldest)
{
    SetAssocCache cache("t", smallGeometry());
    std::uint64_t sets = cache.sets();
    // Fill one set's 4 ways with same-set lines.
    for (int w = 0; w < 4; ++w)
        cache.access(5 + w * sets, AccessType::Data);
    // Touch the first three again so line 5+3*sets is LRU.
    for (int w = 0; w < 3; ++w)
        EXPECT_TRUE(cache.access(5 + w * sets, AccessType::Data));
    // A new line evicts the LRU victim.
    cache.access(5 + 10 * sets, AccessType::Data);
    EXPECT_FALSE(cache.probe(5 + 3 * sets));
    EXPECT_TRUE(cache.probe(5));
}

TEST(Cache, CapacityBound)
{
    SetAssocCache cache("t", smallGeometry());
    for (std::uint64_t line = 0; line < 1000; ++line)
        cache.access(line, AccessType::Data);
    EXPECT_LE(cache.residentLines(), 8 * 1024ull / 64);
}

TEST(Cache, FlushEmptiesEverything)
{
    SetAssocCache cache("t", smallGeometry());
    for (std::uint64_t line = 0; line < 64; ++line)
        cache.access(line, AccessType::Data);
    EXPECT_GT(cache.residentLines(), 0u);
    cache.flush();
    EXPECT_EQ(cache.residentLines(), 0u);
}

TEST(Cache, DisturbInvalidatesFraction)
{
    SetAssocCache cache("t", {64 * 1024, 8, 64});
    for (std::uint64_t line = 0; line < 1024; ++line)
        cache.access(line, AccessType::Data);
    std::uint64_t before = cache.residentLines();
    Rng rng(1);
    cache.disturb(0.5, rng);
    std::uint64_t after = cache.residentLines();
    EXPECT_NEAR(static_cast<double>(after),
                static_cast<double>(before) * 0.5, before * 0.1);
}

TEST(Cache, TouchDoesNotRecordStats)
{
    SetAssocCache cache("t", smallGeometry());
    cache.touch(7, AccessType::Data);
    EXPECT_EQ(cache.stats().totalAccesses(), 0u);
    EXPECT_EQ(cache.stats().totalMisses(), 0u);
    // But it does install the line.
    EXPECT_TRUE(cache.probe(7));
}

TEST(Cache, PrefetchFillsAndUsefulness)
{
    SetAssocCache cache("t", smallGeometry());
    cache.access(9, AccessType::Data, /*isPrefetch=*/true);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_EQ(cache.stats().totalAccesses(), 0u);   // pf not a demand
    EXPECT_TRUE(cache.access(9, AccessType::Data));  // demand hit
    EXPECT_EQ(cache.stats().prefetchUseful, 1u);
    // Second hit no longer counts as prefetch-useful.
    cache.access(9, AccessType::Data);
    EXPECT_EQ(cache.stats().prefetchUseful, 1u);
}

TEST(Cdp, AllocationRestrictedButHitsGlobal)
{
    SetAssocCache cache("t", smallGeometry());
    applyCdp(cache, /*dataWays=*/2, /*codeWays=*/2);
    EXPECT_EQ(cache.wayMask(AccessType::Data), 0b0011u);
    EXPECT_EQ(cache.wayMask(AccessType::Code), 0b1100u);

    std::uint64_t sets = cache.sets();
    // Install 2 data lines in one set (fills the data ways)...
    cache.access(3 + 0 * sets, AccessType::Data);
    cache.access(3 + 1 * sets, AccessType::Data);
    // ...a third data line must evict a *data* line.
    cache.access(3 + 2 * sets, AccessType::Data);
    int dataResident = cache.probe(3) + cache.probe(3 + sets) +
                       cache.probe(3 + 2 * sets);
    EXPECT_EQ(dataResident, 2);

    // Code lines occupy the other partition untouched.
    cache.access(3 + 8 * sets, AccessType::Code);
    cache.access(3 + 9 * sets, AccessType::Code);
    EXPECT_TRUE(cache.probe(3 + 8 * sets));
    EXPECT_TRUE(cache.probe(3 + 9 * sets));

    // A hit may land in any way regardless of type: code access to a
    // data-resident line hits.
    EXPECT_TRUE(cache.access(3 + 2 * sets, AccessType::Code));
}

TEST(Cdp, ClearRestoresSharing)
{
    SetAssocCache cache("t", smallGeometry());
    applyCdp(cache, 2, 2);
    clearRdt(cache);
    EXPECT_EQ(cache.wayMask(AccessType::Data), 0b1111u);
    EXPECT_EQ(cache.wayMask(AccessType::Code), 0b1111u);
}

TEST(Cat, CapacityShrinksWithWays)
{
    SetAssocCache four("t4", smallGeometry());
    SetAssocCache one("t1", smallGeometry());
    applyCat(one, 1);
    for (std::uint64_t line = 0; line < 512; ++line) {
        four.access(line, AccessType::Data);
        one.access(line, AccessType::Data);
    }
    EXPECT_NEAR(static_cast<double>(one.residentLines()),
                static_cast<double>(four.residentLines()) / 4.0, 4.0);
}

TEST(CatDeathTest, InvalidWayCountIsFatal)
{
    SetAssocCache cache("t", smallGeometry());
    EXPECT_EXIT(applyCat(cache, 0), testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(applyCat(cache, 5), testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(applyCdp(cache, 3, 2), testing::ExitedWithCode(1),
                "must cover");
}

TEST(Srrip, ScanResistance)
{
    // A reused working set should survive a one-shot scan under SRRIP
    // but be damaged under LRU.
    CacheGeometry geometry{32 * 1024, 8, 64};   // 512 lines
    SetAssocCache srrip("srrip", geometry, ReplPolicy::Srrip);

    // Establish a hot set of 256 lines, re-referenced (promoted).
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t line = 0; line < 256; ++line)
            srrip.access(line, AccessType::Data);

    // A scan of 2048 never-reused lines with the hot set still being
    // touched along the way (as live code/data is).
    std::uint64_t hot = 0;
    for (std::uint64_t line = 10000; line < 12048; ++line) {
        srrip.access(line, AccessType::Data);
        if ((line & 3) == 0)
            srrip.access(hot++ % 256, AccessType::Data);
    }

    int survivors = 0;
    for (std::uint64_t line = 0; line < 256; ++line)
        survivors += srrip.probe(line);
    // SRRIP keeps the majority of the re-referenced hot set; a strict
    // LRU under the same interleaving loses far more.
    SetAssocCache lru("lru", geometry, ReplPolicy::Lru);
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t line = 0; line < 256; ++line)
            lru.access(line, AccessType::Data);
    hot = 0;
    for (std::uint64_t line = 10000; line < 12048; ++line) {
        lru.access(line, AccessType::Data);
        if ((line & 3) == 0)
            lru.access(hot++ % 256, AccessType::Data);
    }
    int lruSurvivors = 0;
    for (std::uint64_t line = 0; line < 256; ++line)
        lruSurvivors += lru.probe(line);
    // A re-referenced hot set retains a substantial residue through the
    // scan, and SRRIP is at least competitive with LRU; its decisive
    // edges — distant insertion for prefetches and promote-on-reuse —
    // are asserted directly in the tests below.
    EXPECT_GT(survivors, 80);
    EXPECT_GE(survivors, lruSurvivors);
}

TEST(Srrip, PrefetchInsertedAtDistantRrpv)
{
    CacheGeometry geometry{4096, 4, 64};   // 16 sets
    SetAssocCache cache("t", geometry, ReplPolicy::Srrip);
    std::uint64_t sets = cache.sets();
    // Fill a set with 3 demand lines and one prefetch.
    cache.access(1 + 0 * sets, AccessType::Data);
    cache.access(1 + 1 * sets, AccessType::Data);
    cache.access(1 + 2 * sets, AccessType::Data);
    cache.access(1 + 3 * sets, AccessType::Data, /*isPrefetch=*/true);
    // The next miss should evict the never-referenced prefetch first.
    cache.access(1 + 4 * sets, AccessType::Data);
    EXPECT_FALSE(cache.probe(1 + 3 * sets));
    EXPECT_TRUE(cache.probe(1 + 0 * sets));
}

/** Property sweep: miss rate decreases (weakly) with capacity. */
class CacheCapacitySweep : public testing::TestWithParam<int>
{
};

TEST_P(CacheCapacitySweep, MonotoneMissRate)
{
    int kib = GetParam();
    SetAssocCache small("s", {static_cast<std::uint64_t>(kib) << 10, 8, 64});
    SetAssocCache big("b", {static_cast<std::uint64_t>(kib * 4) << 10, 8, 64});
    Rng rng(99);
    ZipfDistribution zipf(1 << 14, 1.0);
    for (int i = 0; i < 60000; ++i) {
        std::uint64_t line = zipf.sample(rng);
        small.access(line, AccessType::Data);
        big.access(line, AccessType::Data);
    }
    EXPECT_LE(big.stats().totalMisses(), small.stats().totalMisses());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheCapacitySweep,
                         testing::Values(8, 16, 32, 64, 128));

} // namespace
} // namespace softsku
