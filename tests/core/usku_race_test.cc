/**
 * @file
 * Statistical harness for the adaptive best-arm search (--search=race
 * and --search=halving).  Three properties anchor the feature:
 *
 *  1. Winner agreement: racing composes the SAME soft SKU as the
 *     fixed protocol on every MIPS-tunable service x platform pair,
 *     while spending a fraction of the paper's fixed per-comparison
 *     sample budget.  (cache1/cache2 are excluded by construction:
 *     their service profiles set mipsValidMetric = false — Cache runs
 *     exception handlers under QoS violations, so MIPS is not a valid
 *     throughput proxy and buildTestPlan() refuses to tune them.)
 *  2. Determinism: race/halving reports are byte-identical across
 *     worker thread counts, benign and under fault injection.
 *  3. Persistence: a warm rerun of a raced sweep replays every chunk
 *     (and the validation phase) from the on-disk cache and reports
 *     byte-identically to the cold measured run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/usku.hh"
#include "services/services.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

InputSpec
raceSpec(const std::string &service, const std::string &platform,
         SearchMode search, std::vector<KnobId> knobs = {})
{
    InputSpec spec;
    spec.microservice = service;
    spec.platform = platform;
    spec.search = search;
    if (!knobs.empty())
        spec.knobs = std::move(knobs);
    spec.validationDurationSec = 3600.0;
    spec.normalize();
    return spec;
}

/** Full pipeline in a fresh environment; returns the serialized report. */
std::string
runSerialized(const InputSpec &spec, unsigned jobs,
              const FaultPlan &plan = FaultPlan{})
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = jobs;
    if (plan.any()) {
        env.setFaults(plan, /*faultSeed=*/9);
        options.robustness = RobustnessPolicy::hostile();
    }
    Usku tool(env, options);
    return tool.run(spec).toJson().dump(2);
}

/** Live samples the race paid across all non-baseline sweep arms. */
std::uint64_t
samplesPaid(const UskuReport &report)
{
    std::uint64_t paid = 0;
    for (const KnobSweep &sweep : report.map.sweeps)
        for (const KnobOutcome &outcome : sweep.outcomes)
            if (!outcome.isBaseline)
                paid += outcome.samples;
    return paid;
}

std::uint64_t
armCount(const UskuReport &report)
{
    std::uint64_t arms = 0;
    for (const KnobSweep &sweep : report.map.sweeps)
        for (const KnobOutcome &outcome : sweep.outcomes)
            if (!outcome.isBaseline)
                arms += 1;
    return arms;
}

// The acceptance matrix: every service whose profile admits MIPS as a
// throughput proxy, on both platforms.  One shared environment per
// pair so fixed and race draw from identical truth streams.
TEST(UskuRace, WinnerMatchesFixedOnEveryTunableServicePlatform)
{
    const char *services[] = {"web", "feed1", "feed2", "ads1", "ads2"};
    const char *platforms[] = {"skylake18", "broadwell16"};

    std::uint64_t totalPaid = 0;
    std::uint64_t totalBudget = 0;
    std::uint64_t totalEliminated = 0;

    for (const char *service : services) {
        for (const char *platform : platforms) {
            ProductionEnvironment env(serviceByName(service),
                                      platformByName(platform), 1,
                                      fastOptions());
            UskuOptions options;
            options.jobs = 0;  // hardware concurrency
            Usku tool(env, options);

            InputSpec fixed =
                raceSpec(service, platform, SearchMode::Fixed);
            UskuReport fixedReport = tool.run(fixed);

            InputSpec race =
                raceSpec(service, platform, SearchMode::Race);
            UskuReport raceReport = tool.run(race);

            // Racing may stop arms early, never change the winner.
            EXPECT_EQ(raceReport.softSku, fixedReport.softSku)
                << service << "/" << platform;

            totalPaid += samplesPaid(raceReport);
            totalBudget +=
                armCount(raceReport) * race.maxSamplesPerTest;
            for (const KnobSweep &sweep : raceReport.map.sweeps)
                for (const KnobOutcome &outcome : sweep.outcomes)
                    totalEliminated +=
                        outcome.eliminated ? 1 : 0;
        }
    }

    // The paper's protocol budgets every paired comparison at the full
    // fixed cap (maxSamplesPerTest).  Racing must compose each SKU for
    // at most a fifth of that — in practice it is far below, because
    // losers fall at the first elimination round.
    ASSERT_GT(totalPaid, 0u);
    EXPECT_GE(totalBudget, 5 * totalPaid)
        << "race paid " << totalPaid << " of " << totalBudget;
    EXPECT_GT(totalEliminated, 0u);
}

TEST(UskuRace, RaceReportIdenticalAcrossThreadCounts)
{
    InputSpec spec = raceSpec("web", "skylake18", SearchMode::Race,
                              {KnobId::Thp, KnobId::Shp});
    std::string serial = runSerialized(spec, 1);
    EXPECT_EQ(runSerialized(spec, 2), serial);
    EXPECT_EQ(runSerialized(spec, 8), serial);
}

TEST(UskuRace, HostileRaceReportIdenticalAcrossThreadCounts)
{
    InputSpec spec = raceSpec("web", "skylake18", SearchMode::Race,
                              {KnobId::Thp, KnobId::Shp});
    FaultPlan plan = FaultPlan::fromSpec("moderate");
    std::string serial = runSerialized(spec, 1, plan);
    EXPECT_EQ(runSerialized(spec, 2, plan), serial);
    EXPECT_EQ(runSerialized(spec, 8, plan), serial);
}

TEST(UskuRace, HalvingReportIdenticalAcrossThreadCounts)
{
    InputSpec spec = raceSpec("web", "skylake18", SearchMode::Halving,
                              {KnobId::Thp, KnobId::Shp});
    std::string serial = runSerialized(spec, 1);
    EXPECT_EQ(runSerialized(spec, 2), serial);
    EXPECT_EQ(runSerialized(spec, 8), serial);
}

TEST(UskuRace, RaceRecordsPullAndEarlyStopCounters)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = 2;
    Usku tool(env, options);
    UskuReport report =
        tool.run(raceSpec("web", "skylake18", SearchMode::Race));
    std::string metrics = report.metrics.toJson().dump(2);
    EXPECT_NE(metrics.find("sweep.arm_pulls"), std::string::npos);
    EXPECT_NE(metrics.find("sweep.early_stops"), std::string::npos);
    // Early-stopped arms are flagged and report their saved budget.
    bool sawSaved = false;
    for (const KnobSweep &sweep : report.map.sweeps)
        for (const KnobOutcome &outcome : sweep.outcomes)
            sawSaved = sawSaved || outcome.samplesSaved > 0;
    EXPECT_TRUE(sawSaved);
}

TEST(UskuRace, WarmRerunFromPersistentCacheIsByteIdentical)
{
    namespace fs = std::filesystem;
    fs::path cacheDir =
        fs::path(::testing::TempDir()) / "softsku-race-cache";
    fs::remove_all(cacheDir);

    InputSpec spec = raceSpec("web", "skylake18", SearchMode::Race,
                              {KnobId::Thp, KnobId::Shp});

    auto runCached = [&](UskuReport &out) {
        ProductionEnvironment env(webProfile(), skylake18(), 1,
                                  fastOptions());
        UskuOptions options;
        options.jobs = 2;
        options.cacheDir = cacheDir.string();
        Usku tool(env, options);
        out = tool.run(spec);
    };

    UskuReport cold;
    runCached(cold);
    EXPECT_EQ(cold.cacheHits, 0u);
    ASSERT_GT(cold.abComparisons, 0u);

    // The warm tool replays every race chunk — and the validation
    // phase — from disk: zero live measurement, identical bytes.  The
    // race cache's unit is the chunk, so hits count chunks and exceed
    // the comparison count.
    UskuReport warm;
    runCached(warm);
    EXPECT_GE(warm.cacheHits, warm.abComparisons);
    EXPECT_GT(warm.abComparisons, 0u);
    EXPECT_EQ(warm.toJson().dump(2), cold.toJson().dump(2));

    fs::remove_all(cacheDir);
}

} // namespace
} // namespace softsku
