/** @file Tests for knob domains, applicability, and the input spec. */

#include <gtest/gtest.h>

#include "core/configurator.hh"
#include "core/design_space.hh"
#include "core/input_spec.hh"
#include "services/services.hh"

namespace softsku {
namespace {

TEST(DesignSpace, DomainsMatchPaperSweeps)
{
    auto core = knobDomain(KnobId::CoreFrequency, skylake18(),
                           webProfile());
    ASSERT_EQ(core.size(), 7u);   // 1.6..2.2 by 0.1
    EXPECT_DOUBLE_EQ(core.front().number, 1.6);
    EXPECT_DOUBLE_EQ(core.back().number, 2.2);

    // AVX cap: Ads1 tops out at 2.0.
    auto coreAds = knobDomain(KnobId::CoreFrequency, skylake18(),
                              ads1Profile());
    EXPECT_DOUBLE_EQ(coreAds.back().number, 2.0);

    auto uncore = knobDomain(KnobId::UncoreFrequency, skylake18(),
                             webProfile());
    ASSERT_EQ(uncore.size(), 5u);

    auto cdp = knobDomain(KnobId::Cdp, skylake18(), webProfile());
    EXPECT_EQ(cdp.size(), 11u);   // off + 10 splits of 11 ways
    EXPECT_FALSE(cdp.front().cdp.enabled);
    EXPECT_EQ(cdp.back().cdp.dataWays, 10);

    auto shp = knobDomain(KnobId::Shp, skylake18(), webProfile());
    ASSERT_EQ(shp.size(), 7u);   // 0..600 by 100
    EXPECT_DOUBLE_EQ(shp.back().number, 600);

    EXPECT_EQ(knobDomain(KnobId::Prefetcher, skylake18(),
                         webProfile()).size(), 5u);
    EXPECT_EQ(knobDomain(KnobId::Thp, skylake18(), webProfile()).size(),
              3u);

    auto cores = knobDomain(KnobId::CoreCount, skylake18(), webProfile());
    EXPECT_DOUBLE_EQ(cores.front().number, 2);
    EXPECT_DOUBLE_EQ(cores.back().number, 18);
}

TEST(DesignSpace, ApplicabilityRules)
{
    std::string reason;
    // Ads1: no SHP API use and no reboot tolerance.
    EXPECT_FALSE(knobApplicable(KnobId::Shp, skylake18(), ads1Profile(),
                                &reason));
    EXPECT_FALSE(knobApplicable(KnobId::CoreCount, skylake18(),
                                ads1Profile(), &reason));
    EXPECT_NE(reason.find("reboot"), std::string::npos);
    // Non-reboot knobs stay applicable.
    EXPECT_TRUE(knobApplicable(KnobId::Thp, skylake18(), ads1Profile()));
    EXPECT_TRUE(knobApplicable(KnobId::Cdp, skylake18(), ads1Profile()));
    // The memory-tier knobs exist only on far-memory platforms.
    for (KnobId id :
         {KnobId::Mba, KnobId::TierPolicyKnob, KnobId::FarMemRatio}) {
        EXPECT_FALSE(knobApplicable(id, skylake18(), webProfile(),
                                    &reason));
        EXPECT_NE(reason.find("far-memory"), std::string::npos);
        EXPECT_TRUE(knobApplicable(id, skylake18cxl(), webProfile()));
    }
    // Web on a far-memory platform can sweep everything.
    for (KnobId id : allKnobIds())
        EXPECT_TRUE(knobApplicable(id, skylake18cxl(), webProfile()));
}

TEST(DesignSpace, KnobValueApplyAndExtract)
{
    KnobConfig config;
    for (KnobId id : allKnobIds()) {
        for (const KnobValue &value :
             knobDomain(id, skylake18(), webProfile())) {
            KnobConfig modified = config;
            value.applyTo(modified);
            KnobValue extracted = KnobValue::fromConfig(id, modified);
            KnobConfig roundTrip = config;
            extracted.applyTo(roundTrip);
            EXPECT_EQ(roundTrip, modified) << value.label;
        }
    }
}

TEST(Configurator, FiltersInapplicableKnobs)
{
    InputSpec spec;
    spec.microservice = "ads1";
    spec.platform = "skylake18";
    spec.normalize();
    TestPlan plan = buildTestPlan(spec, skylake18(), ads1Profile());
    EXPECT_EQ(plan.knobs.size(), 5u);      // 7 minus core_count and shp
    EXPECT_EQ(plan.skipped.size(), 2u);
    for (const KnobPlan &knobPlan : plan.knobs) {
        EXPECT_NE(knobPlan.id, KnobId::Shp);
        EXPECT_NE(knobPlan.id, KnobId::CoreCount);
    }
    EXPECT_GT(plan.totalCandidates(), 20u);
}

TEST(ConfiguratorDeathTest, RefusesMipsInvalidServices)
{
    InputSpec spec;
    spec.microservice = "cache1";
    spec.platform = "skylake20";
    spec.normalize();
    EXPECT_EXIT(buildTestPlan(spec, skylake20(), cache1Profile()),
                testing::ExitedWithCode(1), "not a valid throughput");
}

TEST(InputSpec, JsonRoundTrip)
{
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = SweepMode::HillClimb;
    spec.knobs = {KnobId::Cdp, KnobId::Thp};
    spec.confidence = 0.99;
    spec.maxSamplesPerTest = 5000;
    spec.seed = 77;

    InputSpec parsed = InputSpec::fromJson(spec.toJson());
    EXPECT_EQ(parsed.microservice, "web");
    EXPECT_EQ(parsed.sweep, SweepMode::HillClimb);
    ASSERT_EQ(parsed.knobs.size(), 2u);
    EXPECT_EQ(parsed.knobs[1], KnobId::Thp);
    EXPECT_DOUBLE_EQ(parsed.confidence, 0.99);
    EXPECT_EQ(parsed.seed, 77u);
}

TEST(InputSpec, ParseFromText)
{
    InputSpec spec = InputSpec::parse(R"({
        "microservice": "web",
        "platform": "skylake18",
        "sweep": {"mode": "independent", "knobs": ["thp", "shp"]}
    })");
    EXPECT_EQ(spec.microservice, "web");
    ASSERT_EQ(spec.knobs.size(), 2u);
    EXPECT_EQ(spec.knobs[0], KnobId::Thp);
}

TEST(InputSpecDeathTest, MalformedInputsFatal)
{
    EXPECT_EXIT(InputSpec::parse("{nope"), testing::ExitedWithCode(1),
                "input file");
    InputSpec spec;
    spec.platform = "skylake18";
    EXPECT_EXIT(spec.validate(), testing::ExitedWithCode(1),
                "microservice");
    spec.microservice = "web";
    spec.confidence = 1.5;
    EXPECT_EXIT(spec.validate(), testing::ExitedWithCode(1), "confidence");
}

TEST(InputSpec, NormalizeFillsAllKnobs)
{
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.normalize();
    // Platform-gated knobs do not exist here: the legacy seven only.
    EXPECT_EQ(spec.knobs.size(), 7u);

    InputSpec cxl;
    cxl.microservice = "web";
    cxl.platform = "skylake18cxl";
    cxl.normalize();
    EXPECT_EQ(cxl.knobs.size(), 10u);

    // Unknown platforms fall back to the ungated set; the platform
    // lookup itself reports the error later.
    InputSpec unknown;
    unknown.microservice = "web";
    unknown.platform = "epyc";
    unknown.normalize();
    EXPECT_EQ(unknown.knobs.size(), 7u);
}

} // namespace
} // namespace softsku
