/**
 * @file
 * Unit tests for the persistent A/B cache's integrity guarantees: a
 * damaged, stale, or foreign file must always degrade to a clean cold
 * run (never a crash, never a smuggled result), and every double must
 * survive the hex round trip bit-for-bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/ab_cache.hh"
#include "stats/rng.hh"
#include "stats/students_t.hh"

namespace softsku {
namespace {

namespace fs = std::filesystem;

std::uint64_t
bitsOf(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
fromBits(std::uint64_t bits)
{
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

TEST(AbCacheHex, RoundTripsSpecialValues)
{
    const double specials[] = {
        0.0,
        -0.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),       // smallest normal
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon(),
        -1.0 / 3.0,
    };
    for (double value : specials) {
        double back = 0.0;
        ASSERT_TRUE(bitsFromHex(hexBits(value), back)) << hexBits(value);
        // Bit equality, not ==: it distinguishes -0 from +0 and holds
        // for NaN.
        EXPECT_EQ(bitsOf(back), bitsOf(value)) << hexBits(value);
    }
}

TEST(AbCacheHex, RoundTripFuzzOverTheFullExponentRange)
{
    Rng rng(1234);
    for (int i = 0; i < 1000; ++i) {
        // Uniform over bit patterns: every exponent, both signs, plenty
        // of denormals/NaN payloads among the draws.
        auto word16 = [&rng]() {
            auto w = static_cast<std::uint64_t>(rng.uniform() * 65536.0);
            return std::min<std::uint64_t>(w, 65535);
        };
        std::uint64_t bits = (word16() << 48) ^ (word16() << 32) ^
                             (word16() << 16) ^ word16();
        double value = fromBits(bits);
        double back = 0.0;
        ASSERT_TRUE(bitsFromHex(hexBits(value), back)) << hexBits(value);
        EXPECT_EQ(bitsOf(back), bits) << hexBits(value);
    }
}

TEST(AbCacheHex, RejectsMalformedText)
{
    double out = 0.0;
    EXPECT_FALSE(bitsFromHex("", out));
    EXPECT_FALSE(bitsFromHex("0x", out));
    EXPECT_FALSE(bitsFromHex("3ff0000000000000", out));    // no prefix
    EXPECT_FALSE(bitsFromHex("0x3ff000000000000", out));   // too short
    EXPECT_FALSE(bitsFromHex("0x3ff00000000000000", out)); // too long
    EXPECT_FALSE(bitsFromHex("0x3FF0000000000000", out));  // uppercase
    EXPECT_FALSE(bitsFromHex("0x3ff000000000000g", out));  // bad digit
}

/** A synthetic measured result with non-trivial statistics. */
ABTestResult
sampleResult(std::uint64_t seed)
{
    Rng rng(seed);
    ABTestResult result;
    for (int i = 0; i < 64; ++i) {
        double a = rng.gaussian(1000.0, 25.0);
        double b = rng.gaussian(1010.0, 25.0);
        result.samplesA.add(a);
        result.samplesB.add(b);
        result.pairedDiffs.add(b / a - 1.0);
        ++result.samplesUsed;
    }
    result.samplesAccepted = result.samplesUsed;
    result.welch = pairedTTest(result.pairedDiffs, 0.95);
    result.significant = result.welch.significant;
    result.elapsedSec = 1920.0;
    return result;
}

struct CacheDir
{
    fs::path dir;
    CacheDir(const char *name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
    }
    ~CacheDir() { fs::remove_all(dir); }
};

TEST(AbCachePersist, StoreThenLoadRoundTripsBitForBit)
{
    CacheDir cache("softsku-abcache-roundtrip");
    const std::string context = "schema=2 test-context roundtrip";

    std::unordered_map<std::string, ABTestResult> memo;
    memo.emplace("base vs cand #c0", sampleResult(3));
    memo.emplace("base vs cand #c1", sampleResult(4));

    ValidationCache validation;
    ValidationChunk chunk;
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
        double ref = rng.gaussian(900.0, 10.0);
        double sku = rng.gaussian(930.0, 10.0);
        chunk.diffs.add(sku / ref - 1.0);
        chunk.refStat.add(ref);
        chunk.points.push_back({i * 30.0, ref, sku});
        ++chunk.samples;
    }
    chunk.dropped = 2;
    chunk.rejected = 1;
    validation.emplace("validate #c0", chunk);

    ASSERT_TRUE(storeAbCache(cache.dir.string(), context, memo,
                             &validation));

    std::unordered_map<std::string, ABTestResult> loaded;
    ValidationCache loadedValidation;
    EXPECT_EQ(loadAbCache(cache.dir.string(), context, loaded,
                          &loadedValidation),
              memo.size());
    ASSERT_EQ(loaded.size(), memo.size());
    for (const auto &[key, result] : memo) {
        ASSERT_TRUE(loaded.count(key)) << key;
        const ABTestResult &got = loaded.at(key);
        EXPECT_EQ(bitsOf(got.pairedDiffs.mean()),
                  bitsOf(result.pairedDiffs.mean()));
        EXPECT_EQ(bitsOf(got.welch.pValue), bitsOf(result.welch.pValue));
        EXPECT_EQ(got.samplesUsed, result.samplesUsed);
        EXPECT_EQ(got.significant, result.significant);
    }
    ASSERT_EQ(loadedValidation.size(), 1u);
    const ValidationChunk &got = loadedValidation.at("validate #c0");
    EXPECT_EQ(bitsOf(got.diffs.mean()), bitsOf(chunk.diffs.mean()));
    EXPECT_EQ(got.points.size(), chunk.points.size());
    EXPECT_EQ(bitsOf(got.points[7][2]), bitsOf(chunk.points[7][2]));
    EXPECT_EQ(got.dropped, 2u);
    EXPECT_EQ(got.rejected, 1u);
}

TEST(AbCachePersist, TruncatedFileIsACleanMiss)
{
    CacheDir cache("softsku-abcache-truncated");
    const std::string context = "schema=2 test-context truncated";

    std::unordered_map<std::string, ABTestResult> memo;
    memo.emplace("base vs cand #c0", sampleResult(6));
    ASSERT_TRUE(storeAbCache(cache.dir.string(), context, memo));

    const std::string path =
        abCacheFilePath(cache.dir.string(), context);
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    ASSERT_GT(bytes.size(), 100u);
    // Chop mid-entry: the JSON no longer parses.
    std::ofstream(path, std::ios::binary)
        << bytes.substr(0, bytes.size() / 2);

    std::unordered_map<std::string, ABTestResult> loaded;
    EXPECT_EQ(loadAbCache(cache.dir.string(), context, loaded), 0u);
    EXPECT_TRUE(loaded.empty());
}

TEST(AbCachePersist, WrongSchemaVersionIsACleanMiss)
{
    CacheDir cache("softsku-abcache-schema");
    const std::string context = "schema=2 test-context schema";

    std::unordered_map<std::string, ABTestResult> memo;
    memo.emplace("base vs cand #c0", sampleResult(7));
    ASSERT_TRUE(storeAbCache(cache.dir.string(), context, memo));

    const std::string path =
        abCacheFilePath(cache.dir.string(), context);
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    const std::string tag =
        "\"schema_version\": " + std::to_string(kAbCacheSchemaVersion);
    auto at = bytes.find(tag);
    ASSERT_NE(at, std::string::npos);
    // A version-1 file (or any future version) is ignored with a
    // warning — exactly a cold run, never a parse of foreign layout.
    bytes.replace(at, tag.size(), "\"schema_version\": 1");
    std::ofstream(path, std::ios::binary) << bytes;

    std::unordered_map<std::string, ABTestResult> loaded;
    EXPECT_EQ(loadAbCache(cache.dir.string(), context, loaded), 0u);
    EXPECT_TRUE(loaded.empty());
}

TEST(AbCachePersist, ContextMismatchIsACleanMiss)
{
    CacheDir cache("softsku-abcache-context");
    const std::string context = "schema=2 test-context original";

    std::unordered_map<std::string, ABTestResult> memo;
    memo.emplace("base vs cand #c0", sampleResult(8));
    ASSERT_TRUE(storeAbCache(cache.dir.string(), context, memo));

    // Simulate a filename-hash collision (or a hand-renamed file): the
    // file lands at the path of a *different* context.  The verbatim
    // context check must refuse it.
    const std::string other = "schema=2 test-context other-seed";
    fs::copy_file(abCacheFilePath(cache.dir.string(), context),
                  abCacheFilePath(cache.dir.string(), other));

    std::unordered_map<std::string, ABTestResult> loaded;
    EXPECT_EQ(loadAbCache(cache.dir.string(), other, loaded), 0u);
    EXPECT_TRUE(loaded.empty());
    // The honest context still loads.
    EXPECT_EQ(loadAbCache(cache.dir.string(), context, loaded), 1u);
}

TEST(AbCachePersist, InMemoryResultsAreNeverOverwritten)
{
    CacheDir cache("softsku-abcache-priority");
    const std::string context = "schema=2 test-context priority";

    std::unordered_map<std::string, ABTestResult> memo;
    memo.emplace("base vs cand #c0", sampleResult(9));
    ASSERT_TRUE(storeAbCache(cache.dir.string(), context, memo));

    std::unordered_map<std::string, ABTestResult> loaded;
    ABTestResult live = sampleResult(10);
    loaded.emplace("base vs cand #c0", live);
    // The key already exists in memory: the disk entry must not win.
    EXPECT_EQ(loadAbCache(cache.dir.string(), context, loaded), 0u);
    EXPECT_EQ(bitsOf(loaded.at("base vs cand #c0").pairedDiffs.mean()),
              bitsOf(live.pairedDiffs.mean()));
}

TEST(AbCachePersist, MissingDirectoryIsACleanMiss)
{
    std::unordered_map<std::string, ABTestResult> loaded;
    EXPECT_EQ(loadAbCache((fs::path(::testing::TempDir()) /
                           "softsku-abcache-nonexistent")
                              .string(),
                          "any-context", loaded),
              0u);
    EXPECT_TRUE(loaded.empty());
}

} // namespace
} // namespace softsku
