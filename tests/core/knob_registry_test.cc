/** @file Tests for the knob descriptor registry. */

#include <gtest/gtest.h>

#include "core/knob_registry.hh"
#include "services/services.hh"

namespace softsku {
namespace {

/** A config with every legacy knob off its default. */
KnobConfig
legacyExample()
{
    KnobConfig cfg;
    cfg.coreFreqGHz = 1.8;
    cfg.uncoreFreqGHz = 1.5;
    cfg.activeCores = 10;
    cfg.cdp = {true, 6, 5};
    cfg.prefetch = PrefetcherPreset::DcuOnly;
    cfg.thp = ThpMode::Never;
    cfg.shpCount = 400;
    return cfg;
}

TEST(KnobRegistry, CoversEveryKnobIdExactlyOnce)
{
    EXPECT_EQ(knobRegistry().size(), 10u);
    for (KnobId id : allKnobIds()) {
        const KnobDescriptor &d = knobDescriptor(id);
        EXPECT_EQ(d.id, id);
        EXPECT_EQ(findKnobDescriptor(d.key), &d) << d.key;
        // Every hook is populated — no partially wired descriptors.
        EXPECT_NE(d.domain, nullptr) << d.key;
        EXPECT_NE(d.apply, nullptr) << d.key;
        EXPECT_NE(d.capture, nullptr) << d.key;
        EXPECT_NE(d.writeJson, nullptr) << d.key;
        EXPECT_NE(d.readJson, nullptr) << d.key;
        EXPECT_NE(d.describeFragment, nullptr) << d.key;
        EXPECT_STRNE(d.displayName, "") << d.key;
    }
    EXPECT_EQ(findKnobDescriptor("bogus"), nullptr);
}

TEST(KnobRegistry, KeyListNamesEveryKnob)
{
    std::string keys = knobKeyList();
    for (const KnobDescriptor &d : knobRegistry())
        EXPECT_NE(keys.find(d.key), std::string::npos) << d.key;
}

/**
 * Property: for every knob, every domain value survives
 * apply → capture → JSON → parse → capture unchanged.  The far-memory
 * platform makes every knob's domain meaningful.
 */
TEST(KnobRegistry, DomainValuesRoundTripThroughJson)
{
    const PlatformSpec &platform = skylake18cxl();
    const WorkloadProfile &profile = webProfile();
    for (KnobId id : allKnobIds()) {
        for (const KnobValue &value : knobDomain(id, platform, profile)) {
            KnobConfig config;
            value.applyTo(config);
            KnobConfig parsed = KnobConfig::fromJson(config.toJson());
            EXPECT_EQ(parsed, config)
                << knobKey(id) << " = " << value.label;
            EXPECT_EQ(KnobValue::fromConfig(id, parsed),
                      KnobValue::fromConfig(id, config))
                << knobKey(id) << " = " << value.label;
        }
    }
}

TEST(KnobRegistry, LegacyDescribeStringIsStable)
{
    // The exact pre-registry format, byte for byte — memo and cache
    // keys depend on it.
    EXPECT_EQ(legacyExample().describe(),
              "core=1.8GHz uncore=1.5GHz cores=10 cdp={6d,5c} "
              "pf=dcu_only thp=never shp=400");
    EXPECT_EQ(KnobConfig{}.describe(),
              "core=2.2GHz uncore=1.8GHz cores=all cdp=off pf=all_on "
              "thp=always shp=0");
}

TEST(KnobRegistry, MemoryTierFragmentsAppendAfterLegacyKnobs)
{
    KnobConfig cfg = legacyExample();
    cfg.mbaPercent = 50;
    cfg.tierPolicy = TierPolicy::Balanced;
    cfg.farMemRatio = 0.25;
    EXPECT_EQ(cfg.describe(),
              "core=1.8GHz uncore=1.5GHz cores=10 cdp={6d,5c} "
              "pf=dcu_only thp=never shp=400 mba=50 tier=balanced "
              "far=0.25");
}

TEST(KnobRegistry, LegacyJsonEmitsExactlySevenKeys)
{
    Json doc = legacyExample().toJson();
    ASSERT_TRUE(doc.contains("knobs"));
    const Json &knobs = doc.at("knobs");
    EXPECT_EQ(knobs.size(), 7u);
    for (const char *key : {"core_freq", "uncore_freq", "core_count",
                            "cdp", "prefetcher", "thp", "shp"}) {
        EXPECT_TRUE(knobs.contains(key)) << key;
    }
}

TEST(KnobRegistry, MemoryTierJsonKeysAppearOnlyWhenNonDefault)
{
    KnobConfig cfg;
    cfg.mbaPercent = 70;
    cfg.tierPolicy = TierPolicy::Aggressive;
    cfg.farMemRatio = 0.4;
    const Json knobs = cfg.toJson().at("knobs");
    EXPECT_EQ(knobs.numberOr("mba", 0), 70);
    EXPECT_EQ(knobs.stringOr("tier_policy", ""), "aggressive");
    EXPECT_DOUBLE_EQ(knobs.numberOr("far_mem_ratio", 0.0), 0.4);

    KnobConfig parsed = KnobConfig::fromJson(cfg.toJson());
    EXPECT_EQ(parsed, cfg);
}

TEST(KnobRegistry, MemoryTierKnobsGateOnFarMemoryPlatforms)
{
    for (KnobId id :
         {KnobId::Mba, KnobId::TierPolicyKnob, KnobId::FarMemRatio}) {
        const KnobDescriptor &d = knobDescriptor(id);
        ASSERT_NE(d.availableOn, nullptr) << d.key;
        EXPECT_FALSE(d.availableOn(skylake18())) << d.key;
        EXPECT_FALSE(d.availableOn(broadwell16())) << d.key;
        EXPECT_TRUE(d.availableOn(skylake18cxl())) << d.key;
        EXPECT_FALSE(d.requiresReboot) << d.key;
    }
    // Legacy knobs carry no availability gate.
    EXPECT_EQ(knobDescriptor(KnobId::Thp).availableOn, nullptr);
}

TEST(KnobRegistry, FlatV2DocumentsStillParse)
{
    // A schema-2 report fragment, exactly as PR-8-era tools wrote it.
    auto [doc, ok] = Json::parse(R"({
        "core_freq_ghz": 1.8,
        "uncore_freq_ghz": 1.5,
        "active_cores": 10,
        "cdp": {"enabled": true, "data_ways": 6, "code_ways": 5},
        "prefetcher": "dcu_only",
        "thp": "never",
        "shp_count": 400
    })");
    ASSERT_TRUE(ok);
    KnobConfig parsed = KnobConfig::fromJson(doc);
    EXPECT_EQ(parsed, legacyExample());
    EXPECT_EQ(parsed.mbaPercent, 100);
    EXPECT_EQ(parsed.tierPolicy, TierPolicy::Static);
    EXPECT_DOUBLE_EQ(parsed.farMemRatio, 0.0);
}

TEST(KnobRegistryDeathTest, UnknownKeyListsValidKeys)
{
    EXPECT_EXIT(knobFromKey("bogus"), testing::ExitedWithCode(1),
                "unknown knob 'bogus'.*core_freq.*far_mem_ratio");
}

} // namespace
} // namespace softsku
