/**
 * @file
 * Fleet orchestrator regression tests: the shared-pool multi-target
 * sweep must reproduce each target's solo sequential report byte for
 * byte at any worker count, and the persistent A/B cache must serve a
 * repeat orchestration entirely from disk without changing a byte.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/orchestrator.hh"
#include "services/services.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

/** Two services on one platform, trimmed for test speed. */
std::vector<TuneTarget>
twoTargets()
{
    std::vector<TuneTarget> targets = TuneTarget::parseList(
        "web:skylake18,ads1:skylake18", fastOptions());
    for (TuneTarget &target : targets) {
        target.spec.knobs = {KnobId::Thp, KnobId::Shp};
        target.spec.validationDurationSec = 6 * 3600.0;
        target.spec.normalize();
    }
    return targets;
}

/** Solo run: one target, its own environment, strictly sequential. */
std::string
soloSerialized(const TuneTarget &target)
{
    ProductionEnvironment env(serviceByName(target.spec.microservice),
                              platformByName(target.spec.platform),
                              target.spec.seed, target.simOpts);
    UskuOptions options;
    options.jobs = 1;
    Usku tool(env, options);
    return tool.run(target.spec).toJson().dump(2);
}

std::vector<std::string>
fleetSerialized(const std::vector<TuneTarget> &targets, unsigned jobs,
                const std::string &cacheDir = {})
{
    FleetOrchestratorOptions options;
    options.jobs = jobs;
    options.cacheDir = cacheDir;
    FleetTuneResult result = FleetOrchestrator(options).tuneAll(targets);
    std::vector<std::string> serialized;
    for (const UskuReport &report : result.reports)
        serialized.push_back(report.toJson().dump(2));
    return serialized;
}

TEST(Orchestrator, ParseListSplitsAndValidates)
{
    std::vector<TuneTarget> targets = TuneTarget::parseList(
        " web:skylake18 , ads1:broadwell16 ", fastOptions());
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].spec.microservice, "web");
    EXPECT_EQ(targets[0].spec.platform, "skylake18");
    EXPECT_EQ(targets[0].name(), "web:skylake18");
    EXPECT_EQ(targets[1].name(), "ads1:broadwell16");
    EXPECT_EQ(targets[1].simOpts.measureInstructions,
              fastOptions().measureInstructions);
}

TEST(Orchestrator, SharedPoolReportsMatchSoloRunsAtAnyJobCount)
{
    std::vector<TuneTarget> targets = twoTargets();
    std::vector<std::string> solo;
    for (const TuneTarget &target : targets)
        solo.push_back(soloSerialized(target));

    // The property under test: one shared pool under both targets, at
    // several worker counts, never changes a byte of either report.
    for (unsigned jobs : {1u, 2u, 8u}) {
        std::vector<std::string> fleet = fleetSerialized(targets, jobs);
        ASSERT_EQ(fleet.size(), solo.size());
        for (size_t i = 0; i < solo.size(); ++i)
            EXPECT_EQ(fleet[i], solo[i])
                << targets[i].name() << " differs at jobs=" << jobs;
    }
}

TEST(Orchestrator, PersistentCacheServesRepeatRunByteIdentically)
{
    namespace fs = std::filesystem;
    fs::path cacheDir =
        fs::path(::testing::TempDir()) / "softsku-orch-cache";
    fs::remove_all(cacheDir);

    std::vector<TuneTarget> targets = twoTargets();

    FleetOrchestratorOptions options;
    options.jobs = 2;
    options.cacheDir = cacheDir.string();
    FleetTuneResult cold = FleetOrchestrator(options).tuneAll(targets);
    ASSERT_GT(cold.totalComparisons(), 0u);
    EXPECT_EQ(cold.totalCacheHits(), 0u);
    // One cache file per target context.
    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(cacheDir))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, targets.size());

    // A second orchestration replays every comparison from disk and
    // reports byte-identically to the measured run.
    FleetTuneResult warm = FleetOrchestrator(options).tuneAll(targets);
    ASSERT_EQ(warm.reports.size(), cold.reports.size());
    for (size_t i = 0; i < warm.reports.size(); ++i) {
        EXPECT_EQ(warm.reports[i].cacheHits,
                  warm.reports[i].abComparisons)
            << targets[i].name();
        EXPECT_GT(warm.reports[i].abComparisons, 0u);
        EXPECT_EQ(warm.reports[i].toJson().dump(2),
                  cold.reports[i].toJson().dump(2))
            << targets[i].name();
    }

    fs::remove_all(cacheDir);
}

TEST(Orchestrator, CacheIsKeyedBySeedAndFaultPlan)
{
    namespace fs = std::filesystem;
    fs::path cacheDir =
        fs::path(::testing::TempDir()) / "softsku-orch-keying";
    fs::remove_all(cacheDir);

    std::vector<TuneTarget> targets = twoTargets();
    targets.pop_back();  // one target is enough here

    FleetOrchestratorOptions options;
    options.cacheDir = cacheDir.string();
    FleetTuneResult first = FleetOrchestrator(options).tuneAll(targets);
    ASSERT_EQ(first.totalCacheHits(), 0u);

    // A different seed must not replay the seed-1 outcomes.
    std::vector<TuneTarget> reseeded = targets;
    reseeded[0].spec.seed = 7;
    FleetTuneResult other =
        FleetOrchestrator(options).tuneAll(reseeded);
    EXPECT_EQ(other.totalCacheHits(), 0u);

    // Neither must a run with faults armed.
    FleetOrchestratorOptions faulty = options;
    faulty.faults = FaultPlan::fromSpec("mild");
    FleetTuneResult hostile =
        FleetOrchestrator(faulty).tuneAll(targets);
    EXPECT_EQ(hostile.totalCacheHits(), 0u);

    fs::remove_all(cacheDir);
}

} // namespace
} // namespace softsku
