/** @file Tests for the Markdown report writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/report_writer.hh"
#include "services/services.hh"

namespace softsku {
namespace {

UskuReport
smallReport()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    static ProductionEnvironment env(webProfile(), skylake18(), 1, opts);
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.knobs = {KnobId::Thp};
    spec.validationDurationSec = 3 * 3600.0;
    spec.normalize();
    Usku tool(env);
    return tool.run(spec);
}

TEST(ReportWriter, MarkdownHasAllSections)
{
    std::string md = renderMarkdownReport(smallReport());
    for (const char *needle :
         {"# μSKU soft-SKU report: web on skylake18",
          "## Configurations", "## Design-space map",
          "## Prolonged validation", "Gain over stock",
          "| thp | THP always |", "baseline"}) {
        EXPECT_NE(md.find(needle), std::string::npos) << needle;
    }
}

TEST(ReportWriter, WritesFile)
{
    std::string path = testing::TempDir() + "usku_report.md";
    writeMarkdownReport(smallReport(), path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("soft-SKU report"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ReportWriterDeathTest, UnwritablePathIsFatal)
{
    EXPECT_EXIT(writeMarkdownReport(smallReport(),
                                    "/nonexistent-dir/report.md"),
                testing::ExitedWithCode(1), "cannot write report");
}

TEST(ReportWriter, TargetReportFileNameIsStableAndLowercased)
{
    EXPECT_EQ(targetReportFileName("web", "skylake18"),
              "web.skylake18.v" +
                  std::to_string(kReportSchemaVersion) + ".json");
    // Service casing normalizes so re-runs of "Web" and "web" land on
    // the same dashboard path.
    EXPECT_EQ(targetReportFileName("Web", "skylake18"),
              targetReportFileName("web", "skylake18"));
}

TEST(ReportWriter, SchemaV2KnobDocsStayReadable)
{
    // Dashboards may replay reports written before the v3 bump; the
    // flat v2 knob layout must keep parsing into the same config.
    auto [v2, ok] = Json::parse(R"({
        "core_freq_ghz": 2.2,
        "uncore_freq_ghz": 1.8,
        "active_cores": 0,
        "cdp": {"enabled": false, "data_ways": 0, "code_ways": 0},
        "prefetcher": "all_on",
        "thp": "always",
        "shp_count": 300
    })");
    ASSERT_TRUE(ok);
    KnobConfig parsed = KnobConfig::fromJson(v2);
    KnobConfig want;
    want.shpCount = 300;
    EXPECT_EQ(parsed, want);
    // And re-serializing produces the v3 keyed layout.
    Json v3 = parsed.toJson();
    ASSERT_TRUE(v3.contains("knobs"));
    EXPECT_EQ(KnobConfig::fromJson(v3), parsed);
}

TEST(ReportWriter, ReportJsonOmitsMemoryTierKnobsOnLegacyPlatforms)
{
    // smallReport targets skylake18 (no far tier): no memory-tier keys
    // may leak into any embedded knob config.
    Json doc = smallReport().toJson();
    std::string text = doc.dump(2);
    EXPECT_EQ(text.find("\"mba\""), std::string::npos);
    EXPECT_EQ(text.find("\"tier_policy\""), std::string::npos);
    EXPECT_EQ(text.find("\"far_mem_ratio\""), std::string::npos);
}

TEST(ReportWriter, EmitTargetReportCreatesDirAndWritesJson)
{
    std::string dir = testing::TempDir() + "emit_test_reports";
    Json doc = Json::object();
    doc.set("schema_version", Json(kReportSchemaVersion));
    doc.set("service", Json("web"));

    std::string path = emitTargetReport(dir, "web", "skylake18", doc);
    EXPECT_NE(path.find(targetReportFileName("web", "skylake18")),
              std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("\"service\""), std::string::npos);
    // Round-trips as valid JSON with the same fields.
    auto [parsed, ok] = Json::parse(buffer.str());
    ASSERT_TRUE(ok);
    EXPECT_EQ(parsed.at("service").asString(), "web");
    std::remove(path.c_str());
}

} // namespace
} // namespace softsku
