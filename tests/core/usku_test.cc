/** @file End-to-end tests for μSKU: sweeps, composition, validation. */

#include <gtest/gtest.h>

#include "core/usku.hh"
#include "services/services.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

InputSpec
spec(const char *service, const char *platform,
     std::vector<KnobId> knobs = {})
{
    InputSpec s;
    s.microservice = service;
    s.platform = platform;
    s.knobs = std::move(knobs);
    s.validationDurationSec = 6 * 3600.0;
    s.normalize();
    return s;
}

TEST(SoftSkuGenerator, ComposesPerKnobWinners)
{
    DesignSpaceMap map;
    map.baseline = productionConfig(skylake18(), webProfile());
    map.baselineMips = 10000.0;

    KnobSweep thp;
    thp.id = KnobId::Thp;
    KnobOutcome madvise;
    madvise.value = KnobValue::fromConfig(KnobId::Thp, map.baseline);
    madvise.isBaseline = true;
    KnobOutcome always;
    always.value.id = KnobId::Thp;
    always.value.thp = ThpMode::Always;
    always.value.label = "THP always";
    always.gainPercent = 2.0;
    always.significant = true;
    KnobOutcome never;
    never.value.id = KnobId::Thp;
    never.value.thp = ThpMode::Never;
    never.gainPercent = 5.0;
    never.significant = false;   // not significant: must be ignored
    thp.outcomes = {madvise, always, never};
    map.sweeps.push_back(thp);

    SoftSkuGenerator generator;
    KnobConfig composed = generator.compose(map);
    EXPECT_EQ(composed.thp, ThpMode::Always);
    EXPECT_EQ(composed.shpCount, map.baseline.shpCount);
}

TEST(SoftSkuGenerator, BaselineWinsWhenNothingSignificant)
{
    DesignSpaceMap map;
    map.baseline = productionConfig(skylake18(), webProfile());
    KnobSweep sweep;
    sweep.id = KnobId::UncoreFrequency;
    KnobOutcome base;
    base.value = KnobValue::fromConfig(KnobId::UncoreFrequency,
                                       map.baseline);
    base.isBaseline = true;
    KnobOutcome candidate;
    candidate.value.id = KnobId::UncoreFrequency;
    candidate.value.number = 1.4;
    candidate.gainPercent = -3.0;
    candidate.significant = true;   // significant LOSS: still rejected
    sweep.outcomes = {base, candidate};
    map.sweeps.push_back(sweep);

    SoftSkuGenerator generator;
    EXPECT_EQ(generator.compose(map), map.baseline);
}

TEST(Usku, IndependentSweepFindsWebWins)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    Usku tool(env);
    UskuReport report = tool.run(
        spec("web", "skylake18", {KnobId::Thp, KnobId::Shp}));

    // Paper-validated outcomes: THP always and 300 SHPs beat the
    // hand-tuned production configuration.
    EXPECT_EQ(report.softSku.thp, ThpMode::Always);
    EXPECT_EQ(report.softSku.shpCount, 300);
    EXPECT_GT(report.gainOverProductionPercent(), 1.0);
    EXPECT_TRUE(report.validation.stable);
    EXPECT_GT(report.measurementHours, 0.0);

    // The report serializes completely.
    Json doc = report.toJson();
    EXPECT_TRUE(doc.contains("design_space_map"));
    EXPECT_GT(doc.at("gain_over_production_percent").asNumber(), 1.0);
    EXPECT_FALSE(report.summary().empty());
}

TEST(Usku, SkipsInapplicableKnobsForAds1)
{
    ProductionEnvironment env(ads1Profile(), skylake18(), 1,
                              fastOptions());
    Usku tool(env);
    UskuReport report = tool.run(spec(
        "ads1", "skylake18",
        {KnobId::Shp, KnobId::CoreCount, KnobId::Thp}));
    EXPECT_EQ(report.plan.skipped.size(), 2u);
    ASSERT_EQ(report.plan.knobs.size(), 1u);
    EXPECT_EQ(report.plan.knobs[0].id, KnobId::Thp);
    // SHP stayed at its production value (0) — never swept.
    EXPECT_EQ(report.softSku.shpCount, 0);
}

TEST(Usku, ExhaustiveSweepSmallSubspace)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    Usku tool(env);
    InputSpec s = spec("web", "skylake18", {KnobId::Thp});
    s.sweep = SweepMode::Exhaustive;
    UskuReport report = tool.run(s);
    EXPECT_EQ(report.softSku.thp, ThpMode::Always);
}

TEST(UskuDeathTest, ExhaustiveSweepRefusesHugeSpaces)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    Usku tool(env);
    InputSpec s = spec("web", "skylake18");   // all 7 knobs
    s.sweep = SweepMode::Exhaustive;
    EXPECT_EXIT(tool.run(s), testing::ExitedWithCode(1), "exhaustive");
}

TEST(Usku, HillClimbFindsSameThpWin)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    Usku tool(env);
    InputSpec s = spec("web", "skylake18", {KnobId::Thp});
    s.sweep = SweepMode::HillClimb;
    UskuReport report = tool.run(s);
    EXPECT_EQ(report.softSku.thp, ThpMode::Always);
    EXPECT_GT(report.gainOverProductionPercent(), 0.5);
}

TEST(UskuDeathTest, EnvironmentServiceMismatchFatal)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    Usku tool(env);
    EXPECT_EXIT(tool.run(spec("feed1", "skylake18")),
                testing::ExitedWithCode(1), "targets");
}

TEST(SoftSkuGenerator, ValidationLogsToOds)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    SoftSkuGenerator generator;
    OdsStore ods;
    KnobConfig production = productionConfig(skylake18(), webProfile());
    KnobConfig softSku = production;
    softSku.thp = ThpMode::Always;
    ValidationResult result = generator.validate(
        env, softSku, production, 12 * 3600.0, ods, 120.0);
    EXPECT_EQ(result.samples, 360u);
    EXPECT_TRUE(ods.has("qps.softsku"));
    EXPECT_TRUE(ods.has("qps.reference"));
    EXPECT_TRUE(result.stable);
    EXPECT_GT(result.meanGainPercent, 0.5);
    // ODS agrees with the verdict.
    auto soft = ods.aggregate("qps.softsku", 0, 1e9);
    auto ref = ods.aggregate("qps.reference", 0, 1e9);
    EXPECT_GT(soft.mean, ref.mean);
}

} // namespace
} // namespace softsku
