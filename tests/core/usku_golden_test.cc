/**
 * @file
 * Golden-file regression tests for the μSKU report: the serialized
 * JSON and the human-readable summary of a fixed, fully deterministic
 * run are compared byte-for-byte against reference files under
 * tests/data/.  Any change to the report schema, the summary wording,
 * or the sweep results shows up as a readable diff in the test log.
 *
 * Regenerating the goldens after an intentional change:
 *
 *     SOFTSKU_UPDATE_GOLDENS=1 ./test_core --gtest_filter='UskuGolden.*'
 *
 * then review the diff of tests/data/ before committing it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/usku.hh"
#include "services/services.hh"
#include "util/json.hh"

namespace softsku {
namespace {

std::string
goldenPath(const std::string &name)
{
    return std::string(SOFTSKU_TEST_DATA_DIR) + "/" + name;
}

bool
updateGoldens()
{
    const char *flag = std::getenv("SOFTSKU_UPDATE_GOLDENS");
    return flag != nullptr && std::string(flag) == "1";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << content;
}

void
compareAgainstGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenPath(name);
    if (updateGoldens()) {
        writeFile(path, actual);
        SUCCEED() << "regenerated " << path;
        return;
    }
    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path << "; regenerate with "
        << "SOFTSKU_UPDATE_GOLDENS=1";
    EXPECT_EQ(actual, expected)
        << "report drifted from " << path << "; if the change is "
        << "intentional, regenerate with SOFTSKU_UPDATE_GOLDENS=1 "
        << "and review the diff";
}

/** The fixed run every golden derives from: small but end-to-end. */
UskuReport
goldenReport()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    ProductionEnvironment env(webProfile(), skylake18(), 1, opts);

    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = SweepMode::Independent;
    spec.knobs = {KnobId::Thp, KnobId::Shp};
    spec.seed = 1;
    spec.validationDurationSec = 6 * 3600.0;
    spec.normalize();

    Usku tool(env);
    return tool.run(spec);
}

TEST(UskuGolden, JsonReportMatchesGolden)
{
    compareAgainstGolden("usku_web_skylake18_report.json",
                         goldenReport().toJson().dump(2) + "\n");
}

TEST(UskuGolden, SummaryMatchesGolden)
{
    compareAgainstGolden("usku_web_skylake18_summary.txt",
                         goldenReport().summary());
}

TEST(UskuGolden, ReportCarriesCurrentSchemaVersion)
{
    // Consumers key their parsers off the top-level schema_version;
    // bumping the schema without bumping the constant (or vice versa)
    // must fail loudly here, not in a downstream dashboard.
    Json doc = goldenReport().toJson();
    ASSERT_TRUE(doc.contains("schema_version"));
    EXPECT_EQ(doc.at("schema_version").asInt(), kReportSchemaVersion);
    // The committed golden agrees, so stale reference files can't mask
    // a version bump.
    const std::string golden =
        readFile(goldenPath("usku_web_skylake18_report.json"));
    if (!golden.empty()) {
        auto [parsed, ok] = Json::parse(golden);
        ASSERT_TRUE(ok);
        EXPECT_EQ(parsed.at("schema_version").asInt(),
                  kReportSchemaVersion);
    }
}

} // namespace
} // namespace softsku
