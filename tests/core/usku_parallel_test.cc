/**
 * @file
 * Determinism regression tests for the parallel sweep engine: the
 * serialized μSKU report must be bit-identical no matter how many
 * worker threads evaluate the sweep.  This is the property that makes
 * the parallel engine usable for A/B science at all.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/usku.hh"
#include "services/services.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

InputSpec
webSpec(SweepMode sweep, std::vector<KnobId> knobs)
{
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = sweep;
    spec.knobs = std::move(knobs);
    spec.validationDurationSec = 6 * 3600.0;
    spec.normalize();
    return spec;
}

/** Full pipeline in a fresh environment; returns the serialized report. */
std::string
runSerialized(const InputSpec &spec, unsigned jobs)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = jobs;
    Usku tool(env, options);
    return tool.run(spec).toJson().dump(2);
}

TEST(UskuParallel, IndependentSweepIdenticalAcrossThreadCounts)
{
    InputSpec spec =
        webSpec(SweepMode::Independent, {KnobId::Thp, KnobId::Shp});
    std::string serial = runSerialized(spec, 1);
    EXPECT_EQ(runSerialized(spec, 2), serial);
    EXPECT_EQ(runSerialized(spec, 8), serial);
}

TEST(UskuParallel, ExhaustiveSweepIdenticalAcrossThreadCounts)
{
    InputSpec spec = webSpec(SweepMode::Exhaustive, {KnobId::Thp});
    std::string serial = runSerialized(spec, 1);
    EXPECT_EQ(runSerialized(spec, 2), serial);
    EXPECT_EQ(runSerialized(spec, 8), serial);
}

TEST(UskuParallel, HillClimbSweepIdenticalAcrossThreadCounts)
{
    InputSpec spec =
        webSpec(SweepMode::HillClimb, {KnobId::Thp, KnobId::Shp});
    std::string serial = runSerialized(spec, 1);
    EXPECT_EQ(runSerialized(spec, 2), serial);
    EXPECT_EQ(runSerialized(spec, 8), serial);
}

TEST(UskuParallel, RerunWithinOneToolIsCacheServed)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = 2;
    Usku tool(env, options);
    InputSpec spec =
        webSpec(SweepMode::Independent, {KnobId::Thp, KnobId::Shp});
    UskuReport first = tool.run(spec);
    EXPECT_EQ(first.cacheHits, 0u);
    UskuReport second = tool.run(spec);
    // Same comparisons again: the memo answers all of them.
    EXPECT_EQ(second.cacheHits, second.abComparisons);
    EXPECT_GT(second.abComparisons, 0u);
    // A replayed run *reports* exactly like the measured one — cache
    // hits accrue the recorded measurement time and fault tallies on
    // their first occurrence per run, so warm and cold reports are
    // byte-identical (the persistent-cache contract depends on it).
    EXPECT_EQ(second.toJson().dump(2), first.toJson().dump(2));
}

TEST(UskuParallel, HillClimbRevisitsHitTheCache)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = 1;
    Usku tool(env, options);
    // Thp moves in pass 1 (THP always is a real win); core frequency
    // never moves (the baseline is already at the maximum).  Pass 2
    // then re-probes the frequency neighbors against an unchanged
    // `current` — those comparisons repeat verbatim and must be
    // served from the memo instead of re-measured.
    InputSpec spec = webSpec(SweepMode::HillClimb,
                             {KnobId::Thp, KnobId::CoreFrequency});
    UskuReport report = tool.run(spec);
    EXPECT_GT(report.cacheHits, 0u);
    EXPECT_GT(report.abComparisons, report.cacheHits);
}

} // namespace
} // namespace softsku
