/**
 * @file
 * Statistical correctness harness for the best-arm identification
 * engines (core/bai.hh).
 *
 * The load-bearing tests are the seeded Monte-Carlo runs: synthetic
 * arms with *known* true gains race under the exact elimination rule
 * the sweep uses, and the empirical probability of eliminating the
 * true best arm must stay at or below the configured delta across
 * seeds 1-50.  No amount of unit-testing the interval arithmetic
 * substitutes for measuring the error rate of the composed rule.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/bai.hh"
#include "stats/rng.hh"
#include "stats/running_stat.hh"

namespace softsku {
namespace {

/** One synthetic racing run: Gaussian arms with known true gains. */
struct SyntheticRace
{
    std::vector<double> trueGains;
    double sigma = 0.017;  // per-sample noise of the real paired ratio

    /** Race to a decision; returns the index best() selected. */
    std::size_t run(BaiRace &race, std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<Rng> streams;
        for (std::size_t i = 0; i < trueGains.size(); ++i)
            streams.push_back(rng.fork());
        while (!race.decided()) {
            std::vector<std::size_t> want = race.pending();
            if (want.empty())
                break;
            for (std::size_t i : want) {
                RunningStat cumulative = race.arm(i).gains;
                for (std::uint64_t s = 0; s < 100; ++s)
                    cumulative.add(
                        streams[i].gaussian(trueGains[i], sigma));
                race.update(i, cumulative);
            }
            race.eliminateRound();
        }
        return race.best();
    }
};

BaiOptions
mcOptions()
{
    BaiOptions options;
    options.delta = 0.05;
    options.chunkSamples = 100;
    options.minSamplesPerArm = 2;
    options.maxSamplesPerArm = 30000;
    // Default futility (-inf): the pure (epsilon=0, delta) guarantee.
    return options;
}

TEST(Bai, MonteCarloErrorRateStaysBelowDelta)
{
    // Gaps chosen at the scale the real sweep resolves: the best arm
    // leads the runner-up by 0.4% against 1.7% per-sample noise.
    SyntheticRace synth;
    synth.trueGains = {0.010, 0.006, 0.004, 0.0, -0.005};

    int errors = 0;
    int trials = 0;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        BaiRace race(synth.trueGains.size(), mcOptions());
        std::size_t winner = synth.run(race, seed);
        ++trials;
        if (winner != 0)
            ++errors;
    }
    double errorRate = static_cast<double>(errors) / trials;
    EXPECT_LE(errorRate, mcOptions().delta)
        << errors << " wrong winners in " << trials << " seeded races";
}

TEST(Bai, MonteCarloEliminatesClearlyWorseArmsEarly)
{
    // A -10% arm must die in the first rounds, not at the budget cap.
    SyntheticRace synth;
    synth.trueGains = {0.02, -0.10, -0.08};

    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        BaiRace race(synth.trueGains.size(), mcOptions());
        std::size_t winner = synth.run(race, seed);
        EXPECT_EQ(winner, 0u) << "seed " << seed;
        EXPECT_LE(race.arm(1).gains.count(), 1000u)
            << "seed " << seed
            << ": a 12%-behind arm survived past 10 chunks";
        EXPECT_GE(race.earlyStops(), 2u) << "seed " << seed;
    }
}

TEST(Bai, MonteCarloFutilityFloorRetiresSubMaterialArms)
{
    // With the composer's material threshold as the floor, arms whose
    // true gain sits below it stop being paid for even though they
    // never separate from each other.  Noise is scaled so the floor
    // binds within a few chunks; separating these arms from *each
    // other* (a 0.01% gap) would still take >9k samples apiece.
    SyntheticRace synth;
    synth.trueGains = {0.0001, 0.0002, -0.0001};
    synth.sigma = 0.002;
    BaiOptions options = mcOptions();
    options.futilityGain = 0.0005;

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        BaiRace race(synth.trueGains.size(), options);
        synth.run(race, seed);
        std::uint64_t totalSamples = 0;
        for (std::size_t i = 0; i < race.armCount(); ++i)
            totalSamples += race.arm(i).gains.count();
        // Without the floor these statistically-tied arms would race
        // to 3 x 30000; the floor must settle the contest well under
        // a tenth of that.
        EXPECT_LT(totalSamples, 9000u) << "seed " << seed;
    }
}

TEST(Bai, MonteCarloHalvingFindsBestCombo)
{
    SyntheticRace synth;
    synth.trueGains = {-0.02, 0.005, 0.03, -0.01, 0.0,
                       0.01,  0.02,  -0.03, 0.015, -0.005};

    int errors = 0;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        Rng rng(seed);
        std::vector<Rng> streams;
        for (std::size_t i = 0; i < synth.trueGains.size(); ++i)
            streams.push_back(rng.fork());
        BaiHalving halving(synth.trueGains.size(), mcOptions());
        while (!halving.decided()) {
            std::uint64_t allowance = halving.chunksThisRound();
            for (std::size_t i : halving.pending()) {
                RunningStat cumulative = halving.arm(i).gains;
                for (std::uint64_t c = 0; c < allowance; ++c)
                    for (std::uint64_t s = 0; s < 100; ++s)
                        cumulative.add(
                            streams[i].gaussian(synth.trueGains[i],
                                                synth.sigma));
                halving.update(i, cumulative);
            }
            halving.halveRound();
        }
        if (halving.best() != 2)
            ++errors;
    }
    // Halving has no per-comparison delta guarantee (it drops by rank),
    // but at these gaps it must be right nearly always.
    EXPECT_LE(errors, 5) << errors << " wrong winners in 50 races";
}

// ---------------------------------------------------------------------
// Deterministic engine mechanics.

RunningStat
statOf(std::initializer_list<double> values)
{
    RunningStat stat;
    for (double v : values)
        stat.add(v);
    return stat;
}

TEST(Bai, SearchModeRoundTrips)
{
    EXPECT_EQ(searchModeFromString("fixed"), SearchMode::Fixed);
    EXPECT_EQ(searchModeFromString("race"), SearchMode::Race);
    EXPECT_EQ(searchModeFromString("halving"), SearchMode::Halving);
    EXPECT_EQ(searchModeName(SearchMode::Fixed), "fixed");
    EXPECT_EQ(searchModeName(SearchMode::Race), "race");
    EXPECT_EQ(searchModeName(SearchMode::Halving), "halving");
}

TEST(Bai, UpdateReplacesCumulativeStateAndCountsPulls)
{
    BaiOptions options = mcOptions();
    BaiRace race(2, options);
    race.update(0, statOf({0.1, 0.2}));
    race.update(0, statOf({0.1, 0.2, 0.3, 0.4}));
    EXPECT_EQ(race.arm(0).chunksPulled, 2u);
    EXPECT_EQ(race.arm(0).gains.count(), 4u);
    EXPECT_DOUBLE_EQ(race.arm(0).gains.mean(), 0.25);
}

TEST(Bai, AbsorbMergesChunks)
{
    BaiOptions options = mcOptions();
    BaiRace race(1, options);
    race.absorb(0, statOf({0.1, 0.2}));
    race.absorb(0, statOf({0.3, 0.4}));
    EXPECT_EQ(race.arm(0).chunksPulled, 2u);
    EXPECT_EQ(race.arm(0).gains.count(), 4u);
    EXPECT_DOUBLE_EQ(race.arm(0).gains.mean(), 0.25);
}

TEST(Bai, ParkedArmIsExemptFromEliminationButStillWins)
{
    BaiOptions options = mcOptions();
    BaiRace race(2, options);
    // Arm 0 is far ahead; arm 1 parked with a weak verdict.  A parked
    // arm must never be struck, and still counts for best().
    RunningStat ahead;
    RunningStat behind;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        ahead.add(rng.gaussian(0.05, 0.001));
        behind.add(rng.gaussian(-0.05, 0.001));
    }
    race.update(0, ahead);
    race.update(1, behind);
    race.park(1);
    race.eliminateRound();
    EXPECT_FALSE(race.arm(1).eliminated);
    EXPECT_EQ(race.best(), 0u);
    // Symmetric check: parked arms can *be* the incumbent.
    BaiRace race2(2, options);
    race2.update(0, behind);
    race2.update(1, ahead);
    race2.park(1);
    race2.eliminateRound();
    EXPECT_TRUE(race2.arm(0).eliminated);
    EXPECT_EQ(race2.best(), 1u);
}

TEST(Bai, RaiseFloorRatchetsMonotonically)
{
    BaiOptions options = mcOptions();
    options.futilityGain = 0.0005;
    BaiRace race(2, options);
    // Two statistically indistinguishable near-zero arms: neither the
    // floor nor the beaten rule binds, so round one strikes nothing.
    RunningStat a;
    RunningStat b;
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        a.add(rng.gaussian(0.0012, 0.01));
        b.add(rng.gaussian(0.0010, 0.01));
    }
    race.update(0, a);
    race.update(1, b);
    race.eliminateRound();
    EXPECT_FALSE(race.arm(0).eliminated);
    EXPECT_FALSE(race.arm(1).eliminated);
    // A settled +1.9% verdict elsewhere ratchets the floor above both
    // arms' reach; lowering it afterwards must be impossible — the
    // weaker raiseFloor is a no-op and the round still strikes.
    race.raiseFloor(0.019);
    race.raiseFloor(0.0001);
    race.eliminateRound();
    EXPECT_TRUE(race.arm(1).eliminated);
}

TEST(Bai, WithdrawnArmsNeverWin)
{
    BaiOptions options = mcOptions();
    BaiRace race(2, options);
    race.update(0, statOf({0.5, 0.6, 0.7}));
    race.withdraw(0);
    EXPECT_TRUE(race.decided());
    EXPECT_EQ(race.best(), 1u);
    race.withdraw(1);
    EXPECT_EQ(race.best(), race.armCount());
}

TEST(Bai, RadiusIsInfiniteBelowTwoSamples)
{
    BaiRace race(3, mcOptions());
    EXPECT_TRUE(std::isinf(race.radius(0)));
    race.update(0, statOf({0.1}));
    EXPECT_TRUE(std::isinf(race.radius(0)));
    race.update(0, statOf({0.1, 0.2}));
    EXPECT_TRUE(std::isfinite(race.radius(0)));
}

TEST(Bai, DecidedAtBudgetExhaustion)
{
    BaiOptions options = mcOptions();
    options.maxSamplesPerArm = 200;  // two chunks
    BaiRace race(2, options);
    Rng rng(3);
    for (int round = 0; round < 2; ++round) {
        for (std::size_t i : race.pending()) {
            RunningStat cumulative = race.arm(i).gains;
            for (int s = 0; s < 100; ++s)
                cumulative.add(rng.gaussian(0.0, 0.01));
            race.update(i, cumulative);
        }
        race.eliminateRound();
    }
    EXPECT_TRUE(race.decided());
    EXPECT_TRUE(race.pending().empty());
    // Statistically tied arms that ran to the cap are not early stops.
    EXPECT_EQ(race.earlyStops(), 0u);
}

TEST(Bai, MaxRoundsMatchesBudget)
{
    BaiOptions options = mcOptions();
    options.chunkSamples = 100;
    options.maxSamplesPerArm = 250;
    BaiRace race(1, options);
    EXPECT_EQ(race.maxRounds(), 3u);
}

TEST(Bai, HalvingAllowanceDoublesAndClamps)
{
    BaiOptions options = mcOptions();
    options.maxSamplesPerArm = 400;  // 4 chunks
    BaiHalving halving(8, options);
    EXPECT_EQ(halving.chunksThisRound(), 1u);
    halving.halveRound();
    EXPECT_EQ(halving.chunksThisRound(), 2u);
    halving.halveRound();
    EXPECT_EQ(halving.chunksThisRound(), 4u);
    halving.halveRound();
    // Allowance would be 8, but the per-arm budget clamps it to 4.
    EXPECT_EQ(halving.chunksThisRound(), 4u);
}

TEST(Bai, HalvingDropsBottomHalfByMeanWithStableTies)
{
    BaiHalving halving(4, mcOptions());
    halving.update(0, statOf({0.3, 0.3}));
    halving.update(1, statOf({0.2, 0.2}));  // tied with 2, at the cut
    halving.update(2, statOf({0.2, 0.2}));
    halving.update(3, statOf({0.1, 0.1}));
    EXPECT_EQ(halving.halveRound(), 2u);
    EXPECT_FALSE(halving.arm(0).eliminated);
    EXPECT_TRUE(halving.arm(3).eliminated);
    // The tie straddles the keep boundary; the stable sort keeps index
    // order, so arm 1 makes the cut and arm 2 falls.
    EXPECT_FALSE(halving.arm(1).eliminated);
    EXPECT_TRUE(halving.arm(2).eliminated);
}

} // namespace
} // namespace softsku
