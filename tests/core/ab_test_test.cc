/** @file Tests for the A/B tester's statistics and stopping rules. */

#include <gtest/gtest.h>

#include "core/ab_test.hh"
#include "services/services.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

InputSpec
webSpec()
{
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.normalize();
    return spec;
}

TEST(ABTest, DetectsClearWinnerQuickly)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    InputSpec spec = webSpec();
    ABTester tester(env, spec);

    KnobConfig base = productionConfig(skylake18(), webProfile());
    KnobConfig slow = base;
    slow.coreFreqGHz = 1.6;   // ~10%+ slower: unambiguous

    ABTestResult result = tester.compare(base, slow);
    EXPECT_TRUE(result.significant);
    EXPECT_LT(result.gainPercent(), -5.0);
    // Early stopping: far fewer samples than the 30k cap.
    EXPECT_LT(result.samplesUsed, spec.maxSamplesPerTest / 2);
    EXPECT_GE(result.samplesUsed, spec.minSamplesPerTest);
}

TEST(ABTest, IdenticalConfigsNotSignificant)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    InputSpec spec = webSpec();
    spec.maxSamplesPerTest = 3000;   // keep the test fast
    ABTester tester(env, spec);

    KnobConfig base = productionConfig(skylake18(), webProfile());
    ABTestResult result = tester.compare(base, base);
    EXPECT_FALSE(result.significant);
    EXPECT_EQ(result.samplesUsed, spec.maxSamplesPerTest);
    EXPECT_NEAR(result.gainPercent(), 0.0, 0.2);
}

TEST(ABTest, PairingCancelsDiurnalLoad)
{
    // Crank diurnal amplitude: an unpaired test would drown in it.
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.noise().diurnalAmplitude = 0.30;
    InputSpec spec = webSpec();
    // Spread the samples across days so the diurnal swing actually
    // enters the raw per-arm statistics.
    spec.sampleSpacingSec = 900.0;
    ABTester tester(env, spec);

    KnobConfig base = productionConfig(skylake18(), webProfile());
    KnobConfig better = base;
    better.thp = ThpMode::Always;   // few-percent true gain
    ABTestResult result = tester.compare(base, better);
    EXPECT_TRUE(result.significant);
    EXPECT_GT(result.gainPercent(), 0.5);
    // The paired relative spread is far tighter than the raw per-arm
    // relative spread (which carries the full diurnal swing).
    double armRelStd = result.samplesA.stddev() / result.samplesA.mean();
    EXPECT_LT(result.pairedDiffs.stddev(), armRelStd / 3.0);
}

TEST(ABTest, MeasurementClockAdvances)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    InputSpec spec = webSpec();
    spec.maxSamplesPerTest = 1000;
    ABTester tester(env, spec);
    KnobConfig base = productionConfig(skylake18(), webProfile());

    EXPECT_DOUBLE_EQ(tester.elapsedSec(), 0.0);
    ABTestResult first = tester.compare(base, base);
    double afterFirst = tester.elapsedSec();
    EXPECT_GT(afterFirst, 0.0);
    EXPECT_NEAR(first.elapsedSec, afterFirst, 1e-9);
    tester.compare(base, base);
    EXPECT_GT(tester.elapsedSec(), afterFirst);
}

TEST(ABTest, WarmupSamplesDiscarded)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    InputSpec spec = webSpec();
    spec.warmupSamples = 50;
    spec.maxSamplesPerTest = 500;
    ABTester tester(env, spec);
    KnobConfig base = productionConfig(skylake18(), webProfile());
    ABTestResult result = tester.compare(base, base);
    // Recorded samples exclude the warm-up draws.
    EXPECT_EQ(result.samplesA.count(), result.samplesUsed);
    EXPECT_NEAR(result.elapsedSec,
                (result.samplesUsed + spec.warmupSamples) *
                    spec.sampleSpacingSec,
                1.0);
}

} // namespace
} // namespace softsku
