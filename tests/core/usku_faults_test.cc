/**
 * @file
 * Hostile-production tests for the μSKU pipeline: fault injection must
 * be deterministic at any thread count, must not change the composed
 * soft SKU under moderate fault load, must surface its telemetry in
 * the report — and must be a strict no-op when the plan is empty.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/usku.hh"
#include "services/services.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

InputSpec
webSpec(std::vector<KnobId> knobs)
{
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = SweepMode::Independent;
    spec.knobs = std::move(knobs);
    spec.validationDurationSec = 6 * 3600.0;
    spec.normalize();
    return spec;
}

/** Full hostile pipeline in a fresh environment. */
UskuReport
runHostile(const InputSpec &spec, const FaultPlan &plan, unsigned jobs,
           std::uint64_t faultSeed = 9)
{
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    env.setFaults(plan, faultSeed);
    UskuOptions options;
    options.jobs = jobs;
    if (plan.any())
        options.robustness = RobustnessPolicy::hostile();
    Usku tool(env, options);
    return tool.run(spec);
}

TEST(UskuFaults, HostileReportIdenticalAcrossThreadCounts)
{
    InputSpec spec = webSpec({KnobId::Thp, KnobId::Shp});
    FaultPlan plan = FaultPlan::fromSpec("moderate");
    std::string serial = runHostile(spec, plan, 1).toJson().dump(2);
    EXPECT_EQ(runHostile(spec, plan, 2).toJson().dump(2), serial);
    EXPECT_EQ(runHostile(spec, plan, 8).toJson().dump(2), serial);
}

TEST(UskuFaults, ModerateFaultsDoNotChangeTheWinner)
{
    InputSpec spec = webSpec({KnobId::Thp, KnobId::Shp});
    UskuReport benign = runHostile(spec, FaultPlan{}, 2);
    UskuReport hostile =
        runHostile(spec, FaultPlan::fromSpec("moderate"), 2);
    EXPECT_EQ(hostile.softSku, benign.softSku);
    EXPECT_TRUE(hostile.validation.stable);
}

TEST(UskuFaults, FaultTelemetrySurfacesInReport)
{
    InputSpec spec = webSpec({KnobId::Thp});
    UskuReport report =
        runHostile(spec, FaultPlan::fromSpec("moderate"), 1);
    EXPECT_TRUE(report.faultPlan.any());
    EXPECT_GT(report.faults.faultsInjected(), 0u);
    // Robust filtering ran: injected spikes/zeros were rejected.
    EXPECT_GT(report.faults.samplesRejected, 0u);
    std::string json = report.toJson().dump(2);
    EXPECT_NE(json.find("\"faults\""), std::string::npos);
    EXPECT_NE(json.find("\"faults_injected\""), std::string::npos);
    EXPECT_NE(report.summary().find("faults ("), std::string::npos);
}

TEST(UskuFaults, BenignReportHasNoFaultSection)
{
    InputSpec spec = webSpec({KnobId::Thp});
    UskuReport report = runHostile(spec, FaultPlan{}, 1);
    std::string json = report.toJson().dump(2);
    EXPECT_EQ(json.find("\"faults\""), std::string::npos);
    EXPECT_EQ(report.summary().find("faults ("), std::string::npos);
}

TEST(UskuFaults, EmptyPlanIsByteIdenticalToUnarmedRun)
{
    // setFaults with an all-zero plan must not move a single bit of
    // the report relative to a tool that never heard about faults.
    InputSpec spec = webSpec({KnobId::Thp, KnobId::Shp});
    ProductionEnvironment unarmed(webProfile(), skylake18(), 1,
                                  fastOptions());
    UskuOptions plainOptions;
    plainOptions.jobs = 2;
    Usku plain(unarmed, plainOptions);
    std::string baseline = plain.run(spec).toJson().dump(2);
    EXPECT_EQ(runHostile(spec, FaultPlan{}, 2).toJson().dump(2),
              baseline);
}

TEST(UskuFaults, SweepCompletesUnderSevereFaults)
{
    InputSpec spec = webSpec({KnobId::Thp});
    UskuReport report =
        runHostile(spec, FaultPlan::fromSpec("severe"), 2);
    // The sweep survives a hostile fleet and still composes a SKU.
    EXPECT_GT(report.configsEvaluated, 0u);
    EXPECT_GT(report.softSkuMips, 0.0);
    EXPECT_GT(report.faults.faultsInjected(), 0u);
}

TEST(UskuFaults, QosGuardrailAbortsCapacityCollapse)
{
    // Halving the active cores collapses the QoS-bounded capacity far
    // below the 70% floor: with the guardrail armed those candidates
    // must be aborted before a single sample is spent — and can never
    // win the sweep.
    InputSpec spec = webSpec({KnobId::CoreCount});
    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = 1;
    options.robustness.qosGuardrail = true;
    Usku tool(env, options);
    UskuReport report = tool.run(spec);
    EXPECT_GT(report.faults.guardrailAborts, 0u);
    EXPECT_EQ(report.softSku.activeCores,
              report.production.activeCores);
}

} // namespace
} // namespace softsku
