/** @file Tests for the TMAM slot-accounting model. */

#include <gtest/gtest.h>

#include "arch/topdown.hh"

namespace softsku {
namespace {

TEST(TopDown, EmptyWindowIsAllZero)
{
    PipelineCosts costs;
    auto td = computeTopDown(costs, 4);
    EXPECT_DOUBLE_EQ(td.total(), 0.0);
    EXPECT_DOUBLE_EQ(ipcOf(costs), 0.0);
}

TEST(TopDown, IdealExecutionRetiresEverything)
{
    PipelineCosts costs;
    costs.instructions = 4000;
    costs.baseCycles = 1000;   // exactly 4-wide
    auto td = computeTopDown(costs, 4);
    EXPECT_NEAR(td.retiring, 1.0, 1e-9);
    EXPECT_NEAR(td.frontEnd + td.badSpeculation + td.backEnd, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(ipcOf(costs), 4.0);
}

TEST(TopDown, CategoriesSumToOne)
{
    PipelineCosts costs;
    costs.instructions = 1'000'000;
    costs.baseCycles = 500'000;
    costs.frontEndStallCycles = 300'000;
    costs.badSpecCycles = 100'000;
    costs.backEndStallCycles = 400'000;
    auto td = computeTopDown(costs, 4);
    EXPECT_NEAR(td.total(), 1.0, 1e-9);
    EXPECT_GT(td.retiring, 0.0);
    EXPECT_GT(td.frontEnd, 0.0);
    EXPECT_GT(td.backEnd, td.badSpeculation);
}

TEST(TopDown, StallSlotsProportionalToCycles)
{
    PipelineCosts costs;
    costs.instructions = 100'000;
    costs.baseCycles = 25'000;
    costs.frontEndStallCycles = 200'000;
    costs.backEndStallCycles = 100'000;
    auto td = computeTopDown(costs, 4);
    // Front-end contributed twice the stall cycles of the back end; the
    // back end additionally absorbs the ILP shortfall of base cycles.
    EXPECT_GT(td.frontEnd, td.backEnd * 1.2);
    EXPECT_DOUBLE_EQ(td.badSpeculation, 0.0);
}

TEST(TopDown, IlpShortfallChargedToBackEnd)
{
    // Base CPI of 1 on a 4-wide machine: 3/4 of slots idle from lack of
    // ILP, which TMAM attributes to the (core-bound) back end.
    PipelineCosts costs;
    costs.instructions = 1000;
    costs.baseCycles = 1000;
    auto td = computeTopDown(costs, 4);
    EXPECT_NEAR(td.retiring, 0.25, 1e-9);
    EXPECT_NEAR(td.backEnd, 0.75, 1e-9);
}

TEST(TopDown, IpcReflectsTotalCycles)
{
    PipelineCosts costs;
    costs.instructions = 1000;
    costs.baseCycles = 400;
    costs.frontEndStallCycles = 300;
    costs.badSpecCycles = 100;
    costs.backEndStallCycles = 200;
    EXPECT_DOUBLE_EQ(costs.totalCycles(), 1000.0);
    EXPECT_DOUBLE_EQ(ipcOf(costs), 1.0);
}

TEST(TopDown, RetiringCappedBySlots)
{
    // More instructions than slots cannot yield retiring > 1.
    PipelineCosts costs;
    costs.instructions = 10'000;
    costs.baseCycles = 1000;
    auto td = computeTopDown(costs, 4);
    EXPECT_LE(td.retiring, 1.0);
}

} // namespace
} // namespace softsku
