/** @file Tests for the Table 1 platform specifications. */

#include <gtest/gtest.h>

#include "arch/platform.hh"

namespace softsku {
namespace {

TEST(Platform, Table1Attributes)
{
    const PlatformSpec &s18 = skylake18();
    EXPECT_EQ(s18.sockets, 1);
    EXPECT_EQ(s18.coresPerSocket, 18);
    EXPECT_EQ(s18.smtWays, 2);
    EXPECT_EQ(s18.l2.sizeBytes, 1ull << 20);
    EXPECT_NEAR(static_cast<double>(s18.llc.sizeBytes) / (1 << 20), 24.75,
                0.01);
    EXPECT_EQ(s18.llc.ways, 11);

    const PlatformSpec &s20 = skylake20();
    EXPECT_EQ(s20.sockets, 2);
    EXPECT_EQ(s20.coresPerSocket, 20);
    EXPECT_EQ(s20.totalCores(), 40);
    EXPECT_EQ(s20.llc.sizeBytes, 27ull << 20);

    const PlatformSpec &b16 = broadwell16();
    EXPECT_EQ(b16.coresPerSocket, 16);
    EXPECT_EQ(b16.l2.sizeBytes, 256ull << 10);
    EXPECT_EQ(b16.llc.ways, 12);
    // Broadwell is the bandwidth-constrained platform.
    EXPECT_LT(b16.peakMemBandwidthGBs, s18.peakMemBandwidthGBs);
}

TEST(Platform, CacheGeometrySets)
{
    CacheGeometry g{32 * 1024, 8, 64};
    EXPECT_EQ(g.sets(), 64u);
    EXPECT_EQ(skylake18().l1i.sets(), 64u);
    // LLC: 24.75 MiB / 64 B / 11 ways.
    EXPECT_EQ(skylake18().llc.sets(),
              skylake18().llc.sizeBytes / (64ull * 11));
}

TEST(Platform, FrequencySettings)
{
    auto core = skylake18().coreFrequencySettings();
    ASSERT_GE(core.size(), 7u);
    EXPECT_DOUBLE_EQ(core.front(), 1.6);
    EXPECT_DOUBLE_EQ(core.back(), 2.2);
    auto uncore = skylake18().uncoreFrequencySettings();
    ASSERT_EQ(uncore.size(), 5u);
    EXPECT_DOUBLE_EQ(uncore.front(), 1.4);
    EXPECT_DOUBLE_EQ(uncore.back(), 1.8);
}

TEST(Platform, LookupByName)
{
    EXPECT_EQ(&platformByName("skylake18"), &skylake18());
    EXPECT_EQ(&platformByName("SKYLAKE20"), &skylake20());
    EXPECT_EQ(&platformByName("Broadwell16"), &broadwell16());
    EXPECT_EQ(&platformByName("skylake18cxl"), &skylake18cxl());
    EXPECT_EQ(allPlatforms().size(), 4u);

    EXPECT_EQ(platformByNameOrNull("skylake18"), &skylake18());
    EXPECT_EQ(platformByNameOrNull("epyc"), nullptr);
}

TEST(Platform, FarMemoryDeclaration)
{
    // Only the CXL variant declares a far tier; its near-tier geometry
    // is identical to the base Skylake 18.
    EXPECT_FALSE(skylake18().farMemory.present);
    EXPECT_FALSE(skylake20().farMemory.present);
    EXPECT_FALSE(broadwell16().farMemory.present);

    const PlatformSpec &cxl = skylake18cxl();
    EXPECT_TRUE(cxl.farMemory.present);
    EXPECT_GT(cxl.farMemory.peakBandwidthGBs, 0.0);
    EXPECT_LT(cxl.farMemory.peakBandwidthGBs, cxl.peakMemBandwidthGBs);
    EXPECT_GT(cxl.farMemory.extraLatencyNs, 0.0);
    EXPECT_GT(cxl.farMemory.defaultRatio, 0.0);
    EXPECT_LT(cxl.farMemory.defaultRatio, 1.0);
    EXPECT_EQ(cxl.coresPerSocket, skylake18().coresPerSocket);
    EXPECT_EQ(cxl.llc.ways, skylake18().llc.ways);
}

TEST(PlatformDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(platformByName("epyc"), testing::ExitedWithCode(1),
                "unknown platform");
}

} // namespace
} // namespace softsku
