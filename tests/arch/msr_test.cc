/** @file Tests for the emulated MSR actuation path. */

#include <gtest/gtest.h>

#include "arch/msr.hh"

namespace softsku {
namespace {

TEST(Msr, ResetValueIsZero)
{
    MsrFile msr;
    EXPECT_EQ(msr.read(msr::IA32_PERF_CTL), 0u);
    EXPECT_FALSE(msr.touched(msr::IA32_PERF_CTL));
}

TEST(Msr, ReadBackWrittenValue)
{
    MsrFile msr;
    msr.write(0x123, 0xDEADBEEF);
    EXPECT_EQ(msr.read(0x123), 0xDEADBEEFu);
    EXPECT_TRUE(msr.touched(0x123));
}

TEST(Msr, CoreFrequencyRoundTrip)
{
    MsrFile msr;
    for (double ghz : {1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2}) {
        msr.setCoreFrequencyGHz(ghz);
        EXPECT_DOUBLE_EQ(msr.coreFrequencyGHz(0.0), ghz);
    }
    // Encoding matches IA32_PERF_CTL bits 15:8 (ratio × 100 MHz).
    msr.setCoreFrequencyGHz(2.2);
    EXPECT_EQ((msr.read(msr::IA32_PERF_CTL) >> 8) & 0xFF, 22u);
}

TEST(Msr, CoreFrequencyFallbackWhenUnset)
{
    MsrFile msr;
    EXPECT_DOUBLE_EQ(msr.coreFrequencyGHz(2.2), 2.2);
}

TEST(Msr, UncoreFrequencyRoundTrip)
{
    MsrFile msr;
    msr.setUncoreFrequencyGHz(1.4);
    EXPECT_DOUBLE_EQ(msr.uncoreFrequencyGHz(0.0), 1.4);
    // Min and max ratio fields pinned to the same value.
    std::uint64_t reg = msr.read(msr::UNCORE_RATIO_LIMIT);
    EXPECT_EQ(reg & 0x7F, (reg >> 8) & 0x7F);
}

TEST(Msr, PrefetcherBitsMatchIntelEncoding)
{
    MsrFile msr;
    // Disable bits: set = disabled.
    msr.setPrefetchers(false, true, false, true);
    std::uint64_t reg = msr.read(msr::MISC_FEATURE_CONTROL);
    EXPECT_EQ(reg & 0b1111, 0b0101u);   // bit0 L2 stream, bit2 DCU off

    auto bits = msr.prefetchers();
    EXPECT_FALSE(bits.l2Stream);
    EXPECT_TRUE(bits.l2Adjacent);
    EXPECT_FALSE(bits.dcuNext);
    EXPECT_TRUE(bits.dcuIp);
}

TEST(Msr, PrefetchersDefaultAllEnabled)
{
    MsrFile msr;
    auto bits = msr.prefetchers();
    EXPECT_TRUE(bits.l2Stream && bits.l2Adjacent && bits.dcuNext &&
                bits.dcuIp);
}

TEST(Msr, ResetClearsEverything)
{
    MsrFile msr;
    msr.setCoreFrequencyGHz(1.8);
    msr.setPrefetchers(false, false, false, false);
    msr.reset();
    EXPECT_FALSE(msr.touched(msr::IA32_PERF_CTL));
    EXPECT_TRUE(msr.prefetchers().l2Stream);
}

} // namespace
} // namespace softsku
