/** @file Tests for the four Intel prefetcher models and presets. */

#include <gtest/gtest.h>

#include "prefetch/config.hh"
#include "prefetch/prefetcher.hh"

namespace softsku {
namespace {

std::vector<std::uint64_t>
observe(Prefetcher &pf, std::uint64_t line, std::uint64_t pc, bool miss)
{
    std::vector<std::uint64_t> out;
    pf.observe(line, pc, miss, out);
    return out;
}

TEST(DcuNext, PrefetchesSuccessorOnMiss)
{
    DcuNextLinePrefetcher pf;
    auto hits = observe(pf, 100, 0, /*miss=*/false);
    EXPECT_TRUE(hits.empty());
    auto misses = observe(pf, 100, 0, /*miss=*/true);
    ASSERT_EQ(misses.size(), 1u);
    EXPECT_EQ(misses[0], 101u);
}

TEST(DcuIp, LocksOntoStride)
{
    DcuIpPrefetcher pf;
    const std::uint64_t pc = 0x4000;
    EXPECT_TRUE(observe(pf, 10, pc, true).empty());   // first sighting
    EXPECT_TRUE(observe(pf, 13, pc, true).empty());   // stride learned
    EXPECT_TRUE(observe(pf, 16, pc, true).empty());   // confidence 1
    auto out = observe(pf, 19, pc, true);             // confidence 2
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 22u);
}

TEST(DcuIp, StrideChangeResetsConfidence)
{
    DcuIpPrefetcher pf;
    const std::uint64_t pc = 0x4000;
    observe(pf, 10, pc, true);
    observe(pf, 12, pc, true);
    observe(pf, 14, pc, true);
    ASSERT_FALSE(observe(pf, 16, pc, true).empty());
    // Break the stride: confidence must be rebuilt from scratch.
    EXPECT_TRUE(observe(pf, 100, pc, true).empty());   // stride reset
    EXPECT_TRUE(observe(pf, 102, pc, true).empty());   // stride learned
    EXPECT_TRUE(observe(pf, 104, pc, true).empty());   // confidence 1
    ASSERT_FALSE(observe(pf, 106, pc, true).empty());  // confidence 2
}

TEST(DcuIp, DistinctPcsTrackedIndependently)
{
    DcuIpPrefetcher pf(256);
    // Interleave two streams on different PCs.
    for (int i = 0; i < 5; ++i) {
        observe(pf, 10 + i * 2, 0x1000, true);
        observe(pf, 500 + i * 7, 0x2000, true);
    }
    auto a = observe(pf, 20, 0x1000, true);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a[0], 22u);
    auto b = observe(pf, 535, 0x2000, true);
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(b[0], 542u);
}

TEST(L2Adjacent, BuddyLine)
{
    L2AdjacentPrefetcher pf;
    auto even = observe(pf, 100, 0, true);
    ASSERT_EQ(even.size(), 1u);
    EXPECT_EQ(even[0], 101u);
    auto odd = observe(pf, 101, 0, true);
    ASSERT_EQ(odd.size(), 1u);
    EXPECT_EQ(odd[0], 100u);
    EXPECT_TRUE(observe(pf, 100, 0, false).empty());
}

TEST(L2Stream, ArmsAfterTwoSameDirectionMisses)
{
    L2StreamPrefetcher pf(16, 2);
    std::uint64_t base = 64 * 10;   // region 10
    EXPECT_TRUE(observe(pf, base + 0, 0, true).empty());
    EXPECT_TRUE(observe(pf, base + 1, 0, true).empty());   // dir set
    auto out = observe(pf, base + 2, 0, true);             // armed
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], base + 3);
    EXPECT_EQ(out[1], base + 4);
}

TEST(L2Stream, DescendingStreams)
{
    L2StreamPrefetcher pf(16, 1);
    std::uint64_t base = 64 * 20 + 32;
    observe(pf, base, 0, true);
    observe(pf, base - 1, 0, true);
    auto out = observe(pf, base - 2, 0, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], base - 3);
}

TEST(L2Stream, IgnoresHits)
{
    L2StreamPrefetcher pf;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(observe(pf, 100 + i, 0, /*miss=*/false).empty());
}

TEST(Presets, MatchPaperConfigurations)
{
    auto allOff = prefetcherSetFor(PrefetcherPreset::AllOff);
    EXPECT_FALSE(allOff.l2Stream || allOff.l2Adjacent || allOff.dcuNext ||
                 allOff.dcuIp);

    auto allOn = prefetcherSetFor(PrefetcherPreset::AllOn);
    EXPECT_TRUE(allOn.l2Stream && allOn.l2Adjacent && allOn.dcuNext &&
                allOn.dcuIp);

    auto dcuPair = prefetcherSetFor(PrefetcherPreset::DcuAndDcuIp);
    EXPECT_FALSE(dcuPair.l2Stream);
    EXPECT_FALSE(dcuPair.l2Adjacent);
    EXPECT_TRUE(dcuPair.dcuNext && dcuPair.dcuIp);

    auto bdwDefault = prefetcherSetFor(PrefetcherPreset::L2StreamAndDcu);
    EXPECT_TRUE(bdwDefault.l2Stream && bdwDefault.dcuNext);
    EXPECT_FALSE(bdwDefault.l2Adjacent || bdwDefault.dcuIp);
}

TEST(Presets, KeyRoundTrip)
{
    for (PrefetcherPreset preset : allPrefetcherPresets()) {
        EXPECT_EQ(prefetcherPresetFromKey(prefetcherPresetKey(preset)),
                  preset);
    }
    EXPECT_EQ(allPrefetcherPresets().size(), 5u);
}

TEST(PresetsDeathTest, UnknownKeyIsFatal)
{
    EXPECT_EXIT(prefetcherPresetFromKey("turbo"),
                testing::ExitedWithCode(1), "unknown prefetcher preset");
}

} // namespace
} // namespace softsku
