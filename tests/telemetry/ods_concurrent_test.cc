/**
 * @file Concurrency tests for the sharded ODS store: producers
 * appending, dashboards querying, and maintenance folding resolutions,
 * all at once.  Built into the ThreadSanitizer CI job (gtest filter
 * `Ods*`), so any lock ordering or unguarded access here is a CI
 * failure, not a production surprise.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/ods.hh"

namespace softsku {
namespace {

std::string
seriesFor(int producer, int index)
{
    return "fleet.t" + std::to_string(producer) + ".s" +
           std::to_string(index) + ".latency";
}

TEST(OdsConcurrent, ParallelAppendAndQueryConserveEveryPoint)
{
    constexpr int kThreads = 4;
    constexpr int kSeriesPerThread = 8;
    constexpr int kPointsPerSeries = 500;

    OdsStoreOptions options;
    options.shards = 8;  // fewer shards than series: real contention
    OdsStore ods(options);

    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w] {
            for (int i = 0; i < kPointsPerSeries; ++i) {
                for (int s = 0; s < kSeriesPerThread; ++s) {
                    ods.append(seriesFor(w, s), i * 5.0,
                               100.0 + (i % 13));
                }
                // Interleave reads of every other thread's series.
                if (i % 16 == 0) {
                    for (int o = 0; o < kThreads; ++o)
                        ods.aggregate(seriesFor(o, 0), 0.0, 1e9);
                }
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    // Count conservation: every append landed exactly once.
    for (int w = 0; w < kThreads; ++w) {
        for (int s = 0; s < kSeriesPerThread; ++s) {
            auto agg = ods.aggregate(seriesFor(w, s), 0.0, 1e9);
            EXPECT_EQ(agg.count,
                      static_cast<std::uint64_t>(kPointsPerSeries));
        }
    }
    OdsStoreStats stats = ods.stats();
    EXPECT_EQ(stats.series,
              static_cast<std::uint64_t>(kThreads * kSeriesPerThread));
    EXPECT_EQ(stats.rawPoints,
              static_cast<std::uint64_t>(kThreads * kSeriesPerThread *
                                         kPointsPerSeries));
}

TEST(OdsConcurrent, DownsampleRacesAppendersWithoutLosingCounts)
{
    constexpr int kThreads = 4;
    constexpr int kPointsPerSeries = 600;

    OdsStoreOptions options;
    options.shards = 4;
    options.retention.rawHorizonSec = 60.0;
    options.retention.midHorizonSec = 600.0;
    options.retention.midBucketSec = 60.0;
    options.retention.longBucketSec = 600.0;
    OdsStore ods(options);

    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w] {
            std::string series = seriesFor(w, 0);
            for (int i = 0; i < kPointsPerSeries; ++i) {
                double t = i * 5.0;
                ods.append(series, t, 100.0 + (i % 7));
                // Maintenance folds raw into buckets while the other
                // threads keep appending and reading.
                if (i % 50 == 0)
                    ods.downsample(t);
                if (i % 25 == 0)
                    ods.aggregate(series, 0.0, t);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    // Folding moved samples between resolutions but dropped none:
    // every series still aggregates to its full count.
    for (int w = 0; w < kThreads; ++w) {
        auto agg = ods.aggregate(seriesFor(w, 0), 0.0, 1e9);
        EXPECT_EQ(agg.count,
                  static_cast<std::uint64_t>(kPointsPerSeries));
    }
    OdsStoreStats stats = ods.stats();
    EXPECT_GT(stats.downsampledPoints, 0u);
    EXPECT_EQ(stats.droppedPoints, 0u);
}

TEST(OdsConcurrent, RetainRacesAppendersAndQueriesSafely)
{
    constexpr int kThreads = 4;
    constexpr int kPointsPerSeries = 400;

    OdsStoreOptions options;
    options.shards = 4;
    OdsStore ods(options);
    std::atomic<bool> stop{false};

    std::thread reaper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            ods.retain(300.0);
            ods.stats();
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w] {
            std::string series = seriesFor(w, 0);
            for (int i = 0; i < kPointsPerSeries; ++i) {
                ods.append(series, i * 5.0, 1.0);
                if (i % 20 == 0)
                    ods.query(series, 0.0, 1e9);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    stop.store(true, std::memory_order_relaxed);
    reaper.join();

    // Retention kept each series' tail: the newest sample survives and
    // nothing newer than the horizon was dropped.
    for (int w = 0; w < kThreads; ++w) {
        auto points = ods.query(seriesFor(w, 0), 0.0, 1e9);
        ASSERT_FALSE(points.empty());
        EXPECT_DOUBLE_EQ(points.back().timeSec,
                         (kPointsPerSeries - 1) * 5.0);
        EXPECT_LE(points.back().timeSec - points.front().timeSec,
                  (kPointsPerSeries - 1) * 5.0);
    }
}

} // namespace
} // namespace softsku
