/** @file Tests for the TMAM report renderer and knob suggestions. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/service_sim.hh"
#include "telemetry/tmam_report.hh"

namespace softsku {
namespace {

const CounterSet &
webCounters()
{
    static const CounterSet counters = [] {
        SimOptions opts;
        opts.warmupInstructions = 200'000;
        opts.measureInstructions = 250'000;
        return simulateService(webProfile(), skylake18(),
                               productionConfig(skylake18(), webProfile()),
                               opts);
    }();
    return counters;
}

TEST(TmamReport, ContainsAllFourCategories)
{
    std::string report = renderTmamReport(webCounters(), "web");
    for (const char *needle :
         {"retiring", "front-end bound", "bad speculation",
          "back-end bound", "L1-I MPKI", "LLC code MPKI",
          "mispredict MPKI", "GB/s"}) {
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
    }
    EXPECT_NE(report.find("TMAM: web"), std::string::npos);
}

TEST(TmamReport, EmptyCountersHandled)
{
    CounterSet empty;
    std::string report = renderTmamReport(empty);
    EXPECT_NE(report.find("no instructions"), std::string::npos);
}

TEST(TmamReport, WebSuggestsCdp)
{
    // Web's off-chip code misses should point the engineer at CDP.
    std::string hints = suggestKnobs(webCounters(),
                                     skylake18().peakMemBandwidthGBs);
    EXPECT_NE(hints.find("cdp"), std::string::npos);
}

TEST(TmamReport, BandwidthSaturationSuggestsPrefetcher)
{
    CounterSet c = webCounters();
    c.memBandwidthGBs = skylake18().peakMemBandwidthGBs * 0.9;
    std::string hints = suggestKnobs(c, skylake18().peakMemBandwidthGBs);
    EXPECT_NE(hints.find("prefetcher"), std::string::npos);
}

TEST(TmamReport, QuietCountersSuggestFrequency)
{
    CounterSet quiet;
    quiet.instructions = 1'000'000;
    quiet.topdown.retiring = 0.9;
    quiet.topdown.backEnd = 0.1;
    std::string hints = suggestKnobs(quiet, 100.0);
    EXPECT_NE(hints.find("core_freq"), std::string::npos);
}

} // namespace
} // namespace softsku
