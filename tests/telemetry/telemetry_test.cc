/** @file Tests for the ODS time-series store and the EMON sampler. */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.hh"
#include "services/services.hh"
#include "sim/service_sim.hh"
#include "stats/running_stat.hh"
#include "telemetry/emon.hh"
#include "telemetry/health_view.hh"
#include "telemetry/ods.hh"
#include "telemetry/series_names.hh"
#include "telemetry/sketch.hh"

namespace softsku {
namespace {

TEST(Ods, AppendAndQuery)
{
    OdsStore ods;
    EXPECT_FALSE(ods.has("qps"));
    for (int i = 0; i < 100; ++i)
        ods.append("qps", i * 60.0, 1000.0 + i);
    EXPECT_TRUE(ods.has("qps"));

    auto window = ods.query("qps", 600.0, 1200.0);
    ASSERT_EQ(window.size(), 11u);
    EXPECT_DOUBLE_EQ(window.front().timeSec, 600.0);
    EXPECT_DOUBLE_EQ(window.back().timeSec, 1200.0);
    EXPECT_TRUE(ods.query("missing", 0, 1e9).empty());
}

TEST(Ods, AggregateStatistics)
{
    OdsStore ods;
    for (int i = 1; i <= 100; ++i)
        ods.append("v", i, static_cast<double>(i));
    auto agg = ods.aggregate("v", 1, 100);
    EXPECT_EQ(agg.count, 100u);
    EXPECT_DOUBLE_EQ(agg.mean, 50.5);
    EXPECT_DOUBLE_EQ(agg.min, 1.0);
    EXPECT_DOUBLE_EQ(agg.max, 100.0);
    EXPECT_NEAR(agg.p50, 50.0, 1.0);
    EXPECT_NEAR(agg.p99, 99.0, 1.0);
}

TEST(Ods, AggregateEmptyWindow)
{
    OdsStore ods;
    ods.append("v", 100.0, 1.0);
    auto agg = ods.aggregate("v", 0.0, 50.0);
    EXPECT_EQ(agg.count, 0u);
}

TEST(Ods, NonMonotonicAppendClampsToNewestTime)
{
    // A fleet store must survive one producer's clock going backwards:
    // the sample is kept, clamped to the series' newest timestamp, so
    // windowed aggregates stay ordered instead of silently corrupting.
    OdsStore ods;
    ods.append("v", 100.0, 1.0);
    ods.append("v", 50.0, 2.0);
    auto points = ods.query("v", 0.0, 1e9);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].timeSec, 100.0);
    EXPECT_DOUBLE_EQ(points[1].timeSec, 100.0);
    EXPECT_DOUBLE_EQ(points[1].value, 2.0);
    // Later in-order appends continue normally.
    ods.append("v", 200.0, 3.0);
    auto agg = ods.aggregate("v", 0.0, 1e9);
    EXPECT_EQ(agg.count, 3u);
    EXPECT_DOUBLE_EQ(agg.max, 3.0);
}

TEST(Ods, RecordSnapshotPersistsToolMetrics)
{
    MetricsSnapshot snapshot;
    MetricRow counter;
    counter.name = "usku.arms_pruned";
    counter.kind = MetricRow::Kind::Counter;
    counter.value = 7.0;
    snapshot.rows.push_back(counter);
    MetricRow gauge;
    gauge.name = "usku.best_gain";
    gauge.kind = MetricRow::Kind::Gauge;
    gauge.value = 4.25;
    snapshot.rows.push_back(gauge);
    MetricRow histo;
    histo.name = "usku.compare_ms";
    histo.kind = MetricRow::Kind::Histogram;
    histo.count = 12;
    histo.mean = 3.5;
    histo.p50 = 3.0;
    histo.p95 = 6.0;
    histo.p99 = 7.0;
    snapshot.rows.push_back(histo);

    OdsStore ods;
    ods.recordSnapshot(snapshot, 1000.0);
    EXPECT_TRUE(ods.has("tool.usku.arms_pruned"));
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.arms_pruned", 0, 1e9).front().value, 7.0);
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.best_gain", 0, 1e9).front().value, 4.25);
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.compare_ms.count", 0, 1e9).front().value,
        12.0);
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.compare_ms.p99", 0, 1e9).front().value,
        7.0);
    // Snapshots at a later time stack into the same series.
    ods.recordSnapshot(snapshot, 2000.0);
    EXPECT_EQ(ods.query("tool.usku.best_gain", 0, 1e9).size(), 2u);
}

TEST(Ods, RetentionDropsOldSamples)
{
    OdsStore ods;
    for (int i = 0; i < 100; ++i)
        ods.append("v", i * 60.0, 1.0);
    ods.retain(600.0);
    auto points = ods.query("v", 0.0, 1e9);
    ASSERT_FALSE(points.empty());
    EXPECT_GE(points.front().timeSec, 99 * 60.0 - 600.0);
}

TEST(Ods, SeriesNamesSorted)
{
    OdsStore ods;
    ods.append("b", 0, 1);
    ods.append("a", 0, 1);
    auto names = ods.seriesNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

TEST(Ods, NearestRankPercentilesAreExactOnRawWindows)
{
    // Nearest-rank: the value at rank ceil(q·n), no interpolation, no
    // floor-truncated index.  On 1..100 that is exactly 50/95/99.
    OdsStore ods;
    for (int i = 1; i <= 100; ++i)
        ods.append("v", i, static_cast<double>(i));
    auto agg = ods.aggregate("v", 1, 100);
    EXPECT_DOUBLE_EQ(agg.p50, 50.0);
    EXPECT_DOUBLE_EQ(agg.p95, 95.0);
    EXPECT_DOUBLE_EQ(agg.p99, 99.0);
    EXPECT_FALSE(agg.approximate);

    // Small-n edges: ceil(0.5·4)=2, ceil(0.99·4)=4; n=1 is the sample.
    OdsStore small;
    for (int i = 1; i <= 4; ++i)
        small.append("v", i, static_cast<double>(i));
    auto four = small.aggregate("v", 0, 10);
    EXPECT_DOUBLE_EQ(four.p50, 2.0);
    EXPECT_DOUBLE_EQ(four.p99, 4.0);
    OdsStore single;
    single.append("v", 1.0, 42.0);
    auto one = single.aggregate("v", 0, 10);
    EXPECT_DOUBLE_EQ(one.p50, 42.0);
    EXPECT_DOUBLE_EQ(one.p95, 42.0);
    EXPECT_DOUBLE_EQ(one.p99, 42.0);
}

TEST(OdsSketch, AddMergeAndPercentileStayWithinBinWidth)
{
    OdsSketch a, b;
    for (int i = 1; i <= 500; ++i)
        a.add(static_cast<double>(i));
    for (int i = 501; i <= 1000; ++i)
        b.add(static_cast<double>(i));

    a.merge(b);
    EXPECT_EQ(a.count(), 1000u);
    EXPECT_DOUBLE_EQ(a.sum(), 500.5 * 1000.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 1000.0);
    // Log-binned nearest-rank: within ~1.2% of the exact rank value.
    EXPECT_NEAR(a.percentile(0.50), 500.0, 500.0 * 0.03);
    EXPECT_NEAR(a.percentile(0.99), 990.0, 990.0 * 0.03);
    // Percentiles never escape the exact extrema.
    EXPECT_GE(a.percentile(0.0001), 1.0);
    EXPECT_LE(a.percentile(0.9999), 1000.0);

    // Merging an empty sketch is the identity.
    OdsSketch empty;
    std::uint64_t before = a.count();
    a.merge(empty);
    EXPECT_EQ(a.count(), before);
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
}

TEST(Ods, DownsampledAggregateTracksExactWithinSketchTolerance)
{
    // Same stream into a keep-forever store (exact) and an aggressively
    // rolled-up one: count and mean must match exactly (bucket headers
    // carry them), percentiles within the log-bin width.
    OdsStore exact;
    OdsStoreOptions rolled;
    rolled.retention.rawHorizonSec = 120.0;
    rolled.retention.midHorizonSec = 1200.0;
    rolled.retention.midBucketSec = 60.0;
    rolled.retention.longBucketSec = 600.0;
    OdsStore approx(rolled);

    double t = 0.0;
    for (int i = 0; i < 4000; ++i) {
        double value = 80.0 + 40.0 * std::sin(i * 0.01) + (i % 11);
        exact.append("lat", t, value);
        approx.append("lat", t, value);
        if (i % 100 == 0)
            approx.downsample(t);
        t += 5.0;
    }

    auto e = exact.aggregate("lat", 0.0, t);
    auto r = approx.aggregate("lat", 0.0, t);
    EXPECT_FALSE(e.approximate);
    EXPECT_TRUE(r.approximate);
    EXPECT_EQ(r.count, e.count);
    EXPECT_NEAR(r.mean, e.mean, std::abs(e.mean) * 1e-9);
    EXPECT_DOUBLE_EQ(r.min, e.min);
    EXPECT_DOUBLE_EQ(r.max, e.max);
    EXPECT_NEAR(r.p50, e.p50, std::abs(e.p50) * 0.03);
    EXPECT_NEAR(r.p95, e.p95, std::abs(e.p95) * 0.03);
    EXPECT_NEAR(r.p99, e.p99, std::abs(e.p99) * 0.03);

    // The fresh tail is still raw: a window inside the raw horizon
    // aggregates exactly.
    auto tail = approx.aggregate("lat", t - 60.0, t);
    EXPECT_FALSE(tail.approximate);
}

TEST(Ods, DownsampleIsNoOpUnderDefaultRetention)
{
    OdsStore ods;
    for (int i = 0; i < 1000; ++i)
        ods.append("v", i * 60.0, static_cast<double>(i));
    ods.downsample(1e9);
    EXPECT_EQ(ods.query("v", 0.0, 1e12).size(), 1000u);
    OdsStoreStats stats = ods.stats();
    EXPECT_EQ(stats.rawPoints, 1000u);
    EXPECT_EQ(stats.rollupBuckets, 0u);
    EXPECT_EQ(stats.downsampledPoints, 0u);
}

TEST(Ods, FleetScaleRetentionPreset)
{
    OdsRetention fleet = OdsRetention::fleetScale();
    EXPECT_TRUE(fleet.enabled());
    EXPECT_DOUBLE_EQ(fleet.rawHorizonSec, 3600.0);
    EXPECT_DOUBLE_EQ(fleet.midHorizonSec, 86400.0);
    EXPECT_DOUBLE_EQ(fleet.longHorizonSec, 30.0 * 86400.0);
    EXPECT_FALSE(OdsRetention{}.enabled());
}

TEST(Ods, StatsAndGaugesCensusTheStore)
{
    OdsStoreOptions options;
    options.shards = 4;
    OdsStore ods(options);
    for (int s = 0; s < 10; ++s)
        for (int i = 0; i < 50; ++i)
            ods.append("series" + std::to_string(s), i * 1.0, 1.0);

    OdsStoreStats stats = ods.stats();
    EXPECT_EQ(stats.series, 10u);
    EXPECT_EQ(stats.rawPoints, 500u);
    EXPECT_GE(stats.shardMaxPoints, 500u / 4);
    EXPECT_LE(stats.shardMaxPoints, 500u);

    ods.publishGauges();
    MetricsRegistry &global = MetricsRegistry::global();
    EXPECT_DOUBLE_EQ(
        global.gauge("ods.series", MetricScope::Operational).value(),
        10.0);
    EXPECT_DOUBLE_EQ(
        global.gauge("ods.points", MetricScope::Operational).value(),
        500.0);
    EXPECT_DOUBLE_EQ(global
                         .gauge("ods.shard_max_points",
                                MetricScope::Operational)
                         .value(),
                     static_cast<double>(stats.shardMaxPoints));
}

TEST(OdsHealthView, TopRegressedRanksWorstFirstWithNameTiebreak)
{
    OdsStore ods;
    auto fill = [&](const std::string &series, double base,
                    double recent) {
        for (int i = 0; i < 10; ++i) {
            ods.append(series, 100.0 + i, base);
        }
        for (int i = 0; i < 10; ++i)
            ods.append(series, 200.0 + i, recent);
    };
    fill(fleetSeriesName("web", "alpha"), 100.0, 90.0);   // -10%
    fill(fleetSeriesName("web", "beta"), 100.0, 90.0);    // -10% tie
    fill(fleetSeriesName("web", "gamma"), 100.0, 97.0);   // -3%
    fill(fleetSeriesName("web", "delta"), 100.0, 104.0);  // +4%
    fill(fleetSeriesName("db", "other"), 100.0, 1.0);     // wrong prefix

    FleetHealthView view(ods);
    auto trends = view.topRegressed(fleetSeriesPrefix("web"), 100.0,
                                    110.0, 200.0, 210.0, 3);
    ASSERT_EQ(trends.size(), 3u);
    EXPECT_EQ(trends[0].series, fleetSeriesName("web", "alpha"));
    EXPECT_EQ(trends[1].series, fleetSeriesName("web", "beta"));
    EXPECT_EQ(trends[2].series, fleetSeriesName("web", "gamma"));
    EXPECT_NEAR(trends[0].deltaPercent, -10.0, 1e-9);
    EXPECT_EQ(trends[0].baseCount, 10u);
    EXPECT_EQ(trends[0].recentCount, 10u);
}

TEST(OdsHealthView, ReportDiscoversRacksAndMarksSickOnes)
{
    OdsStore ods;
    // Three racks; rack 1's converted cohort runs 8% under its control.
    for (int rack = 0; rack < 3; ++rack) {
        double norm = rack == 1 ? 92.0 : 100.0;
        for (int i = 0; i < 20; ++i) {
            double t = i * 60.0;
            ods.append(rackSeriesName("web", rack, "normalized"), t,
                       norm);
            ods.append(rackSeriesName("web", rack, "control_normalized"),
                       t, 100.0);
            ods.append(rackSeriesName("web", rack, "online"), t, 4.0);
        }
    }
    for (int i = 0; i < 20; ++i)
        ods.append(fleetSeriesName("web", "mips"), i * 60.0, 1000.0);

    FleetHealthView view(ods);
    FleetHealthReport report =
        view.report("web", 0.0, 20 * 60.0, 5, 3.0);
    EXPECT_EQ(report.service, "web");
    ASSERT_EQ(report.racks.size(), 3u);
    EXPECT_EQ(report.sickRacks, 1);
    EXPECT_FALSE(report.racks[0].sick);
    EXPECT_TRUE(report.racks[1].sick);
    EXPECT_FALSE(report.racks[2].sick);
    EXPECT_NEAR(report.racks[1].deltaPercent, -8.0, 1e-9);
    EXPECT_DOUBLE_EQ(report.racks[0].onlineMean, 4.0);

    // JSON and text forms render without surprises.
    Json doc = report.toJson();
    EXPECT_EQ(doc.at("service").asString(), "web");
    EXPECT_EQ(doc.at("sick_racks").asInt(), 1);
    EXPECT_EQ(doc.at("racks").size(), 3u);
    EXPECT_NE(report.renderText().find("rack"), std::string::npos);

    // A trivial-topology store yields an empty matrix, not a crash.
    OdsStore flat;
    for (int i = 0; i < 10; ++i)
        flat.append(fleetSeriesName("web", "mips"), i * 60.0, 1000.0);
    FleetHealthView flatView(flat);
    FleetHealthReport flatReport = flatView.report("web", 0.0, 600.0);
    EXPECT_TRUE(flatReport.racks.empty());
    EXPECT_EQ(flatReport.sickRacks, 0);
}

class EmonTest : public testing::Test
{
  protected:
    static const CounterSet &
    truth()
    {
        static const CounterSet counters = [] {
            SimOptions opts;
            opts.warmupInstructions = 120'000;
            opts.measureInstructions = 150'000;
            return simulateService(feed1Profile(), skylake18(),
                                   KnobConfig{}, opts);
        }();
        return counters;
    }
};

TEST_F(EmonTest, SampledViewNearTruth)
{
    EmonSampler sampler(truth(), 1, 4, 0.05);
    CounterSet view = sampler.sampledView(64);
    EXPECT_NEAR(static_cast<double>(view.l1d.misses[1]),
                static_cast<double>(truth().l1d.misses[1]),
                static_cast<double>(truth().l1d.misses[1]) * 0.2);
    EXPECT_NEAR(view.platformMips, truth().platformMips,
                truth().platformMips * 0.1);
}

TEST_F(EmonTest, ErrorShrinksWithObservationTime)
{
    RunningStat shortErr, longErr;
    for (int trial = 0; trial < 200; ++trial) {
        EmonSampler sampler(truth(), 100 + trial, 4, 0.05);
        shortErr.add(std::abs(sampler.sampleMips(4) /
                                  truth().platformMips -
                              1.0));
        longErr.add(std::abs(sampler.sampleMips(400) /
                                 truth().platformMips -
                             1.0));
    }
    EXPECT_LT(longErr.mean(), shortErr.mean() / 2.0);
}

TEST_F(EmonTest, DeterministicPerSeed)
{
    EmonSampler a(truth(), 7);
    EmonSampler b(truth(), 7);
    EXPECT_DOUBLE_EQ(a.sampleMips(), b.sampleMips());
}

} // namespace
} // namespace softsku
