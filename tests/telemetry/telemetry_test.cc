/** @file Tests for the ODS time-series store and the EMON sampler. */

#include <gtest/gtest.h>

#include "services/services.hh"
#include "sim/service_sim.hh"
#include "stats/running_stat.hh"
#include "telemetry/emon.hh"
#include "telemetry/ods.hh"

namespace softsku {
namespace {

TEST(Ods, AppendAndQuery)
{
    OdsStore ods;
    EXPECT_FALSE(ods.has("qps"));
    for (int i = 0; i < 100; ++i)
        ods.append("qps", i * 60.0, 1000.0 + i);
    EXPECT_TRUE(ods.has("qps"));

    auto window = ods.query("qps", 600.0, 1200.0);
    ASSERT_EQ(window.size(), 11u);
    EXPECT_DOUBLE_EQ(window.front().timeSec, 600.0);
    EXPECT_DOUBLE_EQ(window.back().timeSec, 1200.0);
    EXPECT_TRUE(ods.query("missing", 0, 1e9).empty());
}

TEST(Ods, AggregateStatistics)
{
    OdsStore ods;
    for (int i = 1; i <= 100; ++i)
        ods.append("v", i, static_cast<double>(i));
    auto agg = ods.aggregate("v", 1, 100);
    EXPECT_EQ(agg.count, 100u);
    EXPECT_DOUBLE_EQ(agg.mean, 50.5);
    EXPECT_DOUBLE_EQ(agg.min, 1.0);
    EXPECT_DOUBLE_EQ(agg.max, 100.0);
    EXPECT_NEAR(agg.p50, 50.0, 1.0);
    EXPECT_NEAR(agg.p99, 99.0, 1.0);
}

TEST(Ods, AggregateEmptyWindow)
{
    OdsStore ods;
    ods.append("v", 100.0, 1.0);
    auto agg = ods.aggregate("v", 0.0, 50.0);
    EXPECT_EQ(agg.count, 0u);
}

TEST(OdsDeathTest, NonMonotonicAppendIsFatal)
{
    OdsStore ods;
    ods.append("v", 100.0, 1.0);
    EXPECT_EXIT(ods.append("v", 50.0, 2.0), testing::ExitedWithCode(1),
                "non-monotonic");
}

TEST(Ods, RetentionDropsOldSamples)
{
    OdsStore ods;
    for (int i = 0; i < 100; ++i)
        ods.append("v", i * 60.0, 1.0);
    ods.retain(600.0);
    auto points = ods.query("v", 0.0, 1e9);
    ASSERT_FALSE(points.empty());
    EXPECT_GE(points.front().timeSec, 99 * 60.0 - 600.0);
}

TEST(Ods, SeriesNamesSorted)
{
    OdsStore ods;
    ods.append("b", 0, 1);
    ods.append("a", 0, 1);
    auto names = ods.seriesNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

class EmonTest : public testing::Test
{
  protected:
    static const CounterSet &
    truth()
    {
        static const CounterSet counters = [] {
            SimOptions opts;
            opts.warmupInstructions = 120'000;
            opts.measureInstructions = 150'000;
            return simulateService(feed1Profile(), skylake18(),
                                   KnobConfig{}, opts);
        }();
        return counters;
    }
};

TEST_F(EmonTest, SampledViewNearTruth)
{
    EmonSampler sampler(truth(), 1, 4, 0.05);
    CounterSet view = sampler.sampledView(64);
    EXPECT_NEAR(static_cast<double>(view.l1d.misses[1]),
                static_cast<double>(truth().l1d.misses[1]),
                static_cast<double>(truth().l1d.misses[1]) * 0.2);
    EXPECT_NEAR(view.platformMips, truth().platformMips,
                truth().platformMips * 0.1);
}

TEST_F(EmonTest, ErrorShrinksWithObservationTime)
{
    RunningStat shortErr, longErr;
    for (int trial = 0; trial < 200; ++trial) {
        EmonSampler sampler(truth(), 100 + trial, 4, 0.05);
        shortErr.add(std::abs(sampler.sampleMips(4) /
                                  truth().platformMips -
                              1.0));
        longErr.add(std::abs(sampler.sampleMips(400) /
                                 truth().platformMips -
                             1.0));
    }
    EXPECT_LT(longErr.mean(), shortErr.mean() / 2.0);
}

TEST_F(EmonTest, DeterministicPerSeed)
{
    EmonSampler a(truth(), 7);
    EmonSampler b(truth(), 7);
    EXPECT_DOUBLE_EQ(a.sampleMips(), b.sampleMips());
}

} // namespace
} // namespace softsku
