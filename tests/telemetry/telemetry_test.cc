/** @file Tests for the ODS time-series store and the EMON sampler. */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "services/services.hh"
#include "sim/service_sim.hh"
#include "stats/running_stat.hh"
#include "telemetry/emon.hh"
#include "telemetry/ods.hh"

namespace softsku {
namespace {

TEST(Ods, AppendAndQuery)
{
    OdsStore ods;
    EXPECT_FALSE(ods.has("qps"));
    for (int i = 0; i < 100; ++i)
        ods.append("qps", i * 60.0, 1000.0 + i);
    EXPECT_TRUE(ods.has("qps"));

    auto window = ods.query("qps", 600.0, 1200.0);
    ASSERT_EQ(window.size(), 11u);
    EXPECT_DOUBLE_EQ(window.front().timeSec, 600.0);
    EXPECT_DOUBLE_EQ(window.back().timeSec, 1200.0);
    EXPECT_TRUE(ods.query("missing", 0, 1e9).empty());
}

TEST(Ods, AggregateStatistics)
{
    OdsStore ods;
    for (int i = 1; i <= 100; ++i)
        ods.append("v", i, static_cast<double>(i));
    auto agg = ods.aggregate("v", 1, 100);
    EXPECT_EQ(agg.count, 100u);
    EXPECT_DOUBLE_EQ(agg.mean, 50.5);
    EXPECT_DOUBLE_EQ(agg.min, 1.0);
    EXPECT_DOUBLE_EQ(agg.max, 100.0);
    EXPECT_NEAR(agg.p50, 50.0, 1.0);
    EXPECT_NEAR(agg.p99, 99.0, 1.0);
}

TEST(Ods, AggregateEmptyWindow)
{
    OdsStore ods;
    ods.append("v", 100.0, 1.0);
    auto agg = ods.aggregate("v", 0.0, 50.0);
    EXPECT_EQ(agg.count, 0u);
}

TEST(Ods, NonMonotonicAppendClampsToNewestTime)
{
    // A fleet store must survive one producer's clock going backwards:
    // the sample is kept, clamped to the series' newest timestamp, so
    // windowed aggregates stay ordered instead of silently corrupting.
    OdsStore ods;
    ods.append("v", 100.0, 1.0);
    ods.append("v", 50.0, 2.0);
    auto points = ods.query("v", 0.0, 1e9);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].timeSec, 100.0);
    EXPECT_DOUBLE_EQ(points[1].timeSec, 100.0);
    EXPECT_DOUBLE_EQ(points[1].value, 2.0);
    // Later in-order appends continue normally.
    ods.append("v", 200.0, 3.0);
    auto agg = ods.aggregate("v", 0.0, 1e9);
    EXPECT_EQ(agg.count, 3u);
    EXPECT_DOUBLE_EQ(agg.max, 3.0);
}

TEST(Ods, RecordSnapshotPersistsToolMetrics)
{
    MetricsSnapshot snapshot;
    MetricRow counter;
    counter.name = "usku.arms_pruned";
    counter.kind = MetricRow::Kind::Counter;
    counter.value = 7.0;
    snapshot.rows.push_back(counter);
    MetricRow gauge;
    gauge.name = "usku.best_gain";
    gauge.kind = MetricRow::Kind::Gauge;
    gauge.value = 4.25;
    snapshot.rows.push_back(gauge);
    MetricRow histo;
    histo.name = "usku.compare_ms";
    histo.kind = MetricRow::Kind::Histogram;
    histo.count = 12;
    histo.mean = 3.5;
    histo.p50 = 3.0;
    histo.p95 = 6.0;
    histo.p99 = 7.0;
    snapshot.rows.push_back(histo);

    OdsStore ods;
    ods.recordSnapshot(snapshot, 1000.0);
    EXPECT_TRUE(ods.has("tool.usku.arms_pruned"));
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.arms_pruned", 0, 1e9).front().value, 7.0);
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.best_gain", 0, 1e9).front().value, 4.25);
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.compare_ms.count", 0, 1e9).front().value,
        12.0);
    EXPECT_DOUBLE_EQ(
        ods.query("tool.usku.compare_ms.p99", 0, 1e9).front().value,
        7.0);
    // Snapshots at a later time stack into the same series.
    ods.recordSnapshot(snapshot, 2000.0);
    EXPECT_EQ(ods.query("tool.usku.best_gain", 0, 1e9).size(), 2u);
}

TEST(Ods, RetentionDropsOldSamples)
{
    OdsStore ods;
    for (int i = 0; i < 100; ++i)
        ods.append("v", i * 60.0, 1.0);
    ods.retain(600.0);
    auto points = ods.query("v", 0.0, 1e9);
    ASSERT_FALSE(points.empty());
    EXPECT_GE(points.front().timeSec, 99 * 60.0 - 600.0);
}

TEST(Ods, SeriesNamesSorted)
{
    OdsStore ods;
    ods.append("b", 0, 1);
    ods.append("a", 0, 1);
    auto names = ods.seriesNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

class EmonTest : public testing::Test
{
  protected:
    static const CounterSet &
    truth()
    {
        static const CounterSet counters = [] {
            SimOptions opts;
            opts.warmupInstructions = 120'000;
            opts.measureInstructions = 150'000;
            return simulateService(feed1Profile(), skylake18(),
                                   KnobConfig{}, opts);
        }();
        return counters;
    }
};

TEST_F(EmonTest, SampledViewNearTruth)
{
    EmonSampler sampler(truth(), 1, 4, 0.05);
    CounterSet view = sampler.sampledView(64);
    EXPECT_NEAR(static_cast<double>(view.l1d.misses[1]),
                static_cast<double>(truth().l1d.misses[1]),
                static_cast<double>(truth().l1d.misses[1]) * 0.2);
    EXPECT_NEAR(view.platformMips, truth().platformMips,
                truth().platformMips * 0.1);
}

TEST_F(EmonTest, ErrorShrinksWithObservationTime)
{
    RunningStat shortErr, longErr;
    for (int trial = 0; trial < 200; ++trial) {
        EmonSampler sampler(truth(), 100 + trial, 4, 0.05);
        shortErr.add(std::abs(sampler.sampleMips(4) /
                                  truth().platformMips -
                              1.0));
        longErr.add(std::abs(sampler.sampleMips(400) /
                                 truth().platformMips -
                             1.0));
    }
    EXPECT_LT(longErr.mean(), shortErr.mean() / 2.0);
}

TEST_F(EmonTest, DeterministicPerSeed)
{
    EmonSampler a(truth(), 7);
    EmonSampler b(truth(), 7);
    EXPECT_DOUBLE_EQ(a.sampleMips(), b.sampleMips());
}

} // namespace
} // namespace softsku
