/** @file Tests for profiles, address-space layout, and generators. */

#include <gtest/gtest.h>

#include <set>

#include "services/services.hh"
#include "workload/address_space.hh"
#include "workload/codegen.hh"
#include "workload/datagen.hh"
#include "workload/profile.hh"

namespace softsku {
namespace {

TEST(Profile, AllServiceProfilesValidate)
{
    for (const WorkloadProfile *service : allMicroservices()) {
        SCOPED_TRACE(service->name);
        service->validate();   // fatal()s on failure
        EXPECT_NEAR(service->mix.sum(), 1.0, 0.02);
        EXPECT_GT(service->dataFootprintBytes(), 0u);
    }
}

TEST(ProfileDeathTest, BrokenMixIsFatal)
{
    WorkloadProfile p = webProfile();
    p.mix.branch = 0.9;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1),
                "instruction mix");
}

TEST(ProfileDeathTest, EmptyRegionsFatal)
{
    WorkloadProfile p = webProfile();
    p.dataRegions.clear();
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1),
                "no data regions");
}

TEST(AddressSpace, RegionsDisjointAndAligned)
{
    AddressSpace space = layoutAddressSpace(webProfile());
    ASSERT_EQ(space.dataBases.size(), webProfile().dataRegions.size());
    ASSERT_EQ(space.pageRegions.size(), space.dataBases.size() + 1);

    std::uint64_t prevEnd = 0;
    for (const VirtualRegion &region : space.pageRegions) {
        EXPECT_GE(region.base, prevEnd);
        EXPECT_EQ(region.base % kPage2m, 0u);
        EXPECT_EQ(region.sizeBytes % kPage2m, 0u);
        prevEnd = region.base + region.sizeBytes;
    }
    EXPECT_EQ(space.pageRegions[0].kind, RegionKind::Code);
}

TEST(AddressSpace, Deterministic)
{
    AddressSpace a = layoutAddressSpace(feed1Profile());
    AddressSpace b = layoutAddressSpace(feed1Profile());
    EXPECT_EQ(a.codeBase, b.codeBase);
    EXPECT_EQ(a.dataBases, b.dataBases);
}

TEST(Codegen, PcStaysInsideCodeRegion)
{
    const WorkloadProfile &profile = webProfile();
    AddressSpace space = layoutAddressSpace(profile);
    CodeGenerator codegen(profile, space.codeBase, 1);
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t pc = codegen.pc();
        EXPECT_GE(pc, space.codeBase);
        EXPECT_LT(pc, space.codeBase + space.codeSize + 4096);
        if (i % 5 == 0)
            codegen.executeBranch();
        else
            codegen.advance();
    }
}

TEST(Codegen, DeterministicUnderSeed)
{
    const WorkloadProfile &profile = feed2Profile();
    AddressSpace space = layoutAddressSpace(profile);
    CodeGenerator a(profile, space.codeBase, 9);
    CodeGenerator b(profile, space.codeBase, 9);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_EQ(a.pc(), b.pc());
        if (i % 4 == 0) {
            EXPECT_EQ(a.executeBranch(), b.executeBranch());
        } else {
            a.advance();
            b.advance();
        }
    }
}

TEST(Codegen, ChurnRemapsFunctions)
{
    WorkloadProfile profile = webProfile();
    profile.jitChurnPerMInsn = 0.05;
    AddressSpace space = layoutAddressSpace(profile);
    CodeGenerator codegen(profile, space.codeBase, 2);

    std::vector<std::uint64_t> before;
    for (std::uint64_t f = 0; f < 200; ++f)
        before.push_back(codegen.functionAddress(f));
    codegen.applyChurn(10'000'000);
    int moved = 0;
    for (std::uint64_t f = 0; f < 200; ++f)
        moved += codegen.functionAddress(f) != before[f];
    EXPECT_GT(moved, 10);   // hot functions get remapped
}

TEST(Codegen, NoChurnKeepsAddressesStable)
{
    const WorkloadProfile &profile = feed1Profile();
    AddressSpace space = layoutAddressSpace(profile);
    CodeGenerator codegen(profile, space.codeBase, 3);
    std::uint64_t addr = codegen.functionAddress(7);
    codegen.applyChurn(50'000'000);
    EXPECT_EQ(codegen.functionAddress(7), addr);
}

TEST(Datagen, AddressesStayInsideRegions)
{
    const WorkloadProfile &profile = cache1Profile();
    AddressSpace space = layoutAddressSpace(profile);
    DataGenerator datagen(profile, space, 4);
    for (int i = 0; i < 50000; ++i) {
        DataAccess access = datagen.next();
        ASSERT_LT(access.regionIndex, profile.dataRegions.size());
        std::uint64_t base = space.dataBases[access.regionIndex];
        std::uint64_t size =
            profile.dataRegions[access.regionIndex].sizeBytes;
        EXPECT_GE(access.addr, base);
        EXPECT_LT(access.addr, base + size);
        EXPECT_GE(access.mlp, 1.0);
    }
}

TEST(Datagen, ReuseFractionControlsDistinctLines)
{
    WorkloadProfile lowReuse = feed2Profile();
    lowReuse.dataReuseFraction = 0.2;
    WorkloadProfile highReuse = feed2Profile();
    highReuse.dataReuseFraction = 0.95;
    AddressSpace space = layoutAddressSpace(lowReuse);

    auto distinct = [&](const WorkloadProfile &p) {
        DataGenerator datagen(p, space, 5);
        std::set<std::uint64_t> lines;
        for (int i = 0; i < 20000; ++i)
            lines.insert(datagen.next().addr / 64);
        return lines.size();
    };
    EXPECT_GT(distinct(lowReuse), distinct(highReuse) * 2);
}

TEST(Datagen, StridedPatternHasStablePcAndStride)
{
    WorkloadProfile profile = feed1Profile();
    profile.dataReuseFraction = 0.0;
    profile.dataMidReuseFraction = 0.0;
    // Keep only the strided region.
    profile.dataRegions = {profile.dataRegions[0]};
    profile.dataRegions[0].weight = 1.0;
    AddressSpace space = layoutAddressSpace(profile);
    DataGenerator datagen(profile, space, 6);

    DataAccess first = datagen.next();
    DataAccess second = datagen.next();
    EXPECT_EQ(second.addr - first.addr,
              profile.dataRegions[0].strideBytes);
    EXPECT_NE(first.streamPc, 0u);
    EXPECT_EQ(first.streamPc, second.streamPc);
}

TEST(Datagen, PointerChaseHasUnitMlp)
{
    WorkloadProfile profile = ads2Profile();
    AddressSpace space = layoutAddressSpace(profile);
    DataGenerator datagen(profile, space, 7);
    bool sawChase = false;
    for (int i = 0; i < 20000; ++i) {
        DataAccess access = datagen.next();
        const DataRegionSpec &spec =
            profile.dataRegions[access.regionIndex];
        if (spec.pattern == DataPattern::PointerChase) {
            EXPECT_DOUBLE_EQ(access.mlp, 1.0);
            sawChase = true;
        }
    }
    EXPECT_TRUE(sawChase);
}

TEST(Datagen, HotBytesBoundsZipfDraws)
{
    WorkloadProfile profile = webProfile();
    profile.dataReuseFraction = 0.0;
    profile.dataMidReuseFraction = 0.0;
    // php_heap only, with no cold tail: every draw inside hotBytes.
    profile.dataRegions = {profile.dataRegions[0]};
    profile.dataRegions[0].weight = 1.0;
    profile.dataRegions[0].coldFraction = 0.0;
    AddressSpace space = layoutAddressSpace(profile);
    DataGenerator datagen(profile, space, 8);
    std::uint64_t base = space.dataBases[0];
    std::uint64_t hot = profile.dataRegions[0].hotBytes;
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(datagen.next().addr, base + hot);
}

} // namespace
} // namespace softsku
