/** @file Unit tests for the Welford streaming statistics accumulator. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hh"
#include "stats/running_stat.hh"

namespace softsku {
namespace {

TEST(RunningStat, EmptyState)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.confidenceHalfWidth()));
}

TEST(RunningStat, KnownSmallSample)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Population variance 4 → sample variance 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential)
{
    Rng rng(42);
    RunningStat whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian(3.0, 1.5);
        whole.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, NumericallyStableWithLargeOffset)
{
    RunningStat s;
    const double offset = 1e9;
    for (double x : {offset + 1.0, offset + 2.0, offset + 3.0})
        s.add(x);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStat, ConfidenceShrinksWithSamples)
{
    Rng rng(7);
    RunningStat small, large;
    for (int i = 0; i < 10; ++i)
        small.add(rng.gaussian(0, 1));
    for (int i = 0; i < 10000; ++i)
        large.add(rng.gaussian(0, 1));
    EXPECT_GT(small.confidenceHalfWidth(0.95),
              large.confidenceHalfWidth(0.95));
    // ~1.96 / sqrt(10000) ≈ 0.0196 for unit variance.
    EXPECT_NEAR(large.confidenceHalfWidth(0.95), 0.0196, 0.004);
}

TEST(RunningStat, CoverageOfConfidenceInterval)
{
    // Across many repetitions, the 95% CI should contain the true mean
    // ~95% of the time.
    Rng rng(1234);
    int covered = 0;
    const int reps = 400;
    for (int r = 0; r < reps; ++r) {
        RunningStat s;
        for (int i = 0; i < 30; ++i)
            s.add(rng.gaussian(10.0, 3.0));
        double hw = s.confidenceHalfWidth(0.95);
        if (std::fabs(s.mean() - 10.0) <= hw)
            ++covered;
    }
    double coverage = static_cast<double>(covered) / reps;
    EXPECT_GT(coverage, 0.90);
    EXPECT_LT(coverage, 0.99);
}

TEST(RunningStat, ClearResets)
{
    RunningStat s;
    s.add(5.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// ----- merge() property tests: the parallel-reduction contract -------
//
// The sweep engine reduces per-thread accumulators with merge(); the
// property that makes that safe is that ANY partition of a sample
// stream, merged back together, matches the single-stream fold.

/** Fold @p samples serially. */
RunningStat
foldAll(const std::vector<double> &samples)
{
    RunningStat all;
    for (double x : samples)
        all.add(x);
    return all;
}

void
expectEquivalent(const RunningStat &merged, const RunningStat &serial)
{
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), serial.min());
    EXPECT_DOUBLE_EQ(merged.max(), serial.max());
}

TEST(RunningStat, MergeOfArbitraryPartitionsMatchesSingleStream)
{
    Rng rng(99);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(rng.gaussian(120.0, 17.0));
    RunningStat serial = foldAll(samples);

    // Many random partitionings into K pieces, merged left to right.
    for (int trial = 0; trial < 20; ++trial) {
        const int k = 1 + static_cast<int>(rng.next() % 16);
        std::vector<RunningStat> parts(k);
        for (double x : samples)
            parts[rng.next() % k].add(x);
        RunningStat merged;
        for (const RunningStat &part : parts)
            merged.merge(part);
        expectEquivalent(merged, serial);
    }
}

TEST(RunningStat, MergeWithEmptyPartitionIsIdentity)
{
    Rng rng(7);
    std::vector<double> samples;
    for (int i = 0; i < 100; ++i)
        samples.push_back(rng.gaussian(0.0, 1.0));
    RunningStat serial = foldAll(samples);

    RunningStat withEmpties;
    withEmpties.merge(RunningStat{});     // empty into empty
    RunningStat filled = foldAll(samples);
    withEmpties.merge(filled);            // filled into empty
    withEmpties.merge(RunningStat{});     // empty into filled
    expectEquivalent(withEmpties, serial);
}

TEST(RunningStat, MergeOfSingleSamplePartitions)
{
    // Degenerate partition: every sample its own accumulator.  Each
    // piece has zero variance; the merged variance must still match.
    Rng rng(11);
    std::vector<double> samples;
    for (int i = 0; i < 64; ++i)
        samples.push_back(rng.gaussian(5.0, 2.0));
    RunningStat merged;
    for (double x : samples) {
        RunningStat one;
        one.add(x);
        merged.merge(one);
    }
    expectEquivalent(merged, foldAll(samples));
}

} // namespace
} // namespace softsku
