/**
 * @file
 * Property tests for the robust-statistics primitives at the racing
 * engine's edges: the MAD outlier gate on degenerate batches, and the
 * RunningStat confidence bound on the 0/1/2-sample chunks a racing
 * pull can legitimately produce.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/rng.hh"
#include "stats/robust.hh"
#include "stats/running_stat.hh"

namespace softsku {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(MadGate, EmptyBatchKeepsFiniteCenterValues)
{
    std::vector<double> batch;
    MadGate gate(batch, 8.0);
    // Degenerate estimate: median 0, floored scale.  Only values at
    // the (zero) center survive; nothing crashes.
    EXPECT_DOUBLE_EQ(gate.median(), 0.0);
    EXPECT_DOUBLE_EQ(gate.mad(), 0.0);
    EXPECT_TRUE(gate.keeps(0.0));
    EXPECT_FALSE(gate.keeps(1.0));
}

TEST(MadGate, AllIdenticalSamplesCannotRejectEverything)
{
    // Zero spread: the scale floor (max(mad, 1e-6)) keeps the batch's
    // own value in-gate instead of rejecting the entire chunk.
    std::vector<double> batch(100, 0.0125);
    MadGate gate(batch, 8.0);
    EXPECT_DOUBLE_EQ(gate.mad(), 0.0);
    for (double x : batch)
        EXPECT_TRUE(gate.keeps(x));
    // ...while a corrupted spike still falls.
    EXPECT_FALSE(gate.keeps(1.0));
    EXPECT_FALSE(gate.keeps(0.0125 + 1e-3));
}

TEST(MadGate, NonFiniteSamplesAreNeverKept)
{
    std::vector<double> batch = {1.0, 1.1, 0.9, kInf, -kInf, kNan};
    MadGate gate(batch, 8.0);
    EXPECT_FALSE(gate.keeps(kInf));
    EXPECT_FALSE(gate.keeps(-kInf));
    EXPECT_FALSE(gate.keeps(kNan));
    // The finite core still passes: the non-finite entries must not
    // have poisoned the location/scale estimate.
    EXPECT_TRUE(gate.keeps(1.0));
    EXPECT_TRUE(gate.keeps(0.9));
    EXPECT_TRUE(gate.keeps(1.1));
}

TEST(MadGate, SpikesFallTensOfMadsOut)
{
    Rng rng(7);
    std::vector<double> batch;
    for (int i = 0; i < 200; ++i)
        batch.push_back(rng.gaussian(0.01, 0.002));
    MadGate gate(batch, 8.0);
    // A zeroed counter (ratio -1) and a doubled reading both sit far
    // outside the gate while the genuine population survives.
    EXPECT_FALSE(gate.keeps(-1.0));
    EXPECT_FALSE(gate.keeps(1.0));
    std::size_t kept = 0;
    for (double x : batch)
        kept += gate.keeps(x) ? 1 : 0;
    EXPECT_GE(kept, batch.size() * 99 / 100);
}

TEST(RunningStatRace, ConfidenceBoundInfiniteBelowTwoSamples)
{
    RunningStat s;
    EXPECT_TRUE(std::isinf(s.confidenceHalfWidth(0.95)));
    s.add(0.01);
    EXPECT_TRUE(std::isinf(s.confidenceHalfWidth(0.95)));
    s.add(0.02);
    EXPECT_TRUE(std::isfinite(s.confidenceHalfWidth(0.95)));
    EXPECT_GT(s.confidenceHalfWidth(0.95), 0.0);
}

TEST(RunningStatRace, AllIdenticalSamplesCollapseTheBound)
{
    RunningStat s;
    for (int i = 0; i < 400; ++i)
        s.add(0.0125);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0125);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.confidenceHalfWidth(0.95), 0.0);
}

TEST(RunningStatRace, MergingEmptyStatsIsIdentity)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0})
        s.add(x);
    RunningStat::State before = s.state();

    RunningStat empty;
    s.merge(empty);
    RunningStat::State after = s.state();
    EXPECT_EQ(after.count, before.count);
    EXPECT_EQ(after.mean, before.mean);
    EXPECT_EQ(after.m2, before.m2);

    // Empty absorbing a populated accumulator is bit-exact too — this
    // is how a fresh race window adopts its first cached chunk.
    RunningStat adopt;
    adopt.merge(s);
    EXPECT_EQ(adopt.state().count, after.count);
    EXPECT_EQ(adopt.state().mean, after.mean);
    EXPECT_EQ(adopt.state().m2, after.m2);

    RunningStat both;
    both.merge(RunningStat{});
    EXPECT_EQ(both.count(), 0u);
    EXPECT_TRUE(std::isinf(both.confidenceHalfWidth()));
}

TEST(RunningStatRace, TinyChunksMatchSequentialBitForBit)
{
    // Racing hands the elimination rule cumulative stats rebuilt from
    // 0-, 1-, and 2-sample chunk tails; the persisted-state round trip
    // must reproduce sequential addition exactly.
    Rng rng(21);
    std::vector<double> samples;
    for (int i = 0; i < 7; ++i)
        samples.push_back(rng.gaussian(0.005, 0.017));

    RunningStat sequential;
    for (double x : samples)
        sequential.add(x);

    RunningStat chunked;
    std::size_t cuts[] = {0, 1, 3, 3, 5, 7};  // 0/1/2/0/2-sample chunks
    for (std::size_t c = 1; c < std::size(cuts); ++c) {
        RunningStat resumed = RunningStat::fromState(chunked.state());
        for (std::size_t i = cuts[c - 1]; i < cuts[c]; ++i)
            resumed.add(samples[i]);
        chunked = resumed;
    }

    EXPECT_EQ(chunked.state().count, sequential.state().count);
    EXPECT_EQ(chunked.state().mean, sequential.state().mean);
    EXPECT_EQ(chunked.state().m2, sequential.state().m2);
    EXPECT_EQ(chunked.state().min, sequential.state().min);
    EXPECT_EQ(chunked.state().max, sequential.state().max);
}

} // namespace
} // namespace softsku
