/** @file Tests for t quantiles and Welch's t-test. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hh"
#include "stats/running_stat.hh"
#include "stats/students_t.hh"

namespace softsku {
namespace {

TEST(NormalQuantile, MatchesKnownValues)
{
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829, 1e-4);
}

TEST(NormalCdf, InvertsQuantile)
{
    for (double p : {0.01, 0.1, 0.25, 0.5, 0.8, 0.99})
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-6);
}

TEST(StudentT, QuantileMatchesTables)
{
    // Classic two-sided 95% critical values.
    EXPECT_NEAR(studentTQuantile(0.95, 10), 2.228, 0.01);
    EXPECT_NEAR(studentTQuantile(0.95, 30), 2.042, 0.01);
    EXPECT_NEAR(studentTQuantile(0.95, 120), 1.980, 0.005);
    EXPECT_NEAR(studentTQuantile(0.99, 20), 2.845, 0.02);
}

TEST(StudentT, ConvergesToNormalForLargeDof)
{
    EXPECT_NEAR(studentTQuantile(0.95, 1e6), normalQuantile(0.975), 1e-4);
}

TEST(StudentT, CdfMatchesKnownValues)
{
    // P(T < 2.228 | dof=10) ≈ 0.975.
    EXPECT_NEAR(studentTCdf(2.228, 10), 0.975, 0.002);
    EXPECT_NEAR(studentTCdf(0.0, 5), 0.5, 1e-9);
    EXPECT_NEAR(studentTCdf(-2.228, 10), 0.025, 0.002);
}

TEST(Welch, DetectsLargeDifference)
{
    Rng rng(1);
    RunningStat a, b;
    for (int i = 0; i < 200; ++i) {
        a.add(rng.gaussian(100.0, 5.0));
        b.add(rng.gaussian(104.0, 5.0));
    }
    auto res = welchTTest(a, b, 0.95);
    EXPECT_TRUE(res.significant);
    EXPECT_NEAR(res.meanDiff, 4.0, 1.5);
    EXPECT_LT(res.pValue, 0.01);
}

TEST(Welch, NoFalsePositiveOnIdenticalMeans)
{
    // With identical distributions, significance at 95% should appear
    // in roughly 5% of repeated experiments.
    Rng rng(2);
    int falsePositives = 0;
    const int reps = 300;
    for (int r = 0; r < reps; ++r) {
        RunningStat a, b;
        for (int i = 0; i < 50; ++i) {
            a.add(rng.gaussian(10.0, 2.0));
            b.add(rng.gaussian(10.0, 2.0));
        }
        falsePositives += welchTTest(a, b, 0.95).significant;
    }
    double rate = static_cast<double>(falsePositives) / reps;
    EXPECT_LT(rate, 0.10);
}

TEST(Welch, HandlesUnequalVariances)
{
    Rng rng(3);
    RunningStat a, b;
    for (int i = 0; i < 500; ++i) {
        a.add(rng.gaussian(50.0, 1.0));
        b.add(rng.gaussian(50.5, 10.0));
    }
    auto res = welchTTest(a, b, 0.95);
    // Satterthwaite dof must be pulled toward the noisier sample.
    EXPECT_LT(res.dof, 600.0);
    EXPECT_GT(res.dof, 400.0);
}

TEST(Welch, InsufficientSamples)
{
    RunningStat a, b;
    a.add(1.0);
    b.add(2.0);
    auto res = welchTTest(a, b);
    EXPECT_FALSE(res.significant);
    EXPECT_DOUBLE_EQ(res.pValue, 1.0);
}

TEST(Welch, DirectionOfDifference)
{
    Rng rng(4);
    RunningStat a, b;
    for (int i = 0; i < 100; ++i) {
        a.add(rng.gaussian(10.0, 0.5));
        b.add(rng.gaussian(8.0, 0.5));
    }
    auto res = welchTTest(a, b);
    EXPECT_LT(res.meanDiff, 0.0);
    EXPECT_LT(res.tStatistic, 0.0);
}

} // namespace
} // namespace softsku
