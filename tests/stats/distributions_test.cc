/** @file Tests for Zipf, alias-method discrete choice, and EWMA. */

#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.hh"

namespace softsku {
namespace {

TEST(Zipf, RankZeroIsHottest)
{
    ZipfDistribution zipf(1000, 1.0);
    Rng rng(1);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[100]);
}

TEST(Zipf, SkewZeroIsUniform)
{
    ZipfDistribution zipf(10, 0.0);
    Rng rng(2);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, 600);
}

TEST(Zipf, RatioMatchesTheory)
{
    // With s=1, P(rank 0) / P(rank 1) == 2.
    ZipfDistribution zipf(100, 1.0);
    Rng rng(3);
    int c0 = 0, c1 = 0;
    for (int i = 0; i < 300000; ++i) {
        auto r = zipf.sample(rng);
        c0 += r == 0;
        c1 += r == 1;
    }
    EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.1);
}

TEST(Zipf, SamplesStayInRange)
{
    ZipfDistribution zipf(17, 1.2);
    Rng rng(4);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(zipf.sample(rng), 17u);
}

TEST(Discrete, MatchesWeights)
{
    DiscreteDistribution d({1.0, 2.0, 7.0});
    Rng rng(5);
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Discrete, NormalizedProbabilities)
{
    DiscreteDistribution d({2.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(d.probability(0), 0.25);
    EXPECT_DOUBLE_EQ(d.probability(2), 0.5);
}

TEST(Discrete, SingleOutcome)
{
    DiscreteDistribution d({3.0});
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(rng), 0u);
}

TEST(Discrete, ZeroWeightNeverSampled)
{
    DiscreteDistribution d({0.0, 1.0, 0.0});
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(d.sample(rng), 1u);
}

/** Scripted generator steering sample() into a chosen branch — only
 *  possible because sample() is templated over the generator. */
struct ScriptedRng
{
    double u;
    std::uint64_t belowReturn = 0;
    int belowCalls = 0;

    double uniform() { return u; }
    std::uint64_t
    below(std::uint64_t bound)
    {
        ++belowCalls;
        return belowReturn < bound ? belowReturn : bound - 1;
    }
};

TEST(Zipf, TableCappedTailStillReachesEveryRank)
{
    // n beyond the 1<<20 CDF table cap: the hoisted tail branch must
    // still spread the capped last table rank across the whole tail,
    // with exactly one below() draw — and only on that rank.
    const std::uint64_t cap = 1u << 20;
    const std::uint64_t n = cap + 5000;
    ZipfDistribution zipf(n, 0.6);

    ScriptedRng top{1.0, 5000};
    EXPECT_EQ(zipf.sample(top), n - 1);
    EXPECT_EQ(top.belowCalls, 1);

    ScriptedRng base{1.0, 0};
    EXPECT_EQ(zipf.sample(base), cap - 1);
    EXPECT_EQ(base.belowCalls, 1);

    ScriptedRng head{0.0};
    EXPECT_EQ(zipf.sample(head), 0u);
    EXPECT_EQ(head.belowCalls, 0);
}

TEST(Zipf, UncappedSampleDrawsExactlyOneUniform)
{
    // Without a truncated table, sample() must consume exactly one
    // draw — the hoisted hasTail_ check cannot touch the stream.
    ZipfDistribution zipf(1000, 0.8);
    Rng a(11), b(11);
    for (int i = 0; i < 5000; ++i) {
        zipf.sample(a);
        b.uniform();
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Ewma, FirstValueTaken)
{
    Ewma e(0.1);
    EXPECT_TRUE(e.empty());
    e.add(5.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
    EXPECT_FALSE(e.empty());
}

TEST(Ewma, ConvergesToStep)
{
    Ewma e(0.2);
    e.add(0.0);
    for (int i = 0; i < 100; ++i)
        e.add(10.0);
    EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, SmoothsNoise)
{
    Ewma e(0.05);
    Rng rng(8);
    for (int i = 0; i < 2000; ++i)
        e.add(rng.gaussian(3.0, 1.0));
    EXPECT_NEAR(e.value(), 3.0, 0.5);
}

} // namespace
} // namespace softsku
