/** @file Unit and statistical tests for the seeded RNG. */

#include <gtest/gtest.h>

#include <set>

#include "stats/rng.hh"

namespace softsku {
namespace {

TEST(Rng, DeterministicUnderSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform)
{
    Rng rng(99);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i) {
        auto v = rng.below(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 5000, 450);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(3);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        sawLo |= v == -2;
        sawHi |= v == 2;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.015);
}

TEST(Rng, LogNormalMeanIsUnbiased)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.logNormalMean(50.0, 0.2);
    EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, SplitIsDeterministicAndPositionIndependent)
{
    // split() must depend only on (seed, streamId) — never on how many
    // draws the parent has made.  This is what lets parallel sweep
    // tasks replay identically regardless of scheduling.
    Rng fresh(42);
    Rng drained(42);
    for (int i = 0; i < 1000; ++i)
        drained.next();
    Rng a = fresh.split(17);
    Rng b = drained.split(17);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsAreDistinct)
{
    Rng parent(42);
    Rng s0 = parent.split(0);
    Rng s1 = parent.split(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += s0.next() == s1.next();
    EXPECT_LT(same, 3);
    // ...and distinct from the parent's own stream.
    Rng parentCopy(42);
    Rng s2 = parent.split(2);
    same = 0;
    for (int i = 0; i < 100; ++i)
        same += s2.next() == parentCopy.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitDoesNotAdvanceParent)
{
    Rng parent(8);
    Rng untouched(8);
    (void)parent.split(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(parent.next(), untouched.next());
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(5);
    Rng child = parent.fork();
    // The child stream should not replay the parent's outputs.
    Rng parentCopy(5);
    parentCopy.next(); // account for the draw consumed by fork()
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += child.next() == parentCopy.next();
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace softsku
