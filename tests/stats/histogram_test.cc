/** @file Tests for the log-binned percentile histogram. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"
#include "stats/rng.hh"

namespace softsku {
namespace {

TEST(LogHistogram, EmptyReturnsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, SingleValue)
{
    LogHistogram h;
    h.add(42.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.percentile(0.5), 42.0, 42.0 * 0.03);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LogHistogram, PercentilesOfUniformData)
{
    LogHistogram h(1e-3, 1e4, 200);
    for (int i = 1; i <= 10000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(0.5), 5000.0, 5000.0 * 0.05);
    EXPECT_NEAR(h.percentile(0.99), 9900.0, 9900.0 * 0.05);
    EXPECT_NEAR(h.percentile(0.0), 1.0, 0.2);
}

TEST(LogHistogram, MeanIsExact)
{
    LogHistogram h;
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(LogHistogram, WeightedAdd)
{
    LogHistogram h;
    h.add(10.0, 99);
    h.add(1000.0, 1);
    EXPECT_EQ(h.count(), 100u);
    // p50 dominated by the repeated value.
    EXPECT_NEAR(h.percentile(0.5), 10.0, 1.0);
    EXPECT_NEAR(h.percentile(1.0), 1000.0, 100.0);
}

TEST(LogHistogram, ClampsOutOfRange)
{
    LogHistogram h(1.0, 100.0, 50);
    h.add(1e-6);
    h.add(1e9);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GE(h.percentile(0.0), 0.9);
    EXPECT_LE(h.percentile(1.0), 110.0);
}

TEST(LogHistogram, RelativeErrorBounded)
{
    LogHistogram h(1e-9, 1e6, 100);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.uniform(40.0, 60.0));
    // Worst-case bin error at 100 bins/decade is ~2.3%.
    double p50 = h.percentile(0.5);
    EXPECT_GT(p50, 45.0);
    EXPECT_LT(p50, 55.0);
}

TEST(LogHistogram, ClearResets)
{
    LogHistogram h;
    h.add(5.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, MonotonePercentiles)
{
    LogHistogram h;
    Rng rng(6);
    for (int i = 0; i < 5000; ++i)
        h.add(rng.logNormalMean(100.0, 1.0));
    double last = 0.0;
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        double v = h.percentile(q);
        EXPECT_GE(v, last);
        last = v;
    }
}

} // namespace
} // namespace softsku
