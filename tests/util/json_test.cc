/**
 * @file
 * Unit tests for the JSON parser/serializer used by μSKU input files
 * and design-space reports.
 */

#include <gtest/gtest.h>

#include "util/json.hh"

namespace softsku {
namespace {

TEST(Json, ParsesScalars)
{
    std::string err;
    auto [num, okNum] = Json::parse("42", &err);
    ASSERT_TRUE(okNum) << err;
    EXPECT_TRUE(num.isNumber());
    EXPECT_EQ(num.asInt(), 42);

    auto [neg, okNeg] = Json::parse("-3.5e2");
    ASSERT_TRUE(okNeg);
    EXPECT_DOUBLE_EQ(neg.asNumber(), -350.0);

    auto [t, okT] = Json::parse("true");
    ASSERT_TRUE(okT);
    EXPECT_TRUE(t.asBool());

    auto [n, okN] = Json::parse("null");
    ASSERT_TRUE(okN);
    EXPECT_TRUE(n.isNull());

    auto [s, okS] = Json::parse("\"hello\"");
    ASSERT_TRUE(okS);
    EXPECT_EQ(s.asString(), "hello");
}

TEST(Json, ParsesNestedStructures)
{
    const char *doc = R"({
        "microservice": "web",
        "platform": "skylake18",
        "sweep": {"mode": "independent", "knobs": ["cdp", "thp"]},
        "samples": [1, 2.5, 3]
    })";
    std::string err;
    auto [j, ok] = Json::parse(doc, &err);
    ASSERT_TRUE(ok) << err;
    EXPECT_EQ(j.at("microservice").asString(), "web");
    EXPECT_EQ(j.at("sweep").at("mode").asString(), "independent");
    EXPECT_EQ(j.at("sweep").at("knobs").size(), 2u);
    EXPECT_EQ(j.at("sweep").at("knobs").at(1).asString(), "thp");
    EXPECT_DOUBLE_EQ(j.at("samples").at(1).asNumber(), 2.5);
}

TEST(Json, ParsesStringEscapes)
{
    auto [j, ok] = Json::parse(R"("a\"b\\c\ndA")");
    ASSERT_TRUE(ok);
    EXPECT_EQ(j.asString(), "a\"b\\c\nd" "A");
}

TEST(Json, RejectsMalformedInput)
{
    std::string err;
    for (const char *bad :
         {"{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
          "{\"a\":1} extra", "", "nan", "[1 2]"}) {
        auto [j, ok] = Json::parse(bad, &err);
        EXPECT_FALSE(ok) << "should reject: " << bad;
    }
}

TEST(Json, RoundTripsThroughDump)
{
    const char *doc =
        R"({"a": [1, 2, {"b": true}], "c": null, "d": "x\ny", "e": -0.25})";
    auto [j1, ok1] = Json::parse(doc);
    ASSERT_TRUE(ok1);
    std::string text = j1.dump();
    auto [j2, ok2] = Json::parse(text);
    ASSERT_TRUE(ok2);
    EXPECT_EQ(j2.dump(), text);
    EXPECT_EQ(j2.at("a").at(2).at("b").asBool(), true);
    EXPECT_DOUBLE_EQ(j2.at("e").asNumber(), -0.25);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zeta", Json(1));
    obj.set("alpha", Json(2));
    obj.set("mid", Json(3));
    const auto &members = obj.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "zeta");
    EXPECT_EQ(members[1].first, "alpha");
    EXPECT_EQ(members[2].first, "mid");
}

TEST(Json, SetReplacesExistingKey)
{
    Json obj = Json::object();
    obj.set("k", Json(1));
    obj.set("k", Json(9));
    EXPECT_EQ(obj.size(), 1u);
    EXPECT_EQ(obj.at("k").asInt(), 9);
}

TEST(Json, DefaultedAccessors)
{
    auto [j, ok] = Json::parse(R"({"x": 5, "flag": true, "name": "n"})");
    ASSERT_TRUE(ok);
    EXPECT_DOUBLE_EQ(j.numberOr("x", -1), 5.0);
    EXPECT_DOUBLE_EQ(j.numberOr("missing", -1), -1.0);
    EXPECT_TRUE(j.boolOr("flag", false));
    EXPECT_FALSE(j.boolOr("missing", false));
    EXPECT_EQ(j.stringOr("name", "d"), "n");
    EXPECT_EQ(j.stringOr("missing", "d"), "d");
}

TEST(Json, PrettyPrintIsStable)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    Json arr = Json::array();
    arr.push(Json("x"));
    obj.set("b", std::move(arr));
    std::string pretty = obj.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    auto [round, ok] = Json::parse(pretty);
    ASSERT_TRUE(ok);
    EXPECT_EQ(round.at("a").asInt(), 1);
}

} // namespace
} // namespace softsku
