/** @file Unit tests for the text table/figure renderers. */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace softsku {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"service", "qps"});
    t.row({"web", "100"});
    t.row({"cache1", "100000"});
    std::string out = t.render();
    // Each rendered line is left-aligned on the same column boundary.
    EXPECT_NE(out.find("service"), std::string::npos);
    EXPECT_NE(out.find("cache1"), std::string::npos);
    auto lineStart = out.find("web");
    auto line2Start = out.find("cache1");
    ASSERT_NE(lineStart, std::string::npos);
    ASSERT_NE(line2Start, std::string::npos);
    // Column two starts at the same offset in both data rows.
    auto row1 = out.substr(out.find("web"));
    auto row2 = out.substr(out.find("cache1"));
    EXPECT_EQ(row1.find("100"), row2.find("100000"));
}

TEST(TextTable, PadsShortRows)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"x"});
    std::string out = t.render();
    EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(TextTable, SeparatorInsertedBetweenGroups)
{
    TextTable t;
    t.header({"k"});
    t.row({"one"});
    t.separator();
    t.row({"two"});
    std::string out = t.render();
    // Header separator plus the requested one.
    size_t dashes = 0;
    for (size_t pos = out.find("---"); pos != std::string::npos;
         pos = out.find("---", pos + 1)) {
        ++dashes;
    }
    EXPECT_GE(dashes, 2u);
}

TEST(BarRow, ScalesAndClamps)
{
    std::string full = barRow("x", 10.0, 10.0, 10);
    std::string half = barRow("x", 5.0, 10.0, 10);
    std::string over = barRow("x", 20.0, 10.0, 10);
    auto countHash = [](const std::string &s) {
        size_t n = 0;
        for (char c : s)
            if (c == '#')
                ++n;
        return n;
    };
    EXPECT_EQ(countHash(full), 10u);
    EXPECT_EQ(countHash(half), 5u);
    EXPECT_EQ(countHash(over), 10u);
}

TEST(StackedBarRow, NormalizesToWidth)
{
    std::string bar = stackedBarRow("svc", {50.0, 30.0, 20.0}, 20);
    auto open = bar.find('|');
    auto close = bar.rfind('|');
    ASSERT_NE(open, std::string::npos);
    EXPECT_EQ(close - open - 1, 20u);
}

TEST(StackedBarRow, HandlesZeroTotal)
{
    std::string bar = stackedBarRow("svc", {0.0, 0.0}, 10);
    EXPECT_NE(bar.find('|'), std::string::npos);
}

} // namespace
} // namespace softsku
