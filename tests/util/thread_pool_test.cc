/** @file Unit tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace softsku {
namespace {

TEST(ThreadPool, ReportsThreadCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
    ThreadPool automatic(0);
    EXPECT_EQ(automatic.threadCount(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, CompletesAllTasksUnderContention)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    futures.reserve(500);
    for (int i = 0; i < 500; ++i) {
        futures.push_back(pool.submit([&counter, i] {
            counter.fetch_add(1);
            return i;
        }));
    }
    long long sum = 0;
    for (auto &future : futures)
        sum += future.get();
    EXPECT_EQ(counter.load(), 500);
    EXPECT_EQ(sum, 499LL * 500 / 2);
}

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(2);
    auto doubled = pool.submit([] { return 21 * 2; });
    auto text = pool.submit([] { return std::string("soft-sku"); });
    EXPECT_EQ(doubled.get(), 42);
    EXPECT_EQ(text.get(), "soft-sku");
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, [](std::size_t i) {
            if (i == 13)
                throw std::out_of_range("thirteen");
            if (i == 77)
                throw std::runtime_error("seventy-seven");
        });
        FAIL() << "parallelFor must rethrow";
    } catch (const std::out_of_range &error) {
        EXPECT_STREQ(error.what(), "thirteen");
    }
}

TEST(ThreadPool, ReusableAfterDrain)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 5; ++round) {
        pool.parallelFor(50, [&](std::size_t) { counter.fetch_add(1); });
        EXPECT_EQ(counter.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    // Outer iterations run on pool workers; each issues an inner batch.
    // The caller participates in execution, so this must not deadlock
    // even with more in-flight batches than workers.
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) { counter.fetch_add(1); });
    });
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, WorkIsActuallyStolen)
{
    // One worker is blocked; the other must steal the remaining tasks
    // even though round-robin parks some on the blocked worker's deque.
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    std::atomic<int> done{0};
    auto blocker = pool.submit([&] {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([&] { done.fetch_add(1); }));
    for (int spin = 0; spin < 5000 && done.load() < 20; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(done.load(), 20);
    release.store(true);
    blocker.get();
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }
    // All futures abandoned, but queued work still ran before join.
    EXPECT_EQ(counter.load(), 50);
}

} // namespace
} // namespace softsku
