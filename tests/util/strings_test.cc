/** @file Unit tests for string helpers. */

#include <gtest/gtest.h>

#include "util/strings.hh"

namespace softsku {
namespace {

TEST(Strings, SplitPreservesEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField)
{
    auto parts = split("solo", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "solo");
}

TEST(Strings, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
    EXPECT_EQ(trim("noop"), "noop");
}

TEST(Strings, CaseAndAffixes)
{
    EXPECT_EQ(toLower("MiXeD123"), "mixed123");
    EXPECT_TRUE(startsWith("skylake18", "sky"));
    EXPECT_FALSE(startsWith("sky", "skylake18"));
    EXPECT_TRUE(endsWith("design.json", ".json"));
    EXPECT_FALSE(endsWith("x", "longer"));
}

TEST(Strings, ParseIntAcceptsOnlyFullNumbers)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt(" -7 ").value(), -7);
    EXPECT_FALSE(parseInt("42x").has_value());
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("3.5").has_value());
}

TEST(Strings, ParseDoubleAcceptsOnlyFullNumbers)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5").value(), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("1e3").value(), 1000.0);
    EXPECT_FALSE(parseDouble("1.2.3").has_value());
    EXPECT_FALSE(parseDouble("abc").has_value());
}

TEST(Strings, FormatMatchesPrintf)
{
    EXPECT_EQ(format("%s=%d (%.1f%%)", "cores", 18, 95.25),
              "cores=18 (95.2%)");
    EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, JoinConcatenatesWithSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

} // namespace
} // namespace softsku
