/** @file Unit tests for the command-line flag parser. */

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/thread_pool.hh"

namespace softsku {
namespace {

CliArgs
makeArgs(std::vector<const char *> argv)
{
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm)
{
    auto args = makeArgs({"prog", "--service=web", "--seed=42"});
    EXPECT_EQ(args.get("service"), "web");
    EXPECT_EQ(args.getInt("seed", 0), 42);
}

TEST(Cli, ParsesSpaceForm)
{
    auto args = makeArgs({"prog", "--platform", "skylake18"});
    EXPECT_EQ(args.get("platform"), "skylake18");
}

TEST(Cli, BooleanFlags)
{
    auto args = makeArgs({"prog", "--verbose", "--json"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_TRUE(args.has("json"));
    EXPECT_FALSE(args.has("quiet"));
}

TEST(Cli, PositionalArguments)
{
    auto args = makeArgs({"prog", "input.json", "--x=1", "out.json"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.json");
    EXPECT_EQ(args.positional()[1], "out.json");
}

TEST(Cli, Defaults)
{
    auto args = makeArgs({"prog"});
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, DoubleParsing)
{
    auto args = makeArgs({"prog", "--freq=2.2"});
    EXPECT_DOUBLE_EQ(args.getDouble("freq", 0.0), 2.2);
}

TEST(Cli, JobsDefaultsToFallback)
{
    auto args = makeArgs({"prog"});
    EXPECT_EQ(args.getJobs(1), 1u);
    EXPECT_EQ(args.getJobs(4), 4u);
}

TEST(Cli, JobsParsesExplicitCount)
{
    auto args = makeArgs({"prog", "--jobs=8"});
    EXPECT_EQ(args.getJobs(1), 8u);
}

TEST(Cli, JobsAutoAndZeroMeanHardwareConcurrency)
{
    const unsigned hw = ThreadPool::hardwareThreads();
    EXPECT_EQ(makeArgs({"prog", "--jobs=auto"}).getJobs(1), hw);
    EXPECT_EQ(makeArgs({"prog", "--jobs=0"}).getJobs(1), hw);
}

TEST(Cli, LogLevelDefaultsToFallback)
{
    auto args = makeArgs({"prog"});
    EXPECT_EQ(args.getLogLevel(), LogLevel::Info);
    EXPECT_EQ(args.getLogLevel(LogLevel::Warn), LogLevel::Warn);
}

TEST(Cli, ToolOptionsDefaults)
{
    auto args = makeArgs({"prog"});
    ToolOptions tool = ToolOptions::fromArgs(args);
    EXPECT_EQ(tool.jobs, 1u);
    EXPECT_FALSE(tool.faults.any());
    EXPECT_EQ(tool.faultSeed, 1u);
    EXPECT_TRUE(tool.cacheDir.empty());
    EXPECT_TRUE(tool.traceOut.empty());
    EXPECT_FALSE(tool.metrics);
    EXPECT_FALSE(tool.progress);
    EXPECT_EQ(tool.logLevel, LogLevel::Info);
    // Tools with a different natural parallelism pass their own
    // fallback through.
    EXPECT_EQ(ToolOptions::fromArgs(args, 6).jobs, 6u);
}

TEST(Cli, ToolOptionsParsesSharedFlagSet)
{
    auto args = makeArgs({"prog", "--jobs=4", "--faults=mild",
                          "--fault-seed=9", "--cache-dir=/tmp/c",
                          "--trace-out=t.json", "--metrics",
                          "--progress", "--log-level=warn"});
    ToolOptions tool = ToolOptions::fromArgs(args);
    EXPECT_EQ(tool.jobs, 4u);
    EXPECT_TRUE(tool.faults.any());
    EXPECT_EQ(tool.faultSeed, 9u);
    EXPECT_EQ(tool.cacheDir, "/tmp/c");
    EXPECT_EQ(tool.traceOut, "t.json");
    EXPECT_TRUE(tool.metrics);
    EXPECT_TRUE(tool.progress);
    EXPECT_EQ(tool.logLevel, LogLevel::Warn);
}

TEST(Cli, LogLevelParsesEveryName)
{
    EXPECT_EQ(makeArgs({"prog", "--log-level=silent"}).getLogLevel(),
              LogLevel::Silent);
    EXPECT_EQ(makeArgs({"prog", "--log-level=error"}).getLogLevel(),
              LogLevel::Error);
    EXPECT_EQ(makeArgs({"prog", "--log-level=warn"}).getLogLevel(),
              LogLevel::Warn);
    EXPECT_EQ(makeArgs({"prog", "--log-level=info"}).getLogLevel(),
              LogLevel::Info);
    EXPECT_EQ(makeArgs({"prog", "--log-level=debug"}).getLogLevel(),
              LogLevel::Debug);
}

} // namespace
} // namespace softsku
