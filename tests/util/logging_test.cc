/**
 * @file
 * Logging tests: level filtering, level-name round trips, the sink
 * test hook, and LogContext prefixes attributing messages to the
 * service/comparison that produced them.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace softsku {
namespace {

/** Captures every sunk message, restoring stderr + Info on teardown. */
class LoggingTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        setLogSink([this](LogLevel level, const std::string &line) {
            captured.emplace_back(level, line);
        });
    }

    void TearDown() override
    {
        setLogSink(nullptr);
        setLogLevel(LogLevel::Info);
    }

    std::vector<std::pair<LogLevel, std::string>> captured;
};

TEST_F(LoggingTest, InfoLevelPassesWarnAndInformButNotDebug)
{
    setLogLevel(LogLevel::Info);
    warn("w %d", 1);
    inform("i %d", 2);
    debug("d %d", 3);
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].second, "warn: w 1");
    EXPECT_EQ(captured[1].second, "info: i 2");
}

TEST_F(LoggingTest, WarnLevelSuppressesInform)
{
    setLogLevel(LogLevel::Warn);
    inform("quiet");
    warn("loud");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "warn: loud");
}

TEST_F(LoggingTest, SilentSuppressesEverything)
{
    setLogLevel(LogLevel::Silent);
    warn("w");
    inform("i");
    debug("d");
    EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, DebugLevelPassesDebug)
{
    setLogLevel(LogLevel::Debug);
    debug("verbose %s", "detail");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Debug);
    EXPECT_EQ(captured[0].second, "debug: verbose detail");
}

TEST_F(LoggingTest, ContextPrefixesAndNests)
{
    EXPECT_EQ(LogContext::prefix(), "");
    {
        LogContext outer("web");
        EXPECT_EQ(LogContext::prefix(), "[web] ");
        warn("outer");
        {
            LogContext inner("b3.1");
            EXPECT_EQ(LogContext::prefix(), "[web|b3.1] ");
            inform("inner");
        }
        inform("outer again");
    }
    EXPECT_EQ(LogContext::prefix(), "");
    ASSERT_EQ(captured.size(), 3u);
    EXPECT_EQ(captured[0].second, "[web] warn: outer");
    EXPECT_EQ(captured[1].second, "[web|b3.1] info: inner");
    EXPECT_EQ(captured[2].second, "[web] info: outer again");
}

TEST(LogLevelNames, RoundTrip)
{
    for (LogLevel level : {LogLevel::Silent, LogLevel::Error,
                           LogLevel::Warn, LogLevel::Info,
                           LogLevel::Debug}) {
        LogLevel parsed = LogLevel::Silent;
        ASSERT_TRUE(logLevelFromName(logLevelName(level), parsed));
        EXPECT_EQ(parsed, level);
    }
    LogLevel out = LogLevel::Info;
    EXPECT_FALSE(logLevelFromName("loud", out));
    EXPECT_FALSE(logLevelFromName("", out));
    EXPECT_EQ(out, LogLevel::Info);
}

} // namespace
} // namespace softsku
