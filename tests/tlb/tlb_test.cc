/** @file Tests for the two-level TLB model. */

#include <gtest/gtest.h>

#include "os/hugepage.hh"
#include "tlb/tlb.hh"

namespace softsku {
namespace {

TlbGeometry
smallL1()
{
    return {16, 4, 4};   // 16× 4 KiB entries, 4× 2 MiB, 4-way
}

TlbGeometry
smallStlb()
{
    return {128, 128, 8};
}

TEST(Tlb, HitAfterInstall)
{
    Tlb tlb("t", smallL1());
    EXPECT_FALSE(tlb.access(0x1000, kPage4k));
    EXPECT_TRUE(tlb.access(0x1000, kPage4k));
    // Same page, different offset → hit.
    EXPECT_TRUE(tlb.access(0x1FFF, kPage4k));
    // Next page → miss.
    EXPECT_FALSE(tlb.access(0x2000, kPage4k));
}

TEST(Tlb, SeparateArraysPerPageSize)
{
    Tlb tlb("t", smallL1());
    tlb.access(0x200000, kPage2m);
    EXPECT_TRUE(tlb.probe(0x200000, kPage2m));
    EXPECT_FALSE(tlb.probe(0x200000, kPage4k));
    EXPECT_EQ(tlb.stats().misses2m, 1u);
    EXPECT_EQ(tlb.stats().misses4k, 0u);
}

TEST(Tlb, HugePagesMultiplyReach)
{
    Tlb tlb("t", smallL1());
    // 16 distinct 4 KiB pages fit; the 17th conflicts somewhere.
    // 4× 2 MiB entries cover 8 MiB: accesses within that never miss
    // after warmup.
    for (int round = 0; round < 2; ++round) {
        for (std::uint64_t addr = 0; addr < 4 * kPage2m;
             addr += kPage2m) {
            tlb.access(addr, kPage2m);
        }
    }
    EXPECT_EQ(tlb.stats().misses2m, 4u);   // only the cold misses
    EXPECT_GT(tlb.reachBytes(), 16 * kPage4k);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb("t", smallL1());
    // Touch 64 pages (4x capacity); re-touch the first: must miss.
    for (std::uint64_t p = 0; p < 64; ++p)
        tlb.access(p * kPage4k, kPage4k);
    EXPECT_FALSE(tlb.access(0, kPage4k));
}

TEST(Tlb, FlushAndDisturb)
{
    Tlb tlb("t", smallL1());
    tlb.access(0x5000, kPage4k);
    tlb.flush();
    EXPECT_FALSE(tlb.probe(0x5000, kPage4k));

    for (std::uint64_t p = 0; p < 12; ++p)
        tlb.access(p * kPage4k, kPage4k);
    Rng rng(3);
    tlb.disturb(1.0, rng);   // fraction 1 → all gone
    for (std::uint64_t p = 0; p < 12; ++p)
        EXPECT_FALSE(tlb.probe(p * kPage4k, kPage4k));
}

TEST(TwoLevelTlb, OutcomeLevels)
{
    TwoLevelTlb tlb("t", smallL1(), smallStlb());
    // Cold: page walk, installed in both levels.
    EXPECT_EQ(tlb.access(0x3000, kPage4k), TwoLevelTlb::Outcome::PageWalk);
    EXPECT_EQ(tlb.walks(), 1u);
    // Warm: L1 hit.
    EXPECT_EQ(tlb.access(0x3000, kPage4k), TwoLevelTlb::Outcome::L1Hit);

    // Evict from L1 by touching 32 other pages; STLB still holds it.
    for (std::uint64_t p = 16; p < 48; ++p)
        tlb.access(p * kPage4k, kPage4k);
    EXPECT_EQ(tlb.access(0x3000, kPage4k), TwoLevelTlb::Outcome::StlbHit);
}

TEST(TwoLevelTlb, WalkCountsOnlyFullMisses)
{
    TwoLevelTlb tlb("t", smallL1(), smallStlb());
    for (std::uint64_t p = 0; p < 8; ++p)
        tlb.access(p * kPage4k, kPage4k);
    std::uint64_t walks = tlb.walks();
    for (std::uint64_t p = 0; p < 8; ++p)
        tlb.access(p * kPage4k, kPage4k);
    EXPECT_EQ(tlb.walks(), walks);   // all warm now
}

/** Property: TLB miss rate falls as huge-page coverage rises. */
class TlbCoverageSweep : public testing::TestWithParam<double>
{
};

TEST_P(TlbCoverageSweep, MissRateFallsWithHugeCoverage)
{
    double fraction = GetParam();
    VirtualRegion region;
    region.name = "r";
    region.base = 0;
    region.sizeBytes = 512ull << 20;

    Tlb tlb("t", TlbGeometry{64, 32, 4});
    Rng rng(7);
    // Deterministic per-chunk huge/4k split at the given fraction.
    RegionMapping mapping;
    mapping.region = &region;
    mapping.hugeFraction = fraction;

    std::uint64_t misses = 0;
    const int accesses = 20000;
    for (int i = 0; i < accesses; ++i) {
        std::uint64_t addr = rng.below(region.sizeBytes);
        bool huge = mapping.isHugeAddress(addr);
        if (!tlb.access(addr, huge ? kPage2m : kPage4k))
            ++misses;
    }
    // Record for cross-param monotonicity via a static.
    static double lastFraction = -1.0;
    static std::uint64_t lastMisses = ~0ull;
    if (fraction > lastFraction && lastFraction >= 0.0) {
        EXPECT_LT(misses, lastMisses);
    }
    lastFraction = fraction;
    lastMisses = misses;
}

INSTANTIATE_TEST_SUITE_P(Coverage, TlbCoverageSweep,
                         testing::Values(0.0, 0.5, 1.0));

} // namespace
} // namespace softsku
