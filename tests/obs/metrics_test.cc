/**
 * @file
 * Metrics registry tests: find-or-create semantics, scope filtering,
 * JSON shape, table rendering, reset, and the μSKU integration — the
 * report's "metrics" section carries deterministic rows only, while
 * fullMetrics() adds the operational ones.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/usku.hh"
#include "obs/metrics.hh"
#include "services/services.hh"
#include "util/json.hh"

namespace softsku {
namespace {

TEST(Metrics, CounterFindOrCreateIsStable)
{
    MetricsRegistry registry;
    MetricsRegistry::Counter &a = registry.counter("events");
    MetricsRegistry::Counter &b = registry.counter("events");
    EXPECT_EQ(&a, &b);
    a.add();
    b.add(4);
    EXPECT_EQ(a.value(), 5u);
}

TEST(Metrics, GaugeLastWriteWins)
{
    MetricsRegistry registry;
    MetricsRegistry::Gauge &gauge = registry.gauge("depth");
    gauge.set(3.0);
    gauge.set(7.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 7.5);
}

TEST(Metrics, HistogramSummarizes)
{
    MetricsRegistry registry;
    MetricsRegistry::Histogram &hist =
        registry.histogram("lat", MetricScope::Deterministic, 1.0, 1e6);
    for (int i = 1; i <= 100; ++i)
        hist.add(static_cast<double>(i));
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_NEAR(hist.mean(), 50.5, 0.5);
    EXPECT_GT(hist.percentile(0.99), hist.percentile(0.50));
}

TEST(Metrics, SnapshotSortsAndFiltersByScope)
{
    MetricsRegistry registry;
    registry.counter("z.det", MetricScope::Deterministic).add(2);
    registry.counter("a.op", MetricScope::Operational).add(3);
    registry.gauge("m.op", MetricScope::Operational).set(1.5);

    MetricsSnapshot full = registry.snapshot();
    ASSERT_EQ(full.rows.size(), 3u);
    EXPECT_EQ(full.rows[0].name, "a.op");
    EXPECT_EQ(full.rows[1].name, "m.op");
    EXPECT_EQ(full.rows[2].name, "z.det");

    MetricsSnapshot det = registry.snapshot(false);
    ASSERT_EQ(det.rows.size(), 1u);
    EXPECT_EQ(det.rows[0].name, "z.det");
    EXPECT_EQ(det.rows[0].value, 2.0);
}

TEST(Metrics, ToJsonShape)
{
    MetricsRegistry registry;
    registry.counter("n").add(42);
    registry.gauge("g").set(0.25);
    registry.histogram("h", MetricScope::Deterministic, 1.0, 1e3)
        .add(10.0);

    Json doc = registry.snapshot().toJson();
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("n").asInt(), 42);
    EXPECT_DOUBLE_EQ(doc.at("g").asNumber(), 0.25);
    const Json &hist = doc.at("h");
    EXPECT_EQ(hist.at("count").asInt(), 1);
    EXPECT_TRUE(hist.contains("mean"));
    EXPECT_TRUE(hist.contains("p50"));
    EXPECT_TRUE(hist.contains("p95"));
    EXPECT_TRUE(hist.contains("p99"));

    // Counters serialize as integers: no decimal point in the dump.
    EXPECT_EQ(doc.at("n").dump(), "42");
}

TEST(Metrics, RenderTableMentionsEveryMetric)
{
    MetricsRegistry registry;
    registry.counter("sweep.comparisons").add(8);
    registry.gauge("pool.max_queued", MetricScope::Operational).set(3);
    std::string table = registry.snapshot().renderTable();
    EXPECT_NE(table.find("sweep.comparisons"), std::string::npos);
    EXPECT_NE(table.find("pool.max_queued"), std::string::npos);
    EXPECT_NE(table.find("8"), std::string::npos);
}

TEST(Metrics, AppendMergesAndResorts)
{
    MetricsRegistry a;
    a.counter("zz").add(1);
    MetricsRegistry b;
    b.counter("aa").add(2);

    MetricsSnapshot merged = a.snapshot();
    merged.append(b.snapshot());
    ASSERT_EQ(merged.rows.size(), 2u);
    EXPECT_EQ(merged.rows[0].name, "aa");
    EXPECT_EQ(merged.rows[1].name, "zz");
}

TEST(Metrics, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry registry;
    MetricsRegistry::Counter &counter = registry.counter("events");
    registry.histogram("h", MetricScope::Deterministic, 1.0, 1e3)
        .add(5.0);
    counter.add(9);
    registry.reset();
    EXPECT_EQ(counter.value(), 0u);
    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.rows.size(), 2u);
    EXPECT_EQ(snap.rows[0].count, 0u);
    EXPECT_EQ(snap.rows[1].value, 0.0);
}

/** μSKU integration: deterministic rows in the report, operational
 *  rows only via fullMetrics(). */
TEST(Metrics, UskuReportCarriesDeterministicRowsOnly)
{
    SimOptions simOpts;
    simOpts.warmupInstructions = 150'000;
    simOpts.measureInstructions = 200'000;
    ProductionEnvironment env(webProfile(), skylake18(), 1, simOpts);
    UskuOptions options;
    options.jobs = 2;
    Usku tool(env, options);

    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = SweepMode::Independent;
    spec.knobs = {KnobId::Thp, KnobId::Shp};
    spec.validationDurationSec = 6 * 3600.0;
    spec.normalize();

    UskuReport report = tool.run(spec);

    bool sawComparisons = false;
    for (const MetricRow &row : report.metrics.rows) {
        EXPECT_EQ(row.scope, MetricScope::Deterministic) << row.name;
        if (row.name == "sweep.comparisons") {
            sawComparisons = true;
            EXPECT_EQ(row.value,
                      static_cast<double>(report.abComparisons));
        }
    }
    EXPECT_TRUE(sawComparisons);

    // The report JSON exposes the same rows under "metrics".
    Json doc = report.toJson();
    ASSERT_TRUE(doc.contains("metrics"));
    EXPECT_EQ(doc.at("metrics").at("sweep.comparisons").asInt(),
              static_cast<long long>(report.abComparisons));

    // fullMetrics() adds the operational side (pool gauges at jobs=2).
    MetricsSnapshot full = tool.fullMetrics();
    bool sawOperational = false;
    for (const MetricRow &row : full.rows)
        sawOperational |= row.scope == MetricScope::Operational;
    EXPECT_TRUE(sawOperational);
}

} // namespace
} // namespace softsku
