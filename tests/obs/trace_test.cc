/**
 * @file
 * Flight-recorder tracer tests: the deterministic span summary must be
 * byte-identical across worker-thread counts (benign and under a
 * moderate fault plan), span counts must reconcile with the report's
 * own accounting, and the Chrome export must be valid trace_event JSON.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/usku.hh"
#include "obs/trace.hh"
#include "services/services.hh"
#include "util/json.hh"

namespace softsku {
namespace {

SimOptions
fastOptions()
{
    SimOptions opts;
    opts.warmupInstructions = 150'000;
    opts.measureInstructions = 200'000;
    return opts;
}

InputSpec
webSpec()
{
    InputSpec spec;
    spec.microservice = "web";
    spec.platform = "skylake18";
    spec.sweep = SweepMode::Independent;
    spec.knobs = {KnobId::Thp, KnobId::Shp};
    spec.validationDurationSec = 6 * 3600.0;
    spec.normalize();
    return spec;
}

struct TracedRun
{
    UskuReport report;
    std::string summary;
    std::vector<SpanRecord> spans;

    std::size_t count(const std::string &name) const
    {
        std::size_t n = 0;
        for (const SpanRecord &span : spans)
            n += span.name == name;
        return n;
    }
};

/** Full pipeline with tracing armed; fresh environment and tracer. */
TracedRun
runTraced(const InputSpec &spec, unsigned jobs, bool faults)
{
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.setRunTag(0);
    tracer.enable();

    ProductionEnvironment env(webProfile(), skylake18(), 1,
                              fastOptions());
    UskuOptions options;
    options.jobs = jobs;
    if (faults) {
        env.setFaults(FaultPlan::fromSpec("moderate"), 1);
        options.robustness = RobustnessPolicy::hostile();
    }
    Usku tool(env, options);

    TracedRun run;
    run.report = tool.run(spec);
    tracer.disable();
    run.summary = tracer.deterministicSummary();
    run.spans = tracer.sortedSpans();
    return run;
}

TEST(TraceDeterminism, SummaryIdenticalAcrossThreadCounts)
{
    InputSpec spec = webSpec();
    TracedRun serial = runTraced(spec, 1, false);
    ASSERT_FALSE(serial.summary.empty());
    EXPECT_EQ(runTraced(spec, 2, false).summary, serial.summary);
    EXPECT_EQ(runTraced(spec, 8, false).summary, serial.summary);
}

TEST(TraceDeterminism, SummaryIdenticalUnderModerateFaults)
{
    InputSpec spec = webSpec();
    TracedRun serial = runTraced(spec, 1, true);
    ASSERT_FALSE(serial.summary.empty());
    EXPECT_EQ(runTraced(spec, 2, true).summary, serial.summary);
    EXPECT_EQ(runTraced(spec, 8, true).summary, serial.summary);
}

TEST(Trace, SpanCountsReconcileWithReport)
{
    TracedRun run = runTraced(webSpec(), 8, true);
    const UskuReport &report = run.report;

    // One span per measured comparison, per cache hit, per retry.
    EXPECT_EQ(run.count("sweep.compare"),
              report.abComparisons - report.cacheHits);
    EXPECT_EQ(run.count("sweep.cache_hit"), report.cacheHits);
    EXPECT_EQ(run.count("sweep.retry"), report.faults.retries);
    EXPECT_GT(run.count("ab.measure"), 0u);
    EXPECT_GE(run.count("validate.chunk"), 1u);
    EXPECT_EQ(run.count("usku.run"), 1u);
    // Point events: one cumulative cache-hit counter sample per hit,
    // and a fault instant for every crashed / failed-apply attempt.
    EXPECT_EQ(run.count("sweep.cache_hits_total"), report.cacheHits);
    if (report.faults.crashes + report.faults.applyFailures > 0)
        EXPECT_GE(run.count("fault.crash") +
                      run.count("fault.apply_failure"),
                  1u);
}

TEST(Trace, ChromeExportIsValidTraceEventJson)
{
    TracedRun run = runTraced(webSpec(), 2, false);
    Tracer &tracer = Tracer::global();

    std::string path = testing::TempDir() + "softsku_trace_test.json";
    ASSERT_TRUE(tracer.writeChromeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    auto [doc, ok] = Json::parse(buffer.str(), &error);
    ASSERT_TRUE(ok) << error;
    ASSERT_TRUE(doc.contains("traceEvents"));
    const Json &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    EXPECT_EQ(events.size(), run.spans.size());
    for (size_t i = 0; i < events.size(); ++i) {
        const Json &event = events.at(i);
        EXPECT_TRUE(event.contains("name"));
        EXPECT_TRUE(event.at("ts").isNumber());
        const std::string ph = event.at("ph").asString();
        if (ph == "X") {
            // Complete span: duration plus the deterministic path.
            EXPECT_TRUE(event.at("dur").isNumber());
            EXPECT_TRUE(event.at("args").contains("path"));
        } else if (ph == "i") {
            // Instant (fault injection, rollback): thread-scoped.
            EXPECT_EQ(event.at("s").asString(), "t");
            EXPECT_TRUE(event.at("args").contains("path"));
        } else if (ph == "C") {
            // Counter sample: numeric value series for Perfetto.
            EXPECT_TRUE(event.at("args").at("value").isNumber());
        } else {
            ADD_FAILURE() << "unexpected phase '" << ph << "'";
        }
    }
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.disable();
    {
        ScopedSpan span("test", "should.not.record");
        span.arg("k", "v");
    }
    EXPECT_EQ(tracer.spanCount(), 0u);
}

TEST(Trace, NestedSpansInheritParentPath)
{
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.setRunTag(0);
    tracer.enable();
    {
        ScopedSpan root("test", "root", {kTraceUsku, 7});
        ScopedSpan childA("test", "childA");
        {
            ScopedSpan grand("test", "grandchild");
        }
    }
    tracer.disable();
    std::vector<SpanRecord> spans = tracer.sortedSpans();
    ASSERT_EQ(spans.size(), 3u);
    // Path-sorted: root [0,0,7], childA [0,0,7,1], grandchild
    // [0,0,7,1,1].
    EXPECT_EQ(spans[0].name, "root");
    EXPECT_EQ(spans[0].path, (std::vector<std::uint64_t>{0, 0, 7}));
    EXPECT_EQ(spans[1].name, "childA");
    EXPECT_EQ(spans[1].path, (std::vector<std::uint64_t>{0, 0, 7, 1}));
    EXPECT_EQ(spans[2].name, "grandchild");
    EXPECT_EQ(spans[2].path,
              (std::vector<std::uint64_t>{0, 0, 7, 1, 1}));
    tracer.clear();
}

} // namespace
} // namespace softsku
