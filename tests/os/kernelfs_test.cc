/** @file Tests for the emulated kernel configuration filesystem. */

#include <gtest/gtest.h>

#include "os/kernelfs.hh"

namespace softsku {
namespace {

TEST(KernelFs, FilesRoundTrip)
{
    KernelFs fs;
    EXPECT_FALSE(fs.exists("/proc/x"));
    EXPECT_FALSE(fs.readFile("/proc/x").has_value());
    fs.writeFile("/proc/x", "hello");
    EXPECT_TRUE(fs.exists("/proc/x"));
    EXPECT_EQ(*fs.readFile("/proc/x"), "hello");
    fs.reset();
    EXPECT_FALSE(fs.exists("/proc/x"));
}

TEST(KernelFs, ThpModeUsesKernelBracketFormat)
{
    KernelFs fs;
    EXPECT_EQ(fs.thpMode(), "madvise");   // kernel default
    fs.setThpMode("always");
    EXPECT_EQ(*fs.readFile(kpath::thpEnabled), "[always] madvise never");
    EXPECT_EQ(fs.thpMode(), "always");
    fs.setThpMode("never");
    EXPECT_EQ(*fs.readFile(kpath::thpEnabled), "always madvise [never]");
}

TEST(KernelFsDeathTest, InvalidThpModeIsFatal)
{
    KernelFs fs;
    EXPECT_EXIT(fs.setThpMode("sometimes"), testing::ExitedWithCode(1),
                "invalid THP mode");
}

TEST(KernelFs, NrHugepagesRoundTrip)
{
    KernelFs fs;
    EXPECT_EQ(fs.nrHugepages(), 0);
    fs.setNrHugepages(300);
    EXPECT_EQ(fs.nrHugepages(), 300);
    EXPECT_EQ(*fs.readFile(kpath::nrHugepages), "300");
}

TEST(KernelFs, CdpSchemataRoundTrip)
{
    KernelFs fs;
    EXPECT_FALSE(fs.cdpConfig(11).enabled);

    fs.setCdpSchemata(5, 6, 11);   // 5 code, 6 data
    auto cfg = fs.cdpConfig(11);
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.codeWays, 5);
    EXPECT_EQ(cfg.dataWays, 6);

    // Masks are contiguous and disjoint.
    std::string contents = *fs.readFile(kpath::resctrlSchemata);
    EXPECT_NE(contents.find("L3CODE:0=7c0"), std::string::npos);
    EXPECT_NE(contents.find("L3DATA:0=3f"), std::string::npos);

    fs.clearCdpSchemata();
    EXPECT_FALSE(fs.cdpConfig(11).enabled);
}

TEST(KernelFsDeathTest, BadCdpSplitIsFatal)
{
    KernelFs fs;
    EXPECT_EXIT(fs.setCdpSchemata(5, 5, 11), testing::ExitedWithCode(1),
                "invalid CDP partition");
    EXPECT_EXIT(fs.setCdpSchemata(0, 11, 11), testing::ExitedWithCode(1),
                "invalid CDP partition");
}

TEST(KernelFs, IsolcpusRoundTrip)
{
    KernelFs fs;
    EXPECT_EQ(fs.activeCores(18), 18);   // no cmdline → all cores

    fs.setIsolcpus(8, 18);
    EXPECT_EQ(fs.activeCores(18), 8);
    EXPECT_NE(fs.readFile(kpath::cmdline)->find("isolcpus=8-17"),
              std::string::npos);

    fs.setIsolcpus(18, 18);   // all active → no isolcpus token
    EXPECT_EQ(fs.readFile(kpath::cmdline)->find("isolcpus"),
              std::string::npos);
    EXPECT_EQ(fs.activeCores(18), 18);
}

TEST(KernelFsDeathTest, IsolcpusRangeChecked)
{
    KernelFs fs;
    EXPECT_EXIT(fs.setIsolcpus(0, 18), testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(fs.setIsolcpus(20, 18), testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace softsku
