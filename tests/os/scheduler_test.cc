/** @file Tests for the thread-pool discrete-event model. */

#include <gtest/gtest.h>

#include "os/scheduler.hh"

namespace softsku {
namespace {

ThreadPoolParams
baseParams()
{
    ThreadPoolParams p;
    p.cores = 4;
    p.workers = 8;
    p.arrivalRatePerSec = 100.0;
    p.cpuTimePerRequestSec = 5e-3;
    p.cpuNoiseSigma = 0.2;
    p.requestsToSimulate = 8000;
    p.warmupRequests = 500;
    return p;
}

TEST(ThreadPool, CompletesAllCountedRequests)
{
    auto result = simulateThreadPool(baseParams(), 1);
    EXPECT_EQ(result.completed, 8000u);
    EXPECT_GT(result.throughputPerSec, 0.0);
}

TEST(ThreadPool, DeterministicUnderSeed)
{
    auto a = simulateThreadPool(baseParams(), 42);
    auto b = simulateThreadPool(baseParams(), 42);
    EXPECT_DOUBLE_EQ(a.meanLatencySec, b.meanLatencySec);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.coreUtilization, b.coreUtilization);
}

TEST(ThreadPool, LightLoadIsPureService)
{
    ThreadPoolParams p = baseParams();
    p.arrivalRatePerSec = 5.0;   // utilization ~0.6% of 4 cores
    auto result = simulateThreadPool(p, 2);
    EXPECT_GT(result.runningFraction, 0.95);
    EXPECT_NEAR(result.meanLatencySec, p.cpuTimePerRequestSec,
                p.cpuTimePerRequestSec * 0.25);
}

TEST(ThreadPool, LatencyGrowsWithLoad)
{
    ThreadPoolParams p = baseParams();
    p.arrivalRatePerSec = 100.0;
    double lightLatency = simulateThreadPool(p, 3).meanLatencySec;
    p.arrivalRatePerSec = 700.0;   // ~87% utilization of 4 cores
    double heavyLatency = simulateThreadPool(p, 3).meanLatencySec;
    EXPECT_GT(heavyLatency, lightLatency * 1.5);
}

TEST(ThreadPool, UtilizationTracksOfferedLoad)
{
    ThreadPoolParams p = baseParams();
    p.arrivalRatePerSec = 400.0;   // offered = 400*5ms / 4 cores = 0.5
    auto result = simulateThreadPool(p, 4);
    EXPECT_NEAR(result.coreUtilization, 0.5, 0.08);
}

TEST(ThreadPool, BlockingCreatesIoShare)
{
    ThreadPoolParams p = baseParams();
    p.blockingPhases = 3;
    p.blockingTimeSec = 2e-3;      // 6 ms blocked vs 5 ms CPU
    p.arrivalRatePerSec = 50.0;
    auto result = simulateThreadPool(p, 5);
    EXPECT_GT(result.ioFraction, 0.35);
    EXPECT_NEAR(result.ioFraction + result.runningFraction +
                    result.queueFraction + result.schedulerFraction,
                1.0, 1e-9);
}

TEST(ThreadPool, OverSubscriptionCreatesSchedulerLatency)
{
    // Many more workers than cores, enough load that ready workers
    // queue for the CPU.
    ThreadPoolParams p = baseParams();
    p.cores = 2;
    p.workers = 32;
    p.blockingPhases = 4;
    p.blockingTimeSec = 4e-3;
    p.arrivalRatePerSec = 330.0;
    auto result = simulateThreadPool(p, 6);
    EXPECT_GT(result.schedulerFraction, 0.05);
}

TEST(ThreadPool, WorkerStarvationCreatesQueueLatency)
{
    // Few workers, heavy blocking: requests wait for a worker.
    ThreadPoolParams p = baseParams();
    p.cores = 8;
    p.workers = 4;
    p.blockingPhases = 2;
    p.blockingTimeSec = 10e-3;
    p.arrivalRatePerSec = 180.0;
    auto result = simulateThreadPool(p, 7);
    EXPECT_GT(result.queueFraction, 0.2);
}

TEST(ThreadPool, PercentilesOrdered)
{
    auto result = simulateThreadPool(baseParams(), 8);
    EXPECT_LE(result.p50LatencySec, result.p99LatencySec);
    EXPECT_LE(result.p50LatencySec, result.meanLatencySec * 2.0);
}

/** Property sweep: conservation and sanity across load levels. */
class ThreadPoolLoadSweep : public testing::TestWithParam<double>
{
};

TEST_P(ThreadPoolLoadSweep, FractionsSumToOneAndUtilBounded)
{
    ThreadPoolParams p = baseParams();
    p.arrivalRatePerSec = GetParam();
    auto result = simulateThreadPool(p, 11);
    EXPECT_NEAR(result.queueFraction + result.schedulerFraction +
                    result.runningFraction + result.ioFraction,
                1.0, 1e-9);
    EXPECT_GE(result.coreUtilization, 0.0);
    EXPECT_LE(result.coreUtilization, 1.0 + 1e-9);
    EXPECT_EQ(result.completed, p.requestsToSimulate);
}

INSTANTIATE_TEST_SUITE_P(Loads, ThreadPoolLoadSweep,
                         testing::Values(10.0, 50.0, 150.0, 300.0, 500.0,
                                         700.0));

} // namespace
} // namespace softsku
