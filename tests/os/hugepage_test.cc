/** @file Tests for THP/SHP policy and the page mapper. */

#include <gtest/gtest.h>

#include "os/context_switch.hh"
#include "os/hugepage.hh"
#include "os/kernelfs.hh"

namespace softsku {
namespace {

std::vector<VirtualRegion>
twoRegions()
{
    VirtualRegion code;
    code.name = "text";
    code.kind = RegionKind::Code;
    code.base = 0x10000000;
    code.sizeBytes = 64ull << 20;
    code.usesShpApi = true;
    code.thpFriendliness = 0.5;

    VirtualRegion heap;
    heap.name = "heap";
    heap.kind = RegionKind::Heap;
    heap.base = 0x40000000;
    heap.sizeBytes = 128ull << 20;
    heap.madviseHuge = true;
    heap.thpFriendliness = 1.0;
    return {code, heap};
}

TEST(HugePage, ThpModeParsing)
{
    EXPECT_EQ(thpModeFromString("always"), ThpMode::Always);
    EXPECT_EQ(thpModeFromString("MADVISE"), ThpMode::Madvise);
    EXPECT_EQ(thpModeName(ThpMode::Never), "never");
}

TEST(HugePage, PolicyKernelFsRoundTrip)
{
    KernelFs fs;
    HugePagePolicy policy{ThpMode::Always, 300};
    policy.applyTo(fs);
    HugePagePolicy readBack = HugePagePolicy::fromKernelFs(fs);
    EXPECT_EQ(readBack.thp, ThpMode::Always);
    EXPECT_EQ(readBack.shpCount, 300);
}

TEST(PageMapper, NeverModeWithoutShpIsAll4k)
{
    PageMapper mapper(twoRegions(), {ThpMode::Never, 0});
    EXPECT_EQ(mapper.totalHugeBytes(), 0u);
    EXPECT_EQ(mapper.pageSizeAt(0x10000000), kPage4k);
    EXPECT_EQ(mapper.pageSizeAt(0x40000000), kPage4k);
}

TEST(PageMapper, MadviseCoversOnlyAdvisedRegions)
{
    PageMapper mapper(twoRegions(), {ThpMode::Madvise, 0});
    const auto &mappings = mapper.mappings();
    EXPECT_DOUBLE_EQ(mappings[0].hugeFraction, 0.0);   // code not advised
    EXPECT_DOUBLE_EQ(mappings[1].hugeFraction, 1.0);   // heap advised
}

TEST(PageMapper, AlwaysAppliesFriendliness)
{
    PageMapper mapper(twoRegions(), {ThpMode::Always, 0});
    const auto &mappings = mapper.mappings();
    EXPECT_NEAR(mappings[0].hugeFraction, 0.5, 0.05);
    EXPECT_DOUBLE_EQ(mappings[1].hugeFraction, 1.0);
}

TEST(PageMapper, ShpConsumedByApiRegionsOnly)
{
    // 40 SHPs = 80 MiB; the 64 MiB code region consumes it first.
    PageMapper mapper(twoRegions(), {ThpMode::Never, 40});
    const auto &mappings = mapper.mappings();
    EXPECT_EQ(mappings[0].hugeBytes, 64ull << 20);
    EXPECT_EQ(mappings[1].hugeBytes, 0u);
    EXPECT_EQ(mapper.wastedShpBytes(), 16ull << 20);
}

TEST(PageMapper, ShpPartialCoverage)
{
    // 10 SHPs = 20 MiB of a 64 MiB region.
    PageMapper mapper(twoRegions(), {ThpMode::Never, 10});
    EXPECT_EQ(mapper.mappings()[0].hugeBytes, 20ull << 20);
    EXPECT_EQ(mapper.wastedShpBytes(), 0u);
    EXPECT_NEAR(mapper.mappings()[0].hugeFraction, 20.0 / 64.0, 1e-9);
}

TEST(PageMapper, HugeAddressDecisionIsDeterministic)
{
    PageMapper mapper(twoRegions(), {ThpMode::Never, 10});
    const RegionMapping &m = mapper.mappings()[0];
    // Same address → same page size, always.
    for (std::uint64_t addr = 0x10000000; addr < 0x10000000 + (8 << 20);
         addr += 1 << 20) {
        EXPECT_EQ(m.isHugeAddress(addr), m.isHugeAddress(addr));
        EXPECT_EQ(mapper.pageSizeAt(addr), mapper.pageSizeAt(addr));
    }
    // Fraction of huge 2 MiB chunks tracks hugeFraction.
    int huge = 0, total = 0;
    for (std::uint64_t addr = 0x10000000;
         addr < 0x10000000 + (64ull << 20); addr += kPage2m) {
        huge += m.isHugeAddress(addr);
        ++total;
    }
    EXPECT_NEAR(static_cast<double>(huge) / total, m.hugeFraction, 0.15);
}

TEST(PageMapper, UnknownAddressFallsBackTo4k)
{
    PageMapper mapper(twoRegions(), {ThpMode::Always, 100});
    EXPECT_EQ(mapper.pageSizeAt(0xDEAD00000000ull), kPage4k);
    EXPECT_EQ(mapper.mappingFor(0xDEAD00000000ull), nullptr);
}

TEST(ContextSwitch, PenaltyBounds)
{
    ContextSwitchModel csw;
    csw.switchesPerSecond = 100000.0;
    csw.cost = {1.2, 2.2};
    EXPECT_NEAR(csw.penaltyFractionLower(), 0.12, 1e-9);
    EXPECT_NEAR(csw.penaltyFractionUpper(), 0.22, 1e-9);
    EXPECT_NEAR(csw.penaltyFractionMid(), 0.17, 1e-9);
    EXPECT_EQ(csw.instructionsBetweenSwitches(2.2e9), 22000u);
    csw.switchesPerSecond = 0.0;
    EXPECT_EQ(csw.instructionsBetweenSwitches(2.2e9), 0u);
}

} // namespace
} // namespace softsku
