/** @file Tests for the DRAM bandwidth/latency model (Fig 12 substrate). */

#include <gtest/gtest.h>

#include <cmath>

#include "mem/dram.hh"
#include "mem/stress.hh"

namespace softsku {
namespace {

TEST(Dram, UnloadedLatencyAtZeroBandwidth)
{
    DramModel dram(skylake18(), 1.8);
    EXPECT_NEAR(dram.latencyNs(0.0), dram.unloadedLatencyNs(), 1e-9);
    EXPECT_NEAR(dram.unloadedLatencyNs(),
                skylake18().unloadedMemLatencyNs, 1e-9);
}

TEST(Dram, LatencyMonotoneInBandwidth)
{
    DramModel dram(skylake18(), 1.8);
    double last = 0.0;
    for (double bw = 0.0; bw <= dram.peakBandwidthGBs(); bw += 5.0) {
        double lat = dram.latencyNs(bw);
        EXPECT_GE(lat, last);
        last = lat;
    }
}

TEST(Dram, FlatKneeThenSteepTail)
{
    DramModel dram(skylake18(), 1.8);
    double peak = dram.peakBandwidthGBs();
    double base = dram.unloadedLatencyNs();
    // Below 60% utilization, latency within ~10% of unloaded.
    EXPECT_LT(dram.latencyNs(peak * 0.5), base * 1.10);
    // Near saturation, several times the unloaded latency.
    EXPECT_GT(dram.latencyNs(peak * 0.96), base * 3.0);
}

TEST(Dram, UncoreFrequencyStretchesLatency)
{
    DramModel fast(skylake18(), 1.8);
    DramModel slow(skylake18(), 1.4);
    EXPECT_GT(slow.unloadedLatencyNs(), fast.unloadedLatencyNs());
    EXPECT_GT(slow.llcLatencyNs(), fast.llcLatencyNs());
    EXPECT_GT(slow.pageWalkLatencyNs(), fast.pageWalkLatencyNs());
    EXPECT_LE(slow.peakBandwidthGBs(), fast.peakBandwidthGBs());
}

TEST(Dram, ResolveWithinCapacity)
{
    DramModel dram(skylake18(), 1.8);
    auto op = dram.resolve(30.0);
    EXPECT_DOUBLE_EQ(op.achievedGBs, 30.0);
    EXPECT_DOUBLE_EQ(op.backpressure, 1.0);
    EXPECT_GT(op.latencyNs, dram.unloadedLatencyNs());
}

TEST(Dram, ResolveBeyondCapacityBackpressures)
{
    DramModel dram(skylake18(), 1.8);
    double demand = dram.peakBandwidthGBs() * 1.5;
    auto op = dram.resolve(demand);
    EXPECT_LT(op.achievedGBs, demand);
    EXPECT_GT(op.backpressure, 1.3);
    EXPECT_NEAR(op.achievedGBs * op.backpressure, demand, 1e-6);
}

TEST(Dram, PlatformOrdering)
{
    // Broadwell16 is the bandwidth-starved platform.
    DramModel bdw(broadwell16(), 1.8);
    DramModel sky(skylake20(), 1.8);
    EXPECT_LT(bdw.peakBandwidthGBs(), sky.peakBandwidthGBs() / 2.0);
}

TEST(Stress, CurveShapeMatchesFig12)
{
    auto curve = memoryStressCurve(skylake18(), 20);
    ASSERT_EQ(curve.size(), 20u);
    // Bandwidth strictly increasing, latency non-decreasing.
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].bandwidthGBs, curve[i - 1].bandwidthGBs);
        EXPECT_GE(curve[i].latencyNs, curve[i - 1].latencyNs);
    }
    // Horizontal asymptote at the start, exponential blowup at the end.
    EXPECT_NEAR(curve[0].latencyNs, curve[4].latencyNs,
                curve[0].latencyNs * 0.05);
    EXPECT_GT(curve.back().latencyNs, curve.front().latencyNs * 2.5);
}

/** Property: resolve() never produces negative or NaN outputs. */
class DramDemandSweep : public testing::TestWithParam<double>
{
};

TEST_P(DramDemandSweep, ResolveIsSane)
{
    DramModel dram(broadwell16(), 1.6);
    auto op = dram.resolve(GetParam());
    EXPECT_GE(op.achievedGBs, 0.0);
    EXPECT_GE(op.backpressure, 1.0);
    EXPECT_GE(op.latencyNs, dram.unloadedLatencyNs() * 0.99);
    EXPECT_TRUE(std::isfinite(op.latencyNs));
}

INSTANTIATE_TEST_SUITE_P(Demands, DramDemandSweep,
                         testing::Values(0.0, 1.0, 10.0, 30.0, 50.0,
                                         100.0, 1000.0));

} // namespace
} // namespace softsku
