/** @file Tests for the two-tier (near DRAM + far CXL) memory model. */

#include <gtest/gtest.h>

#include "arch/platform.hh"
#include "mem/dram.hh"

namespace softsku {
namespace {

TEST(MemTier, TierPolicyNamesRoundTrip)
{
    EXPECT_EQ(allTierPolicies().size(), 4u);
    for (TierPolicy policy : allTierPolicies())
        EXPECT_EQ(tierPolicyFromString(tierPolicyName(policy)), policy);
    EXPECT_EQ(tierPolicyName(TierPolicy::Static), "static");
    EXPECT_EQ(tierPolicyName(TierPolicy::Aggressive), "aggressive");
}

TEST(MemTierDeathTest, UnknownPolicyIsFatal)
{
    EXPECT_EXIT(tierPolicyFromString("lru"), testing::ExitedWithCode(1),
                "unknown tier policy");
}

TEST(MemTier, DelegatesBitExactlyWithoutFarTier)
{
    // Legacy platform, default knobs: the tiered model must be the
    // DramModel, double for double.
    DramModel legacy(skylake18(), 1.8);
    TieredMemoryModel tiered(skylake18(), 1.8);
    EXPECT_FALSE(tiered.hasFarTier());
    EXPECT_FALSE(tiered.engaged());
    for (double demand = 0.0; demand <= 120.0; demand += 2.5) {
        MemoryOperatingPoint want = legacy.resolve(demand);
        MemoryOperatingPoint got = tiered.resolve(demand, 0.37);
        EXPECT_EQ(got.latencyNs, want.latencyNs) << demand;
        EXPECT_EQ(got.achievedGBs, want.achievedGBs) << demand;
        EXPECT_EQ(got.backpressure, want.backpressure) << demand;
    }
    // Same on a far-memory platform with the ratio parked at zero.
    DramModel cxlNear(skylake18cxl(), 1.8);
    TieredMemoryModel parked(skylake18cxl(), 1.8, 100,
                             TierPolicy::Balanced, 0.0);
    EXPECT_TRUE(parked.hasFarTier());
    EXPECT_FALSE(parked.engaged());
    EXPECT_EQ(parked.resolve(40.0).latencyNs,
              cxlNear.resolve(40.0).latencyNs);
}

TEST(MemTier, MbaThrottleShrinksPeakAndRaisesLoadedLatency)
{
    DramModel full(skylake18cxl(), 1.8, 100);
    DramModel half(skylake18cxl(), 1.8, 50);
    EXPECT_NEAR(half.peakBandwidthGBs(), full.peakBandwidthGBs() * 0.5,
                1e-12);
    // Same unloaded latency, but the knee arrives much earlier.
    EXPECT_DOUBLE_EQ(half.unloadedLatencyNs(), full.unloadedLatencyNs());
    double load = full.peakBandwidthGBs() * 0.6;
    EXPECT_GT(half.resolve(load).latencyNs, full.resolve(load).latencyNs);
    EXPECT_LT(half.resolve(load).achievedGBs, load);
}

TEST(MemTier, LoadedLatencyIsMonotoneInDemandPerTier)
{
    TieredMemoryModel tiered(skylake18cxl(), 1.8, 100,
                             TierPolicy::Balanced, 0.25);
    double prevNs = 0.0;
    for (double demand = 0.0; demand <= 150.0; demand += 1.0) {
        double ns = tiered.resolve(demand, 0.5).latencyNs;
        EXPECT_GE(ns, prevNs) << demand;
        prevNs = ns;
    }
    // The far tier's own curve is monotone too.
    double prevFar = 0.0;
    for (double bw = 0.0; bw <= tiered.farPeakBandwidthGBs(); bw += 0.5) {
        double ns = tiered.farLatencyNs(bw);
        EXPECT_GE(ns, prevFar) << bw;
        prevFar = ns;
    }
}

TEST(MemTier, FarTierIsSlowerThanNearAtLowLoad)
{
    TieredMemoryModel tiered(skylake18cxl(), 1.8, 100,
                             TierPolicy::Static, 0.25);
    EXPECT_GT(tiered.farLatencyNs(1.0),
              tiered.near().resolve(1.0).latencyNs);
    // So blending in far accesses raises the light-load latency.
    TieredMemoryModel allNear(skylake18cxl(), 1.8, 100,
                              TierPolicy::Static, 0.0);
    EXPECT_GT(tiered.resolve(5.0).latencyNs,
              allNear.resolve(5.0).latencyNs);
}

TEST(MemTier, LightLoadLatencyIsMonotoneInPlacementRatio)
{
    double prevNs = 0.0;
    for (double ratio : {0.0, 0.10, 0.25, 0.40, 0.60}) {
        TieredMemoryModel tiered(skylake18cxl(), 1.8, 100,
                                 TierPolicy::Static, ratio);
        double ns = tiered.resolve(10.0).latencyNs;
        EXPECT_GE(ns, prevNs) << ratio;
        prevNs = ns;
    }
}

TEST(MemTier, AggressivePromotionShrinksFarAccessFraction)
{
    double prevFraction = 1.0;
    for (TierPolicy policy : allTierPolicies()) {
        TieredMemoryModel tiered(skylake18cxl(), 1.8, 100, policy, 0.4);
        double fraction = tiered.farAccessFraction();
        EXPECT_GT(fraction, 0.0) << tierPolicyName(policy);
        EXPECT_LT(fraction, prevFraction) << tierPolicyName(policy);
        prevFraction = fraction;
    }
    // Placement skew: the cold 40% of pages draws well under 40% of
    // accesses even with no promotion at all.
    TieredMemoryModel still(skylake18cxl(), 1.8, 100, TierPolicy::Static,
                            0.4);
    EXPECT_LT(still.farAccessFraction(), 0.4);
}

TEST(MemTier, HugePagesRaiseMigrationTraffic)
{
    TieredMemoryModel tiered(skylake18cxl(), 1.8, 100,
                             TierPolicy::Aggressive, 0.25);
    double small = tiered.migrationGBs(40.0, 0.0);
    double huge = tiered.migrationGBs(40.0, 1.0);
    EXPECT_GT(small, 0.0);
    EXPECT_GT(huge, small);
    // Static never migrates, whatever the page size.
    TieredMemoryModel still(skylake18cxl(), 1.8, 100, TierPolicy::Static,
                            0.25);
    EXPECT_DOUBLE_EQ(still.migrationGBs(40.0, 1.0), 0.0);
}

TEST(MemTier, FarTierRelievesASaturatedNearTier)
{
    // Demand well past the near tier's knee: spilling cold pages far
    // adds deliverable bandwidth, so achieved throughput goes up and
    // backpressure comes down.
    TieredMemoryModel allNear(skylake18cxl(), 1.8, 100,
                              TierPolicy::Static, 0.0);
    TieredMemoryModel split(skylake18cxl(), 1.8, 100, TierPolicy::Static,
                            0.4);
    double demand = allNear.near().peakBandwidthGBs() * 1.3;
    MemoryOperatingPoint congested = allNear.resolve(demand);
    MemoryOperatingPoint relieved = split.resolve(demand);
    EXPECT_GT(relieved.achievedGBs, congested.achievedGBs);
    EXPECT_LT(relieved.backpressure, congested.backpressure);
}

TEST(MemTierDeathTest, RatioRequiresFarTier)
{
    EXPECT_DEATH(TieredMemoryModel(skylake18(), 1.8, 100,
                                   TierPolicy::Static, 0.25),
                 "assertion failed");
}

} // namespace
} // namespace softsku
