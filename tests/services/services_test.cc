/** @file Tests for the service registry and the calibrated profiles'
 *  paper-mandated traits. */

#include <gtest/gtest.h>

#include "services/reported.hh"
#include "services/services.hh"
#include "services/spec_suite.hh"

namespace softsku {
namespace {

TEST(Services, RegistryHasSevenInPaperOrder)
{
    auto fleet = allMicroservices();
    ASSERT_EQ(fleet.size(), 7u);
    const char *expected[] = {"web",  "feed1",  "feed2", "ads1",
                              "ads2", "cache1", "cache2"};
    for (size_t i = 0; i < 7; ++i)
        EXPECT_EQ(fleet[i]->name, expected[i]);
}

TEST(Services, LookupIsCaseInsensitive)
{
    EXPECT_EQ(&serviceByName("WEB"), &webProfile());
    EXPECT_EQ(&serviceByName("Cache1"), &cache1Profile());
}

TEST(ServicesDeathTest, UnknownServiceFatal)
{
    EXPECT_EXIT(serviceByName("search"), testing::ExitedWithCode(1),
                "unknown microservice");
}

TEST(Services, FleetPlatformAssignment)
{
    // Sec 2.2: Ads2 and Cache1 on Skylake20, the rest on Skylake18.
    EXPECT_EQ(ads2Profile().defaultPlatform, "skylake20");
    EXPECT_EQ(cache1Profile().defaultPlatform, "skylake20");
    EXPECT_EQ(webProfile().defaultPlatform, "skylake18");
    EXPECT_EQ(feed1Profile().defaultPlatform, "skylake18");
}

TEST(Services, PaperMandatedTraits)
{
    // Feed1 is FP-dominated; Web and Cache have no FP at all.
    EXPECT_GT(feed1Profile().mix.floating, 0.3);
    EXPECT_DOUBLE_EQ(webProfile().mix.floating, 0.0);
    EXPECT_DOUBLE_EQ(cache1Profile().mix.floating, 0.0);

    // Ads1: AVX-heavy (2.0 GHz production cap), no SHP use, no reboots.
    EXPECT_TRUE(ads1Profile().usesAvx);
    EXPECT_FALSE(ads1Profile().usesShp);
    EXPECT_FALSE(ads1Profile().toleratesReboot);

    // Cache: MIPS is not a valid throughput proxy.
    EXPECT_FALSE(cache1Profile().mipsValidMetric);
    EXPECT_FALSE(cache2Profile().mipsValidMetric);
    EXPECT_TRUE(webProfile().mipsValidMetric);

    // Cache switches context far more than anyone else.
    for (const WorkloadProfile *service : allMicroservices()) {
        if (service->domain == "cache")
            continue;
        EXPECT_LT(service->contextSwitch.switchesPerSecond,
                  cache2Profile().contextSwitch.switchesPerSecond / 5);
    }

    // Web has the largest code footprint (JIT cache) and uses SHPs.
    for (const WorkloadProfile *service : allMicroservices()) {
        if (service->name != "web") {
            EXPECT_LT(service->codeFootprintBytes,
                      webProfile().codeFootprintBytes);
        }
    }
    EXPECT_TRUE(webProfile().codeUsesShpApi);
}

TEST(Services, RunningFractionsMatchFig2a)
{
    EXPECT_NEAR(webProfile().request.runningFraction, 0.28, 0.01);
    EXPECT_NEAR(feed1Profile().request.runningFraction, 0.95, 0.01);
    EXPECT_NEAR(feed2Profile().request.runningFraction, 0.69, 0.01);
    EXPECT_NEAR(ads1Profile().request.runningFraction, 0.62, 0.01);
    EXPECT_NEAR(ads2Profile().request.runningFraction, 0.90, 0.01);
}

TEST(SpecSuite, TwelveValidBenchmarks)
{
    auto suite = specSuite();
    ASSERT_EQ(suite.size(), 12u);
    for (const WorkloadProfile *p : suite) {
        SCOPED_TRACE(p->name);
        p->validate();
        // SPEC runs batch: no blocking, negligible OS interaction.
        EXPECT_EQ(p->request.blockingPhases, 0);
        EXPECT_LT(p->contextSwitch.switchesPerSecond, 100.0);
        // Small code footprints relative to the services.
        EXPECT_LE(p->codeFootprintBytes, 4ull << 20);
    }
    EXPECT_EQ(&specByName("429.mcf"), suite[3]);
}

TEST(SpecSuiteDeathTest, UnknownBenchmarkFatal)
{
    EXPECT_EXIT(specByName("999.nope"), testing::ExitedWithCode(1),
                "unknown SPEC benchmark");
}

TEST(Reported, LiteratureTablesPopulated)
{
    EXPECT_EQ(googleKanev15().size(), 12u);
    EXPECT_EQ(googleAyers18().size(), 1u);
    EXPECT_EQ(cloudSuiteFerdman12().size(), 6u);
    EXPECT_EQ(spec2017Limaye18().size(), 4u);
    for (const auto &w : googleKanev15()) {
        EXPECT_GT(w.ipc, 0.0);
        EXPECT_NEAR(w.retiringPct + w.frontEndPct + w.badSpecPct +
                        w.backEndPct,
                    100.0, 2.0);
    }
    EXPECT_GT(googleAyers18()[0].l1iMpki, 0.0);
}

} // namespace
} // namespace softsku
