#include "sim/qos.hh"

#include <algorithm>
#include <cmath>

#include "arch/platform.hh"
#include "core/knobs.hh"
#include "util/logging.hh"

namespace softsku {

namespace {

/** Evaluate the pool at a given arrival rate; small DES per probe. */
ThreadPoolResult
evaluateRate(const WorkloadProfile &profile, int cores, double threadIps,
             double arrivalRate, std::uint64_t seed)
{
    ThreadPoolParams params;
    params.cores = cores;
    params.workers = std::max(
        1, static_cast<int>(std::lround(profile.request.workersPerCore *
                                        cores)));
    params.arrivalRatePerSec = arrivalRate;
    // CPU demand is anchored to the request-latency scale: the
    // calibrated per-request latency already reflects the service's
    // production-hardware performance (the paper's Table 2 path
    // lengths are service-level, not per-request-per-server).
    (void)threadIps;
    params.cpuTimePerRequestSec = profile.request.requestLatencySec *
                                  profile.request.runningFraction;
    params.cpuNoiseSigma = 0.35;
    params.blockingPhases = profile.request.blockingPhases;
    if (profile.request.blockingPhases > 0 &&
        profile.request.runningFraction < 1.0) {
        // Downstream-I/O time implied by the running fraction (or the
        // explicit I/O share when the rest of the blocked time is
        // queue/scheduler contention), split across the calls.
        double ioShare = profile.request.ioFraction > 0.0
                             ? profile.request.ioFraction
                             : 1.0 - profile.request.runningFraction;
        double running = params.cpuTimePerRequestSec;
        double blocked =
            running * ioShare / profile.request.runningFraction;
        params.blockingTimeSec =
            blocked / profile.request.blockingPhases;
    }
    params.requestsToSimulate = 12000;
    params.warmupRequests = 1500;
    return simulateThreadPool(params, seed);
}

} // namespace

ServiceOperatingPoint
solveOperatingPoint(const WorkloadProfile &profile,
                    const PlatformSpec &platform,
                    const CounterSet &counters, std::uint64_t seed,
                    int activeCores)
{
    ServiceOperatingPoint op;

    // Per-worker instruction throughput: a worker thread runs on one
    // SMT context, so scale per-core MIPS back down by the SMT factor.
    SOFTSKU_ASSERT(counters.coreIpc > 0.0);
    double threadIps =
        counters.mipsPerCore * 1e6 * counters.ipc / counters.coreIpc;
    SOFTSKU_ASSERT(threadIps > 0.0);

    // Worker threads schedule onto hardware contexts (SMT included);
    // a core-count knob below the socket size takes contexts away.
    int onlineCores =
        activeCores > 0 ? std::min(activeCores, platform.totalCores())
                        : platform.totalCores();
    int cores = onlineCores * platform.smtWays;
    double sloSec = profile.request.requestLatencySec *
                    profile.request.sloLatencyMultiplier;
    op.sloLatencySec = sloSec;

    // The most load the hardware could serve ignoring latency.
    double cpuPerRequest = profile.request.requestLatencySec *
                           profile.request.runningFraction;
    double serviceRateCap =
        static_cast<double>(cores) * platform.smtWays / cpuPerRequest;

    // Binary search the largest arrival rate whose p99 meets the SLO
    // and whose utilization stays below the service's cap.
    double lo = serviceRateCap * 0.02;
    double hi = serviceRateCap * 0.98;
    ThreadPoolResult best = evaluateRate(profile, cores, threadIps, lo,
                                         seed);
    double bestRate = lo;
    for (int iter = 0; iter < 14; ++iter) {
        double mid = 0.5 * (lo + hi);
        ThreadPoolResult result =
            evaluateRate(profile, cores, threadIps, mid, seed + iter + 1);
        bool ok = result.p99LatencySec <= sloSec &&
                  result.coreUtilization <= profile.cpuUtilizationCap;
        if (ok) {
            best = result;
            bestRate = mid;
            lo = mid;
        } else {
            hi = mid;
        }
    }

    op.peakQps = bestRate;
    op.meanLatencySec = best.meanLatencySec;
    op.p99LatencySec = best.p99LatencySec;
    op.pool = best;

    double kernelShare = profile.kernelTimeShare +
                         profile.contextSwitch.penaltyFractionMid();
    op.cpuUtilization =
        std::min(best.coreUtilization * (1.0 + kernelShare),
                 profile.cpuUtilizationCap);
    op.kernelUtilization = op.cpuUtilization * kernelShare /
                           (1.0 + kernelShare);
    op.userUtilization = op.cpuUtilization - op.kernelUtilization;
    return op;
}

} // namespace softsku
