/**
 * @file
 * Machine assembly: a PlatformSpec plus a KnobConfig instantiated into
 * concrete cache/TLB/prefetcher/DRAM models.
 *
 * Knob actuation is deliberately indirect, mirroring μSKU's mechanisms
 * (Sec. 5): frequencies and prefetcher enables are written to the
 * emulated MSR file, CDP to the resctrl schemata, THP/SHP and isolcpus
 * to kernel config files — and the machine derives its *effective*
 * configuration by reading those back, so actuation bugs are visible to
 * tests rather than papered over.
 */

#ifndef SOFTSKU_SIM_MACHINE_HH
#define SOFTSKU_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "arch/msr.hh"
#include "arch/platform.hh"
#include "cache/cache.hh"
#include "core/knobs.hh"
#include "mem/dram.hh"
#include "os/kernelfs.hh"
#include "prefetch/prefetcher.hh"
#include "tlb/tlb.hh"

namespace softsku {

/**
 * Write @p knobs into the actuation surfaces exactly as μSKU does:
 * MSRs for frequencies/prefetchers, resctrl for CDP, kernel files for
 * THP/SHP, the boot cmdline for core count.
 */
void actuateKnobs(const KnobConfig &knobs, const PlatformSpec &platform,
                  MsrFile &msr, KernelFs &fs);

/**
 * Read the effective knob configuration back from the actuation
 * surfaces (resolving "unset" to platform defaults).
 */
KnobConfig effectiveKnobs(const MsrFile &msr, const KernelFs &fs,
                          const PlatformSpec &platform);

/** One assembled server: models configured per the knob settings. */
class Machine
{
  public:
    /**
     * @param platform  hardware SKU
     * @param knobs     soft-SKU configuration to actuate
     * @param llcPolicy LLC replacement (SRRIP default; LRU for ablation)
     */
    Machine(const PlatformSpec &platform, const KnobConfig &knobs,
            ReplPolicy llcPolicy = ReplPolicy::Srrip);

    const PlatformSpec &platform() const { return platform_; }
    const KnobConfig &knobs() const { return effective_; }

    double coreFreqGHz() const { return effective_.coreFreqGHz; }
    double uncoreFreqGHz() const { return effective_.uncoreFreqGHz; }
    int activeCores() const { return activeCores_; }

    SetAssocCache &l1i() { return *l1i_; }
    SetAssocCache &l1d() { return *l1d_; }
    SetAssocCache &l2() { return *l2_; }
    SetAssocCache &llc() { return *llc_; }
    TwoLevelTlb &itlb() { return *itlb_; }
    TwoLevelTlb &dtlb() { return *dtlb_; }
    /** The full (possibly two-tier) memory system. */
    const TieredMemoryModel &memory() const { return *memory_; }
    /** The near (DRAM) tier, for callers that only need DRAM numbers. */
    const DramModel &dram() const { return memory_->near(); }

    /** Enabled L1-D prefetchers (DCU family). */
    std::vector<Prefetcher *> l1Prefetchers();
    /** Enabled L2 prefetchers. */
    std::vector<Prefetcher *> l2Prefetchers();

    /** The actuation surfaces (exposed for tests and μSKU). */
    MsrFile &msr() { return msr_; }
    KernelFs &kernelFs() { return fs_; }

    /** Reset all cache/TLB/predictor state (fresh boot). */
    void flushAll();

  private:
    const PlatformSpec &platform_;
    MsrFile msr_;
    KernelFs fs_;
    KnobConfig effective_;
    int activeCores_;

    std::unique_ptr<SetAssocCache> l1i_;
    std::unique_ptr<SetAssocCache> l1d_;
    std::unique_ptr<SetAssocCache> l2_;
    std::unique_ptr<SetAssocCache> llc_;
    std::unique_ptr<TwoLevelTlb> itlb_;
    std::unique_ptr<TwoLevelTlb> dtlb_;
    std::unique_ptr<TieredMemoryModel> memory_;

    std::unique_ptr<DcuNextLinePrefetcher> dcuNext_;
    std::unique_ptr<DcuIpPrefetcher> dcuIp_;
    std::unique_ptr<L2AdjacentPrefetcher> l2Adjacent_;
    std::unique_ptr<L2StreamPrefetcher> l2Stream_;
    PrefetcherSet enabledPf_;
};

} // namespace softsku

#endif // SOFTSKU_SIM_MACHINE_HH
