#include "sim/machine.hh"

#include "cache/cdp.hh"
#include "util/logging.hh"

namespace softsku {

void
actuateKnobs(const KnobConfig &knobs, const PlatformSpec &platform,
             MsrFile &msr, KernelFs &fs)
{
    if (knobs.coreFreqGHz < platform.coreFreqMinGHz - 1e-9 ||
        knobs.coreFreqGHz > platform.coreFreqMaxGHz + 1e-9) {
        fatal("core frequency %.2f GHz outside [%.1f, %.1f] on %s",
              knobs.coreFreqGHz, platform.coreFreqMinGHz,
              platform.coreFreqMaxGHz, platform.name.c_str());
    }
    if (knobs.uncoreFreqGHz < platform.uncoreFreqMinGHz - 1e-9 ||
        knobs.uncoreFreqGHz > platform.uncoreFreqMaxGHz + 1e-9) {
        fatal("uncore frequency %.2f GHz outside [%.1f, %.1f] on %s",
              knobs.uncoreFreqGHz, platform.uncoreFreqMinGHz,
              platform.uncoreFreqMaxGHz, platform.name.c_str());
    }

    msr.setCoreFrequencyGHz(knobs.coreFreqGHz);
    msr.setUncoreFrequencyGHz(knobs.uncoreFreqGHz);

    PrefetcherSet pf = prefetcherSetFor(knobs.prefetch);
    msr.setPrefetchers(pf.l2Stream, pf.l2Adjacent, pf.dcuNext, pf.dcuIp);

    if (knobs.cdp.enabled) {
        if (!platform.supportsRdt)
            fatal("platform %s does not support RDT", platform.name.c_str());
        fs.setCdpSchemata(knobs.cdp.codeWays, knobs.cdp.dataWays,
                          platform.llc.ways);
    } else {
        fs.clearCdpSchemata();
    }

    HugePagePolicy pages{knobs.thp, knobs.shpCount};
    pages.applyTo(fs);

    fs.setIsolcpus(knobs.resolvedCores(platform), platform.totalCores());

    if (!platform.farMemory.present) {
        // The memory-tier knobs do not exist here; refusing non-default
        // values keeps legacy platforms' actuation surfaces untouched.
        if (knobs.mbaPercent != 100 ||
            knobs.tierPolicy != TierPolicy::Static ||
            knobs.farMemRatio != 0.0) {
            fatal("memory-tier knobs set on %s, which declares no "
                  "far-memory tier", platform.name.c_str());
        }
        return;
    }
    if (knobs.farMemRatio < 0.0 || knobs.farMemRatio >= 1.0) {
        fatal("far-memory ratio %.2f outside [0, 1) on %s",
              knobs.farMemRatio, platform.name.c_str());
    }
    fs.setMbaPercent(knobs.mbaPercent);
    fs.setTieringPolicy(tierPolicyName(knobs.tierPolicy));
    // The kernel file takes integer percent: 1% actuation granularity.
    fs.setFarRatioPercent(
        static_cast<int>(knobs.farMemRatio * 100.0 + 0.5));
}

KnobConfig
effectiveKnobs(const MsrFile &msr, const KernelFs &fs,
               const PlatformSpec &platform)
{
    KnobConfig cfg;
    cfg.coreFreqGHz = msr.coreFrequencyGHz(platform.coreFreqMaxGHz);
    cfg.uncoreFreqGHz = msr.uncoreFrequencyGHz(platform.uncoreFreqMaxGHz);
    cfg.activeCores = fs.activeCores(platform.totalCores());

    auto cdp = fs.cdpConfig(platform.llc.ways);
    cfg.cdp.enabled = cdp.enabled;
    cfg.cdp.dataWays = cdp.dataWays;
    cfg.cdp.codeWays = cdp.codeWays;

    MsrFile::PrefetcherBits bits = msr.prefetchers();
    // Map the raw bits back to the nearest preset.
    for (PrefetcherPreset preset : allPrefetcherPresets()) {
        PrefetcherSet set = prefetcherSetFor(preset);
        if (set.l2Stream == bits.l2Stream &&
            set.l2Adjacent == bits.l2Adjacent &&
            set.dcuNext == bits.dcuNext && set.dcuIp == bits.dcuIp) {
            cfg.prefetch = preset;
            break;
        }
    }

    HugePagePolicy pages = HugePagePolicy::fromKernelFs(fs);
    cfg.thp = pages.thp;
    cfg.shpCount = pages.shpCount;

    if (platform.farMemory.present) {
        cfg.mbaPercent = fs.mbaPercent();
        cfg.tierPolicy = tierPolicyFromString(fs.tieringPolicy());
        cfg.farMemRatio = fs.farRatioPercent() / 100.0;
    }
    return cfg;
}

Machine::Machine(const PlatformSpec &platform, const KnobConfig &knobs,
                 ReplPolicy llcPolicy)
    : platform_(platform)
{
    actuateKnobs(knobs, platform, msr_, fs_);
    effective_ = effectiveKnobs(msr_, fs_, platform);
    activeCores_ = effective_.resolvedCores(platform);

    l1i_ = std::make_unique<SetAssocCache>("l1i", platform.l1i);
    l1d_ = std::make_unique<SetAssocCache>("l1d", platform.l1d);
    l2_ = std::make_unique<SetAssocCache>("l2", platform.l2);
    llc_ = std::make_unique<SetAssocCache>("llc", platform.llc,
                                           llcPolicy);
    if (effective_.cdp.enabled) {
        applyCdp(*llc_, effective_.cdp.dataWays, effective_.cdp.codeWays);
    }

    itlb_ = std::make_unique<TwoLevelTlb>("itlb", platform.itlb,
                                          platform.stlb);
    dtlb_ = std::make_unique<TwoLevelTlb>("dtlb", platform.dtlb,
                                          platform.stlb);

    memory_ = std::make_unique<TieredMemoryModel>(
        platform, effective_.uncoreFreqGHz, effective_.mbaPercent,
        effective_.tierPolicy, effective_.farMemRatio);

    dcuNext_ = std::make_unique<DcuNextLinePrefetcher>();
    dcuIp_ = std::make_unique<DcuIpPrefetcher>();
    l2Adjacent_ = std::make_unique<L2AdjacentPrefetcher>();
    l2Stream_ = std::make_unique<L2StreamPrefetcher>();

    // The platform masks which prefetchers exist; the MSR masks which
    // are enabled.
    PrefetcherSet requested = prefetcherSetFor(effective_.prefetch);
    enabledPf_.l2Stream = requested.l2Stream && platform.prefetchers.l2Stream;
    enabledPf_.l2Adjacent =
        requested.l2Adjacent && platform.prefetchers.l2Adjacent;
    enabledPf_.dcuNext = requested.dcuNext && platform.prefetchers.dcuNext;
    enabledPf_.dcuIp = requested.dcuIp && platform.prefetchers.dcuIp;
}

std::vector<Prefetcher *>
Machine::l1Prefetchers()
{
    std::vector<Prefetcher *> out;
    if (enabledPf_.dcuNext)
        out.push_back(dcuNext_.get());
    if (enabledPf_.dcuIp)
        out.push_back(dcuIp_.get());
    return out;
}

std::vector<Prefetcher *>
Machine::l2Prefetchers()
{
    std::vector<Prefetcher *> out;
    if (enabledPf_.l2Stream)
        out.push_back(l2Stream_.get());
    if (enabledPf_.l2Adjacent)
        out.push_back(l2Adjacent_.get());
    return out;
}

void
Machine::flushAll()
{
    l1i_->flush();
    l1d_->flush();
    l2_->flush();
    llc_->flush();
    itlb_->flush();
    dtlb_->flush();
    dcuIp_->reset();
    l2Stream_->reset();
}

} // namespace softsku
