/**
 * @file
 * A small set-associative Branch Target Buffer model.
 *
 * The paper attributes a large share of Web's misspeculation to BTB
 * aliasing from its enormous instruction footprint (Sec. 2.4.1).  The
 * model tracks branch PCs; a BTB miss makes a taken branch far more
 * likely to mispredict, so misprediction rates scale structurally with
 * the active branch working set.
 */

#ifndef SOFTSKU_SIM_BTB_HH
#define SOFTSKU_SIM_BTB_HH

#include <cstdint>
#include <vector>

namespace softsku {

/** Branch Target Buffer: set-associative over branch PCs. */
class Btb
{
  public:
    /**
     * @param entries total entries (e.g. 4096)
     * @param ways    associativity
     */
    Btb(int entries, int ways = 4);

    /**
     * Look up @p branchPc, installing it on a miss.
     * @return true when the branch was present (target known)
     */
    bool access(std::uint64_t branchPc);

    /** Drop all entries. */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;
    std::uint64_t sets_;
    int ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_SIM_BTB_HH
