#include "sim/batched_core.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "cache/cdp.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/sim_core.hh"
#include "stats/simd_rng.hh"

namespace softsku {

namespace {

/**
 * Instructions per lane per interleaving pass.  Small enough that the
 * lockstep lanes' read cursors stay well inside the pool's ring (8192
 * rows ≈ 2–3 chunks of draws), large enough that the per-switch
 * overhead (cold lane state) is noise.
 */
constexpr std::uint64_t kChunkInstructions = 2048;

/** Per-lane draw ring capacity (rows) in the shared pool. */
constexpr std::size_t kPoolRows = 8192;

using BatchedState = simcore::SimStateT<BufferedRng>;

/**
 * Advance every lane through one phase (warmup or measure),
 * chunk-interleaved.  Lanes may have different phase lengths (ragged
 * options); a lane that finishes simply drops out of later passes.
 */
std::uint64_t
runPhase(std::vector<std::unique_ptr<BatchedState>> &lanes,
         const std::vector<std::uint64_t> &lengths, bool collect)
{
    std::uint64_t executed = 0;
    std::vector<std::uint64_t> remaining = lengths;
    for (auto &lane : lanes)
        lane->beginPhase();
    bool anyLeft = true;
    while (anyLeft) {
        anyLeft = false;
        for (std::size_t w = 0; w < lanes.size(); ++w) {
            if (remaining[w] == 0)
                continue;
            std::uint64_t chunk =
                std::min<std::uint64_t>(kChunkInstructions, remaining[w]);
            lanes[w]->runChunk(chunk, collect);
            remaining[w] -= chunk;
            executed += chunk;
            anyLeft = anyLeft || remaining[w] > 0;
        }
    }
    return executed;
}

} // namespace

std::vector<CounterSet>
runSimBatch(std::span<const SimJob> jobs, std::size_t laneWidth,
            MetricsRegistry *metrics)
{
    if (laneWidth == 0)
        laneWidth = kSimdWidth;
    std::vector<CounterSet> results(jobs.size());

    const auto wallStart = std::chrono::steady_clock::now();
    std::uint64_t executed = 0;
    std::uint64_t laneSlots = 0;
    std::uint64_t groups = 0;

    for (std::size_t base = 0; base < jobs.size(); base += laneWidth) {
        const std::size_t count =
            std::min(laneWidth, jobs.size() - base);
        ScopedSpan span("sim", "sim.core");
        span.arg("lanes", static_cast<std::uint64_t>(count));
        span.arg("width", static_cast<std::uint64_t>(laneWidth));

        std::vector<std::uint64_t> seeds(count);
        for (std::size_t w = 0; w < count; ++w)
            seeds[w] = jobs[base + w].options.seed ^ 0xF00D;
        LaneStreamPool pool(seeds, kPoolRows);

        std::vector<std::unique_ptr<BatchedState>> lanes;
        lanes.reserve(count);
        std::vector<std::uint64_t> warmups(count), measures(count);
        for (std::size_t w = 0; w < count; ++w) {
            const SimJob &job = jobs[base + w];
            job.profile->validate();
            lanes.push_back(std::make_unique<BatchedState>(
                *job.profile, *job.platform, job.knobs, job.options.seed,
                job.options, BufferedRng(&pool, w)));
            if (job.options.catWays > 0)
                applyCat(lanes.back()->machine.llc(), job.options.catWays);
            warmups[w] = job.options.warmupInstructions;
            measures[w] = job.options.measureInstructions;
        }

        for (auto &lane : lanes)
            lane->prewarm();
        executed += runPhase(lanes, warmups, false);
        for (auto &lane : lanes)
            lane->clearStats();
        executed += runPhase(lanes, measures, true);

        std::vector<simcore::RollupLane> rollup;
        rollup.reserve(count);
        for (std::size_t w = 0; w < count; ++w)
            rollup.push_back(simcore::gatherRollup(
                *lanes[w], *jobs[base + w].profile,
                *jobs[base + w].platform));
        simcore::rollupLanes(rollup);
        for (std::size_t w = 0; w < count; ++w)
            results[base + w] = simcore::assembleCounters(
                *lanes[w], rollup[w], *jobs[base + w].profile,
                *jobs[base + w].platform);

        span.arg("vector_fills", pool.vectorFills());
        span.arg("scalar_fills", pool.scalarFills());
        laneSlots += count;
        ++groups;
    }

    if (metrics != nullptr && !jobs.empty()) {
        const double elapsedSec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wallStart)
                .count();
        if (elapsedSec > 0.0) {
            metrics
                ->gauge("sim.instructions_per_sec",
                        MetricScope::Operational)
                .set(static_cast<double>(executed) / elapsedSec);
        }
        metrics
            ->gauge("sim.batch_lane_occupancy", MetricScope::Operational)
            .set(static_cast<double>(laneSlots) /
                 static_cast<double>(groups * laneWidth));
    }
    return results;
}

} // namespace softsku
