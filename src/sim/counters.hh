/**
 * @file
 * The full counter set one simulated measurement window produces —
 * everything the paper's characterization figures and μSKU's metrics
 * are built from.
 */

#ifndef SOFTSKU_SIM_COUNTERS_HH
#define SOFTSKU_SIM_COUNTERS_HH

#include <cstdint>

#include "arch/topdown.hh"
#include "cache/cache.hh"
#include "tlb/tlb.hh"

namespace softsku {

/** Counters and derived metrics for one simulated window. */
struct CounterSet
{
    // -- execution ---------------------------------------------------------
    std::uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;                 //!< per hardware thread
    double coreIpc = 0.0;             //!< per core (SMT-scaled)
    double mipsPerCore = 0.0;         //!< millions of insns/s per core
    double platformMips = 0.0;        //!< across all active cores

    // -- instruction classes (Fig 5) ----------------------------------------
    std::uint64_t classCounts[5] = {0, 0, 0, 0, 0};

    // -- caches (Figs 8-10) ---------------------------------------------------
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;

    // -- TLBs (Fig 11) ---------------------------------------------------------
    TlbStats itlbL1;
    TlbStats dtlbL1;
    std::uint64_t itlbWalks = 0;
    std::uint64_t dtlbWalks = 0;
    std::uint64_t dtlbLoadMisses = 0;
    std::uint64_t dtlbStoreMisses = 0;

    // -- branches -----------------------------------------------------------
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t btbMisses = 0;

    // -- memory system (Fig 12) ------------------------------------------------
    double memBandwidthGBs = 0.0;     //!< platform-wide demand+prefetch
    double memLatencyNs = 0.0;        //!< loaded latency
    double memBackpressure = 1.0;
    std::uint64_t dramDemandFills = 0;
    std::uint64_t dramPrefetchFills = 0;

    // -- pipeline (Figs 6-7) -----------------------------------------------------
    PipelineCosts costs;
    TopDownBreakdown topdown;

    // -- OS (Figs 3-4) --------------------------------------------------------------
    std::uint64_t contextSwitches = 0;
    double cswPenaltyFraction = 0.0;  //!< direct switching time share
    double kernelShare = 0.0;         //!< kernel-mode CPU share

    // -- derived helpers ------------------------------------------------------
    double mpkiOf(const CacheStats &cache, AccessType type) const
    {
        return cache.mpki(type, instructions);
    }

    /**
     * ITLB MPKI as the paper's Fig 11 reports it: first-level ITLB
     * misses per kilo instruction.  (Walks — the portion the STLB
     * cannot absorb — are tracked separately for the cost model.)
     */
    double itlbMpki() const { return itlbL1.mpki(instructions); }

    /** First-level DTLB misses per kilo instruction. */
    double dtlbMpki() const { return dtlbL1.mpki(instructions); }

    double branchMpki() const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(mispredicts) * 1000.0 /
               static_cast<double>(instructions);
    }

    /** Fraction of retired instructions in @p cls. */
    double classFraction(int cls) const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(classCounts[cls]) /
               static_cast<double>(instructions);
    }

    /**
     * Exact (bitwise-value) equality over every field.  This is the
     * probe the SimBatch golden tests use to assert that the batched
     * simulator core reproduces scalar runs bit for bit.
     */
    bool operator==(const CounterSet &) const = default;
};

} // namespace softsku

#endif // SOFTSKU_SIM_COUNTERS_HH
