/**
 * @file
 * The production measurement environment μSKU's A/B tests run in.
 *
 * A/B testing on live traffic (paper Sec. 4) means: two identical
 * servers in the same fleet face the same diurnally varying load; each
 * EMON sample carries measurement noise; service code is pushed every
 * few hours, perturbing behaviour.  The environment models all three so
 * μSKU's statistics machinery — warm-up discard, sample spacing, 95%
 * confidence, the ~30 k-sample cutoff — has real work to do.
 *
 * Ground-truth performance per knob configuration comes from one
 * deterministic run of the trace-driven simulator and is cached; A/B
 * samples are drawn around the truth with shared (common-mode) load
 * factors and independent per-server noise, exactly the structure that
 * makes paired A/B measurement beat naive comparison.
 */

#ifndef SOFTSKU_SIM_PRODUCTION_ENV_HH
#define SOFTSKU_SIM_PRODUCTION_ENV_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/platform.hh"
#include "core/knobs.hh"
#include "sim/counters.hh"
#include "sim/faults.hh"
#include "sim/qos.hh"
#include "sim/service_sim.hh"
#include "stats/rng.hh"
#include "workload/profile.hh"

namespace softsku {

class MetricsRegistry;

/** One paired A/B observation (same instant, same fleet load). */
struct PairedSample
{
    double mipsA = 0.0;
    double mipsB = 0.0;
    double loadFactor = 1.0;    //!< common-mode diurnal load at sample time
    bool dropped = false;       //!< EMON pair lost (fault injection)
    bool corruptedA = false;    //!< A's reading was spiked/zeroed
    bool corruptedB = false;    //!< B's reading was spiked/zeroed
};

/** Tunable noise characteristics of the environment. */
struct EnvironmentNoise
{
    /** Peak-to-trough amplitude of the diurnal load curve. */
    double diurnalAmplitude = 0.06;
    /** Log-normal sigma of per-sample EMON measurement noise. */
    double measurementSigma = 0.012;
    /** Relative behaviour perturbation applied at each code push. */
    double codePushSigma = 0.004;
    /** Seconds between code pushes (O(hours), Sec. 4). */
    double codePushIntervalSec = 4.0 * 3600.0;
};

/** A simulated fleet slice serving live traffic for one microservice. */
class ProductionEnvironment
{
  public:
    /**
     * @param profile  the microservice under test
     * @param platform the server SKU
     * @param seed     environment seed (fleet noise streams)
     * @param simOpts  window sizing for ground-truth simulations
     */
    ProductionEnvironment(const WorkloadProfile &profile,
                          const PlatformSpec &platform,
                          std::uint64_t seed = 1,
                          const SimOptions &simOpts = SimOptions{});

    /**
     * Ground-truth platform MIPS for a configuration at peak load.
     * Simulated once per distinct *canonical* configuration, then
     * cached; the cache is shared with every clone() of this
     * environment and is safe to populate from concurrent sweep tasks.
     */
    double trueMips(const KnobConfig &config);

    /** Full counter set for a configuration (cached with the truth). */
    const CounterSet &counters(const KnobConfig &config);

    /**
     * Batch-simulate every configuration in @p configs that is not yet
     * in the truth cache, through the batched simulator core (SIMD RNG
     * lanes; see sim/batched_core.hh).  Results are bit-identical to
     * the lazy scalar path, so this is purely a throughput lever for
     * driver-thread call sites that know the configurations an
     * evaluation round will need.  No-op when the environment's
     * SimOptions select SimCoreKind::Scalar.
     *
     * @p metrics receives the batch's Operational gauges (may be null).
     */
    void prepareConfigs(const std::vector<KnobConfig> &configs,
                        MetricsRegistry *metrics = nullptr);

    /**
     * Solved peak operating point (QoS-bounded) for a configuration;
     * computed once per canonical config and cached alongside the
     * counters.  The sweep engine's QoS guardrail reads this.
     */
    const ServiceOperatingPoint &operatingPoint(const KnobConfig &config);

    /**
     * An independent measurement slice of the same fleet: identical
     * service, platform, noise model, and ground-truth cache (shared,
     * so a configuration is never simulated twice across slices), but
     * with its noise RNG on the substream @p streamId.  Two clones
     * with the same id replay identical sample sequences; clones with
     * different ids are statistically independent.  This is what each
     * parallel sweep task measures in.
     */
    ProductionEnvironment clone(std::uint64_t streamId) const;

    /** Diurnal load multiplier at wall-clock time @p timeSec. */
    double loadFactor(double timeSec) const;

    /**
     * Diurnal load times any injected traffic surge.  The surge term
     * is a pure function of time, so it is identical for every clone
     * and thread; with no fault plan this is exactly loadFactor().
     */
    double effectiveLoad(double timeSec) const;

    /**
     * Arm this environment (and every clone derived from it) with a
     * fault plan.  A default (all-zero) plan restores benign behavior
     * bit-for-bit: no extra RNG draws happen anywhere.
     */
    void setFaults(const FaultPlan &plan, std::uint64_t faultSeed);

    const FaultPlan &faults() const { return injector_.plan(); }

    /**
     * The fault-decision substream @p streamId of this environment's
     * plan/seed — what FleetSlice and the validation chunks use so
     * their fault schedules never interleave with A/B measurement.
     */
    FaultInjector injectorForStream(std::uint64_t streamId) const;

    /** Did a server crash in the last @p dtSec of measurement? */
    bool drawCrash(double dtSec);

    /** Did this knob apply fail? */
    bool drawApplyFailure();

    /**
     * Draw one paired A/B sample at time @p timeSec: both servers see
     * the same instantaneous load; measurement noise is independent.
     */
    PairedSample samplePair(const KnobConfig &a, const KnobConfig &b,
                            double timeSec);

    /**
     * Same draw, with the ground truths already in hand — the sweep
     * hot path: one truth lookup per A/B test instead of two string
     * builds and map probes per sample.
     */
    PairedSample samplePairTruth(double trueA, double trueB,
                                 double timeSec);

    /** Draw one single-server sample (used by the validation phase). */
    double sampleMips(const KnobConfig &config, double timeSec);

    /** Number of distinct configurations simulated so far. */
    size_t configsSimulated() const;

    const WorkloadProfile &profile() const { return profile_; }
    const PlatformSpec &platform() const { return platform_; }

    /** The environment seed (identifies the fleet's noise streams). */
    std::uint64_t seed() const { return seed_; }

    /** Ground-truth simulation window sizing. */
    const SimOptions &simOptions() const { return simOpts_; }

    /** Seed of the armed fault plan (0 until setFaults). */
    std::uint64_t faultSeed() const { return faultSeed_; }

    EnvironmentNoise &noise() { return noise_; }
    const EnvironmentNoise &noise() const { return noise_; }

  private:
    /** Truth cache shared between an environment and all its clones. */
    struct SimulationCache
    {
        std::mutex mutex;
        std::map<std::string, CounterSet> entries;
        std::map<std::string, ServiceOperatingPoint> operatingPoints;
    };

    double codePushFactor(double timeSec) const;

    const WorkloadProfile &profile_;
    const PlatformSpec &platform_;
    std::uint64_t seed_;
    SimOptions simOpts_;
    EnvironmentNoise noise_;
    Rng rng_;
    std::uint64_t faultSeed_ = 0;
    FaultInjector injector_;
    std::shared_ptr<SimulationCache> cache_;
};

} // namespace softsku

#endif // SOFTSKU_SIM_PRODUCTION_ENV_HH
