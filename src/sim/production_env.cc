#include "sim/production_env.hh"

#include <cmath>
#include <utility>

#include "sim/batched_core.hh"
#include "util/logging.hh"

namespace softsku {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

ProductionEnvironment::ProductionEnvironment(const WorkloadProfile &profile,
                                             const PlatformSpec &platform,
                                             std::uint64_t seed,
                                             const SimOptions &simOpts)
    : profile_(profile), platform_(platform), seed_(seed),
      simOpts_(simOpts), rng_(seed ^ 0xE4),
      cache_(std::make_shared<SimulationCache>())
{
}

const CounterSet &
ProductionEnvironment::counters(const KnobConfig &config)
{
    // Canonical key: "all cores" and "18 cores" are one simulation on
    // an 18-core platform.  Entries are immutable once inserted and
    // std::map nodes are stable, so returning a reference after the
    // lock drops is safe.
    KnobConfig canonical = config.canonical(platform_);
    std::string key = canonical.describe();
    {
        std::lock_guard<std::mutex> lock(cache_->mutex);
        auto it = cache_->entries.find(key);
        if (it != cache_->entries.end())
            return it->second;
    }

    // Simulate outside the lock so concurrent sweep tasks overlap
    // distinct configurations; a duplicate race wastes one simulation
    // but the first insert wins and results are deterministic anyway.
    SimOptions opts = simOpts_;
    opts.seed = seed_;
    CounterSet result =
        simulateService(profile_, platform_, canonical, opts);
    std::lock_guard<std::mutex> lock(cache_->mutex);
    return cache_->entries.emplace(std::move(key), result).first->second;
}

void
ProductionEnvironment::prepareConfigs(const std::vector<KnobConfig> &configs,
                                      MetricsRegistry *metrics)
{
    if (simOpts_.core == SimCoreKind::Scalar)
        return;

    // Dedupe to canonical configurations the cache does not hold yet.
    // The probe and the final insert take the lock; the simulations
    // themselves run outside it, like the lazy path.
    std::vector<std::pair<std::string, KnobConfig>> missing;
    {
        std::lock_guard<std::mutex> lock(cache_->mutex);
        for (const KnobConfig &config : configs) {
            KnobConfig canonical = config.canonical(platform_);
            std::string key = canonical.describe();
            if (cache_->entries.count(key))
                continue;
            bool seen = false;
            for (const auto &[k, c] : missing)
                seen = seen || k == key;
            if (!seen)
                missing.emplace_back(std::move(key), canonical);
        }
    }
    if (missing.empty())
        return;

    SimOptions opts = simOpts_;
    opts.seed = seed_;
    std::vector<SimJob> jobs;
    jobs.reserve(missing.size());
    for (const auto &[key, canonical] : missing)
        jobs.push_back(SimJob{&profile_, &platform_, canonical, opts});
    std::vector<CounterSet> results = runSimBatch(jobs, 0, metrics);

    std::lock_guard<std::mutex> lock(cache_->mutex);
    for (size_t i = 0; i < missing.size(); ++i)
        cache_->entries.emplace(missing[i].first, results[i]);
}

size_t
ProductionEnvironment::configsSimulated() const
{
    std::lock_guard<std::mutex> lock(cache_->mutex);
    return cache_->entries.size();
}

ProductionEnvironment
ProductionEnvironment::clone(std::uint64_t streamId) const
{
    ProductionEnvironment slice(*this);
    // Same construction-time root as rng_, rebased onto the substream.
    slice.rng_ = Rng(seed_ ^ 0xE4).split(streamId);
    // Fault decisions rebase the same way: a clone's fault schedule
    // depends only on (fault seed, stream id), never on what the
    // parent has already drawn.
    slice.injector_ = injector_.forStream(streamId);
    return slice;
}

const ServiceOperatingPoint &
ProductionEnvironment::operatingPoint(const KnobConfig &config)
{
    KnobConfig canonical = config.canonical(platform_);
    std::string key = canonical.describe();
    {
        std::lock_guard<std::mutex> lock(cache_->mutex);
        auto it = cache_->operatingPoints.find(key);
        if (it != cache_->operatingPoints.end())
            return it->second;
    }
    // The counter lookup may itself simulate (outside our lock); the
    // QoS solve happens outside the lock too so concurrent guardrail
    // checks for distinct configs overlap.
    const CounterSet &stats = counters(config);
    ServiceOperatingPoint op = solveOperatingPoint(
        profile_, platform_, stats, seed_, canonical.activeCores);
    std::lock_guard<std::mutex> lock(cache_->mutex);
    return cache_->operatingPoints.emplace(std::move(key), op)
        .first->second;
}

void
ProductionEnvironment::setFaults(const FaultPlan &plan,
                                 std::uint64_t faultSeed)
{
    faultSeed_ = faultSeed;
    injector_ = FaultInjector(plan, faultSeed);
}

FaultInjector
ProductionEnvironment::injectorForStream(std::uint64_t streamId) const
{
    return injector_.forStream(streamId);
}

bool
ProductionEnvironment::drawCrash(double dtSec)
{
    return injector_.plan().any() && injector_.crash(dtSec);
}

bool
ProductionEnvironment::drawApplyFailure()
{
    return injector_.plan().any() && injector_.applyFails();
}

double
ProductionEnvironment::trueMips(const KnobConfig &config)
{
    return counters(config).platformMips;
}

double
ProductionEnvironment::loadFactor(double timeSec) const
{
    // Diurnal curve plus a slow traffic-mix wobble; both are shared by
    // every server in the fleet slice.
    double day = 2.0 * M_PI * timeSec / 86400.0;
    double hour = 2.0 * M_PI * timeSec / 3600.0;
    return 1.0 + noise_.diurnalAmplitude * 0.5 * std::sin(day) +
           noise_.diurnalAmplitude * 0.15 * std::sin(3.7 * hour + 1.3);
}

double
ProductionEnvironment::effectiveLoad(double timeSec) const
{
    double load = loadFactor(timeSec);
    if (injector_.plan().surgeWindowRate > 0.0)
        load *= injector_.surgeFactor(timeSec);
    return load;
}

double
ProductionEnvironment::codePushFactor(double timeSec) const
{
    if (noise_.codePushSigma <= 0.0 || noise_.codePushIntervalSec <= 0.0)
        return 1.0;
    auto epoch = static_cast<std::uint64_t>(
        timeSec / noise_.codePushIntervalSec);
    // Deterministic per-epoch perturbation around 1.
    double u = static_cast<double>(mix64(epoch ^ seed_) >> 11) * 0x1.0p-53;
    return 1.0 + noise_.codePushSigma * (2.0 * u - 1.0);
}

PairedSample
ProductionEnvironment::samplePair(const KnobConfig &a, const KnobConfig &b,
                                  double timeSec)
{
    return samplePairTruth(trueMips(a), trueMips(b), timeSec);
}

PairedSample
ProductionEnvironment::samplePairTruth(double trueA, double trueB,
                                       double timeSec)
{
    PairedSample sample;
    const bool hostile = injector_.plan().any();
    double shared = effectiveLoad(timeSec) * codePushFactor(timeSec);
    sample.loadFactor = shared;
    // EMON dropout loses the whole pair before any reading exists; the
    // noise stream is not advanced (nothing was measured).
    if (hostile && injector_.dropSample()) {
        sample.dropped = true;
        return sample;
    }
    sample.mipsA = trueA * shared *
                   rng_.logNormalMean(1.0, noise_.measurementSigma);
    sample.mipsB = trueB * shared *
                   rng_.logNormalMean(1.0, noise_.measurementSigma);
    if (hostile) {
        if (injector_.corruptSample()) {
            sample.mipsA *= injector_.corruptionFactor();
            sample.corruptedA = true;
        }
        if (injector_.corruptSample()) {
            sample.mipsB *= injector_.corruptionFactor();
            sample.corruptedB = true;
        }
    }
    return sample;
}

double
ProductionEnvironment::sampleMips(const KnobConfig &config, double timeSec)
{
    double shared = effectiveLoad(timeSec) * codePushFactor(timeSec);
    return trueMips(config) * shared *
           rng_.logNormalMean(1.0, noise_.measurementSigma);
}

} // namespace softsku
