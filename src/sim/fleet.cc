#include "sim/fleet.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/running_stat.hh"
#include "stats/students_t.hh"
#include "telemetry/series_names.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

/** Fault-decision substream for fleet operations: disjoint from the
 *  A/B measurement streams and the validation chunks. */
constexpr std::uint64_t kFleetFaultStream = 0xF1EE7FA170000001ULL;

} // namespace

FleetTopology
FleetTopology::fromSpec(const std::string &spec)
{
    FleetTopology topo;
    std::string text(trim(spec));
    if (text.empty())
        return topo;
    auto x = text.find('x');
    auto racksValue = parseInt(trim(text.substr(0, x)));
    if (!racksValue)
        fatal("topology spec '%s': expected RACKS or RACKSxREGIONS",
              spec.c_str());
    topo.racks = static_cast<int>(*racksValue);
    if (x != std::string::npos) {
        auto regionsValue = parseInt(trim(text.substr(x + 1)));
        if (!regionsValue)
            fatal("topology spec '%s': expected RACKS or RACKSxREGIONS",
                  spec.c_str());
        topo.regions = static_cast<int>(*regionsValue);
    }
    if (topo.racks < 1 || topo.regions < 1)
        fatal("topology spec '%s': racks and regions must be >= 1",
              spec.c_str());
    if (topo.regions > topo.racks)
        fatal("topology spec '%s': %d regions cannot hold %d racks",
              spec.c_str(), topo.regions, topo.racks);
    return topo;
}

RolloutPolicy
RolloutPolicy::blastRadiusAware()
{
    RolloutPolicy policy;
    policy.stratifyWaves = true;
    policy.domainQuorum = 1;
    policy.domainVerdicts = true;
    policy.surgePauseThreshold = 0.08;
    policy.resumeAttempts = 2;
    return policy;
}

Json
RolloutResult::toJson() const
{
    Json doc = Json::object();
    doc.set("completed", Json(completed));
    doc.set("aborted", Json(aborted));
    doc.set("rolled_back", Json(rolledBack));
    doc.set("finished_at_sec", Json(finishedAtSec));
    doc.set("servers_converted", Json(serversConverted));
    doc.set("canary_gain_percent", Json(canaryGainPercent));
    doc.set("canary_samples",
            Json(static_cast<long long>(canarySamples)));
    doc.set("fleet_gain_percent", Json(fleetGainPercent));
    doc.set("waves_rolled_back", Json(wavesRolledBack));
    doc.set("servers_excluded", Json(serversExcluded));
    doc.set("server_crashes", Json(serverCrashes));
    doc.set("apply_failures", Json(applyFailures));
    doc.set("stuck_reboots", Json(stuckReboots));
    doc.set("resumes", Json(resumes));
    doc.set("rack_events", Json(rackEvents));
    doc.set("domains_excluded", Json(domainsExcluded));
    doc.set("surge_pauses", Json(surgePauses));
    doc.set("max_wave_domain_share", Json(maxWaveDomainShare));
    doc.set("config_blamed", Json(configBlamed));
    return doc;
}

bool
reconfigurationNeedsReboot(const KnobConfig &from, const KnobConfig &to)
{
    if (from.activeCores != to.activeCores)
        return true;
    if (from.shpCount != to.shpCount)
        return true;
    return false;
}

FleetSlice::FleetSlice(ProductionEnvironment &env, int servers,
                       const KnobConfig &initial,
                       const FleetTopology &topology)
    : env_(env), topology_(topology), rng_(0xF1EE7)
{
    SOFTSKU_ASSERT(servers > 0);
    SOFTSKU_ASSERT(topology_.racks >= 1 && topology_.regions >= 1 &&
                   topology_.regions <= topology_.racks);
    servers_.reserve(static_cast<size_t>(servers));
    for (int i = 0; i < servers; ++i) {
        FleetServer server;
        server.id = i;
        server.config = initial;
        // Contiguous id blocks per rack (placement follows delivery
        // order), racks likewise per region.
        server.rack = static_cast<int>(
            static_cast<long long>(i) * topology_.racks / servers);
        server.region = server.rack * topology_.regions / topology_.racks;
        servers_.push_back(server);
    }
}

int
FleetSlice::onlineServers(double nowSec) const
{
    int online = 0;
    for (const FleetServer &server : servers_)
        online += server.online(nowSec);
    return online;
}

double
FleetSlice::serverMips(const FleetServer &server, double load)
{
    // Per-server noise is independent; load is fleet-wide.  perfFactor
    // models silent hardware drift the truth cache knows nothing about
    // — only sampled telemetry can see it.
    return env_.trueMips(server.config) * server.perfFactor * load *
           rng_.logNormalMean(1.0, env_.noise().measurementSigma);
}

double
FleetSlice::fleetMips(double nowSec)
{
    double total = 0.0;
    double load = env_.effectiveLoad(nowSec);
    for (const FleetServer &server : servers_) {
        if (!server.online(nowSec))
            continue;
        total += serverMips(server, load);
    }
    return total;
}

void
FleetSlice::degradeServer(int index, double perfFactor)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    servers_[static_cast<size_t>(index)].perfFactor = perfFactor;
}

void
FleetSlice::scheduleDegradation(int index, double atSec, double perfFactor)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    pending_.push_back(PendingDegradation{index, atSec, perfFactor});
}

void
FleetSlice::scheduleRackOutage(int rack, double atSec, double downtimeSec)
{
    SOFTSKU_ASSERT(rack >= 0 && rack < topology_.racks);
    SOFTSKU_ASSERT(downtimeSec > 0.0);
    pendingOutages_.push_back(PendingOutage{rack, atSec, downtimeSec});
}

void
FleetSlice::sampleTo(OdsStore &ods, double nowSec)
{
    const std::string &name = env_.profile().name;
    ods.append(fleetSeriesName(name, "mips"), nowSec, fleetMips(nowSec));
    ods.append(fleetSeriesName(name, "online"), nowSec,
               static_cast<double>(onlineServers(nowSec)));
}

bool
FleetSlice::reconfigure(int index, const KnobConfig &config, double nowSec,
                        double rebootDowntimeSec)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    FleetServer &server = servers_[static_cast<size_t>(index)];
    bool reboot = reconfigurationNeedsReboot(server.config, config);
    server.config = config;
    if (reboot)
        server.offlineUntilSec = nowSec + rebootDowntimeSec;
    return reboot;
}

RolloutResult
FleetSlice::rollout(const KnobConfig &target, const RolloutPolicy &policy,
                    OdsStore &ods, double startSec, double sampleEverySec)
{
    // Rollouts are single-threaded, so phase spans nest naturally
    // under this root and their ordinals are deterministic.
    ScopedSpan rolloutSpan("rollout", "fleet.rollout", {kTraceRollout});
    rolloutSpan.arg("service", env_.profile().name);
    rolloutSpan.arg("servers",
                    static_cast<std::uint64_t>(servers_.size()));
    LogContext logCtx("fleet " + env_.profile().name);
    MetricsRegistry::global().counter("fleet.rollouts").add(1);

    RolloutResult result;
    double now = startSec;
    const int fleetSize = static_cast<int>(servers_.size());
    const KnobConfig before = servers_.front().config;
    const bool hostile = env_.faults().any();
    FaultInjector injector = env_.injectorForStream(kFleetFaultStream);

    const bool domains = !topology_.trivial();
    const int racks = topology_.racks;
    const bool domainSurges =
        domains && injector.plan().domainSurgeRate > 0.0;

    const std::string &name = env_.profile().name;
    const std::string mipsSeries = fleetSeriesName(name, "mips");
    const std::string onlineSeries = fleetSeriesName(name, "online");
    // Health checks read these back out of ODS — the operator's view
    // and the rollout machinery consume the same telemetry path.
    const std::string normSeries = fleetSeriesName(name, "normalized");
    const std::string canarySeries =
        fleetSeriesName(name, "canary_delta");
    std::vector<std::string> rackNormSeries, rackCtlSeries,
        rackOnlineSeries;
    if (domains) {
        for (int k = 0; k < racks; ++k) {
            rackNormSeries.push_back(
                rackSeriesName(name, k, "normalized"));
            rackCtlSeries.push_back(
                rackSeriesName(name, k, "control_normalized"));
            rackOnlineSeries.push_back(
                rackSeriesName(name, k, "online"));
        }
    }

    std::vector<char> isCanary(servers_.size(), 0);
    std::vector<char> isConverted(servers_.size(), 0);
    // Horizon of the latest rack power event per rack: a server whose
    // offline window sits inside it is rack-down, not stuck-rebooting.
    std::vector<double> rackOfflineUntil(static_cast<size_t>(racks), 0.0);

    // Land any degradations scheduled to happen by time t.
    auto applyPending = [&](double t) {
        for (size_t i = 0; i < pending_.size();) {
            if (pending_[i].atSec <= t) {
                servers_[static_cast<size_t>(pending_[i].index)]
                    .perfFactor = pending_[i].perfFactor;
                pending_[i] = pending_.back();
                pending_.pop_back();
            } else {
                ++i;
            }
        }
    };

    // A rack power event: every server in the rack goes dark at once.
    auto landRackOutage = [&](int rack, double untilSec) {
        for (FleetServer &server : servers_) {
            if (server.rack != rack || server.excluded)
                continue;
            server.offlineUntilSec =
                std::max(server.offlineUntilSec, untilSec);
        }
        rackOfflineUntil[static_cast<size_t>(rack)] = std::max(
            rackOfflineUntil[static_cast<size_t>(rack)], untilSec);
        ++result.rackEvents;
        MetricsRegistry::global().counter("fleet.rack_events").add(1);
        traceInstant("fault", "fleet.rack_event");
        warn("fleet: rack %d power event, offline until %.0fs", rack,
             untilSec);
    };

    // Per-tick hostile hazards: rack power events, crash/replacement,
    // and stuck-reboot exclusion.  Benign plans draw nothing here.
    auto processFaults = [&](double t, double dtSec) {
        // Directed rack outages land regardless of the stochastic
        // plan, like scheduleDegradation.
        for (size_t i = 0; i < pendingOutages_.size();) {
            if (pendingOutages_[i].atSec <= t) {
                landRackOutage(pendingOutages_[i].rack,
                               pendingOutages_[i].atSec +
                                   pendingOutages_[i].downtimeSec);
                pendingOutages_[i] = pendingOutages_.back();
                pendingOutages_.pop_back();
            } else {
                ++i;
            }
        }
        if (!hostile)
            return;
        if (domains && injector.plan().rackEventPerHour > 0.0) {
            // Stateless time hash: every clone, thread, and resumed
            // attempt sees the identical rack-event schedule.
            for (int k = 0; k < racks; ++k) {
                if (injector.rackEventInWindow(k, t, dtSec))
                    landRackOutage(
                        k, t + injector.plan().rackEventDowntimeSec);
            }
        }
        for (FleetServer &server : servers_) {
            if (server.excluded)
                continue;
            if (t < server.offlineUntilSec) {
                // A server inside its rack's outage horizon is down
                // with its domain — that is the *rack's* fault, not a
                // stuck reboot, so the operator does not pull it.
                bool rackDown =
                    domains &&
                    server.offlineUntilSec <=
                        rackOfflineUntil[static_cast<size_t>(
                            server.rack)];
                if (!rackDown &&
                    server.offlineUntilSec - t > policy.rebootTimeoutSec) {
                    // The reboot is stuck beyond the operator's
                    // patience: pull the host from rotation.
                    server.excluded = true;
                    ++result.serversExcluded;
                    MetricsRegistry::global()
                        .counter("fleet.servers_excluded").add(1);
                    traceInstant("fault", "fleet.server_excluded");
                    warn("fleet: server %d stuck rebooting, excluded",
                         server.id);
                }
                continue;
            }
            if (injector.crash(dtSec)) {
                // Crash + replacement: the new host runs the same
                // config but not-quite-identical hardware (drift the
                // truth cache cannot see).  With rack drift armed the
                // replacement comes from the rack's delivery cohort.
                ++result.serverCrashes;
                MetricsRegistry::global()
                    .counter("fleet.server_crashes").add(1);
                traceInstant("fault", "fleet.crash");
                traceCounter("fault", "fleet.crashes_total",
                             static_cast<double>(result.serverCrashes));
                server.perfFactor =
                    injector.replacementPerfFactorForRack(server.rack);
                server.offlineUntilSec = t + policy.rebootDowntimeSec;
            }
        }
    };

    // One telemetry tick: a single noise draw per online server feeds
    // the fleet aggregate, the canary/control pairing, and the
    // load-normalized health metric.  Everything lands in ODS; the
    // health checks below read it back from there — the same numbers
    // an operator sees.
    std::vector<double> rackTotal, rackCtlTotal;
    std::vector<int> rackOnline, rackCtlN;
    auto observe = [&](double t) {
        applyPending(t);
        double load = env_.effectiveLoad(t);
        double total = 0.0, canarySum = 0.0, controlSum = 0.0;
        int online = 0, canaryN = 0, controlN = 0;
        if (domains) {
            rackTotal.assign(static_cast<size_t>(racks), 0.0);
            rackCtlTotal.assign(static_cast<size_t>(racks), 0.0);
            rackOnline.assign(static_cast<size_t>(racks), 0);
            rackCtlN.assign(static_cast<size_t>(racks), 0);
        }
        for (size_t i = 0; i < servers_.size(); ++i) {
            FleetServer &server = servers_[i];
            if (!server.online(t))
                continue;
            double serverLoad = load;
            if (domainSurges)
                serverLoad *=
                    injector.domainSurgeFactor(server.region, t);
            double mips = serverMips(server, serverLoad);
            total += mips;
            ++online;
            if (isCanary[i]) {
                canarySum += mips;
                ++canaryN;
            } else {
                controlSum += mips;
                ++controlN;
            }
            if (domains) {
                auto k = static_cast<size_t>(server.rack);
                rackTotal[k] += mips;
                ++rackOnline[k];
                if (!isConverted[i]) {
                    rackCtlTotal[k] += mips;
                    ++rackCtlN[k];
                }
            }
        }
        ods.append(mipsSeries, t, total);
        ods.append(onlineSeries, t, static_cast<double>(online));
        // Detrend by the *known* diurnal curve only: an injected
        // surge is invisible to the operator's load model and shows
        // up as upside, never as a phantom regression.
        double diurnal = env_.loadFactor(t);
        if (online > 0 && diurnal > 0.0)
            ods.append(normSeries, t, total / (online * diurnal));
        if (canaryN > 0 && controlN > 0) {
            // Canary mean over control mean at the same instant: the
            // common-mode load (diurnal, surges, code pushes) cancels
            // exactly, leaving the configuration effect plus noise.
            ods.append(canarySeries, t,
                       (canarySum / canaryN) / (controlSum / controlN) -
                           1.0);
        }
        if (domains) {
            for (int k = 0; k < racks; ++k) {
                auto ku = static_cast<size_t>(k);
                ods.append(rackOnlineSeries[ku], t,
                           static_cast<double>(rackOnline[ku]));
                if (rackOnline[ku] > 0 && diurnal > 0.0)
                    ods.append(rackNormSeries[ku], t,
                               rackTotal[ku] /
                                   (rackOnline[ku] * diurnal));
                if (rackCtlN[ku] > 0 && diurnal > 0.0)
                    ods.append(rackCtlSeries[ku], t,
                               rackCtlTotal[ku] /
                                   (rackCtlN[ku] * diurnal));
            }
        }
    };

    // Fold one ODS series over a window into a RunningStat — the only
    // way rollout decisions consume telemetry.
    auto windowStat = [&](const std::string &series, double fromSec,
                          double toSec) {
        RunningStat stat;
        for (const OdsPoint &point : ods.query(series, fromSec, toSec))
            stat.add(point.value);
        return stat;
    };

    // Bounds of the most recent sampling window, for domain triage.
    double lastWinFrom = 0.0, lastWinTo = -1.0;
    auto sampleWindow = [&](double untilSec, double cadence,
                            RunningStat *normalized,
                            RunningStat *canary) {
        double firstTick = 0.0;
        bool ticked = false;
        while (now < untilSec) {
            now += cadence;
            if (!ticked) {
                firstTick = now;
                ticked = true;
            }
            processFaults(now, cadence);
            observe(now);
        }
        lastWinFrom = ticked ? firstTick : now + 1.0;
        lastWinTo = now;
        if (normalized)
            for (const OdsPoint &point :
                 ods.query(normSeries, lastWinFrom, lastWinTo))
                normalized->add(point.value);
        if (canary)
            for (const OdsPoint &point :
                 ods.query(canarySeries, lastWinFrom, lastWinTo))
                canary->add(point.value);
    };

    // Push a config to one server, fighting apply failures and stuck
    // reboots; a server that defeats the retry budget is excluded.
    auto convert = [&](int index, const KnobConfig &config) {
        FleetServer &server = servers_[static_cast<size_t>(index)];
        if (server.excluded)
            return false;
        // The push cannot reach a host that is down (a rack outage, a
        // reboot in flight); it stays on the old config.
        if (domains && !server.online(now))
            return false;
        if (hostile) {
            int attempts = 1 + std::max(0, policy.applyRetries);
            bool applied = false;
            for (int a = 0; a < attempts && !applied; ++a) {
                if (injector.applyFails()) {
                    ++result.applyFailures;
                    MetricsRegistry::global()
                        .counter("fleet.apply_failures").add(1);
                    traceInstant("fault", "fleet.apply_failure");
                } else {
                    applied = true;
                }
            }
            if (!applied) {
                server.excluded = true;
                ++result.serversExcluded;
                MetricsRegistry::global()
                    .counter("fleet.servers_excluded").add(1);
                warn("fleet: server %d failed %d config applies, "
                     "excluded", server.id, attempts);
                return false;
            }
        }
        bool reboot =
            reconfigure(index, config, now, policy.rebootDowntimeSec);
        if (reboot && hostile && injector.rebootSticks()) {
            server.offlineUntilSec += injector.plan().stuckRebootExtraSec;
            ++result.stuckReboots;
            MetricsRegistry::global()
                .counter("fleet.stuck_reboots").add(1);
            traceInstant("fault", "fleet.stuck_reboot");
        }
        return true;
    };

    // Pull every server of a sick rack from rotation: the blast
    // radius is the rack, so the remedy is rack-scoped too.
    auto excludeRack = [&](int rack) {
        int pulled = 0;
        for (FleetServer &server : servers_) {
            if (server.rack != rack || server.excluded)
                continue;
            server.excluded = true;
            ++result.serversExcluded;
            ++pulled;
        }
        ++result.domainsExcluded;
        MetricsRegistry::global().counter("fleet.domains_excluded")
            .add(1);
        MetricsRegistry::global().counter("fleet.servers_excluded")
            .add(pulled);
        traceInstant("rollout", "rollout.domain_excluded");
        warn("fleet: rack %d pulled from rotation (%d servers), "
             "domain fault", rack, pulled);
    };

    // Per-rack baseline references for the domain triage, established
    // by each attempt's baseline soak.
    std::vector<double> rackBaselineRef(static_cast<size_t>(racks), 0.0);

    // Triage a failed health check by failure domain over the window
    // that failed: a rack is sick when it is mostly dead or when its
    // *control* servers — still on the old config — regressed against
    // the rack's own baseline.  Control groups are small, so the
    // regression bar is 3x the fleet-level abort threshold.
    struct DomainVerdict
    {
        std::vector<int> sickRacks;
        int activeRacks = 0;
    };
    auto triageDomains = [&](double fromSec, double toSec) {
        DomainVerdict verdict;
        for (int k = 0; k < racks; ++k) {
            auto ku = static_cast<size_t>(k);
            int alive = 0;
            for (const FleetServer &server : servers_)
                if (server.rack == k && !server.excluded)
                    ++alive;
            if (alive == 0)
                continue;
            ++verdict.activeRacks;
            RunningStat onlineStat =
                windowStat(rackOnlineSeries[ku], fromSec, toSec);
            bool dead = onlineStat.count() >= 1 &&
                        onlineStat.mean() < 0.5 * alive;
            bool regressed = false;
            if (!dead && rackBaselineRef[ku] > 0.0) {
                RunningStat control =
                    windowStat(rackCtlSeries[ku], fromSec, toSec);
                regressed =
                    control.count() >= 2 &&
                    control.mean() <
                        rackBaselineRef[ku] *
                            (1.0 - 3.0 * policy.abortOnRegression);
            }
            if (dead || regressed)
                verdict.sickRacks.push_back(k);
        }
        return verdict;
    };

    // Phases 0–2 run once per attempt: the first pass is the rollout
    // proper; each further pass is a resume after a rollback (bounded
    // by policy.resumeAttempts).  With resumeAttempts == 0 the loop
    // body executes exactly once and draws exactly the pre-resume
    // sequence of telemetry and fault decisions.
    int resumesLeft = std::max(0, policy.resumeAttempts);
    RunningStat finalWindow;
    RunningStat baseline;
    double baselineRef = 0.0;
    for (;;) {
    bool resuming = false;

    // Phase 0: pre-rollout soak.  The load-normalized per-server mips
    // over this window is the reference every later health check —
    // and the final fleet-gain estimate — compares against.  A resume
    // re-soaks, so the reference reflects the surviving fleet
    // (exclusions, replacements, degradations) rather than the one
    // that existed before the rollback.
    baseline = RunningStat{};
    {
        ScopedSpan span("rollout", "rollout.baseline_soak");
        sampleWindow(now + policy.baselineSoakSec, sampleEverySec,
                     &baseline, nullptr);
        span.arg("samples", baseline.count());
    }
    baselineRef = baseline.mean();
    if (domains)
        for (int k = 0; k < racks; ++k)
            rackBaselineRef[static_cast<size_t>(k)] =
                windowStat(rackNormSeries[static_cast<size_t>(k)],
                           lastWinFrom, lastWinTo)
                    .mean();

    // Phase 1: canary — on a resume, re-canaried on whichever of the
    // canary servers survived (excluded hosts stay out).  With a real
    // topology the canaries are the first *live* servers, so a rollout
    // resumed past an excluded rack still gets a judgeable canary.
    int canaries = std::min<int>(policy.canaryServers, fleetSize);
    std::vector<int> canaryIdx;
    if (domains) {
        for (int i = 0;
             i < fleetSize &&
             static_cast<int>(canaryIdx.size()) < canaries;
             ++i)
            if (!servers_[static_cast<size_t>(i)].excluded)
                canaryIdx.push_back(i);
    } else {
        for (int i = 0; i < canaries; ++i)
            canaryIdx.push_back(i);
    }
    RunningStat canaryStat;
    int canariesConverted = 0;
    {
        ScopedSpan span("rollout", "rollout.canary");
        span.arg("servers", static_cast<std::uint64_t>(canaries));
        for (int i : canaryIdx) {
            if (convert(i, target)) {
                isCanary[static_cast<size_t>(i)] = 1;
                isConverted[static_cast<size_t>(i)] = 1;
                ++canariesConverted;
            }
        }
        sampleWindow(now + policy.canarySoakSec, policy.canarySampleSec,
                     nullptr, &canaryStat);
        span.arg("samples", canaryStat.count());
    }
    const double canaryWinFrom = lastWinFrom, canaryWinTo = lastWinTo;

    // Judge the canary purely on the paired ODS telemetry it produced:
    // per-tick canary-mean/control-mean ratios, t-tested.  The truth
    // cache is deliberately not consulted — a degraded canary *host*
    // must be caught even when the config itself is a winner.
    result.canarySamples = canaryStat.count();
    bool judged = canaryStat.count() >= 2;
    bool regressed = false;
    {
        ScopedSpan span("rollout", "rollout.canary_judgment");
        if (judged) {
            WelchResult test = pairedTTest(canaryStat, 0.95);
            result.canaryGainPercent = canaryStat.mean() * 100.0;
            regressed = canaryStat.mean() < -policy.abortOnRegression &&
                        test.significant;
        }
        span.arg("judged", judged);
        span.arg("regressed", regressed);
    }
    if (!judged || regressed) {
        // Roll the canaries back.
        {
            ScopedSpan span("rollout", "rollout.rollback");
            span.arg("scope", "canary");
            MetricsRegistry::global().counter("fleet.rollbacks").add(1);
            for (size_t i = 0; i < servers_.size(); ++i) {
                if (isCanary[i]) {
                    reconfigure(static_cast<int>(i), before, now,
                                policy.rebootDowntimeSec);
                    isCanary[i] = 0;
                    isConverted[i] = 0;
                }
            }
            sampleWindow(now + policy.waveIntervalSec, sampleEverySec,
                         nullptr, nullptr);
        }
        result.aborted = true;
        if (!judged)
            warn("fleet rollout aborted: canary produced %llu paired "
                 "telemetry ticks, cannot judge",
                 static_cast<unsigned long long>(canaryStat.count()));
        else
            warn("fleet rollout aborted: canary regressed %.2f%%",
                 -result.canaryGainPercent);
        // Before blaming the configuration, ask whether a failure
        // domain explains the canary's window: a sick rack (the
        // canary's own, usually) is the domain's fault, and the
        // resume budget covers it.  A regression no control group
        // shares is the config's fault — roll back for good.
        bool doResume = false;
        if (policy.domainVerdicts && domains) {
            DomainVerdict verdict =
                triageDomains(canaryWinFrom, canaryWinTo);
            bool domainFault = !judged || !verdict.sickRacks.empty();
            if (!verdict.sickRacks.empty() &&
                static_cast<int>(verdict.sickRacks.size()) <
                    verdict.activeRacks) {
                for (int k : verdict.sickRacks)
                    excludeRack(k);
            } else if (static_cast<int>(verdict.sickRacks.size()) ==
                           verdict.activeRacks &&
                       verdict.activeRacks > 0 &&
                       !verdict.sickRacks.empty()) {
                inform("fleet rollout: all %d racks regressed — "
                       "environment shift, not excluding",
                       verdict.activeRacks);
            }
            result.configBlamed = judged && regressed && !domainFault;
            doResume = domainFault && resumesLeft > 0;
        } else {
            result.configBlamed = judged && regressed;
        }
        if (doResume) {
            --resumesLeft;
            ++result.resumes;
            result.aborted = false;
            result.configBlamed = false;
            MetricsRegistry::global().counter("fleet.resumes").add(1);
            ScopedSpan span("rollout", "rollout.resume");
            span.arg("attempt",
                     static_cast<std::uint64_t>(result.resumes));
            inform("fleet rollout resuming (attempt %d of %d): "
                   "domain fault during canary, re-baselining on %d "
                   "surviving servers",
                   result.resumes, policy.resumeAttempts,
                   fleetSize - result.serversExcluded);
            continue;  // next attempt: re-soak, re-canary
        }
        result.finishedAtSec = now;
        return result;
    }
    result.serversConverted = domains ? canariesConverted : canaries;
    // The canaries rejoin the control pool; wave health is judged on
    // the whole-fleet normalized metric from here on.
    std::fill(isCanary.begin(), isCanary.end(), 0);

    // Phase 2: waves over the remainder, each followed by a health
    // check of the load-normalized fleet telemetry against the
    // baseline soak.  A failed check rolls back *every* converted
    // server, canaries included.
    //
    // Wave order is the planner: naive converts in id order — which,
    // with contiguous rack placement, concentrates every wave inside
    // one blast radius — while the stratified planner round-robins
    // across racks and holds back a per-rack quorum of unconverted
    // control servers until the very end.
    std::vector<int> order;
    order.reserve(static_cast<size_t>(fleetSize));
    if (domains && policy.stratifyWaves) {
        std::vector<std::vector<int>> byRack(
            static_cast<size_t>(racks));
        for (int i = 0; i < fleetSize; ++i)
            if (!isConverted[static_cast<size_t>(i)])
                byRack[static_cast<size_t>(
                           servers_[static_cast<size_t>(i)].rack)]
                    .push_back(i);
        auto quorum = static_cast<size_t>(
            std::max(0, policy.domainQuorum));
        std::vector<std::vector<int>> head(static_cast<size_t>(racks)),
            tail(static_cast<size_t>(racks));
        for (size_t k = 0; k < byRack.size(); ++k) {
            size_t hold = std::min(byRack[k].size(), quorum);
            head[k].assign(byRack[k].begin(),
                           byRack[k].end() -
                               static_cast<std::ptrdiff_t>(hold));
            tail[k].assign(byRack[k].end() -
                               static_cast<std::ptrdiff_t>(hold),
                           byRack[k].end());
        }
        auto roundRobin = [&](std::vector<std::vector<int>> &lists) {
            for (size_t pos = 0;; ++pos) {
                bool any = false;
                for (auto &list : lists) {
                    if (pos < list.size()) {
                        order.push_back(list[pos]);
                        any = true;
                    }
                }
                if (!any)
                    break;
            }
        };
        roundRobin(head);
        roundRobin(tail);
    } else if (domains) {
        for (int i = 0; i < fleetSize; ++i)
            if (!isConverted[static_cast<size_t>(i)])
                order.push_back(i);
    } else {
        for (int i = canaries; i < fleetSize; ++i)
            order.push_back(i);
    }

    int waveSize = std::max<int>(
        1, static_cast<int>(std::lround(policy.waveFraction *
                                        static_cast<double>(fleetSize))));
    size_t nextPos = 0;
    int wavesConverted = 0;
    double lastWindowMean = baselineRef;
    bool waveAborted = false;
    while (nextPos < order.size()) {
        // Hold conversions while the fleet telemetry runs hot: a
        // surge window is the worst moment to shrink the control
        // pool, and the paused wave converts once the window passes.
        if (policy.surgePauseThreshold > 0.0 && baselineRef > 0.0) {
            int pauses = 0;
            while (lastWindowMean >
                       baselineRef *
                           (1.0 + policy.surgePauseThreshold) &&
                   pauses < policy.maxSurgePauses) {
                ++pauses;
                ++result.surgePauses;
                MetricsRegistry::global()
                    .counter("fleet.surge_pauses").add(1);
                traceInstant("rollout", "rollout.surge_pause");
                inform("fleet rollout: telemetry %.1f%% above "
                       "baseline, pausing conversions",
                       (lastWindowMean / baselineRef - 1.0) * 100.0);
                RunningStat pauseStat;
                sampleWindow(now + policy.waveIntervalSec,
                             sampleEverySec, &pauseStat, nullptr);
                if (pauseStat.count() >= 1)
                    lastWindowMean = pauseStat.mean();
                else
                    break;
            }
        }
        size_t endPos = std::min(nextPos + static_cast<size_t>(waveSize),
                                 order.size());
        RunningStat waveStat;
        {
            ScopedSpan span("rollout", "rollout.wave");
            span.arg("wave",
                     static_cast<std::uint64_t>(wavesConverted + 1));
            span.arg("servers",
                     static_cast<std::uint64_t>(endPos - nextPos));
            int waveConverted = 0;
            std::vector<int> waveRackCount(static_cast<size_t>(racks),
                                           0);
            // The per-domain conversion cap: a stratified wave never
            // converts more than half its batch inside one rack, even
            // when exclusions leave the surviving racks uneven.  The
            // surplus is deferred to the back of the plan and retried
            // in later waves with a fresh cap.
            const int rackCap = (domains && policy.stratifyWaves)
                                    ? std::max(1, waveSize / 2)
                                    : waveSize;
            for (size_t p = nextPos; p < endPos; ++p) {
                int i = order[p];
                auto rack = static_cast<size_t>(
                    servers_[static_cast<size_t>(i)].rack);
                if (waveRackCount[rack] >= rackCap) {
                    order.push_back(i);
                    continue;
                }
                if (convert(i, target)) {
                    ++result.serversConverted;
                    isConverted[static_cast<size_t>(i)] = 1;
                    ++waveConverted;
                    ++waveRackCount[rack];
                }
            }
            if (domains && waveConverted > 0) {
                int top = *std::max_element(waveRackCount.begin(),
                                            waveRackCount.end());
                result.maxWaveDomainShare = std::max(
                    result.maxWaveDomainShare,
                    static_cast<double>(top) / waveSize);
            }
            nextPos = endPos;
            ++wavesConverted;
            sampleWindow(now + policy.waveIntervalSec, sampleEverySec,
                         &waveStat, nullptr);
        }
        const double waveWinFrom = lastWinFrom, waveWinTo = lastWinTo;
        if (waveStat.count() >= 1)
            lastWindowMean = waveStat.mean();
        bool unhealthy;
        {
            ScopedSpan span("rollout", "rollout.health_check");
            span.arg("wave",
                     static_cast<std::uint64_t>(wavesConverted));
            unhealthy =
                baseline.count() >= 2 && waveStat.count() >= 1 &&
                waveStat.mean() <
                    baselineRef * (1.0 - policy.abortOnRegression);
            span.arg("healthy", !unhealthy);
        }
        if (unhealthy) {
            {
                ScopedSpan span("rollout", "rollout.rollback");
                span.arg("scope", "fleet");
                span.arg("wave",
                         static_cast<std::uint64_t>(wavesConverted));
                MetricsRegistry::global().counter("fleet.rollbacks")
                    .add(1);
                traceInstant("rollout", "rollout.rollback_event");
                for (size_t i = 0; i < servers_.size(); ++i) {
                    if (isConverted[i] && !servers_[i].excluded)
                        reconfigure(static_cast<int>(i), before, now,
                                    policy.rebootDowntimeSec);
                    isConverted[i] = 0;
                }
                result.wavesRolledBack += wavesConverted;
                result.rolledBack = true;
                result.aborted = true;
                // Cool-down: reverted reboots land and telemetry
                // settles before either giving up or re-baselining.
                sampleWindow(now + policy.waveIntervalSec,
                             sampleEverySec, nullptr, nullptr);
            }
            warn("fleet rollout rolled back: wave %d health check "
                 "%.1f%% below baseline",
                 wavesConverted,
                 (1.0 - waveStat.mean() / baselineRef) * 100.0);
            // Verdict: who gets the blame?  Without domain triage
            // the operator blames the config (and the resume budget
            // covers any rollback).  With triage, a failure no rack's
            // control group shares is the config's fault and never
            // resumes; a sick rack is excluded and the rollout
            // resumes; every rack sick means the environment moved —
            // re-baseline without excluding anything.
            bool doResume = false;
            if (policy.domainVerdicts && domains) {
                DomainVerdict verdict =
                    triageDomains(waveWinFrom, waveWinTo);
                if (verdict.sickRacks.empty()) {
                    result.configBlamed = true;
                    warn("fleet rollout: regression not visible in "
                         "any rack control group — config blamed, "
                         "not resuming");
                } else if (static_cast<int>(
                               verdict.sickRacks.size()) >=
                           verdict.activeRacks) {
                    inform("fleet rollout: all %d racks regressed — "
                           "environment shift, re-baselining",
                           verdict.activeRacks);
                    doResume = resumesLeft > 0;
                } else {
                    for (int k : verdict.sickRacks)
                        excludeRack(k);
                    doResume = resumesLeft > 0;
                }
            } else {
                doResume = resumesLeft > 0;
                result.configBlamed = !doResume;
            }
            if (doResume) {
                --resumesLeft;
                ++result.resumes;
                result.aborted = false;
                result.serversConverted = 0;
                finalWindow = RunningStat{};
                resuming = true;
                MetricsRegistry::global().counter("fleet.resumes")
                    .add(1);
                ScopedSpan span("rollout", "rollout.resume");
                span.arg("attempt",
                         static_cast<std::uint64_t>(result.resumes));
                inform("fleet rollout resuming (attempt %d of %d): "
                       "re-baselining on %d surviving servers",
                       result.resumes, policy.resumeAttempts,
                       fleetSize - result.serversExcluded);
                break;  // out of the wave loop, into the next attempt
            }
            waveAborted = true;
            break;
        }
        finalWindow = waveStat;
    }
    if (waveAborted) {
        result.finishedAtSec = now;
        return result;
    }
    if (resuming)
        continue;  // restart from the baseline soak

    // No waves ran (the canary was the whole fleet): take a dedicated
    // post-conversion window for the gain estimate.
    if (finalWindow.count() == 0)
        sampleWindow(now + policy.waveIntervalSec, sampleEverySec,
                     &finalWindow, nullptr);

    break;  // converted and healthy: leave the attempt loop
    }  // attempt loop

    result.completed = true;
    result.finishedAtSec = now;
    if (baseline.count() >= 1 && baselineRef > 0.0 &&
        finalWindow.count() >= 1)
        result.fleetGainPercent =
            (finalWindow.mean() / baselineRef - 1.0) * 100.0;
    inform("fleet rollout complete: %d servers, %+.2f%% fleet gain "
           "(telemetry)",
           result.serversConverted, result.fleetGainPercent);
    return result;
}

} // namespace softsku
