#include "sim/fleet.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/running_stat.hh"
#include "stats/students_t.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

/** Fault-decision substream for fleet operations: disjoint from the
 *  A/B measurement streams and the validation chunks. */
constexpr std::uint64_t kFleetFaultStream = 0xF1EE7FA170000001ULL;

} // namespace

bool
reconfigurationNeedsReboot(const KnobConfig &from, const KnobConfig &to)
{
    if (from.activeCores != to.activeCores)
        return true;
    if (from.shpCount != to.shpCount)
        return true;
    return false;
}

FleetSlice::FleetSlice(ProductionEnvironment &env, int servers,
                       const KnobConfig &initial)
    : env_(env), rng_(0xF1EE7)
{
    SOFTSKU_ASSERT(servers > 0);
    servers_.reserve(static_cast<size_t>(servers));
    for (int i = 0; i < servers; ++i) {
        FleetServer server;
        server.id = i;
        server.config = initial;
        servers_.push_back(server);
    }
}

int
FleetSlice::onlineServers(double nowSec) const
{
    int online = 0;
    for (const FleetServer &server : servers_)
        online += server.online(nowSec);
    return online;
}

double
FleetSlice::serverMips(const FleetServer &server, double load)
{
    // Per-server noise is independent; load is fleet-wide.  perfFactor
    // models silent hardware drift the truth cache knows nothing about
    // — only sampled telemetry can see it.
    return env_.trueMips(server.config) * server.perfFactor * load *
           rng_.logNormalMean(1.0, env_.noise().measurementSigma);
}

double
FleetSlice::fleetMips(double nowSec)
{
    double total = 0.0;
    double load = env_.effectiveLoad(nowSec);
    for (const FleetServer &server : servers_) {
        if (!server.online(nowSec))
            continue;
        total += serverMips(server, load);
    }
    return total;
}

void
FleetSlice::degradeServer(int index, double perfFactor)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    servers_[static_cast<size_t>(index)].perfFactor = perfFactor;
}

void
FleetSlice::scheduleDegradation(int index, double atSec, double perfFactor)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    pending_.push_back(PendingDegradation{index, atSec, perfFactor});
}

void
FleetSlice::sampleTo(OdsStore &ods, double nowSec)
{
    const std::string &name = env_.profile().name;
    ods.append("fleet." + name + ".mips", nowSec, fleetMips(nowSec));
    ods.append("fleet." + name + ".online", nowSec,
               static_cast<double>(onlineServers(nowSec)));
}

bool
FleetSlice::reconfigure(int index, const KnobConfig &config, double nowSec,
                        double rebootDowntimeSec)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    FleetServer &server = servers_[static_cast<size_t>(index)];
    bool reboot = reconfigurationNeedsReboot(server.config, config);
    server.config = config;
    if (reboot)
        server.offlineUntilSec = nowSec + rebootDowntimeSec;
    return reboot;
}

RolloutResult
FleetSlice::rollout(const KnobConfig &target, const RolloutPolicy &policy,
                    OdsStore &ods, double startSec, double sampleEverySec)
{
    // Rollouts are single-threaded, so phase spans nest naturally
    // under this root and their ordinals are deterministic.
    ScopedSpan rolloutSpan("rollout", "fleet.rollout", {kTraceRollout});
    rolloutSpan.arg("service", env_.profile().name);
    rolloutSpan.arg("servers",
                    static_cast<std::uint64_t>(servers_.size()));
    LogContext logCtx("fleet " + env_.profile().name);
    MetricsRegistry::global().counter("fleet.rollouts").add(1);

    RolloutResult result;
    double now = startSec;
    const int fleetSize = static_cast<int>(servers_.size());
    const KnobConfig before = servers_.front().config;
    const bool hostile = env_.faults().any();
    FaultInjector injector = env_.injectorForStream(kFleetFaultStream);

    const std::string &name = env_.profile().name;
    const std::string mipsSeries = "fleet." + name + ".mips";
    const std::string onlineSeries = "fleet." + name + ".online";

    std::vector<char> isCanary(servers_.size(), 0);

    // Land any degradations scheduled to happen by time t.
    auto applyPending = [&](double t) {
        for (size_t i = 0; i < pending_.size();) {
            if (pending_[i].atSec <= t) {
                servers_[static_cast<size_t>(pending_[i].index)]
                    .perfFactor = pending_[i].perfFactor;
                pending_[i] = pending_.back();
                pending_.pop_back();
            } else {
                ++i;
            }
        }
    };

    // Per-tick hostile hazards: crash/replacement and stuck-reboot
    // exclusion.  Benign plans draw nothing here.
    auto processFaults = [&](double t, double dtSec) {
        if (!hostile)
            return;
        for (FleetServer &server : servers_) {
            if (server.excluded)
                continue;
            if (t < server.offlineUntilSec) {
                if (server.offlineUntilSec - t > policy.rebootTimeoutSec) {
                    // The reboot is stuck beyond the operator's
                    // patience: pull the host from rotation.
                    server.excluded = true;
                    ++result.serversExcluded;
                    MetricsRegistry::global()
                        .counter("fleet.servers_excluded").add(1);
                    traceInstant("fault", "fleet.server_excluded");
                    warn("fleet: server %d stuck rebooting, excluded",
                         server.id);
                }
                continue;
            }
            if (injector.crash(dtSec)) {
                // Crash + replacement: the new host runs the same
                // config but not-quite-identical hardware (drift the
                // truth cache cannot see).
                ++result.serverCrashes;
                MetricsRegistry::global()
                    .counter("fleet.server_crashes").add(1);
                traceInstant("fault", "fleet.crash");
                traceCounter("fault", "fleet.crashes_total",
                             static_cast<double>(result.serverCrashes));
                server.perfFactor = injector.replacementPerfFactor();
                server.offlineUntilSec = t + policy.rebootDowntimeSec;
            }
        }
    };

    // One telemetry tick: a single noise draw per online server feeds
    // the fleet aggregate, the canary/control pairing, and the
    // load-normalized health metric — the same numbers an operator
    // reads back out of ODS.
    struct Tick
    {
        double canaryRatio = 0.0;
        bool paired = false;
        double normalized = 0.0;
        bool hasNormalized = false;
    };
    auto observe = [&](double t) {
        applyPending(t);
        double load = env_.effectiveLoad(t);
        double total = 0.0, canarySum = 0.0, controlSum = 0.0;
        int online = 0, canaryN = 0, controlN = 0;
        for (size_t i = 0; i < servers_.size(); ++i) {
            FleetServer &server = servers_[i];
            if (!server.online(t))
                continue;
            double mips = serverMips(server, load);
            total += mips;
            ++online;
            if (isCanary[i]) {
                canarySum += mips;
                ++canaryN;
            } else {
                controlSum += mips;
                ++controlN;
            }
        }
        ods.append(mipsSeries, t, total);
        ods.append(onlineSeries, t, static_cast<double>(online));
        Tick tick;
        // Detrend by the *known* diurnal curve only: an injected
        // surge is invisible to the operator's load model and shows
        // up as upside, never as a phantom regression.
        double diurnal = env_.loadFactor(t);
        if (online > 0 && diurnal > 0.0) {
            tick.normalized = total / (online * diurnal);
            tick.hasNormalized = true;
        }
        if (canaryN > 0 && controlN > 0) {
            // Canary mean over control mean at the same instant: the
            // common-mode load (diurnal, surges, code pushes) cancels
            // exactly, leaving the configuration effect plus noise.
            tick.canaryRatio = (canarySum / canaryN) /
                               (controlSum / controlN) - 1.0;
            tick.paired = true;
        }
        return tick;
    };

    auto sampleWindow = [&](double untilSec, double cadence,
                            RunningStat *normalized,
                            RunningStat *canary) {
        while (now < untilSec) {
            now += cadence;
            processFaults(now, cadence);
            Tick tick = observe(now);
            if (normalized && tick.hasNormalized)
                normalized->add(tick.normalized);
            if (canary && tick.paired)
                canary->add(tick.canaryRatio);
        }
    };

    // Push a config to one server, fighting apply failures and stuck
    // reboots; a server that defeats the retry budget is excluded.
    auto convert = [&](int index, const KnobConfig &config) {
        FleetServer &server = servers_[static_cast<size_t>(index)];
        if (server.excluded)
            return false;
        if (hostile) {
            int attempts = 1 + std::max(0, policy.applyRetries);
            bool applied = false;
            for (int a = 0; a < attempts && !applied; ++a) {
                if (injector.applyFails()) {
                    ++result.applyFailures;
                    MetricsRegistry::global()
                        .counter("fleet.apply_failures").add(1);
                    traceInstant("fault", "fleet.apply_failure");
                } else {
                    applied = true;
                }
            }
            if (!applied) {
                server.excluded = true;
                ++result.serversExcluded;
                MetricsRegistry::global()
                    .counter("fleet.servers_excluded").add(1);
                warn("fleet: server %d failed %d config applies, "
                     "excluded", server.id, attempts);
                return false;
            }
        }
        bool reboot =
            reconfigure(index, config, now, policy.rebootDowntimeSec);
        if (reboot && hostile && injector.rebootSticks()) {
            server.offlineUntilSec += injector.plan().stuckRebootExtraSec;
            ++result.stuckReboots;
            MetricsRegistry::global()
                .counter("fleet.stuck_reboots").add(1);
            traceInstant("fault", "fleet.stuck_reboot");
        }
        return true;
    };

    // Phases 0–2 run once per attempt: the first pass is the rollout
    // proper; each further pass is a resume after a wave rollback
    // (bounded by policy.resumeAttempts).  With resumeAttempts == 0
    // the loop body executes exactly once and draws exactly the
    // pre-resume sequence of telemetry and fault decisions.
    int resumesLeft = std::max(0, policy.resumeAttempts);
    RunningStat finalWindow;
    RunningStat baseline;
    double baselineRef = 0.0;
    for (;;) {
    bool resuming = false;

    // Phase 0: pre-rollout soak.  The load-normalized per-server mips
    // over this window is the reference every later health check —
    // and the final fleet-gain estimate — compares against.  A resume
    // re-soaks, so the reference reflects the surviving fleet
    // (exclusions, replacements, degradations) rather than the one
    // that existed before the rollback.
    baseline = RunningStat{};
    {
        ScopedSpan span("rollout", "rollout.baseline_soak");
        sampleWindow(now + policy.baselineSoakSec, sampleEverySec,
                     &baseline, nullptr);
        span.arg("samples", baseline.count());
    }
    baselineRef = baseline.mean();

    // Phase 1: canary — on a resume, re-canaried on whichever of the
    // canary servers survived (excluded hosts stay out).
    int canaries = std::min<int>(policy.canaryServers, fleetSize);
    RunningStat canaryStat;
    {
        ScopedSpan span("rollout", "rollout.canary");
        span.arg("servers", static_cast<std::uint64_t>(canaries));
        for (int i = 0; i < canaries; ++i) {
            if (convert(i, target))
                isCanary[static_cast<size_t>(i)] = 1;
        }
        sampleWindow(now + policy.canarySoakSec, policy.canarySampleSec,
                     nullptr, &canaryStat);
        span.arg("samples", canaryStat.count());
    }

    // Judge the canary purely on the paired ODS telemetry it produced:
    // per-tick canary-mean/control-mean ratios, t-tested.  The truth
    // cache is deliberately not consulted — a degraded canary *host*
    // must be caught even when the config itself is a winner.
    result.canarySamples = canaryStat.count();
    bool judged = canaryStat.count() >= 2;
    bool regressed = false;
    {
        ScopedSpan span("rollout", "rollout.canary_judgment");
        if (judged) {
            WelchResult test = pairedTTest(canaryStat, 0.95);
            result.canaryGainPercent = canaryStat.mean() * 100.0;
            regressed = canaryStat.mean() < -policy.abortOnRegression &&
                        test.significant;
        }
        span.arg("judged", judged);
        span.arg("regressed", regressed);
    }
    if (!judged || regressed) {
        // Roll the canaries back.
        ScopedSpan span("rollout", "rollout.rollback");
        span.arg("scope", "canary");
        MetricsRegistry::global().counter("fleet.rollbacks").add(1);
        for (int i = 0; i < canaries; ++i) {
            if (isCanary[static_cast<size_t>(i)]) {
                reconfigure(i, before, now, policy.rebootDowntimeSec);
                isCanary[static_cast<size_t>(i)] = 0;
            }
        }
        sampleWindow(now + policy.waveIntervalSec, sampleEverySec,
                     nullptr, nullptr);
        result.aborted = true;
        result.finishedAtSec = now;
        if (!judged)
            warn("fleet rollout aborted: canary produced %llu paired "
                 "telemetry ticks, cannot judge",
                 static_cast<unsigned long long>(canaryStat.count()));
        else
            warn("fleet rollout aborted: canary regressed %.2f%%",
                 -result.canaryGainPercent);
        return result;
    }
    result.serversConverted = canaries;
    // The canaries rejoin the control pool; wave health is judged on
    // the whole-fleet normalized metric from here on.
    std::fill(isCanary.begin(), isCanary.end(), 0);

    // Phase 2: waves over the remainder, each followed by a health
    // check of the load-normalized fleet telemetry against the
    // baseline soak.  A failed check rolls back *every* converted
    // server, canaries included.
    int waveSize = std::max<int>(
        1, static_cast<int>(std::lround(policy.waveFraction *
                                        static_cast<double>(fleetSize))));
    int next = canaries;
    int wavesConverted = 0;
    while (next < fleetSize) {
        int end = std::min<int>(next + waveSize, fleetSize);
        RunningStat waveStat;
        {
            ScopedSpan span("rollout", "rollout.wave");
            span.arg("wave",
                     static_cast<std::uint64_t>(wavesConverted + 1));
            span.arg("servers", static_cast<std::uint64_t>(end - next));
            for (int i = next; i < end; ++i) {
                if (convert(i, target))
                    ++result.serversConverted;
            }
            next = end;
            ++wavesConverted;
            sampleWindow(now + policy.waveIntervalSec, sampleEverySec,
                         &waveStat, nullptr);
        }
        bool unhealthy;
        {
            ScopedSpan span("rollout", "rollout.health_check");
            span.arg("wave",
                     static_cast<std::uint64_t>(wavesConverted));
            unhealthy =
                baseline.count() >= 2 && waveStat.count() >= 1 &&
                waveStat.mean() <
                    baselineRef * (1.0 - policy.abortOnRegression);
            span.arg("healthy", !unhealthy);
        }
        if (unhealthy) {
            {
                ScopedSpan span("rollout", "rollout.rollback");
                span.arg("scope", "fleet");
                span.arg("wave",
                         static_cast<std::uint64_t>(wavesConverted));
                MetricsRegistry::global().counter("fleet.rollbacks")
                    .add(1);
                traceInstant("rollout", "rollout.rollback_event");
                for (int i = 0; i < next; ++i) {
                    if (!servers_[static_cast<size_t>(i)].excluded)
                        reconfigure(i, before, now,
                                    policy.rebootDowntimeSec);
                }
                result.wavesRolledBack += wavesConverted;
                result.rolledBack = true;
                result.aborted = true;
                // Cool-down: reverted reboots land and telemetry
                // settles before either giving up or re-baselining.
                sampleWindow(now + policy.waveIntervalSec,
                             sampleEverySec, nullptr, nullptr);
            }
            warn("fleet rollout rolled back: wave %d health check "
                 "%.1f%% below baseline",
                 wavesConverted,
                 (1.0 - waveStat.mean() / baselineRef) * 100.0);
            if (resumesLeft > 0) {
                --resumesLeft;
                ++result.resumes;
                result.aborted = false;
                result.serversConverted = 0;
                finalWindow = RunningStat{};
                resuming = true;
                MetricsRegistry::global().counter("fleet.resumes")
                    .add(1);
                ScopedSpan span("rollout", "rollout.resume");
                span.arg("attempt",
                         static_cast<std::uint64_t>(result.resumes));
                inform("fleet rollout resuming (attempt %d of %d): "
                       "re-baselining on %d surviving servers",
                       result.resumes, policy.resumeAttempts,
                       fleetSize - result.serversExcluded);
                break;  // out of the wave loop, into the next attempt
            }
            result.finishedAtSec = now;
            return result;
        }
        finalWindow = waveStat;
    }
    if (resuming)
        continue;  // restart from the baseline soak

    // No waves ran (the canary was the whole fleet): take a dedicated
    // post-conversion window for the gain estimate.
    if (finalWindow.count() == 0)
        sampleWindow(now + policy.waveIntervalSec, sampleEverySec,
                     &finalWindow, nullptr);

    break;  // converted and healthy: leave the attempt loop
    }  // attempt loop

    result.completed = true;
    result.finishedAtSec = now;
    if (baseline.count() >= 1 && baselineRef > 0.0 &&
        finalWindow.count() >= 1)
        result.fleetGainPercent =
            (finalWindow.mean() / baselineRef - 1.0) * 100.0;
    inform("fleet rollout complete: %d servers, %+.2f%% fleet gain "
           "(telemetry)",
           result.serversConverted, result.fleetGainPercent);
    return result;
}

} // namespace softsku
