#include "sim/fleet.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

bool
reconfigurationNeedsReboot(const KnobConfig &from, const KnobConfig &to)
{
    if (from.activeCores != to.activeCores)
        return true;
    if (from.shpCount != to.shpCount)
        return true;
    return false;
}

FleetSlice::FleetSlice(ProductionEnvironment &env, int servers,
                       const KnobConfig &initial)
    : env_(env), rng_(0xF1EE7)
{
    SOFTSKU_ASSERT(servers > 0);
    servers_.reserve(static_cast<size_t>(servers));
    for (int i = 0; i < servers; ++i) {
        FleetServer server;
        server.id = i;
        server.config = initial;
        servers_.push_back(server);
    }
}

int
FleetSlice::onlineServers(double nowSec) const
{
    int online = 0;
    for (const FleetServer &server : servers_)
        online += server.online(nowSec);
    return online;
}

double
FleetSlice::fleetMips(double nowSec)
{
    double total = 0.0;
    double load = env_.loadFactor(nowSec);
    for (const FleetServer &server : servers_) {
        if (!server.online(nowSec))
            continue;
        // Per-server noise is independent; load is fleet-wide.
        total += env_.trueMips(server.config) * load *
                 rng_.logNormalMean(1.0, env_.noise().measurementSigma);
    }
    return total;
}

void
FleetSlice::sampleTo(OdsStore &ods, double nowSec)
{
    const std::string &name = env_.profile().name;
    ods.append("fleet." + name + ".mips", nowSec, fleetMips(nowSec));
    ods.append("fleet." + name + ".online", nowSec,
               static_cast<double>(onlineServers(nowSec)));
}

bool
FleetSlice::reconfigure(int index, const KnobConfig &config, double nowSec,
                        double rebootDowntimeSec)
{
    SOFTSKU_ASSERT(index >= 0 &&
                   index < static_cast<int>(servers_.size()));
    FleetServer &server = servers_[static_cast<size_t>(index)];
    bool reboot = reconfigurationNeedsReboot(server.config, config);
    server.config = config;
    if (reboot)
        server.offlineUntilSec = nowSec + rebootDowntimeSec;
    return reboot;
}

RolloutResult
FleetSlice::rollout(const KnobConfig &target, const RolloutPolicy &policy,
                    OdsStore &ods, double startSec, double sampleEverySec)
{
    RolloutResult result;
    double now = startSec;
    const KnobConfig before = servers_.front().config;
    double beforeMips = env_.trueMips(before);
    double targetMips = env_.trueMips(target);

    auto sampleUntil = [&](double untilSec) {
        while (now < untilSec) {
            now += sampleEverySec;
            sampleTo(ods, now);
        }
    };

    // Phase 1: canary.
    int canaries = std::min<int>(policy.canaryServers,
                                 static_cast<int>(servers_.size()));
    for (int i = 0; i < canaries; ++i)
        reconfigure(i, target, now, policy.rebootDowntimeSec);
    sampleUntil(now + policy.canarySoakSec);

    // Judge the canary on the cached ground truth (the per-server
    // telemetry rides on top of it); paired against the untouched rest.
    result.canaryGainPercent = (targetMips / beforeMips - 1.0) * 100.0;
    if (result.canaryGainPercent < -policy.abortOnRegression * 100.0) {
        // Roll the canaries back.
        for (int i = 0; i < canaries; ++i)
            reconfigure(i, before, now, policy.rebootDowntimeSec);
        sampleUntil(now + policy.waveIntervalSec);
        result.aborted = true;
        result.finishedAtSec = now;
        warn("fleet rollout aborted: canary regressed %.2f%%",
             -result.canaryGainPercent);
        return result;
    }
    result.serversConverted = canaries;

    // Phase 2: waves over the remainder.
    int waveSize = std::max<int>(
        1, static_cast<int>(std::lround(policy.waveFraction *
                                        static_cast<double>(
                                            servers_.size()))));
    int next = canaries;
    while (next < static_cast<int>(servers_.size())) {
        int end = std::min<int>(next + waveSize,
                                static_cast<int>(servers_.size()));
        for (int i = next; i < end; ++i)
            reconfigure(i, target, now, policy.rebootDowntimeSec);
        result.serversConverted += end - next;
        next = end;
        sampleUntil(now + policy.waveIntervalSec);
    }

    result.completed = true;
    result.finishedAtSec = now;
    result.fleetGainPercent = (targetMips / beforeMips - 1.0) * 100.0;
    inform("fleet rollout complete: %d servers, %+.2f%% fleet gain",
           result.serversConverted, result.fleetGainPercent);
    return result;
}

} // namespace softsku
