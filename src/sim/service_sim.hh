/**
 * @file
 * The trace-driven microservice simulator.
 *
 * One run plays a synthetic instruction/data stream (from the workload
 * generators) through a Machine's structural models — I/D caches with
 * CDP, two-level TLBs fed by the page mapper, BTB, prefetchers, shared
 * LLC with multi-core interference injection — and then assembles the
 * observed event counts into cycles with a TMAM-style cost model and a
 * DRAM bandwidth/latency fixed point.  Everything the characterization
 * figures and μSKU's A/B metric need comes out in one CounterSet.
 *
 * Multi-core sharing: one representative hardware thread is simulated;
 * for every LLC access it performs, the other active cores perform one
 * each (they run the same service at the same load).  Foreign *code*
 * accesses reuse the shared text addresses; foreign *data* accesses are
 * the same stream displaced into per-core address spaces.  LLC capacity
 * pressure, CAT/CDP interactions, and the core-count scaling bend
 * (Fig 15) all follow from this.
 */

#ifndef SOFTSKU_SIM_SERVICE_SIM_HH
#define SOFTSKU_SIM_SERVICE_SIM_HH

#include <cstdint>

#include "arch/platform.hh"
#include "core/knobs.hh"
#include "sim/counters.hh"
#include "workload/profile.hh"

namespace softsku {

/**
 * Which simulator core executes a batch of configurations.  Scalar runs
 * each configuration through simulateService() one at a time; Batched
 * runs lane groups through BatchedSimCore with the SIMD RNG bank
 * feeding every lane its exact scalar substream.  The two produce
 * bit-identical CounterSets by construction (pinned by the SimBatch
 * golden tests), so Batched is the default.
 */
enum class SimCoreKind
{
    Scalar,
    Batched,
};

/** Window sizing and seeding for one simulation. */
struct SimOptions
{
    /** Instructions run before stats collection starts (cache warmup). */
    std::uint64_t warmupInstructions = 1'000'000;
    /** Instructions measured. */
    std::uint64_t measureInstructions = 1'500'000;
    std::uint64_t seed = 1;
    /**
     * CAT capacity limit: restrict LLC allocation (code and data) to
     * the low N ways; 0 leaves all ways enabled.  Used by the Fig 10
     * way-sensitivity sweep.
     */
    int catWays = 0;
    /** Ablation: run the shared LLC with strict LRU instead of SRRIP. */
    bool llcLru = false;
    /** Ablation: disable foreign-core LLC interference injection. */
    bool disableInterference = false;
    /** Core used for batch evaluation (single simulations stay scalar). */
    SimCoreKind core = SimCoreKind::Batched;
};

/**
 * Simulate @p profile on @p platform configured with @p knobs.
 * Deterministic for fixed options.
 */
CounterSet simulateService(const WorkloadProfile &profile,
                           const PlatformSpec &platform,
                           const KnobConfig &knobs,
                           const SimOptions &options = SimOptions{});

} // namespace softsku

#endif // SOFTSKU_SIM_SERVICE_SIM_HH
