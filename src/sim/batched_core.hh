/**
 * @file
 * The batched simulator core: W independent simulations advanced
 * together through the shared SoA hot structures.
 *
 * Structure of the batch: each lane is a full SimStateT running over
 * its own Machine, but every lane's workload-stream draws come from one
 * LaneStreamPool whose SimdXoshiroBank steps all W xoshiro256**
 * generators with one vector operation per state word.  Lanes execute
 * chunk-interleaved (a few thousand instructions per lane per pass) so
 * the pool's ring stays small and — in the common case where every
 * lane shares a profile and seed (a knob sweep) — all lanes consume
 * draws in lockstep, keeping the pool on its full-width vector fill
 * fast path.  The final TMAM/DRAM fixed point is solved for all lanes
 * together by rollupLanes() (iteration-outer / lane-inner).
 *
 * Equivalence: lane w consumes exactly the stream `Rng(seed ^ 0xF00D)`
 * produces, through transforms copied verbatim from Rng, over the same
 * simulation code simulateService() runs (sim_core.hh is shared).  Its
 * CounterSet is therefore bit-identical to a scalar solo run — pinned
 * by the SimBatch golden tests, which is what lets SimCoreKind::Batched
 * be the default.
 */

#ifndef SOFTSKU_SIM_BATCHED_CORE_HH
#define SOFTSKU_SIM_BATCHED_CORE_HH

#include <cstddef>
#include <span>
#include <vector>

#include "arch/platform.hh"
#include "core/knobs.hh"
#include "sim/counters.hh"
#include "sim/service_sim.hh"
#include "workload/profile.hh"

namespace softsku {

class MetricsRegistry;

/** One simulation request in a batch. */
struct SimJob
{
    const WorkloadProfile *profile = nullptr;
    const PlatformSpec *platform = nullptr;
    KnobConfig knobs;
    SimOptions options;
};

/**
 * Run a batch of simulations through lane groups of up to
 * @p laneWidth (0 = kSimdWidth).  Results are positional: result i is
 * what `simulateService(*jobs[i].profile, *jobs[i].platform,
 * jobs[i].knobs, jobs[i].options)` returns, bit for bit.
 *
 * @p metrics, when non-null, receives the Operational-scope
 * `sim.instructions_per_sec` and `sim.batch_lane_occupancy` gauges
 * (wall-clock facts — never part of the report body).
 */
std::vector<CounterSet> runSimBatch(std::span<const SimJob> jobs,
                                    std::size_t laneWidth = 0,
                                    MetricsRegistry *metrics = nullptr);

} // namespace softsku

#endif // SOFTSKU_SIM_BATCHED_CORE_HH
