/**
 * @file
 * The simulator's hot core, extracted from service_sim.cc and templated
 * over the workload-stream RNG so the scalar path (`Rng`) and the
 * batched path (`BufferedRng` lanes fed by the SIMD bank) share one
 * body of code.  Equivalence between the two is therefore structural:
 * a batched lane executes the same instructions over the same machine
 * state consuming the same raw draw stream, so its CounterSet is
 * bit-identical to a scalar solo run — the property the SimBatch golden
 * tests pin.
 *
 * Chunked execution: BatchedSimCore interleaves lanes a few thousand
 * instructions at a time so one shared draw pool can serve every lane
 * without buffering whole substreams.  The JIT-churn cadence counter
 * is therefore SimStateT member state (it survives runChunk
 * boundaries) and resets in beginPhase(), which is exactly the
 * lifetime the old run()-local variable had: once per warmup pass,
 * once per measurement pass.
 *
 * This is an internal header — the public simulation APIs stay
 * sim/service_sim.hh and sim/batched_core.hh.
 */

#ifndef SOFTSKU_SIM_SIM_CORE_HH
#define SOFTSKU_SIM_SIM_CORE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "cache/cdp.hh"
#include "os/hugepage.hh"
#include "sim/btb.hh"
#include "sim/counters.hh"
#include "sim/machine.hh"
#include "sim/service_sim.hh"
#include "stats/distributions.hh"
#include "stats/rng.hh"
#include "workload/address_space.hh"
#include "workload/codegen.hh"
#include "workload/datagen.hh"

namespace softsku::simcore {

constexpr std::uint64_t kLineBytes = 64;
/** Synthetic kernel text region (switch handlers, syscall paths). */
constexpr std::uint64_t kKernelTextBase = 0xFFFF'8000'0000ull;
constexpr std::uint64_t kKernelTextLines = 4096;   // 256 KiB
/** Lines of kernel code touched per context switch. */
constexpr int kKernelBurstLines = 48;
/** STLB hit cost (cycles). */
constexpr double kStlbHitCycles = 8.0;
/** Exposure of page walks: instruction-side walks serialize fetch;
 * data-side walks overlap with other work under the OoO window. */
constexpr double kItlbWalkExposure = 0.70;
constexpr double kDtlbWalkExposure = 0.30;
/** Back-end CPI penalty per GiB of pinned-but-unused SHP memory
 * (page-cache displacement raises effective data-miss cost). */
constexpr double kShpWastePenaltyPerGiB = 0.012;
/** Exposure of instruction-side stalls by level: the decoupled
 * front end hides part of an L2 hit, less of an LLC hit, and almost
 * none of a DRAM access. */
constexpr double kCodeExposureL2 = 0.35;
constexpr double kCodeExposureLlc = 0.70;
constexpr double kCodeExposureMem = 0.80;
/**
 * Ring sizes for the foreign-core interference samplers.  The code ring
 * is large: every thread on the socket executes the same binary, so
 * foreign code accesses re-touch the service's whole recent code
 * working set, keeping it LLC-resident exactly as sharing does on real
 * hardware.  The data ring is small: only recently shared objects are
 * re-touched by other cores.
 */
constexpr size_t kCodeRingSize = 65536;
constexpr size_t kDataRingSize = 2048;
/** JIT-churn application block (instructions). */
constexpr std::uint64_t kChurnBlock = 65536;

/** A ring buffer of recent LLC line addresses. */
class LineRing
{
  public:
    explicit LineRing(size_t capacity) : capacity_(capacity) {}

    void
    push(std::uint64_t line)
    {
        if (lines_.size() < capacity_) {
            lines_.push_back(line);
        } else {
            lines_[cursor_] = line;
            // Conditional wrap instead of a modulo per push: the ring
            // is hit on every LLC access, and the divide was visible
            // in the profile.
            if (++cursor_ == capacity_)
                cursor_ = 0;
        }
    }

    bool empty() const { return lines_.empty(); }

    std::uint64_t
    sample(Rng &rng) const
    {
        return lines_[rng.below(lines_.size())];
    }

  private:
    size_t capacity_;
    std::vector<std::uint64_t> lines_;
    size_t cursor_ = 0;
};

/**
 * All mutable state of one simulation, shared by warmup and measure.
 * @tparam WorkRng the workload-stream generator: `Rng` on the scalar
 *         path, `BufferedRng` on a batched lane.  Only the main
 *         workload stream is templated; the disturbance, foreign-core,
 *         and generator-internal streams stay scalar (their draw
 *         volume is a small fraction of the workload stream's).
 */
template <class WorkRng>
struct SimStateT
{
    const WorkloadProfile &profile;
    Machine machine;
    AddressSpace space;
    PageMapper pages;
    CodeGenerator codegen;
    DataGenerator datagen;
    Btb btb;
    WorkRng rng;
    /** Dedicated stream for cache/TLB disturbance so machine-state
     *  dependent draw counts never decorrelate the workload stream. */
    Rng disturbRng;
    DiscreteDistribution mixDist;
    std::vector<Prefetcher *> l1Pf;
    std::vector<Prefetcher *> l2Pf;

    const RegionMapping *codeMapping = nullptr;
    std::vector<const RegionMapping *> dataMappings;

    // Foreign-core interference.
    LineRing codeRing{kCodeRingSize};
    LineRing dataRing{kDataRingSize};
    Rng foreignRng;
    std::uint64_t llcCodeSeen = 1;
    std::uint64_t llcDataSeen = 1;
    int foreignCores = 0;

    // Measured-window accumulators (cleared after warmup).
    std::uint64_t instructions = 0;
    std::uint64_t classCounts[5] = {0, 0, 0, 0, 0};
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t itlbStlbHits = 0, itlbWalks = 0;
    std::uint64_t dtlbStlbHits = 0, dtlbWalks = 0;
    std::uint64_t dtlbLoadMisses = 0, dtlbStoreMisses = 0;
    std::uint64_t dramDemandFills = 0, dramPrefetchFills = 0;
    std::uint64_t contextSwitches = 0;
    double wLlcDataHit = 0.0;    //!< Σ 1/mlp over L2-miss LLC-hit data
    double wMemData = 0.0;       //!< Σ 1/mlp over LLC-miss data
    std::uint64_t l2DataHitCount = 0;

    std::uint64_t fetchLine = ~0ull;
    std::uint64_t switchCountdown = 0;
    std::uint64_t switchInterval = 0;
    std::uint64_t kernelCursor = 0;
    /** Instructions since the last JIT-churn application; member state
     *  (not run()-local) so chunked lane execution keeps the cadence. */
    std::uint64_t churnBlock = 0;

    std::vector<std::uint64_t> pfCandidates;

    SimStateT(const WorkloadProfile &prof, const PlatformSpec &platform,
              const KnobConfig &knobs, std::uint64_t seed,
              const SimOptions &options, WorkRng workRng)
        : profile(prof),
          machine(platform, knobs,
                  options.llcLru ? ReplPolicy::Lru : ReplPolicy::Srrip),
          space(layoutAddressSpace(prof)),
          pages(space.pageRegions,
                HugePagePolicy{machine.knobs().thp,
                               prof.usesShp ? machine.knobs().shpCount : 0}),
          codegen(prof, space.codeBase, seed ^ 0xC0DE),
          datagen(prof, space, seed ^ 0xDA7A),
          btb(platform.btbEntries), rng(workRng),
          disturbRng(seed ^ 0xD157),
          mixDist({prof.mix.branch, prof.mix.floating, prof.mix.arith,
                   prof.mix.load, prof.mix.store}),
          foreignRng(seed ^ 0xF0E1)
    {
        l1Pf = machine.l1Prefetchers();
        l2Pf = machine.l2Prefetchers();
        codeMapping = &pages.mappings()[0];
        for (size_t i = 1; i < pages.mappings().size(); ++i)
            dataMappings.push_back(&pages.mappings()[i]);
        foreignCores =
            options.disableInterference ? 0 : machine.activeCores() - 1;

        // Switch interval derives from the profile's switch rate at
        // the platform's nominal frequency.  Using the nominal (not the
        // configured) frequency keeps the generated event stream
        // identical across knob configurations, so A/B deltas reflect
        // the hardware change rather than stream divergence.
        double ips = platform.coreFreqMaxGHz * 1e9;
        switchInterval =
            prof.contextSwitch.instructionsBetweenSwitches(ips);
        switchCountdown = switchInterval;
        pfCandidates.reserve(8);
    }

    /**
     * Populate steady-state cache/TLB contents before the measured
     * window.  A production server has been serving traffic for hours:
     * its hot code and hot data ranks are already resident at every
     * level.  A few million warmup instructions cannot reproduce that
     * for multi-megabyte mid-hot working sets, so the prewarm installs
     * them directly, coldest rank first (so the hottest end up youngest
     * in the replacement state), and seeds the interference rings.
     */
    void
    prewarm()
    {
        const std::uint64_t linesPerFunc =
            std::max<std::uint64_t>(1, profile.avgFunctionBytes / 64);
        std::uint64_t hotFuncs = profile.codeHotFunctions > 0
                                     ? std::min(profile.codeHotFunctions,
                                                codegen.functionCount())
                                     : codegen.functionCount();
        hotFuncs = std::min<std::uint64_t>(hotFuncs, 60000);
        for (std::uint64_t r = hotFuncs; r-- > 0;) {
            std::uint64_t entry = codegen.functionAddress(r);
            for (std::uint64_t l = 0; l < linesPerFunc; ++l) {
                std::uint64_t line = entry / kLineBytes + l;
                machine.llc().touch(line, AccessType::Code);
                codeRing.push(line);
                if (r < 1500)
                    machine.l2().touch(line, AccessType::Code);
                if (r < 60)
                    machine.l1i().touch(line, AccessType::Code);
            }
            if (r < 256) {
                std::uint64_t pageBytes =
                    codeMapping->isHugeAddress(entry) ? kPage2m : kPage4k;
                machine.itlb().access(entry, pageBytes);
            }
        }

        for (size_t i = 0; i < profile.dataRegions.size(); ++i) {
            const DataRegionSpec &spec = profile.dataRegions[i];
            if (spec.pattern != DataPattern::Random &&
                spec.pattern != DataPattern::PointerChase) {
                continue;
            }
            std::uint64_t base = space.dataBases[i];
            std::uint64_t hotLines = spec.hotBytes > 0
                                         ? spec.hotBytes / kLineBytes
                                         : spec.sizeBytes / kLineBytes;
            std::uint64_t lines =
                std::min<std::uint64_t>(hotLines, 320000);
            for (std::uint64_t r = lines; r-- > 0;) {
                std::uint64_t line = base / kLineBytes + r;
                machine.llc().touch(line, AccessType::Data);
                if (r < 6000)
                    machine.l2().touch(line, AccessType::Data);
                if (r < 400)
                    machine.l1d().touch(line, AccessType::Data);
                if ((r & 1023) == 0)
                    dataRing.push(line);
                if (r < 4000 && (r & 63) == 0) {
                    std::uint64_t addr = base + r * kLineBytes;
                    const RegionMapping *m = dataMappings[i];
                    machine.dtlb().access(
                        addr, m->isHugeAddress(addr) ? kPage2m : kPage4k);
                }
            }
        }

        // Clear any stats the prewarm TLB accesses recorded.
        machine.itlb().l1().stats().clear();
        machine.itlb().stlb().stats().clear();
        machine.dtlb().l1().stats().clear();
        machine.dtlb().stlb().stats().clear();
    }

    /** LLC access with foreign-core interference injected around it. */
    bool
    llcAccess(std::uint64_t line, AccessType type, bool isPrefetch)
    {
        bool hit = machine.llc().access(line, type, isPrefetch);
        if (type == AccessType::Code) {
            codeRing.push(line);
            ++llcCodeSeen;
        } else {
            dataRing.push(line);
            ++llcDataSeen;
        }

        // Every other active core makes roughly one LLC access per one
        // of ours (same binary, same load).  Code lines are shared and
        // are continuously re-touched by the service's own threads, so
        // the re-warm rate saturates at a handful of touches; private
        // data pressure, in contrast, scales with every active core.
        double codeShare =
            static_cast<double>(llcCodeSeen) /
            static_cast<double>(llcCodeSeen + llcDataSeen);
        int codeTouches = 10;
        for (int c = 0; c < codeTouches; ++c) {
            if (!codeRing.empty() && foreignRng.chance(codeShare))
                machine.llc().touch(codeRing.sample(foreignRng),
                                    AccessType::Code);
        }
        for (int c = 0; c < foreignCores; ++c) {
            bool code = foreignRng.chance(codeShare);
            if (code) {
                // Covered by the saturating re-warm loop above.
            } else if (!dataRing.empty()) {
                // Shared data (common objects, read-mostly tables) is
                // re-touched at the same addresses by every core and so
                // stays LLC-resident; private per-request data from
                // other cores is displaced into their own heaps and is
                // pure capacity pressure.
                std::uint64_t salt =
                    foreignRng.chance(profile.sharedDataFraction)
                        ? 0
                        : (static_cast<std::uint64_t>(c) + 1) << 30;
                machine.llc().touch(dataRing.sample(foreignRng) ^ salt,
                                    AccessType::Data);
            }
        }
        return hit;
    }

    /** Demand data path below L1-D: L2 → LLC → DRAM. */
    void
    dataMissBelowL1(std::uint64_t line, std::uint64_t pc, double mlp,
                    bool collect)
    {
        bool l2Hit = machine.l2().access(line, AccessType::Data);
        for (Prefetcher *pf : l2Pf) {
            pfCandidates.clear();
            pf->observe(line, pc, !l2Hit, pfCandidates);
            for (std::uint64_t target : pfCandidates)
                playL2Prefetch(target, AccessType::Data);
        }
        if (l2Hit) {
            if (collect)
                ++l2DataHitCount;
            return;
        }
        bool llcHit = llcAccess(line, AccessType::Data, false);
        if (collect) {
            if (llcHit) {
                wLlcDataHit += 1.0 / mlp;
            } else {
                wMemData += 1.0 / mlp;
                ++dramDemandFills;
            }
        }
    }

    /** Install a prefetch at L2, fetching through LLC/DRAM as needed. */
    void
    playL2Prefetch(std::uint64_t line, AccessType type)
    {
        bool wasPresent = machine.l2().access(line, type, true);
        if (wasPresent)
            return;
        bool llcHit = llcAccess(line, type, true);
        if (!llcHit)
            ++dramPrefetchFills;
    }

    /** Install a prefetch at L1-D, fetching through the hierarchy. */
    void
    playL1Prefetch(std::uint64_t line)
    {
        bool wasPresent = machine.l1d().access(line, AccessType::Data, true);
        if (wasPresent)
            return;
        bool l2Hit = machine.l2().access(line, AccessType::Data, true);
        if (l2Hit)
            return;
        bool llcHit = llcAccess(line, AccessType::Data, true);
        if (!llcHit)
            ++dramPrefetchFills;
    }

    /** Instruction-side access for the line containing @p pc. */
    void
    fetchAccess(std::uint64_t pc, bool collect)
    {
        std::uint64_t pageBytes =
            codeMapping->isHugeAddress(pc) ? kPage2m : kPage4k;
        auto outcome = machine.itlb().access(pc, pageBytes);
        if (collect) {
            if (outcome == TwoLevelTlb::Outcome::StlbHit)
                ++itlbStlbHits;
            else if (outcome == TwoLevelTlb::Outcome::PageWalk)
                ++itlbWalks;
        }

        std::uint64_t line = pc / kLineBytes;
        if (machine.l1i().access(line, AccessType::Code))
            return;
        bool l2Hit = machine.l2().access(line, AccessType::Code);
        for (Prefetcher *pf : l2Pf) {
            pfCandidates.clear();
            pf->observe(line, pc, !l2Hit, pfCandidates);
            for (std::uint64_t target : pfCandidates)
                playL2Prefetch(target, AccessType::Code);
        }
        if (l2Hit)
            return;
        bool llcHit = llcAccess(line, AccessType::Code, false);
        if (!llcHit && collect)
            ++dramDemandFills;
    }

    /** Kernel code burst modelling the switch path's instruction feed. */
    void
    kernelBurst()
    {
        for (int i = 0; i < kKernelBurstLines; ++i) {
            std::uint64_t line =
                (kKernelTextBase / kLineBytes) +
                (kernelCursor + static_cast<std::uint64_t>(i)) %
                    kKernelTextLines;
            if (!machine.l1i().touch(line, AccessType::Code)) {
                if (!machine.l2().touch(line, AccessType::Code))
                    machine.llc().touch(line, AccessType::Code);
            }
        }
        kernelCursor = (kernelCursor + kKernelBurstLines) % kKernelTextLines;
    }

    /** Context-switch event: pollution plus thread migration. */
    void
    contextSwitch(bool collect)
    {
        if (collect)
            ++contextSwitches;
        bool crossPool = codegen.switchThread();
        datagen.switchThread();
        machine.l1i().disturb(profile.switchDisturbance, disturbRng);
        machine.l1d().disturb(profile.switchDisturbance, disturbRng);
        machine.itlb().disturb(profile.switchDisturbance * 0.3, disturbRng);
        machine.dtlb().disturb(profile.switchDisturbance * 0.3, disturbRng);
        // A cross-pool switch displaces roughly half the BTB's useful
        // history rather than wiping it.
        if (crossPool && disturbRng.chance(0.5))
            btb.flush();
        kernelBurst();
        fetchLine = ~0ull;
    }

    /**
     * Start a warmup or measurement phase: the churn cadence restarts
     * exactly as the old run()-local counter did at each run() call.
     */
    void beginPhase() { churnBlock = 0; }

    /**
     * Run @p count instructions of the current phase; @p collect
     * enables stat recording.  Callable repeatedly — the batched core
     * interleaves lanes chunk by chunk through here.
     */
    void
    runChunk(std::uint64_t count, bool collect)
    {
        const double mispredBtbMiss = 0.45;

        for (std::uint64_t i = 0; i < count; ++i) {
            // Fetch side: access the I-path when crossing a line.
            std::uint64_t pc = codegen.pc();
            std::uint64_t line = pc / kLineBytes;
            if (line != fetchLine) {
                fetchLine = line;
                fetchAccess(pc, collect);
            }

            int cls = static_cast<int>(mixDist.sample(rng));
            if (collect) {
                ++instructions;
                ++classCounts[cls];
            }

            switch (static_cast<InsnClass>(cls)) {
              case InsnClass::Branch: {
                if (collect)
                    ++branches;
                bool known = btb.access(pc);
                bool taken = codegen.executeBranch();
                double mispredP = profile.branchMispredictRate;
                if (!known) {
                    if (collect)
                        ++btbMisses;
                    if (taken)
                        mispredP = mispredBtbMiss;
                }
                if (rng.chance(mispredP)) {
                    if (collect)
                        ++mispredicts;
                    // Redirect refetches the (possibly same) line.
                    fetchLine = ~0ull;
                }
                break;
              }

              case InsnClass::Load:
              case InsnClass::Store: {
                DataAccess access = datagen.next();
                const RegionMapping *mapping =
                    dataMappings[access.regionIndex];
                std::uint64_t pageBytes =
                    mapping->isHugeAddress(access.addr) ? kPage2m
                                                        : kPage4k;
                auto outcome = machine.dtlb().access(access.addr, pageBytes);
                if (collect &&
                    outcome != TwoLevelTlb::Outcome::L1Hit) {
                    // Fig 11's load/store split is at first-level
                    // miss granularity.
                    if (cls == static_cast<int>(InsnClass::Load))
                        ++dtlbLoadMisses;
                    else
                        ++dtlbStoreMisses;
                    if (outcome == TwoLevelTlb::Outcome::StlbHit)
                        ++dtlbStlbHits;
                    else
                        ++dtlbWalks;
                }

                std::uint64_t dline = access.addr / kLineBytes;
                std::uint64_t pfPc =
                    access.streamPc != 0 ? access.streamPc : pc;
                bool l1Hit = machine.l1d().access(dline, AccessType::Data);
                for (Prefetcher *pf : l1Pf) {
                    pfCandidates.clear();
                    pf->observe(dline, pfPc, !l1Hit, pfCandidates);
                    for (std::uint64_t target : pfCandidates)
                        playL1Prefetch(target);
                }
                if (!l1Hit)
                    dataMissBelowL1(dline, pfPc, access.mlp, collect);
                codegen.advance();
                break;
              }

              case InsnClass::Float:
              case InsnClass::Arith:
                codegen.advance();
                break;
            }

            // Context switches and JIT churn on their own cadences.
            if (switchInterval > 0 && --switchCountdown == 0) {
                switchCountdown = switchInterval;
                contextSwitch(collect);
            }
            if (++churnBlock == kChurnBlock) {
                codegen.applyChurn(churnBlock);
                churnBlock = 0;
            }
        }
    }

    /** One whole phase in a single call (the scalar path). */
    void
    run(std::uint64_t count, bool collect)
    {
        beginPhase();
        runChunk(count, collect);
    }

    /** Zero measurement accumulators after the warmup pass. */
    void
    clearStats()
    {
        machine.l1i().stats().clear();
        machine.l1d().stats().clear();
        machine.l2().stats().clear();
        machine.llc().stats().clear();
        machine.itlb().l1().stats().clear();
        machine.itlb().stlb().stats().clear();
        machine.dtlb().l1().stats().clear();
        machine.dtlb().stlb().stats().clear();
        instructions = 0;
        std::fill(std::begin(classCounts), std::end(classCounts), 0ull);
        branches = mispredicts = btbMisses = 0;
        itlbStlbHits = itlbWalks = 0;
        dtlbStlbHits = dtlbWalks = 0;
        dtlbLoadMisses = dtlbStoreMisses = 0;
        dramDemandFills = dramPrefetchFills = 0;
        contextSwitches = 0;
        wLlcDataHit = wMemData = 0.0;
        l2DataHitCount = 0;
    }
};

/**
 * One lane's TMAM/DRAM fixed-point roll-up: event-count inputs gathered
 * from a finished SimStateT, the damped iteration state, and the solved
 * outputs.  rollupLanes() advances every lane through the 12 damped
 * iterations together (iteration-outer, lane-inner), which keeps each
 * lane's floating-point operation sequence identical to the scalar
 * loop's — bit-identical per lane, vectorizable across lanes.
 */
struct RollupLane
{
    // Inputs (gathered once).
    const Machine *machine = nullptr;
    const WorkloadProfile *profile = nullptr;
    const PlatformSpec *platform = nullptr;
    double n = 0.0;
    double l1iMisses = 0.0;
    double l2CodeMisses = 0.0;
    double llcCodeMisses = 0.0;
    double l2CodeHits = 0.0;
    double llcCodeHits = 0.0;
    double mispredicts = 0.0;
    double l2DataHitCount = 0.0;
    double wLlcDataHit = 0.0;
    double wMemData = 0.0;
    double itlbStlbHits = 0.0;
    double itlbWalks = 0.0;
    double dtlbStlbHits = 0.0;
    double dtlbWalks = 0.0;
    double shpWastePenalty = 0.0;
    double totalFills = 0.0;
    double bytesPerFill = 0.0;
    double hugeFrac = 0.0;
    double ghz = 0.0;
    double llcLatNs = 0.0;
    double walkNs = 0.0;

    // Fixed-point state (seeded with the unloaded latency).
    double memLatencyNs = 0.0;

    // Outputs.
    PipelineCosts costs;
    MemoryOperatingPoint op;
    double threadIpc = 1.0;
};

/**
 * Solve every lane's operating point: 12 damped fixed-point iterations,
 * iteration-outer / lane-inner.  Defined in service_sim.cc.
 */
void rollupLanes(std::span<RollupLane> lanes);

/** Pull one lane's roll-up inputs out of a finished simulation. */
template <class WorkRng>
RollupLane
gatherRollup(SimStateT<WorkRng> &sim, const WorkloadProfile &profile,
             const PlatformSpec &platform)
{
    RollupLane lane;
    lane.machine = &sim.machine;
    lane.profile = &profile;
    lane.platform = &platform;
    lane.ghz = sim.machine.coreFreqGHz();
    lane.n = static_cast<double>(sim.instructions);

    lane.l1iMisses =
        static_cast<double>(sim.machine.l1i().stats().misses[0]);
    lane.l2CodeMisses =
        static_cast<double>(sim.machine.l2().stats().misses[0]);
    lane.llcCodeMisses =
        static_cast<double>(sim.machine.llc().stats().misses[0]);
    lane.l2CodeHits = std::max(0.0, lane.l1iMisses - lane.l2CodeMisses);
    lane.llcCodeHits =
        std::max(0.0, lane.l2CodeMisses - lane.llcCodeMisses);

    lane.mispredicts = static_cast<double>(sim.mispredicts);
    lane.l2DataHitCount = static_cast<double>(sim.l2DataHitCount);
    lane.wLlcDataHit = sim.wLlcDataHit;
    lane.wMemData = sim.wMemData;
    lane.itlbStlbHits = static_cast<double>(sim.itlbStlbHits);
    lane.itlbWalks = static_cast<double>(sim.itlbWalks);
    lane.dtlbStlbHits = static_cast<double>(sim.dtlbStlbHits);
    lane.dtlbWalks = static_cast<double>(sim.dtlbWalks);

    lane.memLatencyNs = sim.machine.dram().unloadedLatencyNs();
    lane.llcLatNs = sim.machine.dram().llcLatencyNs();
    lane.walkNs = sim.machine.dram().pageWalkLatencyNs();
    lane.bytesPerFill = kLineBytes * (1.0 + profile.writebackFraction);
    lane.totalFills = static_cast<double>(sim.dramDemandFills +
                                          sim.dramPrefetchFills);

    // Static huge pages reserved beyond what the service can map are
    // pinned memory lost to the page cache; charge the displacement.
    lane.shpWastePenalty =
        static_cast<double>(sim.pages.wastedShpBytes()) /
        (1024.0 * 1024.0 * 1024.0) * kShpWastePenaltyPerGiB;

    // Fraction of the footprint on 2 MiB pages: huge regions cost more
    // per migration when the far tier's promotion daemon is active.
    double footprintBytes = 0.0;
    for (const RegionMapping &mapping : sim.pages.mappings())
        footprintBytes += static_cast<double>(mapping.region->sizeBytes);
    lane.hugeFrac =
        footprintBytes > 0.0
            ? static_cast<double>(sim.pages.totalHugeBytes()) /
                  footprintBytes
            : 0.0;
    return lane;
}

/** Assemble the CounterSet from a finished simulation + solved lane. */
template <class WorkRng>
CounterSet
assembleCounters(SimStateT<WorkRng> &sim, const RollupLane &lane,
                 const WorkloadProfile &profile,
                 const PlatformSpec &platform)
{
    CounterSet out;
    out.instructions = sim.instructions;
    std::copy(std::begin(sim.classCounts), std::end(sim.classCounts),
              std::begin(out.classCounts));
    out.l1i = sim.machine.l1i().stats();
    out.l1d = sim.machine.l1d().stats();
    out.l2 = sim.machine.l2().stats();
    out.llc = sim.machine.llc().stats();
    out.itlbL1 = sim.machine.itlb().l1().stats();
    out.dtlbL1 = sim.machine.dtlb().l1().stats();
    out.itlbWalks = sim.itlbWalks;
    out.dtlbWalks = sim.dtlbWalks;
    out.dtlbLoadMisses = sim.dtlbLoadMisses;
    out.dtlbStoreMisses = sim.dtlbStoreMisses;
    out.branches = sim.branches;
    out.mispredicts = sim.mispredicts;
    out.btbMisses = sim.btbMisses;
    out.dramDemandFills = sim.dramDemandFills;
    out.dramPrefetchFills = sim.dramPrefetchFills;
    out.contextSwitches = sim.contextSwitches;

    double overheadShare = profile.contextSwitch.penaltyFractionMid() +
                           profile.kernelTimeShare;
    overheadShare = std::min(overheadShare, 0.6);

    out.costs = lane.costs;
    out.cycles = lane.costs.totalCycles();
    out.ipc = lane.threadIpc;
    out.coreIpc = lane.threadIpc * profile.smtThroughputScale;
    out.topdown = computeTopDown(lane.costs, platform.issueWidth);
    out.memBandwidthGBs = lane.op.achievedGBs;
    out.memLatencyNs = lane.op.latencyNs;
    out.memBackpressure = lane.op.backpressure;
    out.cswPenaltyFraction = profile.contextSwitch.penaltyFractionMid();
    out.kernelShare =
        profile.kernelTimeShare + out.cswPenaltyFraction;
    out.mipsPerCore =
        out.coreIpc * lane.ghz * 1e3 * (1.0 - overheadShare);
    out.platformMips =
        out.mipsPerCore *
        static_cast<double>(sim.machine.activeCores());
    return out;
}

} // namespace softsku::simcore

#endif // SOFTSKU_SIM_SIM_CORE_HH
