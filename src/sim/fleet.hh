/**
 * @file
 * Fleet deployment model.
 *
 * The paper's motivation for *soft* SKUs is fungibility: hardware stays
 * uniform while servers are redeployed to different microservices —
 * and hence different soft SKUs — through reconfiguration and/or
 * reboot (Sec. 3).  This module models a slice of such a fleet:
 * servers carry a knob configuration and an assigned service, staged
 * rollouts move them from the production configuration to a soft SKU
 * (canary first, then waves), reconfiguration costs downtime only for
 * knobs that need a reboot, and fleet-aggregate throughput lands in
 * the ODS store the way the paper's prolonged validation reads it.
 */

#ifndef SOFTSKU_SIM_FLEET_HH
#define SOFTSKU_SIM_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/knobs.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"
#include "util/json.hh"

namespace softsku {

/**
 * The fleet's failure-domain hierarchy: servers live in racks, racks
 * in regions.  Racks are assigned as contiguous id blocks (physical
 * placement follows delivery order), which is exactly what makes a
 * naive index-ordered wave land inside one blast radius.
 */
struct FleetTopology
{
    int racks = 1;
    int regions = 1;

    /** True for the degenerate 1×1 topology (no domain machinery). */
    bool trivial() const { return racks <= 1 && regions <= 1; }

    /**
     * Parse a CLI spec: "" (trivial), "RACKS" ("8"), or
     * "RACKSxREGIONS" ("8x2").  fatal() on malformed input or
     * regions > racks.
     */
    static FleetTopology fromSpec(const std::string &spec);
};

/** One server in the fleet slice. */
struct FleetServer
{
    int id = 0;
    KnobConfig config;
    /** Failure domains (assigned by FleetSlice from its topology). */
    int rack = 0;
    int region = 0;
    /** Wall-clock second until which the server is down (reboot). */
    double offlineUntilSec = 0.0;
    /** Relative hardware performance (replacement drift, degradation). */
    double perfFactor = 1.0;
    /** Pulled from rotation by the operator (stuck reboot, etc.). */
    bool excluded = false;

    /**
     * Online at @p nowSec.  The boundary convention is pinned:
     * a server whose offlineUntilSec lands exactly on a telemetry tick
     * counts as online for that tick, for every consumer — baseline,
     * canary, and wave health sampling all go through this predicate.
     */
    bool online(double nowSec) const
    {
        return !excluded && nowSec >= offlineUntilSec;
    }
};

/** Rollout pacing policy. */
struct RolloutPolicy
{
    /** Servers converted in the canary phase. */
    int canaryServers = 1;
    /** Pre-rollout soak establishing the health-check baseline. */
    double baselineSoakSec = 1800.0;
    /** Canary soak time before the waves start. */
    double canarySoakSec = 4.0 * 3600.0;
    /** Telemetry cadence while judging the canary. */
    double canarySampleSec = 60.0;
    /** Fraction of the fleet converted per wave after the canary. */
    double waveFraction = 0.25;
    /** Time between waves. */
    double waveIntervalSec = 1.0 * 3600.0;
    /** Downtime charged when the new config needs a reboot. */
    double rebootDowntimeSec = 300.0;
    /** Abort threshold: canary regression (fraction) that cancels. */
    double abortOnRegression = 0.01;
    /** Remaining downtime beyond which a reboot counts as stuck and
     *  the server is pulled from rotation. */
    double rebootTimeoutSec = 1800.0;
    /** Extra knob-apply attempts before a server is skipped. */
    int applyRetries = 2;
    /**
     * How many times a rollout aborted by a failed *wave* health check
     * may resume: after the rollback and cool-down it re-establishes
     * the baseline on the surviving (non-excluded) servers, re-runs
     * the canary, and converts the fleet again in waves.  A canary
     * that itself regresses never resumes — that verdict is about the
     * configuration, not the fleet.  0 (the default) keeps the
     * single-shot behavior bit-for-bit: no extra telemetry ticks, no
     * extra fault draws.
     *
     * With domainVerdicts armed the resume budget is spent only on
     * *domain* faults (a rack died, the environment shifted); a
     * config-blamed failure rolls back and never resumes.
     */
    int resumeAttempts = 0;

    // --- Blast-radius awareness (all off by default; a trivial
    // topology ignores them, so legacy rollouts stay bit-for-bit).

    /**
     * Stratify every wave round-robin across racks instead of
     * converting in id order, and cap conversions per rack at half
     * the wave batch (surplus defers to later waves), so no wave
     * concentrates inside one blast radius.
     */
    bool stratifyWaves = false;
    /**
     * Unconverted baseline servers guaranteed per rack until the very
     * last waves — the in-domain control group the health checks read.
     */
    int domainQuorum = 0;
    /**
     * Triage failed health checks by domain before blaming the
     * configuration: a rack whose *control* servers regressed (or
     * died) is excluded and the rollout resumes; a fleet-wide control
     * regression re-baselines (environment shift); only a regression
     * the control groups don't share is blamed on the config.
     */
    bool domainVerdicts = false;
    /**
     * Pause conversions while the load-normalized fleet telemetry runs
     * this fraction above the baseline (a detected surge window).
     * 0 disables pausing.
     */
    double surgePauseThreshold = 0.0;
    /** Most consecutive surge-pause windows before converting anyway. */
    int maxSurgePauses = 4;

    /** The recommended posture for a fleet with a real topology:
     *  stratified waves, per-rack quorum of 1, domain verdicts, surge
     *  pausing at 8% upside, and a resume budget of 2 so domain-fault
     *  verdicts can actually act. */
    static RolloutPolicy blastRadiusAware();
};

/** Outcome of one staged rollout. */
struct RolloutResult
{
    bool completed = false;
    bool aborted = false;
    /** Converted waves were reverted by a failed health check. */
    bool rolledBack = false;
    double finishedAtSec = 0.0;
    int serversConverted = 0;
    /** Canary gain measured from paired ODS telemetry (canary mean vs
     *  control mean per tick — the common-mode load cancels). */
    double canaryGainPercent = 0.0;
    /** Telemetry ticks the canary judgment is based on. */
    std::uint64_t canarySamples = 0;
    /** Fleet QPS gain after full conversion vs the baseline soak, from
     *  load-normalized ODS telemetry. */
    double fleetGainPercent = 0.0;

    /** Fault/recovery telemetry observed during the rollout. */
    int wavesRolledBack = 0;
    int serversExcluded = 0;
    int serverCrashes = 0;
    int applyFailures = 0;
    int stuckReboots = 0;
    /** Times the rollout resumed after a wave rollback (bounded by
     *  RolloutPolicy::resumeAttempts). */
    int resumes = 0;

    /** Domain-fault telemetry (non-trivial topologies only). */
    int rackEvents = 0;        //!< rack power events observed
    int domainsExcluded = 0;   //!< racks pulled from rotation mid-rollout
    int surgePauses = 0;       //!< wave conversions deferred by surges
    /** Largest fraction of a wave batch converted inside one rack
     *  (the blast-radius exposure, relative to the wave size; 0
     *  without topology).  The stratified planner's per-domain cap
     *  keeps this at or below 0.5 whenever a wave converts at all. */
    double maxWaveDomainShare = 0.0;
    /** An abort's verdict: true when the health machinery blamed the
     *  *configuration* (rollback, no resume), false when it blamed a
     *  failure domain or could not judge. */
    bool configBlamed = false;

    Json toJson() const;
};

/**
 * A slice of servers all assigned to one microservice, measured
 * through a shared ProductionEnvironment.
 */
class FleetSlice
{
  public:
    /**
     * @param env      the service's production environment (owns the
     *                 per-config simulation cache)
     * @param servers  number of servers in the slice
     * @param initial  configuration every server starts with
     * @param topology failure-domain hierarchy; servers are assigned
     *                 to racks as contiguous id blocks, racks to
     *                 regions likewise.  The default trivial topology
     *                 keeps every legacy code path bit-for-bit.
     */
    FleetSlice(ProductionEnvironment &env, int servers,
               const KnobConfig &initial,
               const FleetTopology &topology = FleetTopology{});

    const FleetTopology &topology() const { return topology_; }

    /** Number of servers currently online at @p nowSec. */
    int onlineServers(double nowSec) const;

    /** Aggregate fleet MIPS at @p nowSec (offline servers contribute 0). */
    double fleetMips(double nowSec);

    /**
     * Record one fleet telemetry sample into @p ods under
     * "fleet.<service>.mips" and "fleet.<service>.online".
     */
    void sampleTo(OdsStore &ods, double nowSec);

    /**
     * Apply @p config to server @p index immediately, charging reboot
     * downtime when any changed knob requires one.
     * @return true when a reboot was needed
     */
    bool reconfigure(int index, const KnobConfig &config, double nowSec,
                     double rebootDowntimeSec);

    /**
     * Run a staged rollout of @p target across the slice, sampling
     * fleet telemetry into @p ods every @p sampleEverySec.
     *
     * The canary converts first; after the soak, the canary's paired
     * gain is checked against the abort threshold; then waves convert
     * the remainder.  Returns the rollout outcome.
     */
    RolloutResult rollout(const KnobConfig &target,
                          const RolloutPolicy &policy, OdsStore &ods,
                          double startSec = 0.0,
                          double sampleEverySec = 300.0);

    /**
     * Degrade server @p index to @p perfFactor of nominal, immediately
     * (silent hardware fault: thermal throttling, a failing DIMM).
     * Ground truth for its configuration is unchanged — only the
     * sampled telemetry shows it, which is exactly what the rollout
     * health checks must catch.
     */
    void degradeServer(int index, double perfFactor);

    /** Like degradeServer, but taking effect at @p atSec during a
     *  future rollout (mid-rollout regression injection). */
    void scheduleDegradation(int index, double atSec, double perfFactor);

    /**
     * Schedule a directed rack power event: every server in @p rack
     * goes offline for @p downtimeSec at @p atSec during a future
     * rollout.  Deterministic counterpart to the stochastic
     * FaultPlan::rackEventPerHour hazard, for tests and benches.
     */
    void scheduleRackOutage(int rack, double atSec, double downtimeSec);

    const std::vector<FleetServer> &servers() const { return servers_; }

  private:
    /** A scheduled mid-rollout hardware degradation. */
    struct PendingDegradation
    {
        int index;
        double atSec;
        double perfFactor;
    };

    /** A scheduled directed rack power event. */
    struct PendingOutage
    {
        int rack;
        double atSec;
        double downtimeSec;
    };

    /** One sampled MIPS reading for a server at @p nowSec. */
    double serverMips(const FleetServer &server, double load);

    ProductionEnvironment &env_;
    std::vector<FleetServer> servers_;
    std::vector<PendingDegradation> pending_;
    std::vector<PendingOutage> pendingOutages_;
    FleetTopology topology_;
    Rng rng_;
};

/**
 * True when switching @p from → @p to requires a reboot (any changed
 * knob that is boot-time only: core count or SHP reservation).
 */
bool reconfigurationNeedsReboot(const KnobConfig &from,
                                const KnobConfig &to);

} // namespace softsku

#endif // SOFTSKU_SIM_FLEET_HH
