/**
 * @file
 * Fleet deployment model.
 *
 * The paper's motivation for *soft* SKUs is fungibility: hardware stays
 * uniform while servers are redeployed to different microservices —
 * and hence different soft SKUs — through reconfiguration and/or
 * reboot (Sec. 3).  This module models a slice of such a fleet:
 * servers carry a knob configuration and an assigned service, staged
 * rollouts move them from the production configuration to a soft SKU
 * (canary first, then waves), reconfiguration costs downtime only for
 * knobs that need a reboot, and fleet-aggregate throughput lands in
 * the ODS store the way the paper's prolonged validation reads it.
 */

#ifndef SOFTSKU_SIM_FLEET_HH
#define SOFTSKU_SIM_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/knobs.hh"
#include "sim/production_env.hh"
#include "telemetry/ods.hh"

namespace softsku {

/** One server in the fleet slice. */
struct FleetServer
{
    int id = 0;
    KnobConfig config;
    /** Wall-clock second until which the server is down (reboot). */
    double offlineUntilSec = 0.0;
    /** Relative hardware performance (replacement drift, degradation). */
    double perfFactor = 1.0;
    /** Pulled from rotation by the operator (stuck reboot, etc.). */
    bool excluded = false;

    bool online(double nowSec) const
    {
        return !excluded && nowSec >= offlineUntilSec;
    }
};

/** Rollout pacing policy. */
struct RolloutPolicy
{
    /** Servers converted in the canary phase. */
    int canaryServers = 1;
    /** Pre-rollout soak establishing the health-check baseline. */
    double baselineSoakSec = 1800.0;
    /** Canary soak time before the waves start. */
    double canarySoakSec = 4.0 * 3600.0;
    /** Telemetry cadence while judging the canary. */
    double canarySampleSec = 60.0;
    /** Fraction of the fleet converted per wave after the canary. */
    double waveFraction = 0.25;
    /** Time between waves. */
    double waveIntervalSec = 1.0 * 3600.0;
    /** Downtime charged when the new config needs a reboot. */
    double rebootDowntimeSec = 300.0;
    /** Abort threshold: canary regression (fraction) that cancels. */
    double abortOnRegression = 0.01;
    /** Remaining downtime beyond which a reboot counts as stuck and
     *  the server is pulled from rotation. */
    double rebootTimeoutSec = 1800.0;
    /** Extra knob-apply attempts before a server is skipped. */
    int applyRetries = 2;
    /**
     * How many times a rollout aborted by a failed *wave* health check
     * may resume: after the rollback and cool-down it re-establishes
     * the baseline on the surviving (non-excluded) servers, re-runs
     * the canary, and converts the fleet again in waves.  A canary
     * that itself regresses never resumes — that verdict is about the
     * configuration, not the fleet.  0 (the default) keeps the
     * single-shot behavior bit-for-bit: no extra telemetry ticks, no
     * extra fault draws.
     */
    int resumeAttempts = 0;
};

/** Outcome of one staged rollout. */
struct RolloutResult
{
    bool completed = false;
    bool aborted = false;
    /** Converted waves were reverted by a failed health check. */
    bool rolledBack = false;
    double finishedAtSec = 0.0;
    int serversConverted = 0;
    /** Canary gain measured from paired ODS telemetry (canary mean vs
     *  control mean per tick — the common-mode load cancels). */
    double canaryGainPercent = 0.0;
    /** Telemetry ticks the canary judgment is based on. */
    std::uint64_t canarySamples = 0;
    /** Fleet QPS gain after full conversion vs the baseline soak, from
     *  load-normalized ODS telemetry. */
    double fleetGainPercent = 0.0;

    /** Fault/recovery telemetry observed during the rollout. */
    int wavesRolledBack = 0;
    int serversExcluded = 0;
    int serverCrashes = 0;
    int applyFailures = 0;
    int stuckReboots = 0;
    /** Times the rollout resumed after a wave rollback (bounded by
     *  RolloutPolicy::resumeAttempts). */
    int resumes = 0;
};

/**
 * A slice of servers all assigned to one microservice, measured
 * through a shared ProductionEnvironment.
 */
class FleetSlice
{
  public:
    /**
     * @param env     the service's production environment (owns the
     *                per-config simulation cache)
     * @param servers number of servers in the slice
     * @param initial configuration every server starts with
     */
    FleetSlice(ProductionEnvironment &env, int servers,
               const KnobConfig &initial);

    /** Number of servers currently online at @p nowSec. */
    int onlineServers(double nowSec) const;

    /** Aggregate fleet MIPS at @p nowSec (offline servers contribute 0). */
    double fleetMips(double nowSec);

    /**
     * Record one fleet telemetry sample into @p ods under
     * "fleet.<service>.mips" and "fleet.<service>.online".
     */
    void sampleTo(OdsStore &ods, double nowSec);

    /**
     * Apply @p config to server @p index immediately, charging reboot
     * downtime when any changed knob requires one.
     * @return true when a reboot was needed
     */
    bool reconfigure(int index, const KnobConfig &config, double nowSec,
                     double rebootDowntimeSec);

    /**
     * Run a staged rollout of @p target across the slice, sampling
     * fleet telemetry into @p ods every @p sampleEverySec.
     *
     * The canary converts first; after the soak, the canary's paired
     * gain is checked against the abort threshold; then waves convert
     * the remainder.  Returns the rollout outcome.
     */
    RolloutResult rollout(const KnobConfig &target,
                          const RolloutPolicy &policy, OdsStore &ods,
                          double startSec = 0.0,
                          double sampleEverySec = 300.0);

    /**
     * Degrade server @p index to @p perfFactor of nominal, immediately
     * (silent hardware fault: thermal throttling, a failing DIMM).
     * Ground truth for its configuration is unchanged — only the
     * sampled telemetry shows it, which is exactly what the rollout
     * health checks must catch.
     */
    void degradeServer(int index, double perfFactor);

    /** Like degradeServer, but taking effect at @p atSec during a
     *  future rollout (mid-rollout regression injection). */
    void scheduleDegradation(int index, double atSec, double perfFactor);

    const std::vector<FleetServer> &servers() const { return servers_; }

  private:
    /** A scheduled mid-rollout hardware degradation. */
    struct PendingDegradation
    {
        int index;
        double atSec;
        double perfFactor;
    };

    /** One sampled MIPS reading for a server at @p nowSec. */
    double serverMips(const FleetServer &server, double load);

    ProductionEnvironment &env_;
    std::vector<FleetServer> servers_;
    std::vector<PendingDegradation> pending_;
    Rng rng_;
};

/**
 * True when switching @p from → @p to requires a reboot (any changed
 * knob that is boot-time only: core count or SHP reservation).
 */
bool reconfigurationNeedsReboot(const KnobConfig &from,
                                const KnobConfig &to);

} // namespace softsku

#endif // SOFTSKU_SIM_FLEET_HH
