/**
 * @file
 * Deterministic fault injection for the simulated production fleet.
 *
 * μSKU's A/B experiments run on live production servers (paper Sec. 4),
 * and live fleets are hostile: machines crash and are replaced by
 * not-quite-identical hardware mid-experiment, EMON samples drop or
 * come back corrupted, traffic surges past the diurnal envelope, knob
 * applies fail, and reboots hang.  This module injects exactly those
 * hazards — seeded and replayable — so the tool's statistics and the
 * rollout machinery can be exercised (and tested) under adversity.
 *
 * Determinism contract: every fault decision is drawn either from an
 * Rng::split substream (so a ProductionEnvironment clone replays the
 * identical fault schedule no matter which thread measures in it) or
 * from a stateless hash of simulated time (load surges), never from
 * shared mutable state.  The same seed and fault plan reproduce
 * byte-identical reports at any --jobs value.
 */

#ifndef SOFTSKU_SIM_FAULTS_HH
#define SOFTSKU_SIM_FAULTS_HH

#include <cstdint>
#include <string>

#include "stats/rng.hh"
#include "util/json.hh"

namespace softsku {

/**
 * Hazard rates for one hostile-production scenario.  All rates default
 * to zero; a default-constructed plan is a strict no-op (no RNG draws,
 * no report changes).
 */
struct FaultPlan
{
    /** Server crash/replacement rate, per server-hour. */
    double crashPerHour = 0.0;
    /** Probability an EMON sample pair is lost entirely. */
    double sampleDropRate = 0.0;
    /** Probability one arm's EMON reading is corrupted. */
    double sampleCorruptRate = 0.0;
    /** Multiplier a corrupted spike applies (zeros are the other mode). */
    double corruptSpikeFactor = 8.0;
    /** Probability any given surge window carries a traffic surge. */
    double surgeWindowRate = 0.0;
    /** Extra load during a surge, beyond the diurnal envelope. */
    double surgeMagnitude = 0.35;
    /** Length of one surge decision window. */
    double surgeWindowSec = 900.0;
    /** Probability a knob apply fails and leaves the old config. */
    double configApplyFailRate = 0.0;
    /** Probability a required reboot hangs past its downtime budget. */
    double stuckRebootRate = 0.0;
    /** Extra downtime a stuck reboot costs before the host recovers. */
    double stuckRebootExtraSec = 3600.0;
    /** Perf floor of a replacement server (hardware-config drift). */
    double replacementPerfMin = 0.85;

    // --- Correlated failure-domain hazards (all off by default).
    // These only fire for fleets built with a non-trivial
    // FleetTopology; plans without them are bit-for-bit unchanged.

    /** Rack power-event rate, per rack-hour: every server in the rack
     *  goes offline at once. */
    double rackEventPerHour = 0.0;
    /** Downtime one rack event costs every server in the rack. */
    double rackEventDowntimeSec = 1800.0;
    /** Decision-window length for rack events (stateless time hash). */
    double rackEventWindowSec = 3600.0;
    /** Probability any surge window carries a *region-scoped* surge
     *  (on top of the fleet-wide surgeWindowRate). */
    double domainSurgeRate = 0.0;
    /** Extra load a region surge adds beyond the diurnal envelope. */
    double domainSurgeMagnitude = 0.35;
    /** Half-width of the per-rack replacement cohort band: replacement
     *  hardware drifts by *rack* (same delivery batch / configuration
     *  cohort), not i.i.d.  0 keeps the legacy uncorrelated draw. */
    double rackDriftSigma = 0.0;

    /** True when any hazard rate is nonzero. */
    bool any() const;

    /**
     * Parse a plan from a CLI spec: a preset name ("off", "mild",
     * "moderate", "severe") or a comma-separated key=value list
     * ("crash=0.02,drop=0.01,corrupt=0.005,surge=0.05,apply=0.03,
     * stuck=0.05"), optionally starting from a preset
     * ("moderate,drop=0.1").  fatal() on unknown keys.
     */
    static FaultPlan fromSpec(const std::string &spec);

    /** Canonical one-line description of the nonzero rates. */
    std::string describe() const;

    Json toJson() const;
};

/** Fault and recovery event counts, aggregated into reports. */
struct FaultTelemetry
{
    std::uint64_t samplesDropped = 0;    //!< EMON pairs lost
    std::uint64_t samplesCorrupted = 0;  //!< injected spikes/zeros
    std::uint64_t samplesRejected = 0;   //!< removed by robust filtering
    std::uint64_t crashes = 0;           //!< server crashes observed
    std::uint64_t applyFailures = 0;     //!< knob applies that failed
    std::uint64_t retries = 0;           //!< comparisons re-measured
    std::uint64_t guardrailAborts = 0;   //!< QoS-aborted candidates
    std::uint64_t abandoned = 0;         //!< comparisons lost to faults

    /** Every fault event injected (not counting recoveries). */
    std::uint64_t faultsInjected() const
    {
        return samplesDropped + samplesCorrupted + crashes + applyFailures;
    }

    bool any() const;

    /** Accumulate another telemetry block (sequential reduction). */
    void merge(const FaultTelemetry &other);

    Json toJson() const;
};

/**
 * Draws fault decisions from a plan.  An injector is cheap to copy;
 * forStream() rebases the decision stream deterministically the same
 * way ProductionEnvironment::clone rebases measurement noise.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /**
     * An injector replaying the substream @p streamId of the same
     * plan/seed.  Depends only on (seed, streamId) — never on how many
     * decisions this injector has already drawn.
     */
    FaultInjector forStream(std::uint64_t streamId) const;

    const FaultPlan &plan() const { return plan_; }

    /** One EMON pair: lost? */
    bool dropSample();

    /** One EMON reading: corrupted? */
    bool corruptSample();

    /** Multiplier a corrupted reading suffers: a spike or a zero. */
    double corruptionFactor();

    /** Did a server crash within the last @p dtSec seconds? */
    bool crash(double dtSec);

    /** Does this knob apply fail? */
    bool applyFails();

    /** Does this reboot hang past its downtime budget? */
    bool rebootSticks();

    /** Relative performance of a replacement server (≤ 1). */
    double replacementPerfFactor();

    /**
     * Relative performance of a replacement server landing in @p rack.
     * With rackDriftSigma > 0 the draw clusters around the rack's
     * cohort center (rackCohortPerf); otherwise identical to the
     * uncorrelated replacementPerfFactor().
     */
    double replacementPerfFactorForRack(int rack);

    /**
     * The hardware-perf cohort center of @p rack: replacements in one
     * rack come from one delivery batch, so their drift clusters.  A
     * pure function of (plan, seed, rack) in
     * [replacementPerfMin, 1].
     */
    double rackCohortPerf(int rack) const;

    /**
     * Did a rack power event hit @p rack within the last @p dtSec
     * seconds before @p timeSec?  A pure function of (plan, seed,
     * rack, window) — stateless, so every clone, thread, and resumed
     * rollout attempt sees the identical event schedule.
     */
    bool rackEventInWindow(int rack, double timeSec, double dtSec) const;

    /**
     * Load multiplier beyond the diurnal envelope at @p timeSec.
     * A pure function of (plan, seed, time): every clone and every
     * thread sees the same surge schedule.
     */
    double surgeFactor(double timeSec) const;

    /**
     * Region-scoped surge multiplier at @p timeSec: different regions
     * surge in different windows.  A pure function of (plan, seed,
     * region, time); 1.0 when the plan carries no domain surges.
     */
    double domainSurgeFactor(int region, double timeSec) const;

  private:
    FaultPlan plan_;
    std::uint64_t seed_ = 0;
    Rng rng_{0};
};

} // namespace softsku

#endif // SOFTSKU_SIM_FAULTS_HH
