#include "sim/service_sim.hh"

#include <cstdio>
#include <cstdlib>

#include "cache/cdp.hh"
#include "sim/sim_core.hh"
#include "stats/rng.hh"

namespace softsku {

namespace simcore {

void
rollupLanes(std::span<RollupLane> lanes)
{
    // Iteration-outer / lane-inner: every lane advances through the 12
    // damped fixed-point iterations together, so the inner loop is a
    // straight-line sweep over the lane array the compiler can
    // vectorize.  Per lane the floating-point operation sequence is
    // exactly the scalar loop's, so each lane's solution is
    // bit-identical to a solo run.
    for (int iter = 0; iter < 12; ++iter) {
        for (RollupLane &lane : lanes) {
            const WorkloadProfile &profile = *lane.profile;
            const PlatformSpec &platform = *lane.platform;
            const double n = lane.n;
            const double ghz = lane.ghz;

            lane.costs = PipelineCosts{};
            lane.costs.instructions = n;
            lane.costs.baseCycles = n * profile.baseCpi;

            double l2Cyc = platform.l2LatencyCycles;
            double llcCyc = lane.llcLatNs * ghz;
            double memCyc = lane.memLatencyNs * ghz;
            double walkCyc = lane.walkNs * ghz;

            lane.costs.frontEndStallCycles =
                kCodeExposureL2 * lane.l2CodeHits * l2Cyc +
                kCodeExposureLlc * lane.llcCodeHits * llcCyc +
                kCodeExposureMem * lane.llcCodeMisses * memCyc +
                lane.itlbStlbHits * kStlbHitCycles +
                lane.itlbWalks * walkCyc * kItlbWalkExposure;

            lane.costs.badSpecCycles =
                lane.mispredicts * platform.mispredictPenaltyCycles;

            lane.costs.backEndStallCycles =
                lane.l2DataHitCount * l2Cyc * 0.20 +
                lane.wLlcDataHit * llcCyc + lane.wMemData * memCyc +
                lane.dtlbStlbHits * kStlbHitCycles * 0.5 +
                lane.dtlbWalks * walkCyc * kDtlbWalkExposure +
                n * lane.shpWastePenalty;

            lane.threadIpc = ipcOf(lane.costs);
            double threadIps = lane.threadIpc * ghz * 1e9;
            double coreIps = threadIps * profile.smtThroughputScale;
            // The load balancer keeps CPU utilization at the QoS cap
            // (Sec. 2.3.3), which is what bounds offered memory traffic.
            double bw = lane.totalFills / n * lane.bytesPerFill * coreIps *
                        static_cast<double>(lane.machine->activeCores()) *
                        profile.cpuUtilizationCap / 1e9;
            lane.op = lane.machine->memory().resolve(bw, lane.hugeFrac);
            // Damped update: the raw fixed point can oscillate around
            // the saturation knee.
            lane.memLatencyNs = 0.5 * lane.memLatencyNs +
                                0.5 * lane.op.latencyNs *
                                    lane.op.backpressure;
        }
    }

    if (getenv("SOFTSKU_DEBUG_COSTS")) {
        for (const RollupLane &lane : lanes) {
            std::fprintf(stderr,
                "dbg: l1iM=%.0f l2cM=%.0f llccM=%.0f wLlc=%.1f wMem=%.1f "
                "l2dHit=%llu itlbS=%llu itlbW=%llu dtlbS=%llu dtlbW=%llu "
                "memLat=%.0f fe=%.0f be=%.0f bs=%.0f base=%.0f\n",
                lane.l1iMisses, lane.l2CodeMisses, lane.llcCodeMisses,
                lane.wLlcDataHit, lane.wMemData,
                (unsigned long long)lane.l2DataHitCount,
                (unsigned long long)lane.itlbStlbHits,
                (unsigned long long)lane.itlbWalks,
                (unsigned long long)lane.dtlbStlbHits,
                (unsigned long long)lane.dtlbWalks, lane.memLatencyNs,
                lane.costs.frontEndStallCycles,
                lane.costs.backEndStallCycles, lane.costs.badSpecCycles,
                lane.costs.baseCycles);
        }
    }
}

} // namespace simcore

CounterSet
simulateService(const WorkloadProfile &profile, const PlatformSpec &platform,
                const KnobConfig &knobs, const SimOptions &options)
{
    profile.validate();
    simcore::SimStateT<Rng> sim(profile, platform, knobs, options.seed,
                                options, Rng(options.seed ^ 0xF00D));
    if (options.catWays > 0)
        applyCat(sim.machine.llc(), options.catWays);

    sim.prewarm();
    sim.run(options.warmupInstructions, false);
    sim.clearStats();
    sim.run(options.measureInstructions, true);

    simcore::RollupLane lane =
        simcore::gatherRollup(sim, profile, platform);
    simcore::rollupLanes({&lane, 1});
    return simcore::assembleCounters(sim, lane, profile, platform);
}

} // namespace softsku
