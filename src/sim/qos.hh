/**
 * @file
 * Service-level QoS solver.
 *
 * The paper's load balancers admit only as much load as each service
 * can sustain without violating its latency SLO (Sec. 2.3.3), which is
 * why CPU utilization differs so much across services (Fig 3).  The
 * solver combines the architectural simulation (per-core instruction
 * throughput) with the thread-pool discrete-event model (queueing,
 * scheduling, blocking) and searches for the peak arrival rate that
 * still meets the SLO — yielding peak QPS, the latency breakdown of
 * Fig 2, and the utilization ceiling of Fig 3.
 */

#ifndef SOFTSKU_SIM_QOS_HH
#define SOFTSKU_SIM_QOS_HH

#include "os/scheduler.hh"
#include "sim/counters.hh"
#include "workload/profile.hh"

namespace softsku {

struct PlatformSpec;
struct KnobConfig;

/** The solved peak operating point of one service on one server. */
struct ServiceOperatingPoint
{
    double peakQps = 0.0;             //!< max sustainable arrival rate
    double meanLatencySec = 0.0;
    double p99LatencySec = 0.0;
    double sloLatencySec = 0.0;       //!< the constraint that bound it
    double cpuUtilization = 0.0;      //!< total CPU busy fraction
    double userUtilization = 0.0;     //!< user-mode share of total CPU
    double kernelUtilization = 0.0;   //!< kernel + IO-wait share
    ThreadPoolResult pool;            //!< latency breakdown at peak
};

/**
 * Solve the peak-load operating point.
 *
 * @param profile  the microservice
 * @param platform the server SKU
 * @param counters    architectural simulation results for this config
 *                    (provides per-core throughput)
 * @param seed        determinism seed for the DES
 * @param activeCores cores the configuration leaves online (isolcpus);
 *                    0 means the full socket.  Fewer cores means fewer
 *                    worker contexts and a proportionally lower peak.
 */
ServiceOperatingPoint solveOperatingPoint(const WorkloadProfile &profile,
                                          const PlatformSpec &platform,
                                          const CounterSet &counters,
                                          std::uint64_t seed = 1,
                                          int activeCores = 0);

} // namespace softsku

#endif // SOFTSKU_SIM_QOS_HH
