#include "sim/faults.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

/** Salt separating the fault streams from the measurement-noise ones. */
constexpr std::uint64_t kFaultSalt = 0xFA17FA17FA17FA17ULL;

/** Salts separating the stateless correlated-hazard hashes from each
 *  other (and from the global surge schedule). */
constexpr std::uint64_t kRackEventSalt = 0x7ACCE4E47ACCE4E4ULL;
constexpr std::uint64_t kDomainSurgeSalt = 0xD0AA145C0A915EEDULL;
constexpr std::uint64_t kCohortSalt = 0xC0804714C0804714ULL;

/** Uniform [0, 1) from a 64-bit hash. */
double
hash01(std::uint64_t x)
{
    return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

FaultPlan
preset(const std::string &name)
{
    FaultPlan plan;
    if (name == "off")
        return plan;
    if (name == "mild") {
        plan.crashPerHour = 0.005;
        plan.sampleDropRate = 0.005;
        plan.sampleCorruptRate = 0.002;
        plan.surgeWindowRate = 0.02;
        plan.configApplyFailRate = 0.01;
        plan.stuckRebootRate = 0.02;
        return plan;
    }
    if (name == "moderate") {
        plan.crashPerHour = 0.02;
        plan.sampleDropRate = 0.02;
        plan.sampleCorruptRate = 0.01;
        plan.surgeWindowRate = 0.05;
        plan.configApplyFailRate = 0.03;
        plan.stuckRebootRate = 0.05;
        return plan;
    }
    if (name == "severe") {
        plan.crashPerHour = 0.1;
        plan.sampleDropRate = 0.08;
        plan.sampleCorruptRate = 0.04;
        plan.surgeWindowRate = 0.15;
        plan.configApplyFailRate = 0.1;
        plan.stuckRebootRate = 0.15;
        return plan;
    }
    fatal("unknown fault preset '%s' (off, mild, moderate, severe)",
          name.c_str());
}

} // namespace

bool
FaultPlan::any() const
{
    return crashPerHour > 0.0 || sampleDropRate > 0.0 ||
           sampleCorruptRate > 0.0 || surgeWindowRate > 0.0 ||
           configApplyFailRate > 0.0 || stuckRebootRate > 0.0 ||
           rackEventPerHour > 0.0 || domainSurgeRate > 0.0;
}

FaultPlan
FaultPlan::fromSpec(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &partRaw : split(spec, ',')) {
        std::string part(trim(partRaw));
        if (part.empty())
            continue;
        auto eq = part.find('=');
        if (eq == std::string::npos) {
            plan = preset(toLower(part));
            continue;
        }
        std::string key = toLower(trim(part.substr(0, eq)));
        std::string text(trim(part.substr(eq + 1)));
        auto value = parseDouble(text);
        if (!value || *value < 0.0)
            fatal("fault spec: '%s' is not a non-negative number in "
                  "'%s'", text.c_str(), part.c_str());
        if (key == "crash")
            plan.crashPerHour = *value;
        else if (key == "drop")
            plan.sampleDropRate = *value;
        else if (key == "corrupt")
            plan.sampleCorruptRate = *value;
        else if (key == "spike")
            plan.corruptSpikeFactor = *value;
        else if (key == "surge")
            plan.surgeWindowRate = *value;
        else if (key == "surge_mag")
            plan.surgeMagnitude = *value;
        else if (key == "apply")
            plan.configApplyFailRate = *value;
        else if (key == "stuck")
            plan.stuckRebootRate = *value;
        else if (key == "stuck_extra")
            plan.stuckRebootExtraSec = *value;
        else if (key == "perf_min")
            plan.replacementPerfMin = *value;
        else if (key == "rack")
            plan.rackEventPerHour = *value;
        else if (key == "rack_downtime")
            plan.rackEventDowntimeSec = *value;
        else if (key == "rack_window")
            plan.rackEventWindowSec = *value;
        else if (key == "dsurge")
            plan.domainSurgeRate = *value;
        else if (key == "dsurge_mag")
            plan.domainSurgeMagnitude = *value;
        else if (key == "drift")
            plan.rackDriftSigma = *value;
        else
            fatal("fault spec: unknown key '%s' (crash, drop, corrupt, "
                  "spike, surge, surge_mag, apply, stuck, stuck_extra, "
                  "perf_min, rack, rack_downtime, rack_window, dsurge, "
                  "dsurge_mag, drift)", key.c_str());
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    if (!any())
        return "off";
    std::vector<std::string> parts;
    if (crashPerHour > 0.0)
        parts.push_back(format("crash=%g/h", crashPerHour));
    if (sampleDropRate > 0.0)
        parts.push_back(format("drop=%g", sampleDropRate));
    if (sampleCorruptRate > 0.0)
        parts.push_back(format("corrupt=%g", sampleCorruptRate));
    if (surgeWindowRate > 0.0)
        parts.push_back(format("surge=%g", surgeWindowRate));
    if (configApplyFailRate > 0.0)
        parts.push_back(format("apply=%g", configApplyFailRate));
    if (stuckRebootRate > 0.0)
        parts.push_back(format("stuck=%g", stuckRebootRate));
    if (rackEventPerHour > 0.0)
        parts.push_back(format("rack=%g/h", rackEventPerHour));
    if (domainSurgeRate > 0.0)
        parts.push_back(format("dsurge=%g", domainSurgeRate));
    if (rackDriftSigma > 0.0)
        parts.push_back(format("drift=%g", rackDriftSigma));
    return join(parts, ",");
}

Json
FaultPlan::toJson() const
{
    Json doc = Json::object();
    doc.set("crash_per_hour", Json(crashPerHour));
    doc.set("sample_drop_rate", Json(sampleDropRate));
    doc.set("sample_corrupt_rate", Json(sampleCorruptRate));
    doc.set("surge_window_rate", Json(surgeWindowRate));
    doc.set("surge_magnitude", Json(surgeMagnitude));
    doc.set("config_apply_fail_rate", Json(configApplyFailRate));
    doc.set("stuck_reboot_rate", Json(stuckRebootRate));
    // Domain hazards appear only when armed, so plans without them
    // serialize exactly as before.
    if (rackEventPerHour > 0.0)
        doc.set("rack_event_per_hour", Json(rackEventPerHour));
    if (domainSurgeRate > 0.0)
        doc.set("domain_surge_rate", Json(domainSurgeRate));
    if (rackDriftSigma > 0.0)
        doc.set("rack_drift_sigma", Json(rackDriftSigma));
    return doc;
}

bool
FaultTelemetry::any() const
{
    return faultsInjected() + samplesRejected + retries +
               guardrailAborts + abandoned >
           0;
}

void
FaultTelemetry::merge(const FaultTelemetry &other)
{
    samplesDropped += other.samplesDropped;
    samplesCorrupted += other.samplesCorrupted;
    samplesRejected += other.samplesRejected;
    crashes += other.crashes;
    applyFailures += other.applyFailures;
    retries += other.retries;
    guardrailAborts += other.guardrailAborts;
    abandoned += other.abandoned;
}

Json
FaultTelemetry::toJson() const
{
    Json doc = Json::object();
    doc.set("faults_injected",
            Json(static_cast<long long>(faultsInjected())));
    doc.set("samples_dropped",
            Json(static_cast<long long>(samplesDropped)));
    doc.set("samples_corrupted",
            Json(static_cast<long long>(samplesCorrupted)));
    doc.set("samples_rejected",
            Json(static_cast<long long>(samplesRejected)));
    doc.set("crashes", Json(static_cast<long long>(crashes)));
    doc.set("apply_failures",
            Json(static_cast<long long>(applyFailures)));
    doc.set("retries", Json(static_cast<long long>(retries)));
    doc.set("guardrail_aborts",
            Json(static_cast<long long>(guardrailAborts)));
    doc.set("abandoned", Json(static_cast<long long>(abandoned)));
    return doc;
}

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan), seed_(seed), rng_(seed ^ kFaultSalt)
{
}

FaultInjector
FaultInjector::forStream(std::uint64_t streamId) const
{
    FaultInjector child(plan_, seed_);
    child.rng_ = Rng(seed_ ^ kFaultSalt).split(streamId);
    return child;
}

bool
FaultInjector::dropSample()
{
    return plan_.sampleDropRate > 0.0 && rng_.chance(plan_.sampleDropRate);
}

bool
FaultInjector::corruptSample()
{
    return plan_.sampleCorruptRate > 0.0 &&
           rng_.chance(plan_.sampleCorruptRate);
}

double
FaultInjector::corruptionFactor()
{
    // Half the corruptions read back as zeros (a wedged counter), half
    // as spikes (multiplexing glitch).
    return rng_.chance(0.5) ? 0.0 : plan_.corruptSpikeFactor;
}

bool
FaultInjector::crash(double dtSec)
{
    if (plan_.crashPerHour <= 0.0 || dtSec <= 0.0)
        return false;
    return rng_.chance(plan_.crashPerHour * dtSec / 3600.0);
}

bool
FaultInjector::applyFails()
{
    return plan_.configApplyFailRate > 0.0 &&
           rng_.chance(plan_.configApplyFailRate);
}

bool
FaultInjector::rebootSticks()
{
    return plan_.stuckRebootRate > 0.0 &&
           rng_.chance(plan_.stuckRebootRate);
}

double
FaultInjector::replacementPerfFactor()
{
    return rng_.uniform(plan_.replacementPerfMin, 1.0);
}

double
FaultInjector::rackCohortPerf(int rack) const
{
    double u = hash01((static_cast<std::uint64_t>(rack) + 1) *
                          0x2545F4914F6CDD1DULL ^
                      seed_ ^ kCohortSalt);
    return plan_.replacementPerfMin +
           (1.0 - plan_.replacementPerfMin) * u;
}

double
FaultInjector::replacementPerfFactorForRack(int rack)
{
    if (plan_.rackDriftSigma <= 0.0)
        return replacementPerfFactor();
    // Same single uniform draw as the uncorrelated path, but centered
    // on the rack's cohort — drift clusters by configuration cohort.
    double center = rackCohortPerf(rack);
    double lo = std::max(0.05, center - plan_.rackDriftSigma);
    double hi = std::min(1.0, center + plan_.rackDriftSigma);
    return rng_.uniform(lo, hi);
}

bool
FaultInjector::rackEventInWindow(int rack, double timeSec,
                                 double dtSec) const
{
    if (plan_.rackEventPerHour <= 0.0 || plan_.rackEventWindowSec <= 0.0 ||
        dtSec <= 0.0)
        return false;
    const double w = plan_.rackEventWindowSec;
    const double pWindow =
        std::min(1.0, plan_.rackEventPerHour * w / 3600.0);
    // An event fires at the start of its decision window; scan the
    // window starts landing in (timeSec - dtSec, timeSec].  With the
    // telemetry cadence far below the window length this examines at
    // most one start.
    auto lo = static_cast<std::int64_t>(std::floor((timeSec - dtSec) / w));
    auto hi = static_cast<std::int64_t>(std::floor(timeSec / w));
    for (std::int64_t win = lo; win <= hi; ++win) {
        double start = static_cast<double>(win) * w;
        if (start <= timeSec - dtSec || start > timeSec)
            continue;
        double u = hash01(static_cast<std::uint64_t>(win) *
                              0x9E3779B97F4A7C15ULL ^
                          (static_cast<std::uint64_t>(rack) + 1) *
                              0xD1B54A32D192ED03ULL ^
                          seed_ ^ kRackEventSalt);
        if (u < pWindow)
            return true;
    }
    return false;
}

double
FaultInjector::surgeFactor(double timeSec) const
{
    if (plan_.surgeWindowRate <= 0.0 || plan_.surgeWindowSec <= 0.0)
        return 1.0;
    auto window =
        static_cast<std::uint64_t>(timeSec / plan_.surgeWindowSec);
    double u = static_cast<double>(
                   mix64(window ^ seed_ ^ kFaultSalt) >> 11) *
               0x1.0p-53;
    if (u >= plan_.surgeWindowRate)
        return 1.0;
    // Surge height varies per window: reuse the decision draw's
    // position inside the acceptance band.
    double height = plan_.surgeWindowRate > 0.0
                        ? u / plan_.surgeWindowRate
                        : 0.0;
    return 1.0 + plan_.surgeMagnitude * (0.5 + 0.5 * height);
}

double
FaultInjector::domainSurgeFactor(int region, double timeSec) const
{
    if (plan_.domainSurgeRate <= 0.0 || plan_.surgeWindowSec <= 0.0)
        return 1.0;
    auto window =
        static_cast<std::uint64_t>(timeSec / plan_.surgeWindowSec);
    double u = hash01(window * 0xBF58476D1CE4E5B9ULL ^
                      (static_cast<std::uint64_t>(region) + 1) *
                          0x94D049BB133111EBULL ^
                      seed_ ^ kDomainSurgeSalt);
    if (u >= plan_.domainSurgeRate)
        return 1.0;
    double height = u / plan_.domainSurgeRate;
    return 1.0 + plan_.domainSurgeMagnitude * (0.5 + 0.5 * height);
}

} // namespace softsku
