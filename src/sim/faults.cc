#include "sim/faults.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

/** Salt separating the fault streams from the measurement-noise ones. */
constexpr std::uint64_t kFaultSalt = 0xFA17FA17FA17FA17ULL;

FaultPlan
preset(const std::string &name)
{
    FaultPlan plan;
    if (name == "off")
        return plan;
    if (name == "mild") {
        plan.crashPerHour = 0.005;
        plan.sampleDropRate = 0.005;
        plan.sampleCorruptRate = 0.002;
        plan.surgeWindowRate = 0.02;
        plan.configApplyFailRate = 0.01;
        plan.stuckRebootRate = 0.02;
        return plan;
    }
    if (name == "moderate") {
        plan.crashPerHour = 0.02;
        plan.sampleDropRate = 0.02;
        plan.sampleCorruptRate = 0.01;
        plan.surgeWindowRate = 0.05;
        plan.configApplyFailRate = 0.03;
        plan.stuckRebootRate = 0.05;
        return plan;
    }
    if (name == "severe") {
        plan.crashPerHour = 0.1;
        plan.sampleDropRate = 0.08;
        plan.sampleCorruptRate = 0.04;
        plan.surgeWindowRate = 0.15;
        plan.configApplyFailRate = 0.1;
        plan.stuckRebootRate = 0.15;
        return plan;
    }
    fatal("unknown fault preset '%s' (off, mild, moderate, severe)",
          name.c_str());
}

} // namespace

bool
FaultPlan::any() const
{
    return crashPerHour > 0.0 || sampleDropRate > 0.0 ||
           sampleCorruptRate > 0.0 || surgeWindowRate > 0.0 ||
           configApplyFailRate > 0.0 || stuckRebootRate > 0.0;
}

FaultPlan
FaultPlan::fromSpec(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &partRaw : split(spec, ',')) {
        std::string part(trim(partRaw));
        if (part.empty())
            continue;
        auto eq = part.find('=');
        if (eq == std::string::npos) {
            plan = preset(toLower(part));
            continue;
        }
        std::string key = toLower(trim(part.substr(0, eq)));
        std::string text(trim(part.substr(eq + 1)));
        auto value = parseDouble(text);
        if (!value || *value < 0.0)
            fatal("fault spec: '%s' is not a non-negative number in "
                  "'%s'", text.c_str(), part.c_str());
        if (key == "crash")
            plan.crashPerHour = *value;
        else if (key == "drop")
            plan.sampleDropRate = *value;
        else if (key == "corrupt")
            plan.sampleCorruptRate = *value;
        else if (key == "spike")
            plan.corruptSpikeFactor = *value;
        else if (key == "surge")
            plan.surgeWindowRate = *value;
        else if (key == "surge_mag")
            plan.surgeMagnitude = *value;
        else if (key == "apply")
            plan.configApplyFailRate = *value;
        else if (key == "stuck")
            plan.stuckRebootRate = *value;
        else if (key == "stuck_extra")
            plan.stuckRebootExtraSec = *value;
        else if (key == "perf_min")
            plan.replacementPerfMin = *value;
        else
            fatal("fault spec: unknown key '%s' (crash, drop, corrupt, "
                  "spike, surge, surge_mag, apply, stuck, stuck_extra, "
                  "perf_min)", key.c_str());
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    if (!any())
        return "off";
    std::vector<std::string> parts;
    if (crashPerHour > 0.0)
        parts.push_back(format("crash=%g/h", crashPerHour));
    if (sampleDropRate > 0.0)
        parts.push_back(format("drop=%g", sampleDropRate));
    if (sampleCorruptRate > 0.0)
        parts.push_back(format("corrupt=%g", sampleCorruptRate));
    if (surgeWindowRate > 0.0)
        parts.push_back(format("surge=%g", surgeWindowRate));
    if (configApplyFailRate > 0.0)
        parts.push_back(format("apply=%g", configApplyFailRate));
    if (stuckRebootRate > 0.0)
        parts.push_back(format("stuck=%g", stuckRebootRate));
    return join(parts, ",");
}

Json
FaultPlan::toJson() const
{
    Json doc = Json::object();
    doc.set("crash_per_hour", Json(crashPerHour));
    doc.set("sample_drop_rate", Json(sampleDropRate));
    doc.set("sample_corrupt_rate", Json(sampleCorruptRate));
    doc.set("surge_window_rate", Json(surgeWindowRate));
    doc.set("surge_magnitude", Json(surgeMagnitude));
    doc.set("config_apply_fail_rate", Json(configApplyFailRate));
    doc.set("stuck_reboot_rate", Json(stuckRebootRate));
    return doc;
}

bool
FaultTelemetry::any() const
{
    return faultsInjected() + samplesRejected + retries +
               guardrailAborts + abandoned >
           0;
}

void
FaultTelemetry::merge(const FaultTelemetry &other)
{
    samplesDropped += other.samplesDropped;
    samplesCorrupted += other.samplesCorrupted;
    samplesRejected += other.samplesRejected;
    crashes += other.crashes;
    applyFailures += other.applyFailures;
    retries += other.retries;
    guardrailAborts += other.guardrailAborts;
    abandoned += other.abandoned;
}

Json
FaultTelemetry::toJson() const
{
    Json doc = Json::object();
    doc.set("faults_injected",
            Json(static_cast<long long>(faultsInjected())));
    doc.set("samples_dropped",
            Json(static_cast<long long>(samplesDropped)));
    doc.set("samples_corrupted",
            Json(static_cast<long long>(samplesCorrupted)));
    doc.set("samples_rejected",
            Json(static_cast<long long>(samplesRejected)));
    doc.set("crashes", Json(static_cast<long long>(crashes)));
    doc.set("apply_failures",
            Json(static_cast<long long>(applyFailures)));
    doc.set("retries", Json(static_cast<long long>(retries)));
    doc.set("guardrail_aborts",
            Json(static_cast<long long>(guardrailAborts)));
    doc.set("abandoned", Json(static_cast<long long>(abandoned)));
    return doc;
}

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan), seed_(seed), rng_(seed ^ kFaultSalt)
{
}

FaultInjector
FaultInjector::forStream(std::uint64_t streamId) const
{
    FaultInjector child(plan_, seed_);
    child.rng_ = Rng(seed_ ^ kFaultSalt).split(streamId);
    return child;
}

bool
FaultInjector::dropSample()
{
    return plan_.sampleDropRate > 0.0 && rng_.chance(plan_.sampleDropRate);
}

bool
FaultInjector::corruptSample()
{
    return plan_.sampleCorruptRate > 0.0 &&
           rng_.chance(plan_.sampleCorruptRate);
}

double
FaultInjector::corruptionFactor()
{
    // Half the corruptions read back as zeros (a wedged counter), half
    // as spikes (multiplexing glitch).
    return rng_.chance(0.5) ? 0.0 : plan_.corruptSpikeFactor;
}

bool
FaultInjector::crash(double dtSec)
{
    if (plan_.crashPerHour <= 0.0 || dtSec <= 0.0)
        return false;
    return rng_.chance(plan_.crashPerHour * dtSec / 3600.0);
}

bool
FaultInjector::applyFails()
{
    return plan_.configApplyFailRate > 0.0 &&
           rng_.chance(plan_.configApplyFailRate);
}

bool
FaultInjector::rebootSticks()
{
    return plan_.stuckRebootRate > 0.0 &&
           rng_.chance(plan_.stuckRebootRate);
}

double
FaultInjector::replacementPerfFactor()
{
    return rng_.uniform(plan_.replacementPerfMin, 1.0);
}

double
FaultInjector::surgeFactor(double timeSec) const
{
    if (plan_.surgeWindowRate <= 0.0 || plan_.surgeWindowSec <= 0.0)
        return 1.0;
    auto window =
        static_cast<std::uint64_t>(timeSec / plan_.surgeWindowSec);
    double u = static_cast<double>(
                   mix64(window ^ seed_ ^ kFaultSalt) >> 11) *
               0x1.0p-53;
    if (u >= plan_.surgeWindowRate)
        return 1.0;
    // Surge height varies per window: reuse the decision draw's
    // position inside the acceptance band.
    double height = plan_.surgeWindowRate > 0.0
                        ? u / plan_.surgeWindowRate
                        : 0.0;
    return 1.0 + plan_.surgeMagnitude * (0.5 + 0.5 * height);
}

} // namespace softsku
