#include "sim/btb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace softsku {

Btb::Btb(int entries, int ways)
    : ways_(std::max(ways, 1))
{
    SOFTSKU_ASSERT(entries > 0);
    sets_ = static_cast<std::uint64_t>(std::max(entries / ways_, 1));
    entries_.assign(sets_ * static_cast<std::uint64_t>(ways_), Entry{});
}

bool
Btb::access(std::uint64_t branchPc)
{
    std::uint64_t setIndex = (branchPc >> 2) % sets_;
    std::uint64_t tag = branchPc;
    Entry *set = &entries_[setIndex * static_cast<std::uint64_t>(ways_)];
    ++useClock_;

    for (int w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;

    int victim = 0;
    std::uint64_t oldest = ~0ULL;
    for (int w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = w;
            break;
        }
        if (set[w].lastUse < oldest) {
            oldest = set[w].lastUse;
            victim = w;
        }
    }
    set[victim] = {tag, useClock_, true};
    return false;
}

void
Btb::flush()
{
    for (Entry &e : entries_)
        e.valid = false;
}

} // namespace softsku
