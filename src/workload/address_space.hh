/**
 * @file
 * Canonical virtual-address-space layout for a workload profile.
 *
 * The code region and each data region get fixed, well-separated bases
 * so the stream generators, the page mapper, and the TLB all agree on
 * where everything lives.
 */

#ifndef SOFTSKU_WORKLOAD_ADDRESS_SPACE_HH
#define SOFTSKU_WORKLOAD_ADDRESS_SPACE_HH

#include <cstdint>
#include <vector>

#include "os/hugepage.hh"
#include "workload/profile.hh"

namespace softsku {

/** Resolved layout: one code region plus the profile's data regions. */
struct AddressSpace
{
    std::uint64_t codeBase = 0;
    std::uint64_t codeSize = 0;
    /** Base address of data region i (profile order). */
    std::vector<std::uint64_t> dataBases;

    /**
     * Regions in PageMapper form: element 0 is code, elements 1..N are
     * the data regions in profile order.
     */
    std::vector<VirtualRegion> pageRegions;
};

/** Lay out @p profile's address space deterministically. */
AddressSpace layoutAddressSpace(const WorkloadProfile &profile);

} // namespace softsku

#endif // SOFTSKU_WORKLOAD_ADDRESS_SPACE_HH
