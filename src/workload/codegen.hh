/**
 * @file
 * Synthetic instruction-fetch stream generator.
 *
 * Code is modelled as a population of functions whose popularity
 * follows a Zipf distribution (hot/warm/cold working sets).  Execution
 * advances sequentially through basic blocks; branch instructions
 * redirect fetch — short intra-function jumps, calls to other functions
 * (with a return stack), and returns.  Web's JIT additionally *remaps*
 * functions over time ("code churn"), which keeps its instruction
 * working set from ever settling into the caches — the mechanism behind
 * its extraordinary I-cache/ITLB miss rates (paper Sec. 2.4.2).
 */

#ifndef SOFTSKU_WORKLOAD_CODEGEN_HH
#define SOFTSKU_WORKLOAD_CODEGEN_HH

#include <cstdint>
#include <vector>

#include "stats/distributions.hh"
#include "stats/rng.hh"
#include "workload/profile.hh"

namespace softsku {

/** Streaming program-counter generator for one hardware thread. */
class CodeGenerator
{
  public:
    /**
     * @param profile  workload being modelled
     * @param codeBase base virtual address of the text region
     * @param seed     stream seed
     */
    CodeGenerator(const WorkloadProfile &profile, std::uint64_t codeBase,
                  std::uint64_t seed);

    /** PC of the instruction about to execute. */
    std::uint64_t pc() const { return pc_; }

    /** Advance past one non-branch instruction. */
    void advance();

    /**
     * Execute one branch instruction.
     * @return true when the branch redirects fetch (was taken)
     */
    bool executeBranch();

    /**
     * Apply JIT code churn for @p instructions elapsed: remaps the
     * profile-configured fraction of functions to fresh addresses.
     */
    void applyChurn(std::uint64_t instructions);

    /**
     * Model a thread switch: jump to a different pool's code.
     * @return true when the switch crossed into a different thread pool
     */
    bool switchThread();

    /** Number of distinct functions in the model. */
    std::uint64_t functionCount() const { return functionCount_; }

    /** Virtual address of function @p id's entry. */
    std::uint64_t functionAddress(std::uint64_t id) const;

  private:
    void jumpToFunction(std::uint64_t id);

    /** Pick the next call target: Zipf hot set or uniform cold tail. */
    std::uint64_t selectFunction();

    const WorkloadProfile &profile_;
    std::uint64_t codeBase_;
    std::uint64_t codeSize_;
    std::uint64_t functionCount_;
    ZipfDistribution functionZipf_;
    Rng rng_;

    std::uint64_t pc_ = 0;
    std::uint64_t currentFunction_ = 0;
    std::uint64_t functionEnd_ = 0;

    /** Per-function remap epoch (JIT churn). */
    std::vector<std::uint32_t> epochs_;
    double churnCarry_ = 0.0;

    /** Small return stack for call/return locality. */
    std::vector<std::uint64_t> callStack_;
    /** Current thread pool id: offsets the hot set across pools. */
    std::uint64_t poolSalt_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_WORKLOAD_CODEGEN_HH
