#include "workload/codegen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace softsku {

namespace {

constexpr std::uint64_t kInsnBytes = 4;
constexpr size_t kMaxCallDepth = 16;

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

CodeGenerator::CodeGenerator(const WorkloadProfile &profile,
                             std::uint64_t codeBase, std::uint64_t seed)
    : profile_(profile), codeBase_(codeBase),
      codeSize_(profile.codeFootprintBytes),
      functionCount_(std::max<std::uint64_t>(
          1, profile.codeFootprintBytes / profile.avgFunctionBytes)),
      functionZipf_(profile.codeHotFunctions > 0
                        ? std::min(profile.codeHotFunctions, functionCount_)
                        : functionCount_,
                    profile.codeZipfSkew),
      rng_(seed)
{
    epochs_.assign(functionCount_, 0);
    jumpToFunction(selectFunction());
}

std::uint64_t
CodeGenerator::selectFunction()
{
    // A small fraction of calls reach the cold tail (error paths,
    // rarely exercised endpoints); everything else stays inside the
    // Zipf-ranked hot set.
    if (profile_.codeColdCallFraction > 0.0 &&
        rng_.chance(profile_.codeColdCallFraction)) {
        return rng_.below(functionCount_);
    }
    return functionZipf_.sample(rng_);
}

std::uint64_t
CodeGenerator::functionAddress(std::uint64_t id) const
{
    // Functions live at pseudo-random slots; a remap epoch bump moves
    // the function to a fresh slot (JIT recompilation).  Slot
    // collisions model code-cache reuse and are harmless.
    std::uint64_t slot =
        mix64(id ^ (static_cast<std::uint64_t>(epochs_[id]) << 40)) %
        functionCount_;
    return codeBase_ + slot * profile_.avgFunctionBytes;
}

void
CodeGenerator::jumpToFunction(std::uint64_t id)
{
    // Thread pools share the binary but execute different parts of it:
    // the pool rotates the popularity ranking over the same functions,
    // so a pool switch re-cools L1-I without inflating the total code
    // footprint the LLC sees.
    if (poolSalt_ != 0) {
        id = (id + poolSalt_ * (functionCount_ / 9 + 1)) % functionCount_;
    }
    currentFunction_ = id;
    pc_ = functionAddress(id);
    functionEnd_ = pc_ + profile_.avgFunctionBytes;
}

void
CodeGenerator::advance()
{
    pc_ += kInsnBytes;
    if (pc_ >= functionEnd_) {
        // Fell off the function end: return to the caller if any,
        // otherwise dispatch to a fresh function.
        if (!callStack_.empty()) {
            pc_ = callStack_.back();
            callStack_.pop_back();
            functionEnd_ =
                (pc_ - codeBase_) / profile_.avgFunctionBytes *
                    profile_.avgFunctionBytes +
                codeBase_ + profile_.avgFunctionBytes;
        } else {
            jumpToFunction(selectFunction());
        }
    }
}

bool
CodeGenerator::executeBranch()
{
    std::uint64_t branchPc = pc_;
    pc_ += kInsnBytes;
    if (!rng_.chance(profile_.branchTakenFraction))
        return false;

    if (rng_.chance(profile_.callFraction)) {
        // Call: remember the return address, enter a new function.
        if (callStack_.size() < kMaxCallDepth)
            callStack_.push_back(pc_);
        jumpToFunction(selectFunction());
    } else if (!callStack_.empty() && rng_.chance(0.4)) {
        // Return.
        pc_ = callStack_.back();
        callStack_.pop_back();
        functionEnd_ =
            (pc_ - codeBase_) / profile_.avgFunctionBytes *
                profile_.avgFunctionBytes +
            codeBase_ + profile_.avgFunctionBytes;
    } else {
        // Short intra-function jump (loop back-edge or forward skip).
        std::uint64_t funcBase = functionEnd_ - profile_.avgFunctionBytes;
        std::uint64_t span = profile_.avgFunctionBytes / kInsnBytes;
        pc_ = funcBase + rng_.below(span) * kInsnBytes;
    }
    (void)branchPc;
    return true;
}

void
CodeGenerator::applyChurn(std::uint64_t instructions)
{
    if (profile_.jitChurnPerMInsn <= 0.0)
        return;
    churnCarry_ += profile_.jitChurnPerMInsn *
                   static_cast<double>(functionCount_) *
                   static_cast<double>(instructions) / 1e6;
    while (churnCarry_ >= 1.0) {
        churnCarry_ -= 1.0;
        std::uint64_t victim = selectFunction();
        ++epochs_[victim];
    }
}

bool
CodeGenerator::switchThread()
{
    // Different thread pools execute different code: salt the
    // function→address mapping so the hot sets do not coincide.
    bool crossPool = rng_.chance(profile_.contextSwitch.crossPoolFraction);
    if (crossPool)
        poolSalt_ = rng_.next() & 0x7;
    callStack_.clear();
    jumpToFunction(selectFunction());
    return crossPool;
}

} // namespace softsku
