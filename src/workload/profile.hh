/**
 * @file
 * The microservice workload profile schema.
 *
 * The paper's seven production services are proprietary; what the paper
 * publishes is their *characterization* — path length, instruction mix,
 * working-set structure, blocking behaviour, context-switch rate, QoS
 * posture (Sec. 2).  A WorkloadProfile captures exactly those published
 * traits, and the synthetic stream generators (codegen/datagen) plus
 * the machine model turn a profile back into architectural behaviour.
 * The seven calibrated profiles live in src/services/.
 */

#ifndef SOFTSKU_WORKLOAD_PROFILE_HH
#define SOFTSKU_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/context_switch.hh"

namespace softsku {

/** Retired-instruction classes (the paper's Fig 5 categories). */
enum class InsnClass { Branch = 0, Float, Arith, Load, Store };

/** Instruction mix as fractions; should sum to ~1. */
struct InstructionMix
{
    double branch = 0.15;
    double floating = 0.0;
    double arith = 0.40;
    double load = 0.30;
    double store = 0.15;

    double sum() const
    {
        return branch + floating + arith + load + store;
    }
};

/** Data-access pattern of one region. */
enum class DataPattern
{
    Sequential,    //!< streaming: high spatial locality, high MLP
    Strided,       //!< fixed stride (feature vectors, column scans)
    Random,        //!< Zipf-weighted random chunks (hash tables)
    PointerChase,  //!< dependent loads: no MLP, full exposed latency
};

/** One logical data region of the service's address space. */
struct DataRegionSpec
{
    std::string name;
    std::uint64_t sizeBytes = 0;
    DataPattern pattern = DataPattern::Random;
    std::uint64_t strideBytes = 64;    //!< for Strided
    double weight = 1.0;               //!< share of data accesses
    double zipfSkew = 0.8;             //!< line locality for Random
    /**
     * For Random/PointerChase: the popularity-ranked hot subset the
     * Zipf spans (0 = whole region).  Sized against the LLC, this is
     * what makes services capacity-sensitive (Figs 10/15): the hot set
     * fits when few cores share the LLC and thrashes when many do.
     */
    std::uint64_t hotBytes = 0;
    /** Probability a fresh access goes to the uniform cold remainder. */
    double coldFraction = 0.0;
    bool madviseHuge = false;          //!< calls madvise(MADV_HUGEPAGE)
    double thpFriendliness = 0.8;      //!< THP assembly success odds
};

/** How the service relates requests to CPU work and blocking. */
struct RequestBehavior
{
    /** Peak-load throughput order (queries per second). */
    double peakQps = 100.0;
    /** Mean request latency at peak (seconds). */
    double requestLatencySec = 1e-3;
    /** Path length: instructions per query. */
    double pathLengthInsns = 1e6;
    /** Fraction of request lifetime spent running (Fig 2a). */
    double runningFraction = 1.0;
    /** Downstream calls per request (blocking phases). */
    int blockingPhases = 0;
    /**
     * Share of request lifetime blocked on downstream I/O specifically
     * (the rest of the blocked share is queue/scheduler contention that
     * emerges in the thread-pool model).  Negative = all blocked time
     * is I/O.
     */
    double ioFraction = -1.0;
    /** Worker threads per core (>1 models over-subscription). */
    double workersPerCore = 1.0;
    /** p99 latency SLO as a multiple of the mean request latency. */
    double sloLatencyMultiplier = 5.0;
};

/** Everything the simulator needs to reproduce one microservice. */
struct WorkloadProfile
{
    std::string name;            //!< e.g. "web"
    std::string displayName;     //!< e.g. "Web"
    std::string domain;          //!< service domain (web/feed/ads/cache)
    std::string defaultPlatform; //!< fleet deployment (Table 1 mapping)

    InstructionMix mix;
    RequestBehavior request;

    // -- code side --------------------------------------------------------
    /** Total instruction footprint (bytes of distinct code). */
    std::uint64_t codeFootprintBytes = 4ull << 20;
    /** Zipf skew for function popularity; higher = tighter hot set. */
    double codeZipfSkew = 1.0;
    /**
     * Size of the hot function set the Zipf ranking spans; 0 means the
     * whole footprint.  Functions beyond it are only reached via the
     * cold-call fraction below — this separates the steady hot working
     * set (L1-I/L2/LLC residence) from the long cold tail (LLC code
     * misses).
     */
    std::uint64_t codeHotFunctions = 0;
    /** Probability a call targets the uniform cold tail. */
    double codeColdCallFraction = 0.0;
    /** Mean function size in bytes. */
    std::uint64_t avgFunctionBytes = 512;
    /** Mean basic-block run between branches (bytes). */
    std::uint64_t avgBasicBlockBytes = 32;
    /** Probability a taken branch is a call to another function. */
    double callFraction = 0.25;
    /** Fraction of functions remapped per million instructions (JIT). */
    double jitChurnPerMInsn = 0.0;
    /** Code region honours madvise(MADV_HUGEPAGE). */
    bool codeMadviseHuge = false;
    /** Code cache is allocated via the SHP (hugetlbfs) API. */
    bool codeUsesShpApi = false;
    /** THP assembly success odds for the code region. */
    double codeThpFriendliness = 0.85;

    // -- branch behaviour --------------------------------------------------
    /** Baseline per-branch misprediction probability. */
    double branchMispredictRate = 0.02;
    /** Fraction of branches that are taken (redirect fetch). */
    double branchTakenFraction = 0.55;

    // -- data side ----------------------------------------------------------
    std::vector<DataRegionSpec> dataRegions;
    /**
     * Temporal locality: fraction of data accesses that re-touch one of
     * the last few distinct lines (stack slots, the current object)
     * instead of generating a fresh address.  Directly sets the L1-D
     * hit rate; fresh accesses (by region pattern) drive the
     * L2/LLC/DRAM miss profile.
     */
    double dataReuseFraction = 0.93;
    /**
     * Fraction of non-near accesses that re-touch request-scoped data
     * from the recent past (the last ~2 MiB of fresh lines).  These
     * reuse distances land between L2 and LLC capacity, so this knob
     * sets how much of the L2 miss stream the LLC can absorb — and,
     * because the window scales per core, how capacity-sensitive the
     * service is to LLC sharing (Figs 10 and 15).
     */
    double dataMidReuseFraction = 0.55;
    /**
     * Fraction of data that is *shared* across cores (common objects,
     * read-mostly tables) rather than private per-request state.  All
     * active cores re-touch shared lines, so they stay LLC-resident;
     * private data from other cores is pure LLC pressure.
     */
    double sharedDataFraction = 0.3;

    // -- OS interaction ------------------------------------------------------
    ContextSwitchModel contextSwitch;
    /** Kernel-mode share of CPU time beyond direct switch cost. */
    double kernelTimeShare = 0.02;
    /** Cache/TLB disturbance per switch (fraction invalidated). */
    double switchDisturbance = 0.15;

    // -- performance shape ----------------------------------------------------
    /** Ideal-pipeline CPI (ILP limit with no stalls). */
    double baseCpi = 0.55;
    /** Throughput uplift from SMT-2 at saturation. */
    double smtThroughputScale = 1.25;
    /** CPU utilization ceiling the load balancer enforces (Fig 3). */
    double cpuUtilizationCap = 0.95;
    /** Memory-level parallelism for overlapping data misses. */
    double dataMlp = 4.0;
    /** Dirty-line writeback traffic per LLC miss (fraction). */
    double writebackFraction = 0.3;

    /**
     * Heavy AVX use eats into the shared core/uncore power budget, so
     * such services run 0.2 GHz below the platform's sustained turbo
     * (the paper's Ads1).
     */
    bool usesAvx = false;

    // -- μSKU applicability flags (Sec. 4 "input file") -----------------------
    /** Service requests SHPs at all (Ads1 does not). */
    bool usesShp = true;
    /** Service tolerates μSKU-driven reboots on live traffic. */
    bool toleratesReboot = true;
    /** MIPS is a valid throughput proxy (false for Cache). */
    bool mipsValidMetric = true;

    /** Total bytes across data regions. */
    std::uint64_t dataFootprintBytes() const;

    /** Sanity-check invariants; fatal() with a message when broken. */
    void validate() const;
};

} // namespace softsku

#endif // SOFTSKU_WORKLOAD_PROFILE_HH
