#include "workload/address_space.hh"

namespace softsku {

namespace {

/** Round @p value up to a 2 MiB boundary so regions are THP-alignable. */
std::uint64_t
alignHuge(std::uint64_t value)
{
    return (value + kPage2m - 1) & ~(kPage2m - 1);
}

} // namespace

AddressSpace
layoutAddressSpace(const WorkloadProfile &profile)
{
    AddressSpace space;
    std::uint64_t cursor = 0x0000'4000'0000ull;

    space.codeBase = cursor;
    space.codeSize = alignHuge(profile.codeFootprintBytes);
    VirtualRegion code;
    code.name = profile.name + ".text";
    code.kind = RegionKind::Code;
    code.base = space.codeBase;
    code.sizeBytes = space.codeSize;
    code.madviseHuge = profile.codeMadviseHuge;
    code.usesShpApi = profile.codeUsesShpApi;
    code.thpFriendliness = profile.codeThpFriendliness;
    space.pageRegions.push_back(code);
    cursor += space.codeSize + (64ull << 20);   // guard gap

    for (const DataRegionSpec &spec : profile.dataRegions) {
        std::uint64_t size = alignHuge(spec.sizeBytes);
        space.dataBases.push_back(cursor);
        VirtualRegion region;
        region.name = profile.name + "." + spec.name;
        region.kind = RegionKind::Heap;
        region.base = cursor;
        region.sizeBytes = size;
        region.madviseHuge = spec.madviseHuge;
        region.usesShpApi = false;
        region.thpFriendliness = spec.thpFriendliness;
        space.pageRegions.push_back(region);
        cursor += size + (64ull << 20);
    }
    return space;
}

} // namespace softsku
