#include "workload/profile.hh"

#include <cmath>

#include "util/logging.hh"

namespace softsku {

std::uint64_t
WorkloadProfile::dataFootprintBytes() const
{
    std::uint64_t total = 0;
    for (const DataRegionSpec &region : dataRegions)
        total += region.sizeBytes;
    return total;
}

void
WorkloadProfile::validate() const
{
    if (name.empty())
        fatal("workload profile has no name");
    if (std::fabs(mix.sum() - 1.0) > 0.02) {
        fatal("profile '%s': instruction mix sums to %.3f, expected ~1",
              name.c_str(), mix.sum());
    }
    if (codeFootprintBytes == 0)
        fatal("profile '%s': zero code footprint", name.c_str());
    if (dataRegions.empty())
        fatal("profile '%s': no data regions", name.c_str());
    double weightSum = 0.0;
    for (const DataRegionSpec &region : dataRegions) {
        if (region.sizeBytes == 0) {
            fatal("profile '%s': region '%s' has zero size", name.c_str(),
                  region.name.c_str());
        }
        weightSum += region.weight;
    }
    if (weightSum <= 0.0)
        fatal("profile '%s': data region weights sum to zero", name.c_str());
    if (request.pathLengthInsns <= 0.0)
        fatal("profile '%s': non-positive path length", name.c_str());
    if (baseCpi <= 0.0)
        fatal("profile '%s': non-positive base CPI", name.c_str());
    if (dataMlp < 1.0)
        fatal("profile '%s': data MLP must be >= 1", name.c_str());
}

} // namespace softsku
