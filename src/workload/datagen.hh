/**
 * @file
 * Synthetic data-access stream generator.
 *
 * Each profile data region generates addresses by its declared pattern:
 * sequential streams, fixed strides (dense feature vectors), Zipf-
 * weighted random chunks (hash tables, object caches), or dependent
 * pointer chases.  The pattern also fixes the memory-level parallelism
 * the CPI model may assume when overlapping misses from that region.
 */

#ifndef SOFTSKU_WORKLOAD_DATAGEN_HH
#define SOFTSKU_WORKLOAD_DATAGEN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/distributions.hh"
#include "stats/rng.hh"
#include "workload/address_space.hh"
#include "workload/profile.hh"

namespace softsku {

/** One generated data access. */
struct DataAccess
{
    std::uint64_t addr = 0;
    /** Overlap factor the CPI model may assume for a miss here. */
    double mlp = 1.0;
    /** Index of the generating region in the profile's region list. */
    std::uint32_t regionIndex = 0;
    /**
     * For strided/sequential regions: the stable program counter of
     * the load in the traversal loop.  Stride prefetchers key on the
     * PC, so a stable one lets the DCU IP prefetcher lock onto the
     * stream exactly as it does for real array traversals.  Zero for
     * irregular accesses (use the architectural PC).
     */
    std::uint64_t streamPc = 0;
};

/** Streaming data-address generator for one hardware thread. */
class DataGenerator
{
  public:
    /**
     * @param profile workload being modelled
     * @param space   resolved address-space layout
     * @param seed    stream seed
     */
    DataGenerator(const WorkloadProfile &profile, const AddressSpace &space,
                  std::uint64_t seed);

    /** Generate the next data access (loads and stores share streams). */
    DataAccess next();

    /** Model a thread switch: restart cursors in a different request. */
    void switchThread();

  private:
    /** Generate a fresh address by the selected region's pattern. */
    DataAccess fresh();

    struct RegionState
    {
        const DataRegionSpec *spec = nullptr;
        std::uint64_t base = 0;
        std::uint64_t size = 0;
        std::uint64_t cursor = 0;
        std::unique_ptr<ZipfDistribution> chunkZipf;
        std::uint64_t chunkCount = 0;
        double mlp = 1.0;
    };

    const WorkloadProfile &profile_;
    Rng rng_;
    DiscreteDistribution regionChoice_;
    std::vector<RegionState> regions_;

    /** Ring of recently issued accesses for the temporal-reuse layer. */
    std::vector<DataAccess> reuseRing_;
    size_t reuseCursor_ = 0;

    /** Large ring of recent fresh lines: request-scoped (LLC-scale)
     *  reuse distances. */
    std::vector<DataAccess> midRing_;
    size_t midCursor_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_WORKLOAD_DATAGEN_HH
