#include "workload/datagen.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace softsku {

namespace {

std::vector<double>
regionWeights(const WorkloadProfile &profile)
{
    std::vector<double> weights;
    weights.reserve(profile.dataRegions.size());
    for (const DataRegionSpec &spec : profile.dataRegions)
        weights.push_back(spec.weight);
    return weights;
}

} // namespace

DataGenerator::DataGenerator(const WorkloadProfile &profile,
                             const AddressSpace &space, std::uint64_t seed)
    : profile_(profile), rng_(seed), regionChoice_(regionWeights(profile))
{
    SOFTSKU_ASSERT(space.dataBases.size() == profile.dataRegions.size());
    regions_.reserve(profile.dataRegions.size());
    for (size_t i = 0; i < profile.dataRegions.size(); ++i) {
        RegionState state;
        state.spec = &profile.dataRegions[i];
        state.base = space.dataBases[i];
        state.size = state.spec->sizeBytes;
        state.cursor = 0;
        switch (state.spec->pattern) {
          case DataPattern::Sequential:
            state.mlp = std::min(profile.dataMlp * 1.5, 10.0);
            break;
          case DataPattern::Strided:
            state.mlp = profile.dataMlp;
            break;
          case DataPattern::Random:
            state.mlp = profile.dataMlp;
            break;
          case DataPattern::PointerChase:
            state.mlp = 1.0;
            break;
        }
        if (state.spec->pattern == DataPattern::Random ||
            state.spec->pattern == DataPattern::PointerChase) {
            // Line-granular popularity: rank r maps to line r of the
            // region, so hot lines are truly hot (cache-resident) and
            // cluster into hot pages (TLB-resident).  The Zipf spans
            // the declared hot subset; the cold remainder is reached
            // via the region's coldFraction.
            std::uint64_t lines =
                std::max<std::uint64_t>(1, state.size / 64);
            std::uint64_t hotLines =
                state.spec->hotBytes > 0
                    ? std::min<std::uint64_t>(state.spec->hotBytes / 64,
                                              lines)
                    : lines;
            state.chunkCount = hotLines;
            state.chunkZipf = std::make_unique<ZipfDistribution>(
                hotLines, state.spec->zipfSkew);
        }
        regions_.push_back(std::move(state));
    }
}

DataAccess
DataGenerator::next()
{
    // Temporal-reuse layer: the bulk of data accesses re-touch one of
    // the last few distinct lines (stack slots, the object being
    // operated on) — this is what gives real services their ~95% L1-D
    // hit rates.  The fresh remainder follows the region patterns and
    // drives the L2/LLC/DRAM miss profile, with mid-level reuse coming
    // from hot Zipf chunks and prefetched streams.
    constexpr size_t kNearWindow = 64;
    if (!reuseRing_.empty() && rng_.chance(profile_.dataReuseFraction)) {
        size_t window = std::min(reuseRing_.size(), kNearWindow);
        size_t age = rng_.below(window);
        size_t idx =
            (reuseCursor_ + reuseRing_.size() - 1 - age) % reuseRing_.size();
        DataAccess reused = reuseRing_[idx];
        // Re-touches are not part of the traversal loop: routing them
        // through the stream PC would scramble the stride predictor.
        reused.streamPc = 0;
        return reused;
    }

    // Mid-distance reuse: request-scoped objects revisited after the
    // L1/L2 forgot them but while the LLC (absent contention) still
    // remembers.
    constexpr size_t kMidWindow = 65536;
    if (!midRing_.empty() &&
        rng_.chance(profile_.dataMidReuseFraction)) {
        DataAccess reused = midRing_[rng_.below(midRing_.size())];
        reused.streamPc = 0;
        return reused;
    }

    DataAccess access = fresh();
    if (reuseRing_.size() < kNearWindow) {
        reuseRing_.push_back(access);
        reuseCursor_ = reuseRing_.size() % kNearWindow;
    } else {
        reuseRing_[reuseCursor_] = access;
        reuseCursor_ = (reuseCursor_ + 1) % kNearWindow;
    }
    if (midRing_.size() < kMidWindow) {
        midRing_.push_back(access);
        midCursor_ = midRing_.size() % kMidWindow;
    } else {
        midRing_[midCursor_] = access;
        midCursor_ = (midCursor_ + 1) % kMidWindow;
    }
    return access;
}

DataAccess
DataGenerator::fresh()
{
    std::uint32_t index = regionChoice_.sample(rng_);
    RegionState &region = regions_[index];
    DataAccess access;
    access.mlp = region.mlp;
    access.regionIndex = index;

    switch (region.spec->pattern) {
      case DataPattern::Sequential:
        region.cursor = (region.cursor + 64) % region.size;
        access.addr = region.base + region.cursor;
        access.streamPc = 0x7000 + index * 64;
        break;

      case DataPattern::Strided:
        region.cursor =
            (region.cursor + region.spec->strideBytes) % region.size;
        access.addr = region.base + region.cursor;
        access.streamPc = 0x7000 + index * 64;
        break;

      case DataPattern::Random:
      case DataPattern::PointerChase: {
        // Popularity-weighted line within the hot subset, or a uniform
        // draw from the cold remainder (compulsory-miss traffic).
        std::uint64_t line;
        std::uint64_t totalLines = region.size / 64;
        if (region.spec->coldFraction > 0.0 &&
            rng_.chance(region.spec->coldFraction)) {
            line = rng_.below(totalLines);
        } else {
            line = region.chunkZipf->sample(rng_);
        }
        access.addr = region.base + line * 64;
        break;
      }
    }
    return access;
}

void
DataGenerator::switchThread()
{
    for (RegionState &region : regions_) {
        if (region.size > 0)
            region.cursor = rng_.below(region.size) & ~63ull;
    }
}

} // namespace softsku
