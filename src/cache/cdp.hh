/**
 * @file
 * Intel RDT helpers: Cache Allocation Technology (CAT) capacity masks
 * and Code/Data Prioritization (CDP) partitions, applied to the LLC
 * model.
 *
 * CAT (Fig 10): restrict *both* access types to the low N ways.
 * CDP (Fig 16): give data the low D ways and code the high C ways,
 * with D + C equal to the platform's LLC associativity.
 */

#ifndef SOFTSKU_CACHE_CDP_HH
#define SOFTSKU_CACHE_CDP_HH

#include <cstdint>

namespace softsku {

class SetAssocCache;

/** Contiguous low mask of @p ways bits. */
std::uint64_t lowWayMask(int ways);

/** Contiguous mask of @p ways bits starting at bit @p shift. */
std::uint64_t wayMaskAt(int ways, int shift);

/**
 * Apply a CAT capacity limit: both code and data may allocate only in
 * the low @p enabledWays ways.  Passing the cache's full associativity
 * restores the default.
 */
void applyCat(SetAssocCache &llc, int enabledWays);

/**
 * Apply a CDP partition: data allocates in the low @p dataWays ways,
 * code in the next @p codeWays ways.  fatal() when the split does not
 * cover the associativity exactly (user error, mirrors resctrl).
 */
void applyCdp(SetAssocCache &llc, int dataWays, int codeWays);

/** Remove any partitioning (the production default: shared ways). */
void clearRdt(SetAssocCache &llc);

} // namespace softsku

#endif // SOFTSKU_CACHE_CDP_HH
