#include "cache/cdp.hh"

#include "cache/cache.hh"
#include "util/logging.hh"

namespace softsku {

std::uint64_t
lowWayMask(int ways)
{
    if (ways <= 0)
        return 0;
    if (ways >= 64)
        return ~0ULL;
    return (1ULL << ways) - 1;
}

std::uint64_t
wayMaskAt(int ways, int shift)
{
    return lowWayMask(ways) << shift;
}

void
applyCat(SetAssocCache &llc, int enabledWays)
{
    if (enabledWays < 1 || enabledWays > llc.ways()) {
        fatal("CAT way count %d out of range [1, %d] for %s", enabledWays,
              llc.ways(), llc.name().c_str());
    }
    std::uint64_t mask = lowWayMask(enabledWays);
    llc.setWayMask(AccessType::Code, mask);
    llc.setWayMask(AccessType::Data, mask);
}

void
applyCdp(SetAssocCache &llc, int dataWays, int codeWays)
{
    if (dataWays < 1 || codeWays < 1 ||
        dataWays + codeWays != llc.ways()) {
        fatal("CDP split {%d data, %d code} must cover %d LLC ways",
              dataWays, codeWays, llc.ways());
    }
    llc.setWayMask(AccessType::Data, lowWayMask(dataWays));
    llc.setWayMask(AccessType::Code, wayMaskAt(codeWays, dataWays));
}

void
clearRdt(SetAssocCache &llc)
{
    llc.clearWayMasks();
}

} // namespace softsku
