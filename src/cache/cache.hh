/**
 * @file
 * Trace-driven set-associative cache model with code/data-typed
 * accesses, way partitioning (Intel CAT), and code/data prioritization
 * (Intel CDP).
 *
 * The characterization half of the paper leans on per-level code vs
 * data MPKI (Figs 8-10) and μSKU's CDP knob repartitions LLC ways
 * between code and data (Fig 16); both behaviours fall directly out of
 * this model.  CDP semantics follow the hardware: *allocation* is
 * restricted to the ways in the access type's mask, while *lookups* hit
 * in any way.
 */

#ifndef SOFTSKU_CACHE_CACHE_HH
#define SOFTSKU_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/platform.hh"
#include "stats/rng.hh"

namespace softsku {

/** Classification of a cache access for typed stats and CDP. */
enum class AccessType { Code = 0, Data = 1 };

/**
 * Replacement policy.  L1/L2 behave like true LRU; shared LLCs use
 * re-reference interval prediction (SRRIP): new lines enter with a
 * long predicted re-reference interval (prefetches longest) and are
 * promoted on re-use, so single-use streaming data is evicted before
 * frequently re-referenced code/hot lines — the scan resistance real
 * server LLCs rely on.
 */
enum class ReplPolicy { Lru, Srrip };

/** Per-type hit/miss counters for one cache. */
struct CacheStats
{
    std::uint64_t accesses[2] = {0, 0};       //!< by AccessType
    std::uint64_t misses[2] = {0, 0};
    std::uint64_t prefetchFills = 0;          //!< lines installed by pf
    std::uint64_t prefetchUseful = 0;         //!< pf lines later demanded
    std::uint64_t evictions = 0;

    std::uint64_t totalAccesses() const { return accesses[0] + accesses[1]; }
    std::uint64_t totalMisses() const { return misses[0] + misses[1]; }

    /** Misses per kilo-instruction for one type. */
    double mpki(AccessType type, std::uint64_t instructions) const;

    /** Combined misses per kilo-instruction. */
    double totalMpki(std::uint64_t instructions) const;

    void clear() { *this = CacheStats(); }

    /** Exact equality — the batched/scalar bit-identity tests' probe. */
    bool operator==(const CacheStats &) const = default;
};

/**
 * One set-associative cache level.
 *
 * Replacement is LRU within the ways the access type is allowed to
 * allocate into.  Addresses are *line* addresses (byte address divided
 * by the line size) — callers shift once at the boundary.
 */
class SetAssocCache
{
  public:
    /**
     * @param name     for diagnostics
     * @param geometry size/ways/line from the platform spec
     * @param policy   replacement policy (LRU default)
     */
    SetAssocCache(std::string name, const CacheGeometry &geometry,
                  ReplPolicy policy = ReplPolicy::Lru);

    /**
     * Look up a line; on a miss the line is installed (allocating only
     * within the access type's way mask).
     *
     * @param lineAddr   line-granular address
     * @param type       code or data
     * @param isPrefetch true when installed on behalf of a prefetcher
     * @return true on hit
     */
    bool access(std::uint64_t lineAddr, AccessType type,
                bool isPrefetch = false);

    /**
     * Same allocation behaviour as access(), but records no stats —
     * used to model interference from other cores sharing this cache.
     * @return true on hit
     */
    bool touch(std::uint64_t lineAddr, AccessType type);

    /** Non-allocating presence check. */
    bool probe(std::uint64_t lineAddr) const;

    /** Invalidate every line (full flush). */
    void flush();

    /**
     * Invalidate a random fraction of resident lines — the disturbance
     * a context switch or competing thread inflicts.
     */
    void disturb(double fraction, Rng &rng);

    /**
     * Restrict allocation for @p type to the ways set in @p mask
     * (bit i = way i).  Used for CAT capacity sweeps and CDP.
     */
    void setWayMask(AccessType type, std::uint64_t mask);

    /** Allow both types to allocate anywhere (the production default). */
    void clearWayMasks();

    /** Current allocation mask for @p type. */
    std::uint64_t wayMask(AccessType type) const
    {
        return wayMask_[static_cast<int>(type)];
    }

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

    const std::string &name() const { return name_; }
    int ways() const { return ways_; }
    std::uint64_t sets() const { return sets_; }

    /** Number of currently valid lines (testing/diagnostics). */
    std::uint64_t residentLines() const;

  private:
    bool doAccess(std::uint64_t lineAddr, AccessType type, bool isPrefetch,
                  bool record);

    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        std::uint8_t rrpv = 3;
        bool valid = false;
        bool prefetched = false;
    };

    int findVictimLru(Line *set, std::uint64_t mask) const;
    int findVictimSrrip(Line *set, std::uint64_t mask) const;

    Line *setBase(std::uint64_t setIndex)
    {
        return &lines_[setIndex * static_cast<std::uint64_t>(ways_)];
    }
    const Line *setBase(std::uint64_t setIndex) const
    {
        return &lines_[setIndex * static_cast<std::uint64_t>(ways_)];
    }

    std::string name_;
    std::uint64_t sets_;
    int ways_;
    ReplPolicy policy_;
    std::uint64_t wayMask_[2];
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace softsku

#endif // SOFTSKU_CACHE_CACHE_HH
