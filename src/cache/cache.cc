#include "cache/cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace softsku {

double
CacheStats::mpki(AccessType type, std::uint64_t instructions) const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(misses[static_cast<int>(type)]) * 1000.0 /
           static_cast<double>(instructions);
}

double
CacheStats::totalMpki(std::uint64_t instructions) const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(totalMisses()) * 1000.0 /
           static_cast<double>(instructions);
}

SetAssocCache::SetAssocCache(std::string name, const CacheGeometry &geometry,
                             ReplPolicy policy)
    : name_(std::move(name)), sets_(geometry.sets()), ways_(geometry.ways),
      policy_(policy)
{
    SOFTSKU_ASSERT(ways_ > 0 && ways_ <= 64);
    SOFTSKU_ASSERT(sets_ > 0);
    std::uint64_t all = ways_ == 64 ? ~0ULL : ((1ULL << ways_) - 1);
    wayMask_[0] = all;
    wayMask_[1] = all;
    lines_.assign(sets_ * static_cast<std::uint64_t>(ways_), Line{});
}

bool
SetAssocCache::touch(std::uint64_t lineAddr, AccessType type)
{
    return doAccess(lineAddr, type, false, false);
}

bool
SetAssocCache::access(std::uint64_t lineAddr, AccessType type,
                      bool isPrefetch)
{
    return doAccess(lineAddr, type, isPrefetch, true);
}

bool
SetAssocCache::doAccess(std::uint64_t lineAddr, AccessType type,
                        bool isPrefetch, bool record)
{
    std::uint64_t setIndex = lineAddr % sets_;
    std::uint64_t tag = lineAddr / sets_;
    Line *set = setBase(setIndex);
    ++useClock_;

    int typeIdx = static_cast<int>(type);
    if (record && !isPrefetch)
        ++stats_.accesses[typeIdx];

    // Hits may land in any way, regardless of partitioning.
    for (int w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.rrpv = 0;    // promote on re-reference
            if (record && !isPrefetch && line.prefetched) {
                ++stats_.prefetchUseful;
                line.prefetched = false;
            }
            return true;
        }
    }

    if (record && !isPrefetch)
        ++stats_.misses[typeIdx];

    // Allocate only within the type's way mask, preferring an invalid
    // way, then the policy's victim.
    std::uint64_t mask = wayMask_[typeIdx];
    int victim = -1;
    for (int w = 0; w < ways_; ++w) {
        if ((mask & (1ULL << w)) && !set[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim < 0) {
        victim = policy_ == ReplPolicy::Srrip ? findVictimSrrip(set, mask)
                                              : findVictimLru(set, mask);
    }
    if (victim < 0) {
        // Way mask empty for this type: the access bypasses the cache.
        return false;
    }

    Line &line = set[victim];
    if (record && line.valid)
        ++stats_.evictions;
    line.valid = true;
    line.tag = tag;
    line.lastUse = useClock_;
    // SRRIP insertion: demand lines get a long predicted interval,
    // prefetches the longest (evicted first if never referenced).
    line.rrpv = isPrefetch ? 3 : 2;
    line.prefetched = isPrefetch;
    if (record && isPrefetch)
        ++stats_.prefetchFills;
    return false;
}

int
SetAssocCache::findVictimLru(Line *set, std::uint64_t mask) const
{
    int victim = -1;
    std::uint64_t oldest = ~0ULL;
    for (int w = 0; w < ways_; ++w) {
        if (!(mask & (1ULL << w)))
            continue;
        if (set[w].lastUse < oldest) {
            oldest = set[w].lastUse;
            victim = w;
        }
    }
    return victim;
}

int
SetAssocCache::findVictimSrrip(Line *set, std::uint64_t mask) const
{
    if ((mask & ((ways_ == 64) ? ~0ULL : ((1ULL << ways_) - 1))) == 0)
        return -1;
    // Find a line predicted "distant" (rrpv == 3); if none, age the
    // permitted ways and retry — guaranteed to terminate.
    while (true) {
        for (int w = 0; w < ways_; ++w) {
            if ((mask & (1ULL << w)) && set[w].rrpv >= 3)
                return w;
        }
        for (int w = 0; w < ways_; ++w) {
            if (mask & (1ULL << w))
                ++set[w].rrpv;
        }
    }
}

bool
SetAssocCache::probe(std::uint64_t lineAddr) const
{
    std::uint64_t setIndex = lineAddr % sets_;
    std::uint64_t tag = lineAddr / sets_;
    const Line *set = setBase(setIndex);
    for (int w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

void
SetAssocCache::disturb(double fraction, Rng &rng)
{
    if (fraction <= 0.0)
        return;
    for (Line &line : lines_) {
        if (line.valid && rng.chance(fraction))
            line.valid = false;
    }
}

void
SetAssocCache::setWayMask(AccessType type, std::uint64_t mask)
{
    std::uint64_t all = ways_ == 64 ? ~0ULL : ((1ULL << ways_) - 1);
    wayMask_[static_cast<int>(type)] = mask & all;
}

void
SetAssocCache::clearWayMasks()
{
    std::uint64_t all = ways_ == 64 ? ~0ULL : ((1ULL << ways_) - 1);
    wayMask_[0] = all;
    wayMask_[1] = all;
}

std::uint64_t
SetAssocCache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_)
        n += line.valid;
    return n;
}

} // namespace softsku
