#include "os/scheduler.hh"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "stats/histogram.hh"
#include "stats/rng.hh"
#include "util/logging.hh"

namespace softsku {

namespace {

enum class EventKind { Arrival, BurstDone, IoDone };

struct Event
{
    double time;
    EventKind kind;
    std::uint64_t requestId;

    bool operator>(const Event &other) const { return time > other.time; }
};

struct Request
{
    double arrivalTime = 0.0;
    double cpuLeftSec = 0.0;
    int burstsLeft = 0;
    double burstLenSec = 0.0;

    double queueTime = 0.0;      // waiting for a worker
    double schedTime = 0.0;      // ready burst waiting for a core
    double runTime = 0.0;
    double ioTime = 0.0;

    double readySince = 0.0;     // when the current burst became ready
    bool counted = true;         // false during warm-up
};

} // namespace

ThreadPoolResult
simulateThreadPool(const ThreadPoolParams &params, std::uint64_t seed)
{
    SOFTSKU_ASSERT(params.cores >= 1);
    SOFTSKU_ASSERT(params.workers >= 1);
    SOFTSKU_ASSERT(params.arrivalRatePerSec > 0.0);
    SOFTSKU_ASSERT(params.cpuTimePerRequestSec > 0.0);

    Rng rng(seed);
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;
    std::vector<Request> requests;
    requests.reserve(params.requestsToSimulate + params.warmupRequests);

    std::deque<std::uint64_t> workerQueue;   // requests awaiting a worker
    std::deque<std::uint64_t> readyQueue;    // bursts awaiting a core
    int freeWorkers = params.workers;
    int freeCores = params.cores;

    double busyCoreSeconds = 0.0;
    double clock = 0.0;

    ThreadPoolResult result;
    LogHistogram latencyHist(1e-7, 1e4, 100);
    double latencySum = 0.0;
    double queueSum = 0.0, schedSum = 0.0, runSum = 0.0, ioSum = 0.0;

    std::uint64_t totalToGenerate =
        params.requestsToSimulate + params.warmupRequests;
    std::uint64_t generated = 0;

    auto scheduleArrival = [&](double now) {
        if (generated >= totalToGenerate)
            return;
        double dt = rng.exponential(params.arrivalRatePerSec);
        events.push({now + dt, EventKind::Arrival, generated});
        ++generated;
    };

    // A burst becomes ready: grab a core or wait in the run queue.
    auto burstReady = [&](std::uint64_t id, double now) {
        Request &req = requests[id];
        req.readySince = now;
        if (freeCores > 0) {
            --freeCores;
            busyCoreSeconds += req.burstLenSec;
            events.push({now + req.burstLenSec, EventKind::BurstDone, id});
        } else {
            readyQueue.push_back(id);
        }
    };

    // A request acquires a worker and starts its first burst.
    auto startOnWorker = [&](std::uint64_t id, double now) {
        Request &req = requests[id];
        req.queueTime = now - req.arrivalTime;
        burstReady(id, now);
    };

    auto makeRequest = [&](double now, bool counted) {
        Request req;
        req.arrivalTime = now;
        req.cpuLeftSec = rng.logNormalMean(params.cpuTimePerRequestSec,
                                           params.cpuNoiseSigma);
        req.burstsLeft = params.blockingPhases + 1;
        req.burstLenSec = req.cpuLeftSec / req.burstsLeft;
        req.counted = counted;
        requests.push_back(req);
        return requests.size() - 1;
    };

    scheduleArrival(0.0);

    std::uint64_t completed = 0;
    double firstCountedCompletion = -1.0, lastCountedCompletion = 0.0;

    while (!events.empty()) {
        Event ev = events.top();
        events.pop();
        clock = ev.time;

        switch (ev.kind) {
          case EventKind::Arrival: {
            bool counted = requests.size() >= params.warmupRequests;
            std::uint64_t id = makeRequest(clock, counted);
            scheduleArrival(clock);
            if (freeWorkers > 0) {
                --freeWorkers;
                startOnWorker(id, clock);
            } else {
                workerQueue.push_back(id);
            }
            break;
          }

          case EventKind::BurstDone: {
            Request &req = requests[ev.requestId];
            req.runTime += req.burstLenSec;
            req.schedTime += std::max(0.0, clock - req.readySince -
                                               req.burstLenSec);
            ++freeCores;
            // Hand the freed core to the longest-waiting ready burst.
            if (!readyQueue.empty()) {
                std::uint64_t next = readyQueue.front();
                readyQueue.pop_front();
                Request &nreq = requests[next];
                --freeCores;
                busyCoreSeconds += nreq.burstLenSec;
                events.push(
                    {clock + nreq.burstLenSec, EventKind::BurstDone, next});
            }

            --req.burstsLeft;
            if (req.burstsLeft > 0) {
                // Block on a downstream call, then run the next burst.
                double io = params.blockingTimeSec > 0.0
                                ? rng.exponential(1.0 /
                                                  params.blockingTimeSec)
                                : 0.0;
                req.ioTime += io;
                events.push({clock + io, EventKind::IoDone, ev.requestId});
            } else {
                // Complete: account and release the worker.
                double latency = clock - req.arrivalTime;
                if (req.counted) {
                    latencyHist.add(std::max(latency, 1e-9));
                    latencySum += latency;
                    queueSum += req.queueTime;
                    schedSum += req.schedTime;
                    runSum += req.runTime;
                    ioSum += req.ioTime;
                    ++completed;
                    if (firstCountedCompletion < 0.0)
                        firstCountedCompletion = clock;
                    lastCountedCompletion = clock;
                }
                ++freeWorkers;
                if (!workerQueue.empty()) {
                    std::uint64_t next = workerQueue.front();
                    workerQueue.pop_front();
                    --freeWorkers;
                    startOnWorker(next, clock);
                }
            }
            break;
          }

          case EventKind::IoDone:
            burstReady(ev.requestId, clock);
            break;
        }
    }

    result.completed = completed;
    if (completed == 0)
        return result;

    double totalParts = queueSum + schedSum + runSum + ioSum;
    if (totalParts > 0.0) {
        result.queueFraction = queueSum / totalParts;
        result.schedulerFraction = schedSum / totalParts;
        result.runningFraction = runSum / totalParts;
        result.ioFraction = ioSum / totalParts;
    }
    result.meanLatencySec = latencySum / static_cast<double>(completed);
    result.p50LatencySec = latencyHist.percentile(0.50);
    result.p99LatencySec = latencyHist.percentile(0.99);

    double span = lastCountedCompletion - firstCountedCompletion;
    if (span > 0.0)
        result.throughputPerSec = static_cast<double>(completed - 1) / span;
    if (clock > 0.0)
        result.coreUtilization =
            busyCoreSeconds / (clock * params.cores);
    return result;
}

} // namespace softsku
