#include "os/context_switch.hh"

#include <algorithm>
#include <cmath>

namespace softsku {

double
ContextSwitchModel::penaltyFractionLower() const
{
    return std::min(1.0, switchesPerSecond * cost.lowerUs * 1e-6);
}

double
ContextSwitchModel::penaltyFractionUpper() const
{
    return std::min(1.0, switchesPerSecond * cost.upperUs * 1e-6);
}

double
ContextSwitchModel::penaltyFractionMid() const
{
    return 0.5 * (penaltyFractionLower() + penaltyFractionUpper());
}

std::uint64_t
ContextSwitchModel::instructionsBetweenSwitches(double ips) const
{
    if (switchesPerSecond <= 0.0 || ips <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(
        std::max(1.0, ips / switchesPerSecond));
}

} // namespace softsku
