/**
 * @file
 * Context-switch cost model (paper Sec. 2.3.4, Fig 4).
 *
 * The paper estimates switch penalty by combining voluntary +
 * involuntary switch counts from /usr/bin/time with per-switch latency
 * bounds from Tsafrir'07 and Li et al.'07.  The model reproduces that
 * calculation: a switch rate plus direct-cost bounds gives the fraction
 * of a CPU-second lost, and the simulator additionally uses switches as
 * cache/TLB disturbance events (the indirect cost the paper observes as
 * code thrashing in Cache1/Cache2).
 */

#ifndef SOFTSKU_OS_CONTEXT_SWITCH_HH
#define SOFTSKU_OS_CONTEXT_SWITCH_HH

#include <cstdint>

namespace softsku {

/** Literature bounds for the direct cost of one context switch. */
struct SwitchCostBounds
{
    double lowerUs = 1.2;     //!< bare switch, warm caches
    double upperUs = 2.2;     //!< switch incl. immediate pollution
};

/** Context-switch behaviour of one microservice. */
struct ContextSwitchModel
{
    /** Switches per CPU-second (voluntary + involuntary). */
    double switchesPerSecond = 0.0;
    /** Fraction of switches that land on a different thread pool. */
    double crossPoolFraction = 0.5;
    SwitchCostBounds cost;

    /** Lower-bound fraction of a CPU-second spent switching. */
    double penaltyFractionLower() const;

    /** Upper-bound fraction of a CPU-second spent switching. */
    double penaltyFractionUpper() const;

    /** Midpoint penalty fraction used by the CPI model. */
    double penaltyFractionMid() const;

    /**
     * Average instructions between switches for a core retiring
     * @p ips instructions per second; returns 0 when switching is
     * negligible.
     */
    std::uint64_t instructionsBetweenSwitches(double ips) const;
};

} // namespace softsku

#endif // SOFTSKU_OS_CONTEXT_SWITCH_HH
