/**
 * @file
 * Huge-page policy: Transparent Huge Pages and Statically-allocated
 * Huge Pages, and the mapping of virtual regions to page sizes.
 *
 * The paper's knobs 6 and 7 (Sec. 5): THP has three modes (madvise —
 * the production default, always, never); SHP reserves 2 MiB pages at
 * boot that applications must explicitly request (Web uses the API,
 * Ads1 does not).  The PageMapper decides, per region, what fraction of
 * its pages end up huge; the TLB model consumes that mapping.
 */

#ifndef SOFTSKU_OS_HUGEPAGE_HH
#define SOFTSKU_OS_HUGEPAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace softsku {

class KernelFs;

/** Transparent-huge-page global modes. */
enum class ThpMode { Madvise, Always, Never };

/** Parse a mode string ("madvise"/"always"/"never"); fatal on others. */
ThpMode thpModeFromString(const std::string &text);

/** Kernel-style name of a THP mode. */
std::string thpModeName(ThpMode mode);

constexpr std::uint64_t kPage4k = 4ull * 1024;
constexpr std::uint64_t kPage2m = 2ull * 1024 * 1024;

/** What kind of memory a region is, for paging policy decisions. */
enum class RegionKind
{
    Code,         //!< mapped executable (file-backed or JIT cache)
    Heap,         //!< anonymous data
    Stack,        //!< thread stacks
};

/**
 * One contiguous virtual region of a microservice's address space.
 * Regions are the unit of paging policy: THP/SHP decisions apply per
 * region, and the workload generators draw addresses inside them.
 */
struct VirtualRegion
{
    std::string name;
    RegionKind kind = RegionKind::Heap;
    std::uint64_t base = 0;           //!< virtual base address
    std::uint64_t sizeBytes = 0;

    /** The service calls madvise(MADV_HUGEPAGE) on this region. */
    bool madviseHuge = false;
    /** The service allocates this region through the SHP (hugetlbfs) API. */
    bool usesShpApi = false;
    /**
     * Probability that the kernel can actually assemble a huge page here
     * under THP (alignment + fragmentation); dense regions ≈ 0.9,
     * fragmented allocators much lower.
     */
    double thpFriendliness = 0.8;
};

/** The combined huge-page knob setting. */
struct HugePagePolicy
{
    ThpMode thp = ThpMode::Madvise;
    int shpCount = 0;                 //!< reserved 2 MiB pages

    /** Read the policy back out of kernel config files. */
    static HugePagePolicy fromKernelFs(const KernelFs &fs);

    /** Write the policy into kernel config files. */
    void applyTo(KernelFs &fs) const;
};

/** The resolved paging outcome for one region. */
struct RegionMapping
{
    const VirtualRegion *region = nullptr;
    double hugeFraction = 0.0;        //!< fraction of bytes on 2 MiB pages
    std::uint64_t hugeBytes = 0;

    /**
     * Deterministically decide whether @p addr (within the region) sits
     * on a huge page: the region's 2 MiB-aligned chunks are hashed so a
     * fixed subset is huge, giving the TLB a stable page-size map.
     */
    bool isHugeAddress(std::uint64_t addr) const;
};

/**
 * Applies a HugePagePolicy to a set of regions.
 *
 * SHP pages are handed out first-come to regions that use the API; THP
 * then covers eligible anonymous regions by mode.  SHP pages reserved
 * beyond what the service can consume are *wasted*: they are pinned and
 * unusable by the page cache, which the memory model charges as extra
 * pressure (the mechanism behind the Fig 18b sweet spot).
 */
class PageMapper
{
  public:
    PageMapper(std::vector<VirtualRegion> regions,
               const HugePagePolicy &policy);

    // Mappings point into the mapper's own copy of the regions, so the
    // mapper pins them for its lifetime and must not be copied.
    PageMapper(const PageMapper &) = delete;
    PageMapper &operator=(const PageMapper &) = delete;

    /** Mapping decisions, one per input region (same order). */
    const std::vector<RegionMapping> &mappings() const { return mappings_; }

    /** Mapping for the region containing @p addr; nullptr if none. */
    const RegionMapping *mappingFor(std::uint64_t addr) const;

    /** SHP bytes reserved but not consumable by any region. */
    std::uint64_t wastedShpBytes() const { return wastedShpBytes_; }

    /** Total bytes backed by 2 MiB pages across all regions. */
    std::uint64_t totalHugeBytes() const;

    /**
     * Page size (bytes) backing @p addr; falls back to 4 KiB outside
     * known regions.
     */
    std::uint64_t pageSizeAt(std::uint64_t addr) const;

  private:
    std::vector<VirtualRegion> regions_;
    std::vector<RegionMapping> mappings_;
    std::uint64_t wastedShpBytes_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_OS_HUGEPAGE_HH
