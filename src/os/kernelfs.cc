#include "os/kernelfs.hh"

#include <cstdint>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

void
KernelFs::writeFile(const std::string &path, const std::string &contents)
{
    files_[path] = contents;
}

std::optional<std::string>
KernelFs::readFile(const std::string &path) const
{
    auto it = files_.find(path);
    if (it == files_.end())
        return std::nullopt;
    return it->second;
}

bool
KernelFs::exists(const std::string &path) const
{
    return files_.count(path) > 0;
}

void
KernelFs::reset()
{
    files_.clear();
}

void
KernelFs::setThpMode(const std::string &mode)
{
    std::string m = toLower(mode);
    if (m != "always" && m != "madvise" && m != "never")
        fatal("invalid THP mode '%s'", mode.c_str());
    std::string contents;
    for (const char *option : {"always", "madvise", "never"}) {
        if (!contents.empty())
            contents += ' ';
        if (m == option)
            contents += format("[%s]", option);
        else
            contents += option;
    }
    writeFile(kpath::thpEnabled, contents);
}

std::string
KernelFs::thpMode() const
{
    auto contents = readFile(kpath::thpEnabled);
    if (!contents)
        return "madvise";
    auto open = contents->find('[');
    auto close = contents->find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open + 1) {
        warn("malformed THP mode file '%s'; assuming madvise",
             contents->c_str());
        return "madvise";
    }
    return contents->substr(open + 1, close - open - 1);
}

void
KernelFs::setNrHugepages(int count)
{
    if (count < 0)
        fatal("nr_hugepages must be non-negative, got %d", count);
    writeFile(kpath::nrHugepages, format("%d", count));
}

int
KernelFs::nrHugepages() const
{
    auto contents = readFile(kpath::nrHugepages);
    if (!contents)
        return 0;
    auto parsed = parseInt(trim(*contents));
    if (!parsed) {
        warn("malformed nr_hugepages '%s'; assuming 0", contents->c_str());
        return 0;
    }
    return static_cast<int>(*parsed);
}

void
KernelFs::setCdpSchemata(int codeWays, int dataWays, int totalWays)
{
    if (codeWays < 1 || dataWays < 1 || codeWays + dataWays != totalWays) {
        fatal("invalid CDP partition: %d code + %d data ways of %d",
              codeWays, dataWays, totalWays);
    }
    // Data ways occupy the low mask bits, code ways the high bits.  The
    // schemata file is shared with the MB throttle, whose line must
    // survive a CDP rewrite.
    std::uint64_t dataMask = (1ULL << dataWays) - 1;
    std::uint64_t codeMask = ((1ULL << codeWays) - 1) << dataWays;
    int mba = mbaPercent();
    std::string contents =
        format("L3CODE:0=%llx\nL3DATA:0=%llx\n",
               static_cast<unsigned long long>(codeMask),
               static_cast<unsigned long long>(dataMask));
    if (mba != 100)
        contents += format("MB:0=%d\n", mba);
    writeFile(kpath::resctrlSchemata, contents);
}

void
KernelFs::clearCdpSchemata()
{
    // Keep any MB throttle line; drop the file only when nothing is
    // left, matching the pre-MBA bytes exactly.
    int mba = mbaPercent();
    if (mba != 100)
        writeFile(kpath::resctrlSchemata, format("MB:0=%d\n", mba));
    else
        files_.erase(kpath::resctrlSchemata);
}

namespace {

int
popcount64(std::uint64_t v)
{
    int n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
}

} // namespace

KernelFs::CdpConfig
KernelFs::cdpConfig(int totalWays) const
{
    CdpConfig cfg;
    auto contents = readFile(kpath::resctrlSchemata);
    if (!contents)
        return cfg;
    for (const std::string &line : split(*contents, '\n')) {
        auto text = trim(line);
        std::uint64_t mask = 0;
        bool isCode = startsWith(text, "L3CODE:0=");
        bool isData = startsWith(text, "L3DATA:0=");
        if (!isCode && !isData)
            continue;
        std::string hex(text.substr(9));
        mask = std::strtoull(hex.c_str(), nullptr, 16);
        if (isCode)
            cfg.codeWays = popcount64(mask);
        else
            cfg.dataWays = popcount64(mask);
    }
    cfg.enabled = cfg.codeWays > 0 && cfg.dataWays > 0 &&
                  cfg.codeWays + cfg.dataWays <= totalWays;
    return cfg;
}

void
KernelFs::setMbaPercent(int percent)
{
    if (percent < 10 || percent > 100)
        fatal("MB throttle %d%% outside the resctrl range [10, 100]",
              percent);
    // Rewrite the shared schemata with every non-MB line preserved.
    std::string kept;
    if (auto contents = readFile(kpath::resctrlSchemata)) {
        for (const std::string &line : split(*contents, '\n')) {
            auto text = trim(line);
            if (text.empty() || startsWith(text, "MB:0="))
                continue;
            kept += std::string(text) + '\n';
        }
    }
    if (percent != 100)
        kept += format("MB:0=%d\n", percent);
    if (kept.empty())
        files_.erase(kpath::resctrlSchemata);
    else
        writeFile(kpath::resctrlSchemata, kept);
}

int
KernelFs::mbaPercent() const
{
    auto contents = readFile(kpath::resctrlSchemata);
    if (!contents)
        return 100;
    for (const std::string &line : split(*contents, '\n')) {
        auto text = trim(line);
        if (!startsWith(text, "MB:0="))
            continue;
        auto parsed = parseInt(text.substr(5));
        if (!parsed) {
            warn("malformed MB schemata line '%s'; assuming 100",
                 std::string(text).c_str());
            return 100;
        }
        return static_cast<int>(*parsed);
    }
    return 100;
}

void
KernelFs::setTieringPolicy(const std::string &policy)
{
    std::string p = toLower(policy);
    if (p != "static" && p != "conservative" && p != "balanced" &&
        p != "aggressive") {
        fatal("invalid tiering policy '%s'", policy.c_str());
    }
    std::string contents;
    for (const char *option :
         {"static", "conservative", "balanced", "aggressive"}) {
        if (!contents.empty())
            contents += ' ';
        if (p == option)
            contents += format("[%s]", option);
        else
            contents += option;
    }
    writeFile(kpath::memoryTieringPolicy, contents);
}

std::string
KernelFs::tieringPolicy() const
{
    auto contents = readFile(kpath::memoryTieringPolicy);
    if (!contents)
        return "static";
    auto open = contents->find('[');
    auto close = contents->find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open + 1) {
        warn("malformed tiering policy file '%s'; assuming static",
             contents->c_str());
        return "static";
    }
    return contents->substr(open + 1, close - open - 1);
}

void
KernelFs::setFarRatioPercent(int percent)
{
    if (percent < 0 || percent > 99)
        fatal("far-tier ratio %d%% outside [0, 99]", percent);
    writeFile(kpath::memoryTieringFarRatio, format("%d", percent));
}

int
KernelFs::farRatioPercent() const
{
    auto contents = readFile(kpath::memoryTieringFarRatio);
    if (!contents)
        return 0;
    auto parsed = parseInt(trim(*contents));
    if (!parsed) {
        warn("malformed far_ratio_percent '%s'; assuming 0",
             contents->c_str());
        return 0;
    }
    return static_cast<int>(*parsed);
}

void
KernelFs::setIsolcpus(int activeCores, int totalCores)
{
    if (activeCores < 1 || activeCores > totalCores) {
        fatal("activeCores %d out of range [1, %d]", activeCores,
              totalCores);
    }
    std::string line = "root=/dev/sda1 ro";
    if (activeCores < totalCores) {
        line += format(" isolcpus=%d-%d", activeCores, totalCores - 1);
    }
    writeFile(kpath::cmdline, line);
}

int
KernelFs::activeCores(int totalCores) const
{
    auto contents = readFile(kpath::cmdline);
    if (!contents)
        return totalCores;
    for (const std::string &tok : split(*contents, ' ')) {
        if (!startsWith(tok, "isolcpus="))
            continue;
        auto rangeText = tok.substr(9);
        auto bounds = split(rangeText, '-');
        if (bounds.size() != 2)
            continue;
        auto lo = parseInt(bounds[0]);
        auto hi = parseInt(bounds[1]);
        if (!lo || !hi)
            continue;
        int isolated = static_cast<int>(*hi - *lo + 1);
        return totalCores - isolated;
    }
    return totalCores;
}

} // namespace softsku
