#include "os/hugepage.hh"

#include <algorithm>

#include "os/kernelfs.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

ThpMode
thpModeFromString(const std::string &text)
{
    std::string m = toLower(text);
    if (m == "madvise")
        return ThpMode::Madvise;
    if (m == "always")
        return ThpMode::Always;
    if (m == "never")
        return ThpMode::Never;
    fatal("unknown THP mode '%s'", text.c_str());
}

std::string
thpModeName(ThpMode mode)
{
    switch (mode) {
      case ThpMode::Madvise: return "madvise";
      case ThpMode::Always: return "always";
      case ThpMode::Never: return "never";
    }
    panic("unreachable THP mode");
}

HugePagePolicy
HugePagePolicy::fromKernelFs(const KernelFs &fs)
{
    HugePagePolicy policy;
    policy.thp = thpModeFromString(fs.thpMode());
    policy.shpCount = fs.nrHugepages();
    return policy;
}

void
HugePagePolicy::applyTo(KernelFs &fs) const
{
    fs.setThpMode(thpModeName(thp));
    fs.setNrHugepages(shpCount);
}

namespace {

/** Stable 64-bit mix for the per-chunk huge/regular decision. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

bool
RegionMapping::isHugeAddress(std::uint64_t addr) const
{
    if (hugeFraction <= 0.0)
        return false;
    if (hugeFraction >= 1.0)
        return true;
    std::uint64_t chunk = addr / kPage2m;
    double u = static_cast<double>(mix64(chunk) >> 11) * 0x1.0p-53;
    return u < hugeFraction;
}

PageMapper::PageMapper(std::vector<VirtualRegion> regions,
                       const HugePagePolicy &policy)
    : regions_(std::move(regions))
{
    std::uint64_t shpBytesLeft =
        static_cast<std::uint64_t>(std::max(policy.shpCount, 0)) * kPage2m;

    mappings_.reserve(regions_.size());
    for (const VirtualRegion &region : regions_) {
        RegionMapping m;
        m.region = &region;

        // SHP first: explicit reservations take priority and are only
        // consumable by regions allocated through the hugetlbfs API.
        if (region.usesShpApi && shpBytesLeft > 0) {
            std::uint64_t usable = std::min(region.sizeBytes, shpBytesLeft);
            // hugetlbfs allocations are 2 MiB-granular.
            usable -= usable % kPage2m;
            m.hugeBytes = usable;
            shpBytesLeft -= usable;
        }

        // THP covers the remainder of eligible anonymous regions.
        bool thpEligible = false;
        switch (policy.thp) {
          case ThpMode::Always:
            thpEligible = region.kind != RegionKind::Stack;
            break;
          case ThpMode::Madvise:
            thpEligible = region.madviseHuge;
            break;
          case ThpMode::Never:
            thpEligible = false;
            break;
        }
        if (thpEligible) {
            std::uint64_t remaining = region.sizeBytes - m.hugeBytes;
            auto extra = static_cast<std::uint64_t>(
                static_cast<double>(remaining) * region.thpFriendliness);
            extra -= extra % kPage2m;
            m.hugeBytes += extra;
        }

        m.hugeFraction =
            region.sizeBytes > 0
                ? static_cast<double>(m.hugeBytes) /
                      static_cast<double>(region.sizeBytes)
                : 0.0;
        mappings_.push_back(m);
    }

    wastedShpBytes_ = shpBytesLeft;
}

const RegionMapping *
PageMapper::mappingFor(std::uint64_t addr) const
{
    for (const RegionMapping &m : mappings_) {
        if (addr >= m.region->base &&
            addr < m.region->base + m.region->sizeBytes) {
            return &m;
        }
    }
    return nullptr;
}

std::uint64_t
PageMapper::totalHugeBytes() const
{
    std::uint64_t total = 0;
    for (const RegionMapping &m : mappings_)
        total += m.hugeBytes;
    return total;
}

std::uint64_t
PageMapper::pageSizeAt(std::uint64_t addr) const
{
    const RegionMapping *m = mappingFor(addr);
    if (m && m->isHugeAddress(addr))
        return kPage2m;
    return kPage4k;
}

} // namespace softsku
