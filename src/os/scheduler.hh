/**
 * @file
 * Discrete-event model of a request-per-worker thread pool.
 *
 * Web (and its siblings) assign each request to a worker thread that
 * runs it to completion, blocking on downstream microservices along the
 * way (paper Sec. 2.1).  A request's end-to-end latency therefore
 * decomposes into: *queue* (waiting for a free worker), *scheduler*
 * (worker ready but not running — thread over-subscription), *running*
 * (executing instructions), and *I/O* (blocked on other services), the
 * four components of the paper's Fig 2.  The simulation also feeds the
 * QoS solver that finds peak sustainable load (Fig 3).
 */

#ifndef SOFTSKU_OS_SCHEDULER_HH
#define SOFTSKU_OS_SCHEDULER_HH

#include <cstdint>

namespace softsku {

/** Parameters of one thread-pool simulation. */
struct ThreadPoolParams
{
    int cores = 1;                    //!< schedulable physical contexts
    int workers = 1;                  //!< worker threads in the pool
    double arrivalRatePerSec = 1.0;   //!< open-loop Poisson arrivals
    double cpuTimePerRequestSec = 0.01; //!< mean total CPU demand
    double cpuNoiseSigma = 0.3;       //!< log-normal sigma on CPU demand
    int blockingPhases = 0;           //!< downstream calls per request
    double blockingTimeSec = 0.0;     //!< mean blocked time per call
    std::uint64_t requestsToSimulate = 20000;
    std::uint64_t warmupRequests = 1000;
};

/** Aggregated outcome of a thread-pool simulation. */
struct ThreadPoolResult
{
    // Mean per-request latency decomposition, fractions summing to 1.
    double queueFraction = 0.0;       //!< awaiting a worker
    double schedulerFraction = 0.0;   //!< ready but not on a core
    double runningFraction = 0.0;     //!< executing
    double ioFraction = 0.0;          //!< blocked on downstream calls

    double meanLatencySec = 0.0;
    double p50LatencySec = 0.0;
    double p99LatencySec = 0.0;
    double throughputPerSec = 0.0;    //!< completions per second
    double coreUtilization = 0.0;     //!< busy-core time fraction
    std::uint64_t completed = 0;

    /** Fraction of request time spent running (vs all blocking causes). */
    double runningShare() const { return runningFraction; }

    /** Fraction blocked for any reason. */
    double blockedShare() const
    {
        return queueFraction + schedulerFraction + ioFraction;
    }
};

/**
 * Run the thread-pool discrete-event simulation.
 * Deterministic for a fixed @p seed.
 */
ThreadPoolResult simulateThreadPool(const ThreadPoolParams &params,
                                    std::uint64_t seed);

} // namespace softsku

#endif // SOFTSKU_OS_SCHEDULER_HH
