/**
 * @file
 * An emulated kernel configuration filesystem.
 *
 * μSKU configures THP "by writing to kernel configuration files", SHP
 * counts "by modifying kernel parameters", CDP through the resctrl
 * interface, and core counts through the boot loader's `isolcpus` flag
 * (Sec. 5).  The emulated filesystem keeps those actuation paths real:
 * knobs are written in the kernel's own text formats and the machine
 * model parses them back out.
 */

#ifndef SOFTSKU_OS_KERNELFS_HH
#define SOFTSKU_OS_KERNELFS_HH

#include <map>
#include <optional>
#include <string>

namespace softsku {

/** Canonical config-file paths used by the knob actuation layer. */
namespace kpath {

inline constexpr const char *thpEnabled =
    "/sys/kernel/mm/transparent_hugepage/enabled";
inline constexpr const char *nrHugepages = "/proc/sys/vm/nr_hugepages";
inline constexpr const char *resctrlSchemata = "/sys/fs/resctrl/schemata";
inline constexpr const char *cmdline = "/proc/cmdline";
inline constexpr const char *memoryTieringPolicy =
    "/sys/kernel/mm/memory_tiering/policy";
inline constexpr const char *memoryTieringFarRatio =
    "/sys/kernel/mm/memory_tiering/far_ratio_percent";

} // namespace kpath

/**
 * A tiny string-keyed file store with kernel-style read/write semantics.
 * Reads of absent files return nullopt (like ENOENT).
 */
class KernelFs
{
  public:
    /** Replace the contents of @p path. */
    void writeFile(const std::string &path, const std::string &contents);

    /** Read @p path; nullopt when the file does not exist. */
    std::optional<std::string> readFile(const std::string &path) const;

    /** True when @p path exists. */
    bool exists(const std::string &path) const;

    /** Remove everything (fresh install). */
    void reset();

    // -- THP -------------------------------------------------------------

    /**
     * Write the THP mode file in the kernel's bracket format, e.g.
     * "always [madvise] never".
     */
    void setThpMode(const std::string &mode);

    /** Parse the selected THP mode; "madvise" when unset (kernel default). */
    std::string thpMode() const;

    // -- SHP -------------------------------------------------------------

    /** Set the static huge page reservation count. */
    void setNrHugepages(int count);

    /** Read the static huge page reservation count (0 when unset). */
    int nrHugepages() const;

    // -- resctrl (CAT/CDP) -------------------------------------------------

    /**
     * Write an L3 CDP schemata with @p codeWays ways for code and
     * @p dataWays ways for data out of @p totalWays.  Way masks are
     * contiguous from opposite ends, the usual partitioning practice.
     */
    void setCdpSchemata(int codeWays, int dataWays, int totalWays);

    /** Remove any CDP schemata (shared ways, the production default). */
    void clearCdpSchemata();

    struct CdpConfig
    {
        bool enabled = false;
        int codeWays = 0;
        int dataWays = 0;
    };

    /** Parse the schemata back into way counts. */
    CdpConfig cdpConfig(int totalWays) const;

    // -- resctrl (MBA) -----------------------------------------------------

    /**
     * Set the memory-bandwidth throttle as an "MB:0=<percent>" line in
     * the shared resctrl schemata.  100 (unthrottled) removes the line,
     * so untouched platforms keep their historical schemata bytes; CDP
     * lines in the same file are preserved either way.
     */
    void setMbaPercent(int percent);

    /** Parse the MB throttle back (100 when no MB line is present). */
    int mbaPercent() const;

    // -- memory tiering ----------------------------------------------------

    /**
     * Write the tiering-policy file in the kernel's bracket format,
     * e.g. "static [balanced] conservative aggressive".
     */
    void setTieringPolicy(const std::string &policy);

    /** Parse the selected tiering policy; "static" when unset. */
    std::string tieringPolicy() const;

    /** Set the far-tier placement ratio file (integer percent, 0-99). */
    void setFarRatioPercent(int percent);

    /** Read the far-tier placement percent (0 when unset). */
    int farRatioPercent() const;

    // -- boot cmdline ------------------------------------------------------

    /**
     * Set the kernel command line with an isolcpus list that leaves
     * @p activeCores schedulable out of @p totalCores.
     */
    void setIsolcpus(int activeCores, int totalCores);

    /** Number of schedulable cores implied by the cmdline. */
    int activeCores(int totalCores) const;

  private:
    std::map<std::string, std::string> files_;
};

} // namespace softsku

#endif // SOFTSKU_OS_KERNELFS_HH
