#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace softsku {

LogBinLayout::LogBinLayout(double minValue, double maxValue,
                           int binsPerDecade)
    : minValue_(minValue), maxValue_(maxValue),
      logMin_(std::log10(minValue)),
      binsPerDecade_(static_cast<double>(binsPerDecade))
{
    SOFTSKU_ASSERT(minValue > 0.0 && maxValue > minValue);
    SOFTSKU_ASSERT(binsPerDecade > 0);
    double decades = std::log10(maxValue) - logMin_;
    bins_ = static_cast<size_t>(decades * binsPerDecade_) + 2;
}

size_t
LogBinLayout::binFor(double value) const
{
    double v = std::clamp(value, minValue_, maxValue_);
    auto bin = static_cast<size_t>((std::log10(v) - logMin_) *
                                   binsPerDecade_);
    return std::min(bin, bins_ - 1);
}

double
LogBinLayout::binCenter(size_t bin) const
{
    double logLo = logMin_ + static_cast<double>(bin) / binsPerDecade_;
    return std::pow(10.0, logLo + 0.5 / binsPerDecade_);
}

LogHistogram::LogHistogram(double minValue, double maxValue,
                           int binsPerDecade)
    : LogHistogram(LogBinLayout(minValue, maxValue, binsPerDecade))
{
}

LogHistogram::LogHistogram(const LogBinLayout &layout) : layout_(layout)
{
    bins_.assign(layout_.bins(), 0);
}

void
LogHistogram::add(double value)
{
    add(value, 1);
}

void
LogHistogram::add(double value, std::uint64_t count)
{
    bins_[layout_.binFor(value)] += count;
    total_ += count;
    sum_ += value * static_cast<double>(count);
}

double
LogHistogram::percentile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen > target)
            return layout_.binCenter(i);
    }
    return layout_.binCenter(bins_.size() - 1);
}

double
LogHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(total_);
}

void
LogHistogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

} // namespace softsku
