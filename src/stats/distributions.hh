/**
 * @file
 * Discrete sampling distributions used by the synthetic workload
 * generators: Zipf (hot/cold working-set skew), alias-method weighted
 * choice (instruction mix, region selection), and EWMA smoothing.
 */

#ifndef SOFTSKU_STATS_DISTRIBUTIONS_HH
#define SOFTSKU_STATS_DISTRIBUTIONS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace softsku {

/**
 * Zipfian distribution over {0 .. n-1} with skew parameter s, sampled by
 * inverse transform over a precomputed CDF.  Rank 0 is the hottest item.
 */
class ZipfDistribution
{
  public:
    ZipfDistribution(std::uint64_t n, double skew);

    /** Draw one rank. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return n_; }
    double skew() const { return skew_; }

  private:
    std::uint64_t n_;
    double skew_;
    std::vector<double> cdf_;
};

/**
 * Weighted discrete choice over {0 .. n-1} using Vose's alias method:
 * O(1) sampling regardless of the number of outcomes.
 */
class DiscreteDistribution
{
  public:
    explicit DiscreteDistribution(const std::vector<double> &weights);

    /** Draw one index. */
    std::uint32_t sample(Rng &rng) const;

    size_t size() const { return prob_.size(); }

    /** Normalized probability of outcome i. */
    double probability(size_t i) const { return normalized_[i]; }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
    std::vector<double> normalized_;
};

/** Exponentially weighted moving average. */
class Ewma
{
  public:
    explicit Ewma(double alpha) : alpha_(alpha) {}

    /** Fold in one observation and return the new average. */
    double add(double x);

    /** Current smoothed value. */
    double value() const { return value_; }

    bool empty() const { return empty_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool empty_ = true;
};

} // namespace softsku

#endif // SOFTSKU_STATS_DISTRIBUTIONS_HH
