/**
 * @file
 * Discrete sampling distributions used by the synthetic workload
 * generators: Zipf (hot/cold working-set skew), alias-method weighted
 * choice (instruction mix, region selection), and EWMA smoothing.
 */

#ifndef SOFTSKU_STATS_DISTRIBUTIONS_HH
#define SOFTSKU_STATS_DISTRIBUTIONS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace softsku {

/**
 * Zipfian distribution over {0 .. n-1} with skew parameter s, sampled by
 * inverse transform over a precomputed CDF.  Rank 0 is the hottest item.
 */
class ZipfDistribution
{
  public:
    ZipfDistribution(std::uint64_t n, double skew);

    /**
     * Draw one rank.  Templated over the generator so the batched
     * simulator's BufferedRng lanes sample through the identical code
     * path (and therefore consume the identical draw sequence) as the
     * scalar Rng.
     */
    template <class R>
    std::uint64_t
    sample(R &rng) const
    {
        double u = rng.uniform();
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        auto rank = static_cast<std::uint64_t>(it - cdf_.begin());
        if (rank >= cdf_.size())
            rank = cdf_.size() - 1;
        // Tail beyond the table: spread uniformly.  The table-capped
        // check is precomputed at construction so the common
        // (untruncated) case pays one compare on a constant instead of
        // re-deriving it from two vector loads per draw.
        if (hasTail_ && rank == tailRank_)
            rank += rng.below(tailSpan_);
        return rank;
    }

    std::uint64_t size() const { return n_; }
    double skew() const { return skew_; }

  private:
    std::uint64_t n_;
    double skew_;
    std::vector<double> cdf_;
    /** Precomputed tail-branch facts (see sample()). */
    bool hasTail_ = false;
    std::uint64_t tailRank_ = 0;
    std::uint64_t tailSpan_ = 1;
};

/**
 * Weighted discrete choice over {0 .. n-1} using Vose's alias method:
 * O(1) sampling regardless of the number of outcomes.
 */
class DiscreteDistribution
{
  public:
    explicit DiscreteDistribution(const std::vector<double> &weights);

    /** Draw one index (templated over the generator, as Zipf). */
    template <class R>
    std::uint32_t
    sample(R &rng) const
    {
        auto i = static_cast<std::uint32_t>(rng.below(prob_.size()));
        return rng.uniform() < prob_[i] ? i : alias_[i];
    }

    size_t size() const { return prob_.size(); }

    /** Normalized probability of outcome i. */
    double probability(size_t i) const { return normalized_[i]; }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
    std::vector<double> normalized_;
};

/** Exponentially weighted moving average. */
class Ewma
{
  public:
    explicit Ewma(double alpha) : alpha_(alpha) {}

    /** Fold in one observation and return the new average. */
    double add(double x);

    /** Current smoothed value. */
    double value() const { return value_; }

    bool empty() const { return empty_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool empty_ = true;
};

} // namespace softsku

#endif // SOFTSKU_STATS_DISTRIBUTIONS_HH
