/**
 * @file
 * Student's t distribution quantiles and Welch's unequal-variance t-test.
 *
 * The paper's A/B tester declares a knob configuration a winner only when
 * the throughput difference is significant at 95% confidence, falling
 * back to "no difference" after ~30,000 samples (Sec. 4).  These are the
 * statistical primitives that decision rests on.
 */

#ifndef SOFTSKU_STATS_STUDENTS_T_HH
#define SOFTSKU_STATS_STUDENTS_T_HH

namespace softsku {

class RunningStat;

/**
 * Two-sided Student's t quantile: the value t such that
 * P(-t < T < t) = confidence for @p dof degrees of freedom.
 * Uses the Cornish–Fisher style expansion from the normal quantile,
 * accurate to ~1e-3 for dof >= 3, which far exceeds what a sampling
 * experiment can resolve.
 */
double studentTQuantile(double confidence, double dof);

/** Inverse standard normal CDF (Acklam's rational approximation). */
double normalQuantile(double p);

/** Standard normal CDF. */
double normalCdf(double x);

/** CDF of Student's t distribution with @p dof degrees of freedom. */
double studentTCdf(double t, double dof);

/** Outcome of a two-sample comparison. */
struct WelchResult
{
    double tStatistic = 0.0;       //!< Welch t statistic (b vs a).
    double dof = 0.0;              //!< Welch–Satterthwaite dof.
    double pValue = 1.0;           //!< two-sided p-value.
    double meanDiff = 0.0;         //!< mean(b) - mean(a).
    double diffHalfWidth = 0.0;    //!< CI half-width on the difference.
    bool significant = false;      //!< p < 1 - confidence.
};

/**
 * Welch's unequal-variance t-test comparing two accumulated sample sets.
 * @param a          baseline samples
 * @param b          treatment samples
 * @param confidence e.g., 0.95
 */
WelchResult welchTTest(const RunningStat &a, const RunningStat &b,
                       double confidence = 0.95);

/**
 * Paired t-test on accumulated per-pair differences (B − A).  The right
 * tool for simultaneous A/B measurement: common-mode load variation
 * cancels inside each difference, so the test only sees genuine
 * configuration effects plus independent measurement noise.
 */
WelchResult pairedTTest(const RunningStat &differences,
                        double confidence = 0.95);

} // namespace softsku

#endif // SOFTSKU_STATS_STUDENTS_T_HH
