#include "stats/students_t.hh"

#include <cmath>

#include "stats/running_stat.hh"
#include "util/logging.hh"

namespace softsku {

double
normalQuantile(double p)
{
    SOFTSKU_ASSERT(p > 0.0 && p < 1.0);
    // Acklam's rational approximation, |error| < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double pLow = 0.02425;

    if (p < pLow) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - pLow) {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
studentTQuantile(double confidence, double dof)
{
    SOFTSKU_ASSERT(confidence > 0.0 && confidence < 1.0);
    SOFTSKU_ASSERT(dof >= 1.0);
    // Peiser/Cornish–Fisher expansion of the t quantile around the
    // normal quantile; excellent for dof >= 3 and still within a few
    // percent at dof == 1-2, which only affects the first samples of a
    // warm-up phase.
    double p = 0.5 + confidence / 2.0;
    double z = normalQuantile(p);
    double z2 = z * z;
    double g1 = (z2 + 1.0) * z / 4.0;
    double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
    double g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
    double g4 =
        ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) *
        z / 92160.0;
    double d = dof;
    return z + g1 / d + g2 / (d * d) + g3 / (d * d * d) +
           g4 / (d * d * d * d);
}

namespace {

/**
 * log Γ(x) for x > 0 without touching the process-global `signgam`
 * that lgamma(3) writes — p-values are computed concurrently by the
 * parallel sweep engine.  Lanczos approximation (g=7, n=9), accurate
 * to ~1e-13 over the degrees of freedom we see.
 */
double
logGammaPositive(double x)
{
    static const double kCoeff[] = {
        0.99999999999980993,     676.5203681218851,
        -1259.1392167224028,     771.32342877765313,
        -176.61502916214059,     12.507343278686905,
        -0.13857109526572012,    9.9843695780195716e-6,
        1.5056327351493116e-7,
    };
    if (x < 0.5) {
        // Reflection keeps the argument in the stable region.
        return std::log(M_PI / std::sin(M_PI * x)) -
               logGammaPositive(1.0 - x);
    }
    x -= 1.0;
    double sum = kCoeff[0];
    for (int i = 1; i < 9; ++i)
        sum += kCoeff[i] / (x + i);
    double t = x + 7.5;
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
           std::log(sum);
}

/** Regularized incomplete beta via continued fraction (Lentz). */
double
incompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    double lbeta = logGammaPositive(a) + logGammaPositive(b) -
                   logGammaPositive(a + b);
    double front = std::exp(std::log(x) * a + std::log(1.0 - x) * b - lbeta) / a;

    // Lentz continued fraction.
    const double tiny = 1e-30;
    double f = 1.0, c = 1.0, d = 0.0;
    for (int i = 0; i <= 300; ++i) {
        int m = i / 2;
        double numerator;
        if (i == 0) {
            numerator = 1.0;
        } else if (i % 2 == 0) {
            numerator = (m * (b - m) * x) /
                        ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
        } else {
            numerator = -((a + m) * (a + b + m) * x) /
                        ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
        }
        d = 1.0 + numerator * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        double delta = c * d;
        f *= delta;
        if (std::fabs(1.0 - delta) < 1e-12)
            break;
    }
    return front * (f - 1.0);
}

} // namespace

double
studentTCdf(double t, double dof)
{
    SOFTSKU_ASSERT(dof >= 1.0);
    double x = dof / (dof + t * t);
    double prob = 0.5 * incompleteBeta(dof / 2.0, 0.5, x);
    return t > 0.0 ? 1.0 - prob : prob;
}

WelchResult
pairedTTest(const RunningStat &differences, double confidence)
{
    WelchResult res;
    if (differences.count() < 2)
        return res;
    res.meanDiff = differences.mean();
    double se = differences.standardError();
    res.dof = static_cast<double>(differences.count() - 1);
    if (se <= 0.0) {
        res.significant = res.meanDiff != 0.0;
        res.pValue = res.significant ? 0.0 : 1.0;
        return res;
    }
    res.tStatistic = res.meanDiff / se;
    double cdf = studentTCdf(std::fabs(res.tStatistic), res.dof);
    res.pValue = 2.0 * (1.0 - cdf);
    res.diffHalfWidth = studentTQuantile(confidence, res.dof) * se;
    res.significant = res.pValue < (1.0 - confidence);
    return res;
}

WelchResult
welchTTest(const RunningStat &a, const RunningStat &b, double confidence)
{
    WelchResult res;
    if (a.count() < 2 || b.count() < 2)
        return res;

    double va = a.variance() / static_cast<double>(a.count());
    double vb = b.variance() / static_cast<double>(b.count());
    double se2 = va + vb;
    res.meanDiff = b.mean() - a.mean();
    if (se2 <= 0.0) {
        // Zero variance in both groups: any nonzero difference is exact.
        res.significant = res.meanDiff != 0.0;
        res.pValue = res.significant ? 0.0 : 1.0;
        res.dof = static_cast<double>(a.count() + b.count() - 2);
        return res;
    }
    double se = std::sqrt(se2);
    res.tStatistic = res.meanDiff / se;

    double na = static_cast<double>(a.count());
    double nb = static_cast<double>(b.count());
    res.dof = se2 * se2 /
              (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    if (res.dof < 1.0)
        res.dof = 1.0;

    double cdf = studentTCdf(std::fabs(res.tStatistic), res.dof);
    res.pValue = 2.0 * (1.0 - cdf);
    res.diffHalfWidth = studentTQuantile(confidence, res.dof) * se;
    res.significant = res.pValue < (1.0 - confidence);
    return res;
}

} // namespace softsku
