#include "stats/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace softsku {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits → double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    SOFTSKU_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method, unbiased.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    SOFTSKU_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::gaussian()
{
    if (hasSpareGauss_) {
        hasSpareGauss_ = false;
        return spareGauss_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spareGauss_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpareGauss_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    SOFTSKU_ASSERT(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::logNormalMean(double mean, double sigma)
{
    SOFTSKU_ASSERT(mean > 0.0);
    // Pick mu so the log-normal's expected value equals `mean`.
    double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(mu + sigma * gaussian());
}

Rng
Rng::fork()
{
    return Rng(next());
}

Rng
Rng::split(std::uint64_t streamId) const
{
    // Domain-separate from plain seeding and from sibling streams: the
    // Weyl increment decorrelates consecutive ids, SplitMix avalanches
    // the result.  Depends only on (seed_, streamId), never on state.
    std::uint64_t sm = seed_ ^ 0x6A09E667F3BCC909ULL;
    sm += (streamId + 1) * 0x9E3779B97F4A7C15ULL;
    return Rng(splitMix64(sm));
}

} // namespace softsku
