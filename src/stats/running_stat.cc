#include "stats/running_stat.hh"

#include <algorithm>
#include <cmath>

#include "stats/students_t.hh"

namespace softsku {

void
RunningStat::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::clear()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::standardError() const
{
    if (count_ == 0)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double
RunningStat::confidenceHalfWidth(double confidence) const
{
    if (count_ < 2)
        return std::numeric_limits<double>::infinity();
    double t = studentTQuantile(confidence,
                                static_cast<double>(count_ - 1));
    return t * standardError();
}

} // namespace softsku
