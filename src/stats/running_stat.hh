/**
 * @file
 * Numerically stable streaming statistics (Welford's algorithm).
 *
 * μSKU's A/B tester streams tens of thousands of EMON samples per knob
 * configuration (Sec. 4 of the paper) and needs the running mean,
 * variance, and confidence interval without storing the samples.
 */

#ifndef SOFTSKU_STATS_RUNNING_STAT_HH
#define SOFTSKU_STATS_RUNNING_STAT_HH

#include <cstdint>
#include <limits>

namespace softsku {

/** Streaming mean/variance/min/max accumulator. */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void clear();

    /** Number of observations folded in so far. */
    std::uint64_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return mean_; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean (stddev / sqrt(n)). */
    double standardError() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /**
     * Half-width of the two-sided confidence interval on the mean at the
     * given confidence level (e.g., 0.95), using Student's t quantile.
     */
    double confidenceHalfWidth(double confidence = 0.95) const;

    /** The raw accumulator state, for exact (bit-level) persistence. */
    struct State
    {
        std::uint64_t count = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    State state() const { return State{count_, mean_, m2_, min_, max_}; }

    /** Rebuild an accumulator bit-identical to the one state() saw. */
    static RunningStat fromState(const State &s)
    {
        RunningStat stat;
        stat.count_ = s.count;
        stat.mean_ = s.mean;
        stat.m2_ = s.m2;
        stat.min_ = s.min;
        stat.max_ = s.max;
        return stat;
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace softsku

#endif // SOFTSKU_STATS_RUNNING_STAT_HH
