/**
 * @file
 * Robust-statistics primitives shared by the measurement pipeline: the
 * scratch median and the MAD (median absolute deviation) outlier gate
 * the A/B tester and the validation phase apply to hostile-fleet
 * telemetry before anything reaches a t-test.
 *
 * Extracted from ab_test.cc / soft_sku.cc so the racing engine's
 * chunked pulls filter with bit-identical arithmetic, and so the gate's
 * edge behavior (empty batches, all-identical samples, zero spread) is
 * testable on its own.
 */

#ifndef SOFTSKU_STATS_ROBUST_HH
#define SOFTSKU_STATS_ROBUST_HH

#include <vector>

namespace softsku {

/** Median of a scratch vector (reordered in place); 0 when empty. */
double medianInPlace(std::vector<double> &values);

/**
 * A MAD-based outlier gate built from one batch of samples.
 *
 * The gate keeps x iff |x - median| <= cutoff * max(mad, 1e-6) + 1e-12:
 * corrupted spikes and zeros sit tens of MADs out while genuine samples
 * survive, and the floored scale means a freak zero-spread batch (all
 * samples identical) cannot reject everything.  Non-finite samples are
 * excluded from the median/MAD estimate and are never kept.
 */
class MadGate
{
  public:
    /**
     * @param samples the batch to estimate location/scale from
     * @param cutoff  tolerated deviation in MADs (e.g. 8.0)
     */
    MadGate(const std::vector<double> &samples, double cutoff);

    /** True when @p x survives the gate (always false for non-finite). */
    bool keeps(double x) const;

    /** Batch median the gate centered on. */
    double median() const { return median_; }

    /** Raw (unfloored) median absolute deviation of the batch. */
    double mad() const { return mad_; }

    /** Absolute deviation limit: cutoff * max(mad, 1e-6) + 1e-12. */
    double limit() const { return limit_; }

  private:
    double median_ = 0.0;
    double mad_ = 0.0;
    double limit_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_STATS_ROBUST_HH
