/**
 * @file
 * AVX-512 xoshiro256** lane kernels.  This translation unit is compiled
 * with -mavx512f -mavx512dq (see src/CMakeLists.txt); it must contain
 * nothing but the kernels so no AVX-512 instruction can leak onto a
 * path that runs before the cpuid dispatch in simd_rng.cc.  The code is
 * integer-only: backend choice can never perturb a floating-point
 * result.
 *
 * The ×5 / ×9 constant multiplies are strength-reduced to shift+add —
 * vpmullq is multi-uop on Skylake-SP-class cores, where this code is
 * expected to run hottest.  The 16-lane kernel interleaves two
 * independent 8-lane chains so the serial xoshiro dependency overlaps.
 */

#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#include <immintrin.h>
#endif

namespace softsku::simd_detail {

#if defined(__AVX512F__) && defined(__AVX512DQ__)

namespace {

inline __m512i
starResult(__m512i s1)
{
    // rotl(s1 * 5, 7) * 9 with shift+add multiplies.
    __m512i m5 = _mm512_add_epi64(s1, _mm512_slli_epi64(s1, 2));
    __m512i rl = _mm512_rol_epi64(m5, 7);
    return _mm512_add_epi64(rl, _mm512_slli_epi64(rl, 3));
}

} // namespace

void
fillAvx512x8(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
             std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
             std::size_t n)
{
    __m512i v0 = _mm512_loadu_si512(s0);
    __m512i v1 = _mm512_loadu_si512(s1);
    __m512i v2 = _mm512_loadu_si512(s2);
    __m512i v3 = _mm512_loadu_si512(s3);
    for (std::size_t i = 0; i < n; ++i) {
        _mm512_storeu_si512(out + i * stride, starResult(v1));
        __m512i t = _mm512_slli_epi64(v1, 17);
        v2 = _mm512_xor_si512(v2, v0);
        v3 = _mm512_xor_si512(v3, v1);
        v1 = _mm512_xor_si512(v1, v2);
        v0 = _mm512_xor_si512(v0, v3);
        v2 = _mm512_xor_si512(v2, t);
        v3 = _mm512_rol_epi64(v3, 45);
    }
    _mm512_storeu_si512(s0, v0);
    _mm512_storeu_si512(s1, v1);
    _mm512_storeu_si512(s2, v2);
    _mm512_storeu_si512(s3, v3);
}

void
fillAvx512x16(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
              std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
              std::size_t n)
{
    __m512i a0 = _mm512_loadu_si512(s0), b0 = _mm512_loadu_si512(s0 + 8);
    __m512i a1 = _mm512_loadu_si512(s1), b1 = _mm512_loadu_si512(s1 + 8);
    __m512i a2 = _mm512_loadu_si512(s2), b2 = _mm512_loadu_si512(s2 + 8);
    __m512i a3 = _mm512_loadu_si512(s3), b3 = _mm512_loadu_si512(s3 + 8);
    for (std::size_t i = 0; i < n; ++i) {
        _mm512_storeu_si512(out + i * stride, starResult(a1));
        _mm512_storeu_si512(out + i * stride + 8, starResult(b1));
        __m512i ta = _mm512_slli_epi64(a1, 17);
        __m512i tb = _mm512_slli_epi64(b1, 17);
        a2 = _mm512_xor_si512(a2, a0);
        b2 = _mm512_xor_si512(b2, b0);
        a3 = _mm512_xor_si512(a3, a1);
        b3 = _mm512_xor_si512(b3, b1);
        a1 = _mm512_xor_si512(a1, a2);
        b1 = _mm512_xor_si512(b1, b2);
        a0 = _mm512_xor_si512(a0, a3);
        b0 = _mm512_xor_si512(b0, b3);
        a2 = _mm512_xor_si512(a2, ta);
        b2 = _mm512_xor_si512(b2, tb);
        a3 = _mm512_rol_epi64(a3, 45);
        b3 = _mm512_rol_epi64(b3, 45);
    }
    _mm512_storeu_si512(s0, a0);
    _mm512_storeu_si512(s0 + 8, b0);
    _mm512_storeu_si512(s1, a1);
    _mm512_storeu_si512(s1 + 8, b1);
    _mm512_storeu_si512(s2, a2);
    _mm512_storeu_si512(s2 + 8, b2);
    _mm512_storeu_si512(s3, a3);
    _mm512_storeu_si512(s3 + 8, b3);
}

#else // !(__AVX512F__ && __AVX512DQ__)

// Toolchain compiled this TU without AVX-512 support (per-source flags
// stripped).  The runtime dispatch never selects these kernels unless
// the CPU has AVX-512, but provide correct scalar bodies so the link
// never breaks and a misdispatch would still be correct.

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

void
fillScalarLanes(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
                std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
                std::size_t n, std::size_t lanes)
{
    for (std::size_t w = 0; w < lanes; ++w) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i * stride + w] = rotl(s1[w] * 5, 7) * 9;
            const std::uint64_t t = s1[w] << 17;
            s2[w] ^= s0[w];
            s3[w] ^= s1[w];
            s1[w] ^= s2[w];
            s0[w] ^= s3[w];
            s2[w] ^= t;
            s3[w] = rotl(s3[w], 45);
        }
    }
}

} // namespace

void
fillAvx512x8(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
             std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
             std::size_t n)
{
    fillScalarLanes(s0, s1, s2, s3, out, stride, n, 8);
}

void
fillAvx512x16(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
              std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
              std::size_t n)
{
    fillScalarLanes(s0, s1, s2, s3, out, stride, n, 16);
}

#endif // __AVX512F__ && __AVX512DQ__

} // namespace softsku::simd_detail
