#include "stats/robust.hh"

#include <algorithm>
#include <cmath>

namespace softsku {

double
medianInPlace(std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
}

MadGate::MadGate(const std::vector<double> &samples, double cutoff)
{
    std::vector<double> deviations;
    deviations.reserve(samples.size());
    for (double x : samples)
        if (std::isfinite(x))
            deviations.push_back(x);
    median_ = medianInPlace(deviations);
    for (double &d : deviations)
        d = std::abs(d - median_);
    mad_ = medianInPlace(deviations);
    limit_ = cutoff * std::max(mad_, 1e-6) + 1e-12;
}

bool
MadGate::keeps(double x) const
{
    // A NaN deviation compares false here, so non-finite samples are
    // rejected without a separate check.
    return std::abs(x - median_) <= limit_;
}

} // namespace softsku
