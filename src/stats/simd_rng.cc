#include "stats/simd_rng.hh"

#include <algorithm>

namespace softsku {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** One scalar xoshiro256** step on SoA state at lane offset @p w. */
inline std::uint64_t
stepLane(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
         std::uint64_t *s3, std::size_t w)
{
    const std::uint64_t result = rotl(s1[w] * 5, 7) * 9;
    const std::uint64_t t = s1[w] << 17;
    s2[w] ^= s0[w];
    s3[w] ^= s1[w];
    s1[w] ^= s2[w];
    s0[w] ^= s3[w];
    s2[w] ^= t;
    s3[w] = rotl(s3[w], 45);
    return result;
}

} // namespace

namespace simd_detail {

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool has = __builtin_cpu_supports("avx512f") &&
                            __builtin_cpu_supports("avx512dq");
    return has;
#else
    return false;
#endif
}

} // namespace simd_detail

SimdXoshiroBank::SimdXoshiroBank(const std::vector<std::uint64_t> &seeds)
    : lanes_(seeds.size()), state_(4 * seeds.size())
{
    SOFTSKU_ASSERT(!seeds.empty());
    for (std::size_t w = 0; w < lanes_; ++w) {
        std::uint64_t sm = seeds[w];
        for (int k = 0; k < 4; ++k)
            state(k)[w] = splitMix64(sm);
    }
}

const char *
SimdXoshiroBank::backendName()
{
    if (kSimdWidth >= 8 && simd_detail::cpuHasAvx512())
        return "avx512";
    if (kSimdWidth >= 4 && simd_detail::cpuHasAvx2())
        return "avx2";
    return "scalar";
}

void
SimdXoshiroBank::fillInterleaved(std::uint64_t *out, std::size_t n)
{
    std::uint64_t *s0 = state(0), *s1 = state(1), *s2 = state(2),
                  *s3 = state(3);
    std::size_t base = 0;
    const bool avx512 = kSimdWidth >= 8 && simd_detail::cpuHasAvx512();
    const bool avx2 = kSimdWidth >= 4 && simd_detail::cpuHasAvx2();
    while (lanes_ - base >= 16 && kSimdWidth >= 16 && avx512) {
        simd_detail::fillAvx512x16(s0 + base, s1 + base, s2 + base,
                                   s3 + base, out + base, lanes_, n);
        base += 16;
    }
    while (lanes_ - base >= 8 && avx512) {
        simd_detail::fillAvx512x8(s0 + base, s1 + base, s2 + base, s3 + base,
                                  out + base, lanes_, n);
        base += 8;
    }
    while (lanes_ - base >= 8 && kSimdWidth >= 8 && avx2) {
        simd_detail::fillAvx2x8(s0 + base, s1 + base, s2 + base, s3 + base,
                                out + base, lanes_, n);
        base += 8;
    }
    while (lanes_ - base >= 4 && avx2) {
        simd_detail::fillAvx2x4(s0 + base, s1 + base, s2 + base, s3 + base,
                                out + base, lanes_, n);
        base += 4;
    }
    for (; base < lanes_; ++base)
        for (std::size_t i = 0; i < n; ++i)
            out[i * lanes_ + base] = stepLane(s0, s1, s2, s3, base);
}

void
SimdXoshiroBank::fillLane(std::size_t w, std::uint64_t *out,
                          std::size_t stride, std::size_t n)
{
    SOFTSKU_ASSERT(w < lanes_);
    std::uint64_t *s0 = state(0), *s1 = state(1), *s2 = state(2),
                  *s3 = state(3);
    for (std::size_t i = 0; i < n; ++i)
        out[i * stride] = stepLane(s0, s1, s2, s3, w);
}

namespace {

/** Below this many rows a vector fill is not worth its setup. */
constexpr std::size_t kMinVectorRows = 64;
/** Scalar-path fill granularity. */
constexpr std::size_t kScalarRows = 1024;

std::size_t
roundUpPow2(std::size_t x)
{
    std::size_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

} // namespace

LaneStreamPool::LaneStreamPool(const std::vector<std::uint64_t> &seeds,
                               std::size_t capacity)
    : lanes_(seeds.size()), capacity_(roundUpPow2(std::max<std::size_t>(
                                capacity, 2 * kMinVectorRows))),
      mask_(capacity_ - 1), buf_(capacity_ * seeds.size()),
      read_(seeds.size(), 0), written_(seeds.size(), 0), bank_(seeds)
{
}

void
LaneStreamPool::refill(std::size_t lane)
{
    // Fast path: every lane's generator is at the same position, so one
    // interleaved vector fill advances the whole pack.  The row budget
    // is bounded by the slowest reader's remaining ring space.
    bool aligned = true;
    std::uint64_t w0 = written_[0];
    std::uint64_t minRead = read_[0];
    for (std::size_t w = 1; w < lanes_; ++w) {
        aligned = aligned && written_[w] == w0;
        minRead = std::min(minRead, read_[w]);
    }
    if (aligned) {
        std::size_t space =
            capacity_ - static_cast<std::size_t>(w0 - minRead);
        if (space >= kMinVectorRows) {
            std::size_t row = static_cast<std::size_t>(w0 & mask_);
            std::size_t first = std::min(space, capacity_ - row);
            bank_.fillInterleaved(buf_.data() + row * lanes_, first);
            if (space > first)
                bank_.fillInterleaved(buf_.data(), space - first);
            for (std::size_t w = 0; w < lanes_; ++w)
                written_[w] += space;
            ++vectorFills_;
            return;
        }
    }

    // Slow path: the pack's cursors have drifted (mixed profiles or
    // seeds in one lane group) — advance only the starved lane.  Its
    // ring is empty here (read == written), so the whole capacity is
    // available; cap the fill to keep latency bounded.
    std::size_t space =
        capacity_ - static_cast<std::size_t>(written_[lane] - read_[lane]);
    std::size_t n = std::min(space, kScalarRows);
    std::size_t row = static_cast<std::size_t>(written_[lane] & mask_);
    std::size_t first = std::min(n, capacity_ - row);
    bank_.fillLane(lane, buf_.data() + row * lanes_ + lane, lanes_, first);
    if (n > first)
        bank_.fillLane(lane, buf_.data() + lane, lanes_, n - first);
    written_[lane] += n;
    ++scalarFills_;
}

} // namespace softsku
