/**
 * @file
 * Width-templated SIMD xoshiro256** lane bank and the buffered per-lane
 * consumers the batched simulator core drinks from.
 *
 * A SimdXoshiroBank holds W independent xoshiro256** generators in
 * structure-of-arrays form — state word k of lane w lives at
 * `state[k][w]` — and steps every lane together with one vector
 * operation per state word.  Each lane is seeded exactly like a scalar
 * `Rng(seed)` (the same SplitMix64 chain), so lane w's output is
 * bit-for-bit the stream `Rng(seeds[w])` would produce.  That identity
 * is the foundation of the batched simulator core's equivalence
 * guarantee: a batched lane replays the precise substream its scalar
 * solo run consumes.
 *
 * Draws land in an *interleaved* layout — `out[i * lanes + w]` is lane
 * w's i-th draw — so the fill loop issues one contiguous vector store
 * per step instead of W scattered extracts.  Consumers read their lane
 * at stride `lanes`; in the common lockstep case (every lane consuming
 * the same draw index, which is exactly what same-seed knob-sweep
 * lanes do) each cache line of the buffer is fully consumed.
 *
 * The vector kernels live in their own translation units
 * (simd_rng_avx2.cc, simd_rng_avx512.cc) compiled with the matching
 * -m flags; everything here and in simd_rng.cc builds with the default
 * architecture.  Selection is at runtime via cpuid, capped by the
 * compile-time SOFTSKU_SIMD_WIDTH option (1 = scalar fallback only —
 * the CI shard that keeps the fallback golden-equal builds this).
 * The kernels are integer-only, so no floating-point result anywhere
 * can depend on which backend ran.
 */

#ifndef SOFTSKU_STATS_SIMD_RNG_HH
#define SOFTSKU_STATS_SIMD_RNG_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

#ifndef SOFTSKU_SIMD_WIDTH
#define SOFTSKU_SIMD_WIDTH 8
#endif

namespace softsku {

/** Compile-time cap on the vector group width (1, 4, 8, or 16). */
constexpr std::size_t kSimdWidth = SOFTSKU_SIMD_WIDTH;

static_assert(kSimdWidth == 1 || kSimdWidth == 4 || kSimdWidth == 8 ||
                  kSimdWidth == 16,
              "SOFTSKU_SIMD_WIDTH must be 1, 4, 8, or 16");

namespace simd_detail {

/** Advance 4 lanes at state offset 0 by n steps (AVX2 kernel). */
void fillAvx2x4(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
                std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
                std::size_t n);
/** Advance 8 lanes as two interleaved 4-lane chains (AVX2 kernel). */
void fillAvx2x8(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
                std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
                std::size_t n);
/** Advance 8 lanes by n steps (AVX-512 kernel). */
void fillAvx512x8(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
                  std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
                  std::size_t n);
/** Advance 16 lanes as two interleaved 8-lane chains (AVX-512 kernel). */
void fillAvx512x16(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
                   std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
                   std::size_t n);

/** Runtime CPU feature checks (cached after the first call). */
bool cpuHasAvx2();
bool cpuHasAvx512();

} // namespace simd_detail

/**
 * W independent xoshiro256** streams stepped together.  Lane count is
 * a runtime choice (ragged final batches shrink it); the vector group
 * width used underneath is min(kSimdWidth, what the CPU offers).
 */
class SimdXoshiroBank
{
  public:
    /** One lane per seed; lane w replays `Rng(seeds[w])` exactly. */
    explicit SimdXoshiroBank(const std::vector<std::uint64_t> &seeds);

    std::size_t lanes() const { return lanes_; }

    /**
     * Generate @p n draws for every lane into the interleaved layout
     * `out[i * lanes() + w]`.  Every lane's generator advances n steps.
     */
    void fillInterleaved(std::uint64_t *out, std::size_t n);

    /**
     * Generate @p n draws for lane @p w only, writing draw i to
     * `out[i * stride]`.  The scalar escape hatch for lanes whose
     * consumption has diverged from the pack.
     */
    void fillLane(std::size_t w, std::uint64_t *out, std::size_t stride,
                  std::size_t n);

    /** Backend the dispatch would pick right now: avx512|avx2|scalar. */
    static const char *backendName();

  private:
    std::uint64_t *state(int k) { return state_.data() + k * lanes_; }

    std::size_t lanes_;
    /** SoA state: word k of lane w at state_[k * lanes_ + w]. */
    std::vector<std::uint64_t> state_;
};

/**
 * Shared draw pool for one batch lane group: a SimdXoshiroBank plus a
 * ring of prefilled draws per lane.  Lanes consume independently; as
 * long as every lane's generator is at the same position (the lockstep
 * fast path) refills advance all lanes with one vector fill.  A lane
 * that runs dry while the pack's cursors have drifted apart is topped
 * up with a scalar per-lane fill instead — slower, still the exact
 * stream.
 */
class LaneStreamPool
{
  public:
    /** @p capacity rows per lane; rounded up to a power of two. */
    explicit LaneStreamPool(const std::vector<std::uint64_t> &seeds,
                            std::size_t capacity = 8192);

    std::size_t lanes() const { return lanes_; }

    /** Next raw draw of lane @p w — `Rng(seeds[w])`'s next value. */
    std::uint64_t
    next(std::size_t w)
    {
        if (read_[w] == written_[w])
            refill(w);
        std::uint64_t v =
            buf_[static_cast<std::size_t>(read_[w] & mask_) * lanes_ + w];
        ++read_[w];
        return v;
    }

    /** How many refills used the full-width vector fast path. */
    std::uint64_t vectorFills() const { return vectorFills_; }
    /** How many refills fell back to a single-lane scalar fill. */
    std::uint64_t scalarFills() const { return scalarFills_; }

  private:
    void refill(std::size_t lane);

    std::size_t lanes_;
    std::size_t capacity_;
    std::uint64_t mask_;
    std::vector<std::uint64_t> buf_;
    /** Absolute draw counts, per lane (monotonic; ring index = & mask_). */
    std::vector<std::uint64_t> read_;
    std::vector<std::uint64_t> written_;
    SimdXoshiroBank bank_;
    std::uint64_t vectorFills_ = 0;
    std::uint64_t scalarFills_ = 0;
};

/**
 * Rng-compatible view of one pool lane.  The distribution transforms
 * are copied verbatim from Rng so every derived draw — uniform, Lemire
 * below(), Box-Muller gaussian with its cached spare — is bit-identical
 * to the scalar generator consuming the same raw stream.
 */
class BufferedRng
{
  public:
    BufferedRng(LaneStreamPool *pool, std::size_t lane)
        : pool_(pool), lane_(lane)
    {
    }

    std::uint64_t next() { return pool_->next(lane_); }

    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    std::uint64_t
    below(std::uint64_t bound)
    {
        SOFTSKU_ASSERT(bound > 0);
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        SOFTSKU_ASSERT(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    double
    gaussian()
    {
        if (hasSpareGauss_) {
            hasSpareGauss_ = false;
            return spareGauss_;
        }
        double u1;
        do {
            u1 = uniform();
        } while (u1 <= 0.0);
        double u2 = uniform();
        double mag = std::sqrt(-2.0 * std::log(u1));
        spareGauss_ = mag * std::sin(2.0 * M_PI * u2);
        hasSpareGauss_ = true;
        return mag * std::cos(2.0 * M_PI * u2);
    }

    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    double
    exponential(double rate)
    {
        SOFTSKU_ASSERT(rate > 0.0);
        double u;
        do {
            u = uniform();
        } while (u <= 0.0);
        return -std::log(u) / rate;
    }

    bool chance(double p) { return uniform() < p; }

    double
    logNormalMean(double mean, double sigma)
    {
        SOFTSKU_ASSERT(mean > 0.0);
        double mu = std::log(mean) - 0.5 * sigma * sigma;
        return std::exp(mu + sigma * gaussian());
    }

  private:
    LaneStreamPool *pool_;
    std::size_t lane_;
    bool hasSpareGauss_ = false;
    double spareGauss_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_STATS_SIMD_RNG_HH
