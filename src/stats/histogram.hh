/**
 * @file
 * Reservoir-free percentile estimation for latency distributions.
 *
 * Request latencies in the QoS solver span microseconds to seconds
 * across services (Table 2 of the paper), so the histogram uses
 * log-spaced bins with bounded relative error, similar in spirit to
 * HdrHistogram.
 *
 * The bin geometry lives in LogBinLayout so other sketches can share
 * it: two structures built on the same layout index values into the
 * same bins, which is what makes their bin counts mergeable (the ODS
 * store's rollup sketches rely on exactly this).
 */

#ifndef SOFTSKU_STATS_HISTOGRAM_HH
#define SOFTSKU_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace softsku {

/**
 * The shared log-spaced bin geometry: positive values in
 * [minValue, maxValue] map to bins of equal log10 width.  Equality of
 * layouts is equality of bin assignment, so counts indexed by one
 * layout may be added to counts indexed by an equal layout.
 */
class LogBinLayout
{
  public:
    /**
     * @param minValue      smallest distinguishable value (> 0)
     * @param maxValue      largest representable value
     * @param binsPerDecade resolution; 100 → ~2.3% relative error
     */
    LogBinLayout(double minValue = 1e-9, double maxValue = 1e6,
                 int binsPerDecade = 100);

    /** Bin index for @p value (clamped to the representable range). */
    size_t binFor(double value) const;

    /** Geometric center of @p bin (the reported percentile value). */
    double binCenter(size_t bin) const;

    /** Total number of bins. */
    size_t bins() const { return bins_; }

    double minValue() const { return minValue_; }
    double maxValue() const { return maxValue_; }
    double binsPerDecade() const { return binsPerDecade_; }

    /** Same geometry — counts indexed by each may be merged. */
    bool operator==(const LogBinLayout &other) const
    {
        return minValue_ == other.minValue_ &&
               maxValue_ == other.maxValue_ &&
               binsPerDecade_ == other.binsPerDecade_;
    }
    bool operator!=(const LogBinLayout &other) const
    {
        return !(*this == other);
    }

  private:
    double minValue_;
    double maxValue_;
    double logMin_;
    double binsPerDecade_;
    size_t bins_;
};

/** Log-binned histogram over positive values with percentile queries. */
class LogHistogram
{
  public:
    /**
     * @param minValue     smallest distinguishable value (> 0)
     * @param maxValue     largest representable value
     * @param binsPerDecade resolution; 100 → ~2.3% relative error
     */
    LogHistogram(double minValue = 1e-9, double maxValue = 1e6,
                 int binsPerDecade = 100);

    /** Build on an explicit shared layout. */
    explicit LogHistogram(const LogBinLayout &layout);

    /** Record one observation (clamped to the representable range). */
    void add(double value);

    /** Record @p count observations of the same value. */
    void add(double value, std::uint64_t count);

    /** Total recorded observations. */
    std::uint64_t count() const { return total_; }

    /** Approximate value at quantile @p q in [0, 1]. */
    double percentile(double q) const;

    /** Arithmetic mean of recorded observations (exact). */
    double mean() const;

    /** Reset all bins. */
    void clear();

    /** The bin geometry this histogram indexes by. */
    const LogBinLayout &layout() const { return layout_; }

  private:
    LogBinLayout layout_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_STATS_HISTOGRAM_HH
