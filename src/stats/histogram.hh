/**
 * @file
 * Reservoir-free percentile estimation for latency distributions.
 *
 * Request latencies in the QoS solver span microseconds to seconds
 * across services (Table 2 of the paper), so the histogram uses
 * log-spaced bins with bounded relative error, similar in spirit to
 * HdrHistogram.
 */

#ifndef SOFTSKU_STATS_HISTOGRAM_HH
#define SOFTSKU_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace softsku {

/** Log-binned histogram over positive values with percentile queries. */
class LogHistogram
{
  public:
    /**
     * @param minValue     smallest distinguishable value (> 0)
     * @param maxValue     largest representable value
     * @param binsPerDecade resolution; 100 → ~2.3% relative error
     */
    LogHistogram(double minValue = 1e-9, double maxValue = 1e6,
                 int binsPerDecade = 100);

    /** Record one observation (clamped to the representable range). */
    void add(double value);

    /** Record @p count observations of the same value. */
    void add(double value, std::uint64_t count);

    /** Total recorded observations. */
    std::uint64_t count() const { return total_; }

    /** Approximate value at quantile @p q in [0, 1]. */
    double percentile(double q) const;

    /** Arithmetic mean of recorded observations (exact). */
    double mean() const;

    /** Reset all bins. */
    void clear();

  private:
    size_t binFor(double value) const;
    double binCenter(size_t bin) const;

    double minValue_;
    double maxValue_;
    double logMin_;
    double binsPerDecade_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_STATS_HISTOGRAM_HH
