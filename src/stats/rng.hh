/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the simulator (workload streams, load
 * noise, EMON multiplexing error) draws from an explicitly seeded Rng so
 * experiments are reproducible bit-for-bit.  The generator is
 * xoshiro256** seeded through SplitMix64, which is both fast and of
 * higher quality than std::minstd/std::mt19937 for this use.
 */

#ifndef SOFTSKU_STATS_RNG_HH
#define SOFTSKU_STATS_RNG_HH

#include <cstdint>

namespace softsku {

/** A seedable xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; the same seed replays the stream. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential deviate with the given rate (lambda). */
    double exponential(double rate);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Log-normal deviate parameterized directly by the *target* mean and
     * the sigma of the underlying normal — convenient for latency noise.
     */
    double logNormalMean(double mean, double sigma);

    /** Derive an independent child generator (for per-component streams). */
    Rng fork();

    /**
     * Derive an independent substream identified by @p streamId.
     *
     * Unlike fork(), split() depends only on the construction seed and
     * the stream id — never on how many values have been drawn — so
     * `rng.split(k)` is the same generator no matter when, or on which
     * thread, it is requested.  This is the anchor of the parallel
     * sweep engine's determinism: every A/B task derives its noise
     * stream from a stable id instead of from shared draw order.
     */
    Rng split(std::uint64_t streamId) const;

    /** The seed this generator was constructed with. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_ = 0;
    std::uint64_t s_[4];
    bool hasSpareGauss_ = false;
    double spareGauss_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_STATS_RNG_HH
