#include "stats/distributions.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/logging.hh"

namespace softsku {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double skew)
    : n_(n), skew_(skew)
{
    SOFTSKU_ASSERT(n > 0);
    SOFTSKU_ASSERT(skew >= 0.0);
    // For very large n the CDF table is capped and the tail is sampled
    // uniformly; working sets in the workload models stay well below
    // the cap.
    const std::uint64_t tableMax = 1u << 20;
    std::uint64_t m = std::min(n_, tableMax);
    cdf_.resize(m);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < m; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), skew_);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
    hasTail_ = cdf_.size() < n_;
    tailRank_ = cdf_.size() - 1;
    tailSpan_ = n_ - cdf_.size() + 1;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double> &weights)
{
    SOFTSKU_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        SOFTSKU_ASSERT(w >= 0.0);
        total += w;
    }
    SOFTSKU_ASSERT(total > 0.0);

    size_t n = weights.size();
    normalized_.resize(n);
    for (size_t i = 0; i < n; ++i)
        normalized_[i] = weights[i] / total;

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    std::deque<std::uint32_t> small, large;
    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) {
        scaled[i] = normalized_[i] * static_cast<double>(n);
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        std::uint32_t s = small.front();
        small.pop_front();
        std::uint32_t l = large.front();
        large.pop_front();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = scaled[l] + scaled[s] - 1.0;
        if (scaled[l] < 1.0)
            small.push_back(l);
        else
            large.push_back(l);
    }
    while (!large.empty()) {
        prob_[large.front()] = 1.0;
        large.pop_front();
    }
    while (!small.empty()) {
        prob_[small.front()] = 1.0;
        small.pop_front();
    }
}

double
Ewma::add(double x)
{
    if (empty_) {
        value_ = x;
        empty_ = false;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
}

} // namespace softsku
