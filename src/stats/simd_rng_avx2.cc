/**
 * @file
 * AVX2 xoshiro256** lane kernels — the 256-bit tier of the runtime
 * dispatch in simd_rng.cc.  Compiled with -mavx2 (see
 * src/CMakeLists.txt) and kept kernel-only so no AVX2 instruction can
 * run before the cpuid check.  Integer-only, like the AVX-512 tier.
 *
 * AVX2 has no 64-bit rotate, so rotl is or(shl, shr); the ×5 / ×9
 * multiplies are shift+add (vpmullq does not exist below AVX-512DQ).
 * The 8-lane kernel interleaves two independent 4-lane chains.
 */

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace softsku::simd_detail {

#if defined(__AVX2__)

namespace {

inline __m256i
rol(__m256i x, int k)
{
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
}

inline __m256i
starResult(__m256i s1)
{
    // rotl(s1 * 5, 7) * 9 with shift+add multiplies.
    __m256i m5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    __m256i rl = rol(m5, 7);
    return _mm256_add_epi64(rl, _mm256_slli_epi64(rl, 3));
}

inline __m256i
load(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
store(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

} // namespace

void
fillAvx2x4(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
           std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
           std::size_t n)
{
    __m256i v0 = load(s0), v1 = load(s1), v2 = load(s2), v3 = load(s3);
    for (std::size_t i = 0; i < n; ++i) {
        store(out + i * stride, starResult(v1));
        __m256i t = _mm256_slli_epi64(v1, 17);
        v2 = _mm256_xor_si256(v2, v0);
        v3 = _mm256_xor_si256(v3, v1);
        v1 = _mm256_xor_si256(v1, v2);
        v0 = _mm256_xor_si256(v0, v3);
        v2 = _mm256_xor_si256(v2, t);
        v3 = rol(v3, 45);
    }
    store(s0, v0);
    store(s1, v1);
    store(s2, v2);
    store(s3, v3);
}

void
fillAvx2x8(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
           std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
           std::size_t n)
{
    __m256i a0 = load(s0), b0 = load(s0 + 4);
    __m256i a1 = load(s1), b1 = load(s1 + 4);
    __m256i a2 = load(s2), b2 = load(s2 + 4);
    __m256i a3 = load(s3), b3 = load(s3 + 4);
    for (std::size_t i = 0; i < n; ++i) {
        store(out + i * stride, starResult(a1));
        store(out + i * stride + 4, starResult(b1));
        __m256i ta = _mm256_slli_epi64(a1, 17);
        __m256i tb = _mm256_slli_epi64(b1, 17);
        a2 = _mm256_xor_si256(a2, a0);
        b2 = _mm256_xor_si256(b2, b0);
        a3 = _mm256_xor_si256(a3, a1);
        b3 = _mm256_xor_si256(b3, b1);
        a1 = _mm256_xor_si256(a1, a2);
        b1 = _mm256_xor_si256(b1, b2);
        a0 = _mm256_xor_si256(a0, a3);
        b0 = _mm256_xor_si256(b0, b3);
        a2 = _mm256_xor_si256(a2, ta);
        b2 = _mm256_xor_si256(b2, tb);
        a3 = rol(a3, 45);
        b3 = rol(b3, 45);
    }
    store(s0, a0);
    store(s0 + 4, b0);
    store(s1, a1);
    store(s1 + 4, b1);
    store(s2, a2);
    store(s2 + 4, b2);
    store(s3, a3);
    store(s3 + 4, b3);
}

#else // !__AVX2__

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

void
fillScalarLanes(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
                std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
                std::size_t n, std::size_t lanes)
{
    for (std::size_t w = 0; w < lanes; ++w) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i * stride + w] = rotl(s1[w] * 5, 7) * 9;
            const std::uint64_t t = s1[w] << 17;
            s2[w] ^= s0[w];
            s3[w] ^= s1[w];
            s1[w] ^= s2[w];
            s0[w] ^= s3[w];
            s2[w] ^= t;
            s3[w] = rotl(s3[w], 45);
        }
    }
}

} // namespace

void
fillAvx2x4(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
           std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
           std::size_t n)
{
    fillScalarLanes(s0, s1, s2, s3, out, stride, n, 4);
}

void
fillAvx2x8(std::uint64_t *s0, std::uint64_t *s1, std::uint64_t *s2,
           std::uint64_t *s3, std::uint64_t *out, std::size_t stride,
           std::size_t n)
{
    fillScalarLanes(s0, s1, s2, s3, out, stride, n, 8);
}

#endif // __AVX2__

} // namespace softsku::simd_detail
