/**
 * @file
 * Fleet health queries over the ODS store — the dashboard layer.
 *
 * The paper's operators watch fleet telemetry to decide whether a
 * soft-SKU rollout is behaving (Sec. 2.2, Sec. 4's prolonged
 * validation).  FleetHealthView is that read side: it answers the
 * questions a dashboard or an on-call person asks — "which series
 * regressed the most?", "which racks look sick?" — from the same
 * OdsStore the rollout health checks write and read, so the operator
 * and the machinery never disagree about what the fleet did.
 *
 * Everything here is deterministic given the store contents: ties are
 * broken by series name, windows are caller-supplied simulated time.
 * The JSON form is embedded in orchestrator outcomes (--health-report),
 * so its key order and shape follow the report conventions.
 */

#ifndef SOFTSKU_TELEMETRY_HEALTH_VIEW_HH
#define SOFTSKU_TELEMETRY_HEALTH_VIEW_HH

#include <string>
#include <vector>

#include "telemetry/ods.hh"
#include "util/json.hh"

namespace softsku {

/** One series' movement between a baseline and a recent window. */
struct SeriesTrend
{
    std::string series;
    double baseMean = 0.0;    //!< mean over the baseline window
    double recentMean = 0.0;  //!< mean over the recent window
    /** (recent - base) / base, in percent; 0 when base is 0. */
    double deltaPercent = 0.0;
    std::uint64_t baseCount = 0;
    std::uint64_t recentCount = 0;
};

/** One rack's health over a window, from its per-rack series. */
struct RackHealth
{
    int rack = -1;
    double normalizedMean = 0.0;  //!< converted-cohort throughput/server
    double controlMean = 0.0;     //!< control-cohort throughput/server
    /** (normalized - control) / control, percent; the rollout signal. */
    double deltaPercent = 0.0;
    double onlineMean = 0.0;      //!< average servers online
    bool sick = false;            //!< deltaPercent below -threshold
};

/** The full health report for one service over one window. */
struct FleetHealthReport
{
    std::string service;
    double fromSec = 0.0;
    double toSec = 0.0;
    /** Top-k series by most-negative delta, worst first. */
    std::vector<SeriesTrend> topRegressed;
    /** Per-rack health matrix (empty on trivial topologies). */
    std::vector<RackHealth> racks;
    int sickRacks = 0;

    Json toJson() const;
    /** Human-readable tables for the CLI --health-report flag. */
    std::string renderText() const;
};

/**
 * Read-only health queries against one OdsStore.  The view holds a
 * reference; the store must outlive it.
 */
class FleetHealthView
{
  public:
    explicit FleetHealthView(const OdsStore &ods) : ods_(ods) {}

    /**
     * The k series under @p prefix whose window-mean moved most
     * negatively from [baseFrom, baseTo] to [recentFrom, recentTo].
     * Series with no samples in either window are skipped.  Sorted by
     * (deltaPercent, name) — deterministic under ties.
     */
    std::vector<SeriesTrend> topRegressed(const std::string &prefix,
                                          double baseFromSec,
                                          double baseToSec,
                                          double recentFromSec,
                                          double recentToSec,
                                          size_t k) const;

    /**
     * Full health report for @p service over [fromSec, toSec]: the
     * window is split at its midpoint into baseline and recent halves
     * for the trend ranking; racks are discovered from the store
     * (rack K exists when its "normalized" series does) and marked
     * sick when the converted cohort runs more than @p sickThreshold
     * percent below its control cohort.
     */
    FleetHealthReport report(const std::string &service, double fromSec,
                             double toSec, size_t topK = 5,
                             double sickThresholdPercent = 3.0) const;

  private:
    const OdsStore &ods_;
};

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_HEALTH_VIEW_HH
