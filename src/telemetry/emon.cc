#include "telemetry/emon.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace softsku {

EmonSampler::EmonSampler(const CounterSet &truth, std::uint64_t seed,
                         int counterGroups, double relativeError)
    : truth_(truth), rng_(seed), groups_(std::max(counterGroups, 1)),
      relativeError_(relativeError)
{
}

double
EmonSampler::perturb(double value, int intervals)
{
    double observed = std::max(1.0, static_cast<double>(intervals) /
                                        groups_);
    double sigma = relativeError_ / std::sqrt(observed);
    return value * rng_.logNormalMean(1.0, sigma);
}

std::uint64_t
EmonSampler::perturbCount(std::uint64_t value, int intervals)
{
    if (value == 0)
        return 0;
    double noisy = perturb(static_cast<double>(value), intervals);
    return static_cast<std::uint64_t>(std::llround(std::max(noisy, 0.0)));
}

CounterSet
EmonSampler::sampledView(int intervals)
{
    CounterSet view = truth_;

    auto noisyCache = [&](CacheStats &stats) {
        for (int t = 0; t < 2; ++t) {
            stats.accesses[t] = perturbCount(stats.accesses[t], intervals);
            stats.misses[t] = perturbCount(stats.misses[t], intervals);
        }
        stats.prefetchFills = perturbCount(stats.prefetchFills, intervals);
        stats.prefetchUseful =
            perturbCount(stats.prefetchUseful, intervals);
    };
    noisyCache(view.l1i);
    noisyCache(view.l1d);
    noisyCache(view.l2);
    noisyCache(view.llc);

    view.itlbL1.misses = perturbCount(view.itlbL1.misses, intervals);
    view.dtlbL1.misses = perturbCount(view.dtlbL1.misses, intervals);
    view.itlbWalks = perturbCount(view.itlbWalks, intervals);
    view.dtlbWalks = perturbCount(view.dtlbWalks, intervals);
    view.branches = perturbCount(view.branches, intervals);
    view.mispredicts = perturbCount(view.mispredicts, intervals);

    view.ipc = perturb(view.ipc, intervals);
    view.coreIpc = perturb(view.coreIpc, intervals);
    view.mipsPerCore = perturb(view.mipsPerCore, intervals);
    view.platformMips = perturb(view.platformMips, intervals);
    view.memBandwidthGBs = perturb(view.memBandwidthGBs, intervals);
    view.memLatencyNs = perturb(view.memLatencyNs, intervals);
    return view;
}

double
EmonSampler::sampleMips(int intervals)
{
    return perturb(truth_.platformMips, intervals);
}

} // namespace softsku
