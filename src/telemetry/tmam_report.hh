/**
 * @file
 * Text rendering of a Top-down Microarchitecture Analysis report from a
 * simulated counter set — the drill-down view a performance engineer
 * reads before deciding which knobs are worth sweeping.
 */

#ifndef SOFTSKU_TELEMETRY_TMAM_REPORT_HH
#define SOFTSKU_TELEMETRY_TMAM_REPORT_HH

#include <string>

#include "sim/counters.hh"

namespace softsku {

/**
 * Multi-line TMAM drill-down: the four level-1 categories with the
 * level-2 contributors the simulator can attribute (fetch misses by
 * level, ITLB walks, branch mispredicts, data misses by level, DTLB
 * walks), each as a share of pipeline slots.
 */
std::string renderTmamReport(const CounterSet &counters,
                             const std::string &title = "");

/**
 * One-line knob hints derived from the breakdown — which of μSKU's
 * seven knobs the counters suggest sweeping first (e.g., high LLC code
 * misses → CDP; high TLB walks → THP/SHP; bandwidth near peak →
 * prefetcher configuration).
 */
std::string suggestKnobs(const CounterSet &counters,
                         double peakBandwidthGBs);

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_TMAM_REPORT_HH
