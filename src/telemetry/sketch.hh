/**
 * @file
 * Mergeable percentile sketch for the ODS store's rollup buckets.
 *
 * A fleet telemetry store cannot keep raw samples forever, but the
 * operator still asks for percentiles over month-old windows.  The
 * classic answer (Gorilla/ODS, RRDtool) is resolution rollups whose
 * buckets carry a *mergeable* distribution summary: merging two
 * buckets' summaries gives exactly the summary of the union, so an
 * aggregate over any window is a fold over O(buckets) summaries rather
 * than a sort over O(points) samples.
 *
 * OdsSketch is that summary: log-spaced bin counts on a shared
 * stats/LogBinLayout (the same geometry stats/LogHistogram uses),
 * stored sparsely — one series' samples land in a handful of adjacent
 * bins, so a bucket costs a few pairs, not a dense bin array.  Count,
 * sum, min, and max are carried exactly; percentiles are nearest-rank
 * over the bins, accurate to half a bin width (~1.2% at the default
 * 100 bins/decade) and clamped into the exact [min, max].
 */

#ifndef SOFTSKU_TELEMETRY_SKETCH_HH
#define SOFTSKU_TELEMETRY_SKETCH_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "stats/histogram.hh"

namespace softsku {

/** Sparse log-binned distribution summary; merging is exact. */
class OdsSketch
{
  public:
    explicit OdsSketch(const LogBinLayout &layout = LogBinLayout());

    /** Record one observation. */
    void add(double value) { add(value, 1); }

    /** Record @p count observations of the same value. */
    void add(double value, std::uint64_t count);

    /**
     * Fold @p other in.  Layouts must match (asserted) — equal
     * layouts index values into the same bins, which is what makes
     * the bin counts addable.
     */
    void merge(const OdsSketch &other);

    std::uint64_t count() const { return total_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Exact extrema; 0 when empty. */
    double min() const;
    double max() const;

    /**
     * Nearest-rank percentile over the bins: the value whose rank is
     * ceil(q * count), reported as its bin's center clamped into the
     * exact [min, max].  O(bins used).
     */
    double percentile(double q) const;

    /** Distinct bins occupied (sparse footprint). */
    size_t binsUsed() const { return bins_.size(); }

    /** The sparse (bin, count) pairs, sorted by bin — for callers that
     *  fold many sketches into a dense accumulator without paying a
     *  vector allocation per merge (OdsStore::aggregate). */
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> &
    bins() const
    {
        return bins_;
    }

    const LogBinLayout &layout() const { return layout_; }

    void clear();

  private:
    LogBinLayout layout_;
    /** (bin index, count), sorted by bin index. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> bins_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_SKETCH_HH
