#include "telemetry/tmam_report.hh"

#include "util/strings.hh"
#include "util/table.hh"

namespace softsku {

std::string
renderTmamReport(const CounterSet &counters, const std::string &title)
{
    std::string out;
    if (!title.empty())
        out += "TMAM: " + title + "\n";

    double n = static_cast<double>(counters.instructions);
    if (n <= 0.0)
        return out + "(no instructions retired)\n";

    const TopDownBreakdown &td = counters.topdown;
    out += format("  retiring        %5.1f%%  (IPC %.2f per core)\n",
                  td.retiring * 100.0, counters.coreIpc);

    out += format("  front-end bound %5.1f%%\n", td.frontEnd * 100.0);
    out += format("    L1-I MPKI %.1f | L2 code MPKI %.1f | "
                  "LLC code MPKI %.2f | ITLB walks/ki %.2f\n",
                  counters.mpkiOf(counters.l1i, AccessType::Code),
                  counters.mpkiOf(counters.l2, AccessType::Code),
                  counters.mpkiOf(counters.llc, AccessType::Code),
                  static_cast<double>(counters.itlbWalks) * 1000.0 / n);

    out += format("  bad speculation %5.1f%%\n",
                  td.badSpeculation * 100.0);
    out += format("    mispredict MPKI %.2f | BTB miss share %.0f%%\n",
                  counters.branchMpki(),
                  counters.branches > 0
                      ? static_cast<double>(counters.btbMisses) * 100.0 /
                            static_cast<double>(counters.branches)
                      : 0.0);

    out += format("  back-end bound  %5.1f%%\n", td.backEnd * 100.0);
    out += format("    L1-D MPKI %.1f | L2 data MPKI %.1f | "
                  "LLC data MPKI %.2f | DTLB walks/ki %.2f\n",
                  counters.mpkiOf(counters.l1d, AccessType::Data),
                  counters.mpkiOf(counters.l2, AccessType::Data),
                  counters.mpkiOf(counters.llc, AccessType::Data),
                  static_cast<double>(counters.dtlbWalks) * 1000.0 / n);
    out += format("    memory %.0f GB/s @ %.0f ns\n",
                  counters.memBandwidthGBs, counters.memLatencyNs);
    return out;
}

std::string
suggestKnobs(const CounterSet &counters, double peakBandwidthGBs)
{
    std::vector<std::string> hints;
    double llcCode = counters.mpkiOf(counters.llc, AccessType::Code);
    double n = static_cast<double>(
        counters.instructions > 0 ? counters.instructions : 1);
    double walksPerKi = static_cast<double>(counters.itlbWalks +
                                            counters.dtlbWalks) *
                        1000.0 / n;
    double bwUtil = peakBandwidthGBs > 0.0
                        ? counters.memBandwidthGBs / peakBandwidthGBs
                        : 0.0;

    if (llcCode > 0.5)
        hints.push_back("cdp (off-chip code misses)");
    if (walksPerKi > 1.0)
        hints.push_back("thp/shp (page-walk pressure)");
    if (bwUtil > 0.75)
        hints.push_back("prefetcher (bandwidth near saturation)");
    if (counters.topdown.backEnd > 0.5)
        hints.push_back("uncore_freq (memory-latency bound)");
    if (counters.topdown.retiring > 0.35)
        hints.push_back("core_freq (core bound: frequency pays off)");
    if (hints.empty())
        hints.push_back("core_freq (no dominant architectural bottleneck)");

    return "suggested knobs: " + join(hints, "; ");
}

} // namespace softsku
