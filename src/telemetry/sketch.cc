#include "telemetry/sketch.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace softsku {

OdsSketch::OdsSketch(const LogBinLayout &layout) : layout_(layout)
{
}

void
OdsSketch::add(double value, std::uint64_t count)
{
    if (count == 0)
        return;
    auto bin = static_cast<std::uint32_t>(layout_.binFor(value));
    auto it = std::lower_bound(
        bins_.begin(), bins_.end(), bin,
        [](const auto &entry, std::uint32_t b) { return entry.first < b; });
    if (it != bins_.end() && it->first == bin)
        it->second += count;
    else
        bins_.insert(it, {bin, count});
    if (total_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    total_ += count;
    sum_ += value * static_cast<double>(count);
}

void
OdsSketch::merge(const OdsSketch &other)
{
    SOFTSKU_ASSERT(layout_ == other.layout_);
    if (other.total_ == 0)
        return;
    // Classic sorted-vector merge: O(binsUsed() + other.binsUsed()).
    std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
    merged.reserve(bins_.size() + other.bins_.size());
    auto a = bins_.cbegin();
    auto b = other.bins_.cbegin();
    while (a != bins_.cend() || b != other.bins_.cend()) {
        if (b == other.bins_.cend() ||
            (a != bins_.cend() && a->first < b->first)) {
            merged.push_back(*a++);
        } else if (a == bins_.cend() || b->first < a->first) {
            merged.push_back(*b++);
        } else {
            merged.push_back({a->first, a->second + b->second});
            ++a;
            ++b;
        }
    }
    bins_ = std::move(merged);
    if (total_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    total_ += other.total_;
    sum_ += other.sum_;
}

double
OdsSketch::mean() const
{
    if (total_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(total_);
}

double
OdsSketch::min() const
{
    return total_ == 0 ? 0.0 : min_;
}

double
OdsSketch::max() const
{
    return total_ == 0 ? 0.0 : max_;
}

double
OdsSketch::percentile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest rank: the smallest rank r (1-based) with r >= q * count.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    rank = std::clamp<std::uint64_t>(rank, 1, total_);
    std::uint64_t seen = 0;
    for (const auto &[bin, count] : bins_) {
        seen += count;
        if (seen >= rank)
            return std::clamp(layout_.binCenter(bin), min_, max_);
    }
    return max_;
}

void
OdsSketch::clear()
{
    bins_.clear();
    total_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

} // namespace softsku
