#include "telemetry/health_view.hh"

#include <algorithm>

#include "telemetry/series_names.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace softsku {

Json
FleetHealthReport::toJson() const
{
    Json doc = Json::object();
    doc.set("service", Json(service));
    doc.set("from_sec", Json(fromSec));
    doc.set("to_sec", Json(toSec));

    Json regressed = Json::array();
    for (const SeriesTrend &t : topRegressed) {
        Json row = Json::object();
        row.set("series", Json(t.series));
        row.set("base_mean", Json(t.baseMean));
        row.set("recent_mean", Json(t.recentMean));
        row.set("delta_percent", Json(t.deltaPercent));
        regressed.push(std::move(row));
    }
    doc.set("top_regressed", std::move(regressed));

    Json rackRows = Json::array();
    for (const RackHealth &r : racks) {
        Json row = Json::object();
        row.set("rack", Json(r.rack));
        row.set("normalized_mean", Json(r.normalizedMean));
        row.set("control_mean", Json(r.controlMean));
        row.set("delta_percent", Json(r.deltaPercent));
        row.set("online_mean", Json(r.onlineMean));
        row.set("sick", Json(r.sick));
        rackRows.push(std::move(row));
    }
    doc.set("racks", std::move(rackRows));
    doc.set("sick_racks", Json(sickRacks));
    return doc;
}

std::string
FleetHealthReport::renderText() const
{
    std::string out = format("fleet health: %s  window [%.0fs, %.0fs]\n",
                             service.c_str(), fromSec, toSec);

    TextTable trends;
    trends.header({"series", "base mean", "recent mean", "delta %"});
    for (const SeriesTrend &t : topRegressed) {
        trends.row({t.series, format("%.4f", t.baseMean),
                    format("%.4f", t.recentMean),
                    format("%+.2f", t.deltaPercent)});
    }
    out += trends.render();

    if (!racks.empty()) {
        TextTable matrix;
        matrix.header({"rack", "normalized", "control", "delta %",
                       "online", "health"});
        for (const RackHealth &r : racks) {
            matrix.row({format("%d", r.rack),
                        format("%.4f", r.normalizedMean),
                        format("%.4f", r.controlMean),
                        format("%+.2f", r.deltaPercent),
                        format("%.1f", r.onlineMean),
                        r.sick ? "SICK" : "ok"});
        }
        out += matrix.render();
        out += format("sick racks: %d / %zu\n", sickRacks, racks.size());
    }
    return out;
}

std::vector<SeriesTrend>
FleetHealthView::topRegressed(const std::string &prefix, double baseFromSec,
                              double baseToSec, double recentFromSec,
                              double recentToSec, size_t k) const
{
    std::vector<SeriesTrend> trends;
    for (const std::string &series : ods_.seriesNames()) {
        if (series.compare(0, prefix.size(), prefix) != 0)
            continue;
        OdsAggregate base = ods_.aggregate(series, baseFromSec, baseToSec);
        OdsAggregate recent =
            ods_.aggregate(series, recentFromSec, recentToSec);
        if (base.count == 0 || recent.count == 0)
            continue;
        SeriesTrend t;
        t.series = series;
        t.baseMean = base.mean;
        t.recentMean = recent.mean;
        t.baseCount = base.count;
        t.recentCount = recent.count;
        t.deltaPercent =
            base.mean != 0.0
                ? (recent.mean - base.mean) / base.mean * 100.0
                : 0.0;
        trends.push_back(std::move(t));
    }
    // Worst regression first; name breaks ties so the ranking is
    // stable across shard counts and map iteration orders.
    std::sort(trends.begin(), trends.end(),
              [](const SeriesTrend &a, const SeriesTrend &b) {
                  if (a.deltaPercent != b.deltaPercent)
                      return a.deltaPercent < b.deltaPercent;
                  return a.series < b.series;
              });
    if (trends.size() > k)
        trends.resize(k);
    return trends;
}

FleetHealthReport
FleetHealthView::report(const std::string &service, double fromSec,
                        double toSec, size_t topK,
                        double sickThresholdPercent) const
{
    FleetHealthReport out;
    out.service = service;
    out.fromSec = fromSec;
    out.toSec = toSec;

    double midSec = fromSec + (toSec - fromSec) / 2.0;
    out.topRegressed = topRegressed(fleetSeriesPrefix(service), fromSec,
                                    midSec, midSec, toSec, topK);

    // Rack discovery: rack K exists iff its normalized series does.
    // Racks are contiguous from 0, so stop at the first gap.
    for (int rack = 0;; ++rack) {
        const std::string normalized =
            rackSeriesName(service, rack, "normalized");
        if (!ods_.has(normalized))
            break;
        RackHealth r;
        r.rack = rack;
        OdsAggregate norm = ods_.aggregate(normalized, fromSec, toSec);
        OdsAggregate ctl = ods_.aggregate(
            rackSeriesName(service, rack, "control_normalized"), fromSec,
            toSec);
        OdsAggregate online = ods_.aggregate(
            rackSeriesName(service, rack, "online"), fromSec, toSec);
        r.normalizedMean = norm.mean;
        r.controlMean = ctl.mean;
        r.onlineMean = online.mean;
        r.deltaPercent =
            ctl.mean != 0.0
                ? (norm.mean - ctl.mean) / ctl.mean * 100.0
                : 0.0;
        r.sick = ctl.count > 0 && norm.count > 0 &&
                 r.deltaPercent < -sickThresholdPercent;
        if (r.sick)
            ++out.sickRacks;
        out.racks.push_back(r);
    }
    return out;
}

} // namespace softsku
