#include "telemetry/ods.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace softsku {

OdsRetention
OdsRetention::fleetScale()
{
    OdsRetention r;
    r.rawHorizonSec = 3600.0;
    r.midHorizonSec = 86400.0;
    r.longHorizonSec = 30.0 * 86400.0;
    return r;
}

OdsStore::OdsStore(const OdsStoreOptions &options) : options_(options)
{
    SOFTSKU_ASSERT(options_.shards > 0);
    SOFTSKU_ASSERT(options_.retention.midBucketSec > 0.0);
    SOFTSKU_ASSERT(options_.retention.longBucketSec >=
                   options_.retention.midBucketSec);
    shards_.reserve(options_.shards);
    for (size_t i = 0; i < options_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

size_t
OdsStore::shardIndex(const std::string &series) const
{
    // FNV-1a: cheap, deterministic across runs/platforms (unlike
    // std::hash), and well-mixed for the short dotted names ODS uses.
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : series) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return static_cast<size_t>(h % shards_.size());
}

void
OdsStore::append(const std::string &series, double timeSec, double value)
{
    Shard &shard = *shards_[shardIndex(series)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    Series &s = shard.series[series];
    if (s.everAppended && timeSec < s.newestSec) {
        warn("ODS series '%s': out-of-order append (%.3f after %.3f), "
             "clamping", series.c_str(), timeSec, s.newestSec);
        MetricsRegistry::global()
            .counter("ods.clamped_appends", MetricScope::Operational)
            .add(1);
        timeSec = s.newestSec;
    }
    s.raw.push_back({timeSec, value});
    s.newestSec = timeSec;
    s.everAppended = true;
}

void
OdsStore::recordSnapshot(const MetricsSnapshot &snapshot, double timeSec,
                         const std::string &prefix)
{
    for (const MetricRow &row : snapshot.rows) {
        const std::string name = prefix + row.name;
        switch (row.kind) {
        case MetricRow::Kind::Counter:
        case MetricRow::Kind::Gauge:
            append(name, timeSec, row.value);
            break;
        case MetricRow::Kind::Histogram:
            append(name + ".count", timeSec,
                   static_cast<double>(row.count));
            append(name + ".mean", timeSec, row.mean);
            append(name + ".p50", timeSec, row.p50);
            append(name + ".p95", timeSec, row.p95);
            append(name + ".p99", timeSec, row.p99);
            break;
        }
    }
}

bool
OdsStore::has(const std::string &series) const
{
    const Shard &shard = *shards_[shardIndex(series)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.series.find(series);
    if (it == shard.series.end())
        return false;
    const Series &s = it->second;
    return !s.raw.empty() || !s.mid.empty() || !s.longTerm.empty();
}

std::vector<OdsPoint>
OdsStore::query(const std::string &series, double fromSec,
                double toSec) const
{
    std::vector<OdsPoint> out;
    const Shard &shard = *shards_[shardIndex(series)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.series.find(series);
    if (it == shard.series.end())
        return out;
    const auto &points = it->second.raw;
    auto lo = std::lower_bound(points.begin(), points.end(), fromSec,
                               [](const OdsPoint &p, double t) {
                                   return p.timeSec < t;
                               });
    for (auto p = lo; p != points.end() && p->timeSec <= toSec; ++p)
        out.push_back(*p);
    return out;
}

OdsAggregate
OdsStore::aggregate(const std::string &series, double fromSec,
                    double toSec) const
{
    OdsAggregate agg;
    std::vector<double> rawValues;
    // Folded-window accumulator: exact count/sum/min/max carried
    // alongside dense per-bin tallies.  Dense (one flat array indexed
    // by bin, allocated once per query) so folding B buckets costs B
    // sparse walks with no per-bucket vector allocation — the O(bins)
    // promise of the rollup path.
    std::vector<std::uint64_t> dense;
    std::uint64_t foldedCount = 0;
    double foldedSum = 0.0;
    double foldedMin = 0.0, foldedMax = 0.0;

    {
        const Shard &shard = *shards_[shardIndex(series)];
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.series.find(series);
        if (it == shard.series.end())
            return agg;
        const Series &s = it->second;

        // A bucket contributes when its [start, start + width) span
        // overlaps the window.
        auto foldBuckets = [&](const std::deque<Bucket> &buckets,
                               double widthSec) {
            for (const Bucket &b : buckets) {
                if (b.startSec + widthSec <= fromSec ||
                    b.startSec > toSec || b.sketch.count() == 0)
                    continue;
                if (dense.empty())
                    dense.assign(options_.sketchLayout.bins(), 0);
                for (const auto &[bin, count] : b.sketch.bins())
                    dense[bin] += count;
                if (foldedCount == 0) {
                    foldedMin = b.sketch.min();
                    foldedMax = b.sketch.max();
                } else {
                    foldedMin = std::min(foldedMin, b.sketch.min());
                    foldedMax = std::max(foldedMax, b.sketch.max());
                }
                foldedCount += b.sketch.count();
                foldedSum += b.sketch.sum();
            }
        };
        foldBuckets(s.longTerm, options_.retention.longBucketSec);
        foldBuckets(s.mid, options_.retention.midBucketSec);

        auto lo = std::lower_bound(
            s.raw.begin(), s.raw.end(), fromSec,
            [](const OdsPoint &p, double t) { return p.timeSec < t; });
        for (auto p = lo; p != s.raw.end() && p->timeSec <= toSec; ++p)
            rawValues.push_back(p->value);
    }

    if (foldedCount == 0) {
        // Raw-only window: exact statistics.  Percentiles via
        // selection — three nth_element passes beat one full sort.
        if (rawValues.empty())
            return agg;
        agg.count = rawValues.size();
        double sum = 0.0;
        agg.min = rawValues.front();
        agg.max = rawValues.front();
        for (double v : rawValues) {
            sum += v;
            agg.min = std::min(agg.min, v);
            agg.max = std::max(agg.max, v);
        }
        agg.mean = sum / static_cast<double>(rawValues.size());
        auto nearestRank = [&](double q) {
            auto rank = static_cast<std::uint64_t>(
                std::ceil(q * static_cast<double>(rawValues.size())));
            rank = std::clamp<std::uint64_t>(rank, 1, rawValues.size());
            auto nth = rawValues.begin() +
                       static_cast<std::ptrdiff_t>(rank - 1);
            std::nth_element(rawValues.begin(), nth, rawValues.end());
            return *nth;
        };
        agg.p50 = nearestRank(0.50);
        agg.p95 = nearestRank(0.95);
        agg.p99 = nearestRank(0.99);
        return agg;
    }

    // Rollup buckets overlap the window: fold the raw tail into the
    // dense tallies and answer from them — O(bins), independent of how
    // many samples the buckets summarize.
    const LogBinLayout &layout = options_.sketchLayout;
    for (double v : rawValues) {
        dense[layout.binFor(v)] += 1;
        foldedMin = std::min(foldedMin, v);
        foldedMax = std::max(foldedMax, v);
        foldedCount += 1;
        foldedSum += v;
    }
    agg.count = foldedCount;
    agg.mean = foldedSum / static_cast<double>(foldedCount);
    agg.min = foldedMin;
    agg.max = foldedMax;
    // One cumulative scan serves all three nearest-rank percentiles.
    auto rankFor = [&](double q) {
        auto rank = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(foldedCount)));
        return std::clamp<std::uint64_t>(rank, 1, foldedCount);
    };
    const std::uint64_t r50 = rankFor(0.50), r95 = rankFor(0.95),
                        r99 = rankFor(0.99);
    std::uint64_t seen = 0;
    // No value below foldedMin, so no occupied bin below its bin —
    // start the cumulative scan there instead of at zero.
    for (size_t bin = layout.binFor(foldedMin); bin < dense.size();
         ++bin) {
        if (dense[bin] == 0)
            continue;
        std::uint64_t prev = seen;
        seen += dense[bin];
        double center =
            std::clamp(layout.binCenter(bin), foldedMin, foldedMax);
        if (prev < r50 && seen >= r50)
            agg.p50 = center;
        if (prev < r95 && seen >= r95)
            agg.p95 = center;
        if (prev < r99 && seen >= r99)
            agg.p99 = center;
        if (seen >= r99)
            break;
    }
    agg.approximate = true;
    return agg;
}

std::vector<std::string>
OdsStore::seriesNames() const
{
    std::vector<std::string> names;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[name, s] : shard->series) {
            (void)s;
            names.push_back(name);
        }
    }
    std::sort(names.begin(), names.end());
    return names;
}

void
OdsStore::retain(double horizonSec)
{
    std::uint64_t dropped = 0;
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto &[name, s] : shard.series) {
            (void)name;
            if (!s.everAppended)
                continue;
            double cutoff = s.newestSec - horizonSec;
            auto keepFrom = std::lower_bound(
                s.raw.begin(), s.raw.end(), cutoff,
                [](const OdsPoint &p, double t) {
                    return p.timeSec < t;
                });
            dropped += static_cast<std::uint64_t>(keepFrom -
                                                  s.raw.begin());
            s.raw.erase(s.raw.begin(), keepFrom);
            auto ageBuckets = [&](std::deque<Bucket> &buckets,
                                  double widthSec) {
                while (!buckets.empty() &&
                       buckets.front().startSec + widthSec <= cutoff) {
                    dropped += buckets.front().sketch.count();
                    buckets.pop_front();
                }
            };
            ageBuckets(s.mid, options_.retention.midBucketSec);
            ageBuckets(s.longTerm, options_.retention.longBucketSec);
        }
    }
    if (dropped > 0) {
        droppedPoints_.fetch_add(dropped, std::memory_order_relaxed);
        traceInstant("ods", "ods.retention");
    }
}

void
OdsStore::foldSeries(Series &s, double nowSec)
{
    const OdsRetention &r = options_.retention;

    // Raw → mid: fold points older than the raw horizon into the mid
    // bucket containing their timestamp.  Raw points are time-sorted,
    // so this walks a prefix and appends monotonically to the deque.
    double rawCutoff = nowSec - r.rawHorizonSec;
    auto foldUpTo = std::lower_bound(
        s.raw.begin(), s.raw.end(), rawCutoff,
        [](const OdsPoint &p, double t) { return p.timeSec < t; });
    std::uint64_t foldedCount = 0;
    for (auto p = s.raw.begin(); p != foldUpTo; ++p) {
        double start = std::floor(p->timeSec / r.midBucketSec) *
                       r.midBucketSec;
        if (s.mid.empty() || s.mid.back().startSec < start) {
            Bucket b;
            b.startSec = start;
            b.sketch = OdsSketch(options_.sketchLayout);
            s.mid.push_back(std::move(b));
        }
        s.mid.back().sketch.add(p->value);
        ++foldedCount;
    }
    s.raw.erase(s.raw.begin(), foldUpTo);

    // Mid → long: merge whole mid buckets past their horizon into the
    // long bucket covering them.  Sketch merges are exact, so a long
    // bucket equals the sketch of all its samples regardless of how
    // many mid-bucket steps built it.
    double midCutoff = nowSec - r.midHorizonSec;
    while (!s.mid.empty() &&
           s.mid.front().startSec + r.midBucketSec <= midCutoff) {
        Bucket &m = s.mid.front();
        double start = std::floor(m.startSec / r.longBucketSec) *
                       r.longBucketSec;
        if (s.longTerm.empty() || s.longTerm.back().startSec < start) {
            Bucket b;
            b.startSec = start;
            b.sketch = OdsSketch(options_.sketchLayout);
            s.longTerm.push_back(std::move(b));
        }
        s.longTerm.back().sketch.merge(m.sketch);
        s.mid.pop_front();
    }

    // Long: drop buckets past the final horizon.
    double longCutoff = nowSec - r.longHorizonSec;
    std::uint64_t droppedCount = 0;
    while (!s.longTerm.empty() &&
           s.longTerm.front().startSec + r.longBucketSec <= longCutoff) {
        droppedCount += s.longTerm.front().sketch.count();
        s.longTerm.pop_front();
    }

    if (foldedCount > 0)
        downsampledPoints_.fetch_add(foldedCount,
                                     std::memory_order_relaxed);
    if (droppedCount > 0)
        droppedPoints_.fetch_add(droppedCount,
                                 std::memory_order_relaxed);
}

void
OdsStore::downsample(double nowSec)
{
    if (!options_.retention.enabled())
        return;
    traceInstant("ods", "ods.downsample");
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto &[name, s] : shard.series) {
            (void)name;
            foldSeries(s, nowSec);
        }
    }
    MetricsRegistry::global()
        .counter("ods.downsample_passes", MetricScope::Operational)
        .add(1);
}

OdsStoreStats
OdsStore::stats() const
{
    OdsStoreStats out;
    for (const auto &shardPtr : shards_) {
        const Shard &shard = *shardPtr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        std::uint64_t shardPoints = 0;
        for (const auto &[name, s] : shard.series) {
            (void)name;
            ++out.series;
            shardPoints += s.raw.size();
            out.rollupBuckets += s.mid.size() + s.longTerm.size();
        }
        out.rawPoints += shardPoints;
        out.shardMaxPoints = std::max(out.shardMaxPoints, shardPoints);
    }
    out.downsampledPoints =
        downsampledPoints_.load(std::memory_order_relaxed);
    out.droppedPoints = droppedPoints_.load(std::memory_order_relaxed);
    return out;
}

void
OdsStore::publishGauges() const
{
    OdsStoreStats s = stats();
    auto &reg = MetricsRegistry::global();
    reg.gauge("ods.series", MetricScope::Operational)
        .set(static_cast<double>(s.series));
    reg.gauge("ods.points", MetricScope::Operational)
        .set(static_cast<double>(s.rawPoints));
    reg.gauge("ods.rollup_buckets", MetricScope::Operational)
        .set(static_cast<double>(s.rollupBuckets));
    reg.gauge("ods.shard_max_points", MetricScope::Operational)
        .set(static_cast<double>(s.shardMaxPoints));
    reg.gauge("ods.downsampled_points", MetricScope::Operational)
        .set(static_cast<double>(s.downsampledPoints));
    reg.gauge("ods.dropped_points", MetricScope::Operational)
        .set(static_cast<double>(s.droppedPoints));
}

} // namespace softsku
