#include "telemetry/ods.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace softsku {

void
OdsStore::append(const std::string &series, double timeSec, double value)
{
    auto &points = series_[series];
    if (!points.empty() && timeSec < points.back().timeSec) {
        warn("ODS series '%s': out-of-order append (%.3f after %.3f), "
             "clamping", series.c_str(), timeSec, points.back().timeSec);
        MetricsRegistry::global()
            .counter("ods.clamped_appends", MetricScope::Operational)
            .add(1);
        timeSec = points.back().timeSec;
    }
    points.push_back({timeSec, value});
}

void
OdsStore::recordSnapshot(const MetricsSnapshot &snapshot, double timeSec,
                         const std::string &prefix)
{
    for (const MetricRow &row : snapshot.rows) {
        const std::string name = prefix + row.name;
        switch (row.kind) {
        case MetricRow::Kind::Counter:
        case MetricRow::Kind::Gauge:
            append(name, timeSec, row.value);
            break;
        case MetricRow::Kind::Histogram:
            append(name + ".count", timeSec,
                   static_cast<double>(row.count));
            append(name + ".mean", timeSec, row.mean);
            append(name + ".p50", timeSec, row.p50);
            append(name + ".p95", timeSec, row.p95);
            append(name + ".p99", timeSec, row.p99);
            break;
        }
    }
}

bool
OdsStore::has(const std::string &series) const
{
    auto it = series_.find(series);
    return it != series_.end() && !it->second.empty();
}

std::vector<OdsPoint>
OdsStore::query(const std::string &series, double fromSec,
                double toSec) const
{
    std::vector<OdsPoint> out;
    auto it = series_.find(series);
    if (it == series_.end())
        return out;
    const auto &points = it->second;
    auto lo = std::lower_bound(points.begin(), points.end(), fromSec,
                               [](const OdsPoint &p, double t) {
                                   return p.timeSec < t;
                               });
    for (auto p = lo; p != points.end() && p->timeSec <= toSec; ++p)
        out.push_back(*p);
    return out;
}

OdsAggregate
OdsStore::aggregate(const std::string &series, double fromSec,
                    double toSec) const
{
    OdsAggregate agg;
    auto points = query(series, fromSec, toSec);
    if (points.empty())
        return agg;

    std::vector<double> values;
    values.reserve(points.size());
    double sum = 0.0;
    for (const OdsPoint &p : points) {
        values.push_back(p.value);
        sum += p.value;
    }
    std::sort(values.begin(), values.end());
    agg.count = values.size();
    agg.mean = sum / static_cast<double>(values.size());
    agg.min = values.front();
    agg.max = values.back();
    auto at = [&](double q) {
        auto idx = static_cast<size_t>(q * static_cast<double>(
                                               values.size() - 1));
        return values[idx];
    };
    agg.p50 = at(0.50);
    agg.p99 = at(0.99);
    return agg;
}

std::vector<std::string>
OdsStore::seriesNames() const
{
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto &[name, points] : series_) {
        (void)points;
        names.push_back(name);
    }
    return names;
}

void
OdsStore::retain(double horizonSec)
{
    for (auto &[name, points] : series_) {
        (void)name;
        if (points.empty())
            continue;
        double cutoff = points.back().timeSec - horizonSec;
        auto keepFrom = std::lower_bound(
            points.begin(), points.end(), cutoff,
            [](const OdsPoint &p, double t) { return p.timeSec < t; });
        points.erase(points.begin(), keepFrom);
    }
}

} // namespace softsku
