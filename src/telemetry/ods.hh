/**
 * @file
 * An Operational Data Store (ODS) style time-series facility.
 *
 * The paper's fleet telemetry system stores sampled metrics from every
 * machine and supports retrieval/aggregation (Sec. 2.2); μSKU uses it
 * for the prolonged soft-SKU validation phase, comparing fleet QPS of
 * soft-SKU servers against production servers across code pushes and
 * diurnal load (Sec. 4, "Soft SKU generator").
 */

#ifndef SOFTSKU_TELEMETRY_ODS_HH
#define SOFTSKU_TELEMETRY_ODS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace softsku {

/** One sample in a series. */
struct OdsPoint
{
    double timeSec = 0.0;
    double value = 0.0;
};

/** Aggregate over a queried window. */
struct OdsAggregate
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
};

/**
 * In-memory multi-series store with monotonic-time append and windowed
 * aggregation.  Series are created on first append.
 */
class OdsStore
{
  public:
    /** Append one sample; time must be non-decreasing per series. */
    void append(const std::string &series, double timeSec, double value);

    /** True when the series exists and has samples. */
    bool has(const std::string &series) const;

    /** Samples within [fromSec, toSec]; empty when none. */
    std::vector<OdsPoint> query(const std::string &series, double fromSec,
                                double toSec) const;

    /** Aggregate statistics over [fromSec, toSec]. */
    OdsAggregate aggregate(const std::string &series, double fromSec,
                           double toSec) const;

    /** Names of all stored series. */
    std::vector<std::string> seriesNames() const;

    /**
     * Drop samples older than @p horizonSec behind each series' newest
     * sample (retention, as a fleet store must).
     */
    void retain(double horizonSec);

  private:
    std::map<std::string, std::vector<OdsPoint>> series_;
};

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_ODS_HH
