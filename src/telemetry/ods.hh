/**
 * @file
 * An Operational Data Store (ODS) style time-series facility.
 *
 * The paper's fleet telemetry system stores sampled metrics from every
 * machine and supports retrieval/aggregation (Sec. 2.2); μSKU uses it
 * for the prolonged soft-SKU validation phase, comparing fleet QPS of
 * soft-SKU servers against production servers across code pushes and
 * diurnal load (Sec. 4, "Soft SKU generator").
 *
 * Fleet-scale layout (this store is the read path of every rollout
 * health check, so it must take 10⁴–10⁵ servers' series concurrently):
 *
 *  - **Sharding.** Series are hashed (FNV-1a on the name) across N
 *    independently-locked shards; producers appending to different
 *    series contend only within a shard, never on one store-wide lock.
 *
 *  - **Resolutions.** Each series holds raw points plus two rollup
 *    resolutions (mid: 1-min buckets, long: 1-hr by default).  A
 *    rollup bucket carries exact count/sum/min/max and a mergeable
 *    log-binned percentile sketch (telemetry/sketch.hh), so windowed
 *    aggregation over rolled-up history is a fold over O(buckets)
 *    sketches instead of a sort over O(points) samples.
 *
 *  - **Retention.** downsample(now) folds raw points older than the
 *    raw horizon into mid buckets, mid buckets past their horizon into
 *    long buckets, and drops long buckets past theirs.  The default
 *    OdsRetention keeps everything raw forever, which preserves the
 *    seed store's behavior bit-for-bit: query() returns the same
 *    points and aggregate() computes exact (nearest-rank) percentiles
 *    whenever the window is covered by raw data.  Rollout health
 *    checks and canary judges read raw windows, so their verdicts are
 *    byte-identical across shard counts and retention policies as long
 *    as downsampling is not run over the windows they read — which the
 *    rollout never does.
 */

#ifndef SOFTSKU_TELEMETRY_ODS_HH
#define SOFTSKU_TELEMETRY_ODS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/sketch.hh"

namespace softsku {

struct MetricsSnapshot;

/** One sample in a series. */
struct OdsPoint
{
    double timeSec = 0.0;
    double value = 0.0;
};

/** Aggregate over a queried window. */
struct OdsAggregate
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    /**
     * Nearest-rank percentiles: the value at rank ceil(q·count).
     * Exact when the window is covered by raw samples; sketch-derived
     * (half-a-log-bin accurate) when rollup buckets contribute.
     */
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /** True when any rollup bucket (sketch resolution) contributed. */
    bool approximate = false;
};

/**
 * Resolution-aware retention: how far behind "now" each resolution
 * keeps data before downsample() folds it into the next.  The default
 * horizons are infinite — raw forever, no rollups — which is the seed
 * store's behavior.
 */
struct OdsRetention
{
    /** "Keep forever" horizon sentinel. */
    static constexpr double kForever = 1e300;

    /** Raw points are kept this far behind now; older ones fold into
     *  mid buckets. */
    double rawHorizonSec = kForever;
    /** Mid buckets are kept this far behind now; older ones merge into
     *  long buckets. */
    double midHorizonSec = kForever;
    /** Long buckets older than this are dropped. */
    double longHorizonSec = kForever;

    double midBucketSec = 60.0;     //!< mid rollup resolution
    double longBucketSec = 3600.0;  //!< long rollup resolution

    /** True when downsample() has any folding to do at all. */
    bool enabled() const { return rawHorizonSec < kForever; }

    /** The fleet-service posture: 1 h raw, 1 day of 1-min buckets,
     *  30 days of 1-hr buckets. */
    static OdsRetention fleetScale();
};

/** Construction-time knobs for a store. */
struct OdsStoreOptions
{
    /** Independently-locked shards (series hash across them). */
    size_t shards = 16;
    /** Resolution/retention scheme applied by downsample(). */
    OdsRetention retention;
    /** Bin geometry of the rollup sketches. */
    LogBinLayout sketchLayout;
};

/** A point-in-time census of the store, for the operational gauges. */
struct OdsStoreStats
{
    std::uint64_t series = 0;          //!< live series count
    std::uint64_t rawPoints = 0;       //!< raw samples currently held
    std::uint64_t rollupBuckets = 0;   //!< mid + long buckets held
    std::uint64_t shardMaxPoints = 0;  //!< raw samples in fullest shard
    std::uint64_t downsampledPoints = 0;  //!< cumulative samples folded
    std::uint64_t droppedPoints = 0;   //!< cumulative samples aged out
};

/**
 * In-memory multi-series store with monotonic-time append, windowed
 * aggregation, sharded locking, and resolution rollups.  Series are
 * created on first append.  All member functions are safe to call
 * concurrently.
 */
class OdsStore
{
  public:
    OdsStore() : OdsStore(OdsStoreOptions{}) {}
    explicit OdsStore(const OdsStoreOptions &options);

    /** Shards hold mutexes; a store is pinned where it was built. */
    OdsStore(const OdsStore &) = delete;
    OdsStore &operator=(const OdsStore &) = delete;

    /**
     * Append one sample.  Time must be non-decreasing per series; an
     * out-of-order append is clamped to the series' newest timestamp
     * (with a logged warning and an `ods.clamped_appends` operational
     * metric) rather than corrupting the windowed aggregates — a fleet
     * store must survive one producer's clock going backwards.
     */
    void append(const std::string &series, double timeSec, double value);

    /**
     * Persist one flight-recorder metrics snapshot: every counter and
     * gauge lands as `<prefix><name>` at @p timeSec; histograms land
     * as `<prefix><name>.count/.mean/.p50/.p95/.p99`.  This is how
     * tool-side telemetry (e.g. a μSKU report's deterministic metrics)
     * enters the same store the rollout health checks read.
     */
    void recordSnapshot(const MetricsSnapshot &snapshot, double timeSec,
                        const std::string &prefix = "tool.");

    /** True when the series exists and has samples (any resolution). */
    bool has(const std::string &series) const;

    /**
     * Raw samples within [fromSec, toSec]; empty when none.  Rolled-up
     * history is not returned here — raw resolution is whatever the
     * retention policy has preserved; ask aggregate() for the rest.
     */
    std::vector<OdsPoint> query(const std::string &series, double fromSec,
                                double toSec) const;

    /**
     * Aggregate statistics over [fromSec, toSec].  Windows covered by
     * raw samples are exact (count/mean/min/max plus nearest-rank
     * percentiles via selection, no full sort); windows touching
     * rollup buckets fold the buckets' sketches (O(buckets), marked
     * `approximate`).  A rollup bucket contributes when its time span
     * overlaps the window.
     */
    OdsAggregate aggregate(const std::string &series, double fromSec,
                           double toSec) const;

    /** Names of all stored series, sorted. */
    std::vector<std::string> seriesNames() const;

    /**
     * Drop samples older than @p horizonSec behind each series' newest
     * sample — the manual, uniform retention pass (raw points and
     * rollup buckets alike age out).
     */
    void retain(double horizonSec);

    /**
     * Run one resolution-rollup pass against the clock @p nowSec: raw
     * → mid → long per the retention policy, emitting trace instants
     * (`ods.downsample`, `ods.retention`) and operational counters.
     * A no-op under the default keep-forever policy.
     */
    void downsample(double nowSec);

    /** Census the store (walks every shard under its lock). */
    OdsStoreStats stats() const;

    /**
     * Publish the census as operational gauges in the global metrics
     * registry: `ods.series`, `ods.points`, `ods.shard_max_points` —
     * store health for the --metrics table.
     */
    void publishGauges() const;

  private:
    /** One rollup bucket: [startSec, startSec + width). */
    struct Bucket
    {
        double startSec = 0.0;
        OdsSketch sketch;
    };

    /** One series' data across all resolutions. */
    struct Series
    {
        std::vector<OdsPoint> raw;
        std::deque<Bucket> mid;
        std::deque<Bucket> longTerm;
        /** Newest timestamp ever appended (clamp reference even after
         *  the raw points were folded away). */
        double newestSec = 0.0;
        bool everAppended = false;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::map<std::string, Series> series;
    };

    size_t shardIndex(const std::string &series) const;
    void foldSeries(Series &series, double nowSec);

    OdsStoreOptions options_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> downsampledPoints_{0};
    std::atomic<std::uint64_t> droppedPoints_{0};
};

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_ODS_HH
