/**
 * @file
 * An Operational Data Store (ODS) style time-series facility.
 *
 * The paper's fleet telemetry system stores sampled metrics from every
 * machine and supports retrieval/aggregation (Sec. 2.2); μSKU uses it
 * for the prolonged soft-SKU validation phase, comparing fleet QPS of
 * soft-SKU servers against production servers across code pushes and
 * diurnal load (Sec. 4, "Soft SKU generator").
 */

#ifndef SOFTSKU_TELEMETRY_ODS_HH
#define SOFTSKU_TELEMETRY_ODS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace softsku {

struct MetricsSnapshot;

/** One sample in a series. */
struct OdsPoint
{
    double timeSec = 0.0;
    double value = 0.0;
};

/** Aggregate over a queried window. */
struct OdsAggregate
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
};

/**
 * In-memory multi-series store with monotonic-time append and windowed
 * aggregation.  Series are created on first append.
 */
class OdsStore
{
  public:
    /**
     * Append one sample.  Time must be non-decreasing per series; an
     * out-of-order append is clamped to the series' newest timestamp
     * (with a logged warning and an `ods.clamped_appends` operational
     * metric) rather than corrupting the windowed aggregates — a fleet
     * store must survive one producer's clock going backwards.
     */
    void append(const std::string &series, double timeSec, double value);

    /**
     * Persist one flight-recorder metrics snapshot: every counter and
     * gauge lands as `<prefix><name>` at @p timeSec; histograms land
     * as `<prefix><name>.count/.mean/.p50/.p95/.p99`.  This is how
     * tool-side telemetry (e.g. a μSKU report's deterministic metrics)
     * enters the same store the rollout health checks read.
     */
    void recordSnapshot(const MetricsSnapshot &snapshot, double timeSec,
                        const std::string &prefix = "tool.");

    /** True when the series exists and has samples. */
    bool has(const std::string &series) const;

    /** Samples within [fromSec, toSec]; empty when none. */
    std::vector<OdsPoint> query(const std::string &series, double fromSec,
                                double toSec) const;

    /** Aggregate statistics over [fromSec, toSec]. */
    OdsAggregate aggregate(const std::string &series, double fromSec,
                           double toSec) const;

    /** Names of all stored series. */
    std::vector<std::string> seriesNames() const;

    /**
     * Drop samples older than @p horizonSec behind each series' newest
     * sample (retention, as a fleet store must).
     */
    void retain(double horizonSec);

  private:
    std::map<std::string, std::vector<OdsPoint>> series_;
};

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_ODS_HH
