/**
 * @file
 * The fleet telemetry series-name scheme, in one place.
 *
 * FleetSlice::rollout writes these series and the rollout health
 * machinery, FleetHealthView, and the dashboard emitters all read them
 * back; a name spelled two ways would silently split one signal into
 * two series, so every producer and consumer goes through these
 * helpers.
 *
 *   fleet.<service>.<metric>              fleet-wide series
 *   fleet.<service>.rack<K>.<metric>      per-rack series
 *   tool.<target>.<metric>                persisted tool metrics
 *                                         (OdsStore::recordSnapshot)
 */

#ifndef SOFTSKU_TELEMETRY_SERIES_NAMES_HH
#define SOFTSKU_TELEMETRY_SERIES_NAMES_HH

#include <string>

namespace softsku {

/** "fleet.<service>." — the prefix every fleet series shares. */
inline std::string
fleetSeriesPrefix(const std::string &service)
{
    return "fleet." + service + ".";
}

/** "fleet.<service>.<metric>" (e.g. "fleet.web.mips"). */
inline std::string
fleetSeriesName(const std::string &service, const std::string &metric)
{
    return fleetSeriesPrefix(service) + metric;
}

/** "fleet.<service>.rack<K>.<metric>" (e.g. "fleet.web.rack2.online"). */
inline std::string
rackSeriesName(const std::string &service, int rack,
               const std::string &metric)
{
    return fleetSeriesPrefix(service) + "rack" + std::to_string(rack) +
           "." + metric;
}

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_SERIES_NAMES_HH
