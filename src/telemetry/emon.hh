/**
 * @file
 * EMON-style multiplexed performance-counter sampling.
 *
 * Real CPUs expose a handful of counter registers; EMON rotates event
 * groups through them, so each event is only observed for a slice of
 * the measurement interval and its extrapolated value carries
 * multiplexing error that shrinks with observation time (paper
 * Sec. 2.2).  The sampler wraps a ground-truth CounterSet and produces
 * exactly such noisy extrapolated views — what μSKU actually consumes.
 */

#ifndef SOFTSKU_TELEMETRY_EMON_HH
#define SOFTSKU_TELEMETRY_EMON_HH

#include "sim/counters.hh"
#include "stats/rng.hh"

namespace softsku {

/** Multiplexed sampler over one ground-truth counter set. */
class EmonSampler
{
  public:
    /**
     * @param truth          ground-truth counters for the window
     * @param seed           noise stream seed
     * @param counterGroups  groups rotated through the PMU (time share
     *                       per event = 1/groups)
     * @param relativeError  1-sigma relative error of a single
     *                       multiplexing interval
     */
    EmonSampler(const CounterSet &truth, std::uint64_t seed = 1,
                int counterGroups = 4, double relativeError = 0.05);

    /**
     * A sampled view of the counters after @p intervals multiplexing
     * rotations: every event estimate is perturbed independently with
     * error ∝ 1/sqrt(intervals / groups).
     */
    CounterSet sampledView(int intervals);

    /** One noisy MIPS observation (the metric μSKU's A/B tester uses). */
    double sampleMips(int intervals = 1);

    const CounterSet &truth() const { return truth_; }

  private:
    double perturb(double value, int intervals);
    std::uint64_t perturbCount(std::uint64_t value, int intervals);

    CounterSet truth_;
    Rng rng_;
    int groups_;
    double relativeError_;
};

} // namespace softsku

#endif // SOFTSKU_TELEMETRY_EMON_HH
