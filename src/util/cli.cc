#include "util/cli.hh"

#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/thread_pool.hh"

namespace softsku {

CliArgs::CliArgs(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "true";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::get(const std::string &name, const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

long long
CliArgs::getInt(const std::string &name, long long fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    auto parsed = parseInt(it->second);
    if (!parsed)
        fatal("flag --%s expects an integer, got '%s'", name.c_str(),
              it->second.c_str());
    return *parsed;
}

unsigned
CliArgs::getJobs(unsigned fallback, const std::string &name) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    if (it->second == "auto")
        return ThreadPool::hardwareThreads();
    auto parsed = parseInt(it->second);
    if (!parsed || *parsed < 0)
        fatal("flag --%s expects a thread count or 'auto', got '%s'",
              name.c_str(), it->second.c_str());
    if (*parsed == 0)
        return ThreadPool::hardwareThreads();
    return static_cast<unsigned>(*parsed);
}

LogLevel
CliArgs::getLogLevel(LogLevel fallback, const std::string &name) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    LogLevel level;
    if (!logLevelFromName(it->second, level)) {
        fatal("flag --%s expects silent|error|warn|info|debug, got '%s'",
              name.c_str(), it->second.c_str());
    }
    return level;
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    auto parsed = parseDouble(it->second);
    if (!parsed)
        fatal("flag --%s expects a number, got '%s'", name.c_str(),
              it->second.c_str());
    return *parsed;
}

ToolOptions
ToolOptions::fromArgs(const CliArgs &args, unsigned defaultJobs)
{
    ToolOptions opts;
    opts.jobs = args.getJobs(defaultJobs);
    opts.search = args.get("search");
    // Spelling is validated here so a typo dies at the flag, not deep
    // in a run; the core layer re-parses the surviving string.
    if (!opts.search.empty() && opts.search != "fixed" &&
        opts.search != "race" && opts.search != "halving") {
        fatal("flag --search expects fixed|race|halving, got '%s'",
              opts.search.c_str());
    }
    opts.confidence = args.getDouble("confidence", 0.0);
    if (args.has("confidence") &&
        (opts.confidence <= 0.5 || opts.confidence >= 1.0)) {
        fatal("flag --confidence expects a value in (0.5, 1), got '%s'",
              args.get("confidence").c_str());
    }
    // Key spellings are validated by knobFromKey at the overlay point,
    // which can see the registry and list the valid keys.
    opts.knobs = args.get("knobs");
    if (args.has("faults"))
        opts.faults = FaultPlan::fromSpec(args.get("faults"));
    opts.faultSeed =
        static_cast<std::uint64_t>(args.getInt("fault-seed", 1));
    opts.domains = args.get("domains");
    opts.cacheDir = args.get("cache-dir");
    opts.simCore = args.get("sim-core");
    if (!opts.simCore.empty() && opts.simCore != "batched" &&
        opts.simCore != "scalar") {
        fatal("flag --sim-core expects batched|scalar, got '%s'",
              opts.simCore.c_str());
    }
    opts.emitDir = args.get("emit");
    opts.traceOut = args.get("trace-out");
    opts.metrics = args.has("metrics");
    opts.progress = args.has("progress");
    opts.logLevel = args.getLogLevel(LogLevel::Info);
    return opts;
}

void
ToolOptions::apply() const
{
    setLogLevel(logLevel);
    if (!traceOut.empty())
        Tracer::global().enable();
    if (faults.any()) {
        inform("fault injection armed: %s (seed %llu)",
               faults.describe().c_str(),
               static_cast<unsigned long long>(faultSeed));
    }
}

void
ToolOptions::writeTrace() const
{
    if (traceOut.empty())
        return;
    if (Tracer::global().writeChromeTrace(traceOut))
        inform("Chrome trace written to %s", traceOut.c_str());
    else
        warn("could not write trace to %s", traceOut.c_str());
}

} // namespace softsku
