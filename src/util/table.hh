/**
 * @file
 * Plain-text table and bar-chart rendering for the benchmark harnesses.
 *
 * Every bench binary reproduces one of the paper's tables or figures; the
 * renderers here keep their output format uniform: aligned columns for
 * tables and unicode bar rows for figures.
 */

#ifndef SOFTSKU_UTIL_TABLE_HH
#define SOFTSKU_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace softsku {

/** A column-aligned text table builder. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; short rows are padded with empty cells. */
    void row(std::vector<std::string> cells);

    /** Insert a horizontal separator after the current last row. */
    void separator();

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_;
};

/**
 * Render one labelled horizontal bar scaled against @p maxValue over
 * @p width character cells.  Used by the figure benches.
 */
std::string barRow(const std::string &label, double value, double maxValue,
                   int width = 40, const std::string &suffix = "");

/**
 * Render a stacked-percentage bar (e.g., the top-down or instruction-mix
 * breakdowns).  @p parts must sum to roughly 100.
 */
std::string stackedBarRow(const std::string &label,
                          const std::vector<double> &parts, int width = 50);

/** Print a figure/table banner with the paper reference. */
void printBanner(const std::string &experimentId, const std::string &title);

} // namespace softsku

#endif // SOFTSKU_UTIL_TABLE_HH
