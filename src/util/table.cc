#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/strings.hh"

namespace softsku {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::separator()
{
    separators_.push_back(rows_.size());
}

std::string
TextTable::render() const
{
    size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<size_t> widths(cols, 0);
    auto account = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    auto renderRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (size_t i = 0; i < cols; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            line += cell;
            if (i + 1 < cols)
                line += std::string(widths[i] - cell.size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string sepLine;
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i)
        total += widths[i] + (i + 1 < cols ? 2 : 0);
    sepLine = std::string(total, '-') + "\n";

    std::string out;
    if (!header_.empty()) {
        out += renderRow(header_);
        out += sepLine;
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
        if (std::count(separators_.begin(), separators_.end(), i) > 0)
            out += sepLine;
        out += renderRow(rows_[i]);
    }
    return out;
}

std::string
barRow(const std::string &label, double value, double maxValue, int width,
       const std::string &suffix)
{
    double frac = maxValue > 0.0 ? value / maxValue : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    int fill = static_cast<int>(std::lround(frac * width));
    std::string bar;
    for (int i = 0; i < width; ++i)
        bar += i < fill ? "#" : ".";
    return format("%-22s |%s| %s", label.c_str(), bar.c_str(),
                  suffix.c_str());
}

std::string
stackedBarRow(const std::string &label, const std::vector<double> &parts,
              int width)
{
    // One glyph per segment, cycling; sums are normalized to the bar.
    static const char glyphs[] = {'#', '=', '+', ':', '~', '-'};
    double total = 0.0;
    for (double p : parts)
        total += p;
    if (total <= 0.0)
        total = 1.0;

    std::string bar;
    for (size_t i = 0; i < parts.size(); ++i) {
        int cells = static_cast<int>(std::lround(parts[i] / total * width));
        bar += std::string(static_cast<size_t>(std::max(cells, 0)),
                           glyphs[i % sizeof(glyphs)]);
    }
    if (static_cast<int>(bar.size()) > width)
        bar.resize(static_cast<size_t>(width));
    while (static_cast<int>(bar.size()) < width)
        bar += ' ';
    return format("%-22s |%s|", label.c_str(), bar.c_str());
}

void
printBanner(const std::string &experimentId, const std::string &title)
{
    std::printf("\n=== SoftSKU reproduction: %s — %s ===\n\n",
                experimentId.c_str(), title.c_str());
}

} // namespace softsku
