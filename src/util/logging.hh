/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated; this is a bug in the
 *            library itself.  Aborts so a debugger/core dump is useful.
 * fatal()  — the *user's* input (configuration, arguments) makes it
 *            impossible to continue.  Exits with status 1.
 * warn()   — something is off but execution can continue.
 * inform() — plain status output.
 */

#ifndef SOFTSKU_UTIL_LOGGING_HH
#define SOFTSKU_UTIL_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace softsku {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log threshold; messages above it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Lower-case name of a level, e.g. "warn". */
const char *logLevelName(LogLevel level);

/**
 * Parse a level name ("silent", "error", "warn", "info", "debug").
 * @return true and set @p out on success, false on an unknown name.
 */
bool logLevelFromName(const std::string &name, LogLevel &out);

/**
 * Redirect formatted log output (warn/inform/debug and the message
 * line of panic/fatal) to @p sink instead of stderr; pass nullptr to
 * restore stderr.  Test hook — the sink receives the fully formatted
 * message including any LogContext prefix, without trailing newline.
 */
void setLogSink(std::function<void(LogLevel, const std::string &)> sink);

/**
 * RAII scope label attached to every log message emitted by this
 * thread while the scope is alive, e.g. "[web c12a|b] warn: ...".
 * Nested scopes join with '|'.  Makes interleaved --jobs=N output
 * attributable to the service/comparison that produced it.
 */
class LogContext
{
  public:
    explicit LogContext(std::string label);
    ~LogContext();

    LogContext(const LogContext &) = delete;
    LogContext &operator=(const LogContext &) = delete;

    /** The "[a|b]" prefix for this thread, or "" outside any scope. */
    static std::string prefix();
};

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, bad arguments)
 * and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a recoverable anomaly. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose diagnostics, suppressed unless LogLevel::Debug is active. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Cheap always-on assertion that panics with a message on failure.
 * Unlike assert(), it is active in release builds; simulator state is
 * too expensive to reproduce to let invariant violations slide.
 */
#define SOFTSKU_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::softsku::panic("assertion failed: %s @ %s:%d " __VA_ARGS__,  \
                             #cond, __FILE__, __LINE__);                   \
        }                                                                  \
    } while (0)

} // namespace softsku

#endif // SOFTSKU_UTIL_LOGGING_HH
