/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated; this is a bug in the
 *            library itself.  Aborts so a debugger/core dump is useful.
 * fatal()  — the *user's* input (configuration, arguments) makes it
 *            impossible to continue.  Exits with status 1.
 * warn()   — something is off but execution can continue.
 * inform() — plain status output.
 */

#ifndef SOFTSKU_UTIL_LOGGING_HH
#define SOFTSKU_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace softsku {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log threshold; messages above it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, bad arguments)
 * and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a recoverable anomaly. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose diagnostics, suppressed unless LogLevel::Debug is active. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Cheap always-on assertion that panics with a message on failure.
 * Unlike assert(), it is active in release builds; simulator state is
 * too expensive to reproduce to let invariant violations slide.
 */
#define SOFTSKU_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::softsku::panic("assertion failed: %s @ %s:%d " __VA_ARGS__,  \
                             #cond, __FILE__, __LINE__);                   \
        }                                                                  \
    } while (0)

} // namespace softsku

#endif // SOFTSKU_UTIL_LOGGING_HH
