/**
 * @file
 * A minimal command-line flag parser for the examples and bench
 * harnesses.  Flags take the forms --name=value, --name value, and
 * boolean --name.
 */

#ifndef SOFTSKU_UTIL_CLI_HH
#define SOFTSKU_UTIL_CLI_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace softsku {

/** Parsed command line: named flags plus positional arguments. */
class CliArgs
{
  public:
    /** Parse argv; unknown flags are accepted (harnesses are permissive). */
    CliArgs(int argc, const char *const *argv);

    /** True when --name was present at all. */
    bool has(const std::string &name) const;

    /** Flag value as string, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Flag value as integer; fatal() on malformed input. */
    long long getInt(const std::string &name, long long fallback) const;

    /** Flag value as double; fatal() on malformed input. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Parse the conventional --jobs flag: a positive thread count, or
     * "auto"/"0" for the hardware concurrency.  Returns @p fallback
     * when the flag is absent; fatal() on malformed input.
     */
    unsigned getJobs(unsigned fallback = 1,
                     const std::string &name = "jobs") const;

    /**
     * Parse the conventional --log-level flag
     * (silent|error|warn|info|debug).  Returns @p fallback when the
     * flag is absent; fatal() on an unknown level name.
     */
    LogLevel getLogLevel(LogLevel fallback = LogLevel::Info,
                         const std::string &name = "log-level") const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace softsku

#endif // SOFTSKU_UTIL_CLI_HH
