/**
 * @file
 * A minimal command-line flag parser for the examples and bench
 * harnesses.  Flags take the forms --name=value, --name value, and
 * boolean --name — plus ToolOptions, the one parser for the flag set
 * every μSKU tool shares (--jobs, --faults, --trace-out, ...), so the
 * tools cannot drift apart in how they spell or wire these.
 */

#ifndef SOFTSKU_UTIL_CLI_HH
#define SOFTSKU_UTIL_CLI_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/faults.hh"
#include "util/logging.hh"

namespace softsku {

/** Parsed command line: named flags plus positional arguments. */
class CliArgs
{
  public:
    /** Parse argv; unknown flags are accepted (harnesses are permissive). */
    CliArgs(int argc, const char *const *argv);

    /** True when --name was present at all. */
    bool has(const std::string &name) const;

    /** Flag value as string, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Flag value as integer; fatal() on malformed input. */
    long long getInt(const std::string &name, long long fallback) const;

    /** Flag value as double; fatal() on malformed input. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Parse the conventional --jobs flag: a positive thread count, or
     * "auto"/"0" for the hardware concurrency.  Returns @p fallback
     * when the flag is absent; fatal() on malformed input.
     */
    unsigned getJobs(unsigned fallback = 1,
                     const std::string &name = "jobs") const;

    /**
     * Parse the conventional --log-level flag
     * (silent|error|warn|info|debug).  Returns @p fallback when the
     * flag is absent; fatal() on an unknown level name.
     */
    LogLevel getLogLevel(LogLevel fallback = LogLevel::Info,
                         const std::string &name = "log-level") const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

/**
 * The flag set shared by every μSKU tool (tune_web, tune_fleet,
 * fleet_rollout, the Fig. 19 bench):
 *
 *   --jobs=N|auto      worker threads (reports are N-invariant)
 *   --search=MODE      sample allocation: fixed|race|halving
 *   --confidence=P     significance level / racing error budget
 *   --knobs=k1,k2,...  restrict the swept knob set to these registry
 *                      keys (default: every knob the platform offers)
 *   --faults=SPEC      fault plan preset or k=v list
 *   --fault-seed=N     fault-decision RNG seed
 *   --domains=SPEC     fleet failure-domain topology: RACKS or
 *                      RACKSxREGIONS (e.g. "8" or "8x2")
 *   --cache-dir=PATH   persistent A/B memo cache directory
 *   --emit=DIR         write one dashboard JSON per target into DIR
 *                      (<service>.<platform>.v<schema>.json)
 *   --sim-core=KIND    ground-truth simulator core: batched (default;
 *                      SIMD-lane batches, bit-identical to scalar) or
 *                      scalar (the legacy one-at-a-time path)
 *   --trace-out=PATH   Chrome trace_event export
 *   --metrics          print the flight-recorder table on exit
 *   --progress         live sweep progress line (stderr)
 *   --log-level=LVL    silent|error|warn|info|debug
 *
 * fromArgs() parses them once; apply() performs the process-level
 * side effects (log level, tracer arming, hostile-fleet banner) so a
 * tool's main() stays three lines of plumbing.
 */
struct ToolOptions
{
    unsigned jobs = 1;
    /**
     * Sample-allocation override for the spec ("fixed", "race",
     * "halving"); empty keeps whatever the input spec asks for.  Held
     * as a string — the util layer cannot see core's SearchMode —
     * and overlaid via InputSpec::applySearchOverrides().
     */
    std::string search;
    /** Confidence override for the spec; 0 keeps the spec's value. */
    double confidence = 0.0;
    /**
     * Comma-separated registry keys restricting the swept knob set;
     * empty keeps the spec's own list.  Held as a string — the util
     * layer cannot see core's KnobId — and overlaid via
     * InputSpec::applySearchOverrides().
     */
    std::string knobs;
    FaultPlan faults;
    std::uint64_t faultSeed = 1;
    /**
     * Failure-domain topology spec for fleet tools ("8", "8x2"); empty
     * keeps the trivial single-rack fleet.  Held as a string — the
     * util layer cannot see sim's FleetTopology — and parsed by
     * FleetTopology::fromSpec() at the point of use.
     */
    std::string domains;
    std::string cacheDir;
    /**
     * Simulator-core selection ("batched" or "scalar"; empty means
     * batched).  Held as a string — the util layer cannot see sim's
     * SimCoreKind — and applied to SimOptions::core at the point of
     * use.  The two cores are bit-identical by contract; scalar exists
     * as an escape hatch and for A/B-ing the cores themselves.
     */
    std::string simCore;
    /**
     * Dashboard-emission directory (--emit=DIR); empty disables.  Each
     * target writes `<service>.<platform>.v<schema>.json` here — a
     * stable, schema-versioned file name a dashboard can poll without
     * parsing tool stdout.
     */
    std::string emitDir;
    std::string traceOut;
    bool metrics = false;
    bool progress = false;
    LogLevel logLevel = LogLevel::Info;

    /** Parse the shared flags out of @p args. */
    static ToolOptions fromArgs(const CliArgs &args,
                                unsigned defaultJobs = 1);

    /**
     * Apply the process-level switches: set the log level, arm the
     * tracer when a trace path was given, and announce the hostile
     * fleet when a fault plan is active.
     */
    void apply() const;

    /**
     * Write the Chrome trace when --trace-out was given.  Call once,
     * after the run(s) — a no-op without the flag.
     */
    void writeTrace() const;
};

} // namespace softsku

#endif // SOFTSKU_UTIL_CLI_HH
