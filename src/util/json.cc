#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("Json::asBool on non-bool node");
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        panic("Json::asNumber on non-number node");
    return num_;
}

long long
Json::asInt() const
{
    return static_cast<long long>(std::llround(asNumber()));
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("Json::asString on non-string node");
    return str_;
}

const Json &
Json::at(size_t index) const
{
    if (type_ != Type::Array)
        panic("Json::at(index) on non-array node");
    if (index >= arr_.size())
        panic("Json array index %zu out of range (%zu)", index, arr_.size());
    return arr_[index];
}

const Json &
Json::at(std::string_view key) const
{
    if (type_ != Type::Object)
        panic("Json::at(key) on non-object node");
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return v;
    }
    panic("Json object has no member '%.*s'",
          static_cast<int>(key.size()), key.data());
}

double
Json::numberOr(std::string_view key, double fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asNumber();
}

bool
Json::boolOr(std::string_view key, bool fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asBool();
}

std::string
Json::stringOr(std::string_view key, const std::string &fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asString();
}

bool
Json::contains(std::string_view key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : obj_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

void
Json::push(Json value)
{
    if (type_ != Type::Array)
        panic("Json::push on non-array node");
    arr_.push_back(std::move(value));
}

void
Json::set(std::string key, Json value)
{
    if (type_ != Type::Object)
        panic("Json::set on non-object node");
    for (auto &[k, v] : obj_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    obj_.emplace_back(std::move(key), std::move(value));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (type_ != Type::Object)
        panic("Json::members on non-object node");
    return obj_;
}

const std::vector<Json> &
Json::elements() const
{
    if (type_ != Type::Array)
        panic("Json::elements on non-array node");
    return arr_;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
writeNumber(std::string &out, double v)
{
    if (v == std::llround(v) && std::fabs(v) < 1e15) {
        out += format("%lld", std::llround(v));
    } else {
        out += format("%.10g", v);
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
    const std::string close(static_cast<size_t>(indent) * depth, ' ');
    const char *nl = indent > 0 ? "\n" : "";

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        writeNumber(out, num_);
        break;
      case Type::String:
        escapeString(out, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            escapeString(out, obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error) {}

    bool
    parseDocument(Json &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = format("json: %s at offset %zu", msg.c_str(), pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    bool
    parseValue(Json &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"')
            return parseString(out);
        if (c == 't' && literal("true")) {
            out = Json(true);
            return true;
        }
        if (c == 'f' && literal("false")) {
            out = Json(false);
            return true;
        }
        if (c == 'n' && literal("null")) {
            out = Json(nullptr);
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(Json &out)
    {
        consume('{');
        out = Json::object();
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            Json key;
            if (!parseString(key))
                return fail("expected object key");
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            Json value;
            if (!parseValue(value))
                return false;
            out.set(key.asString(), std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Json &out)
    {
        consume('[');
        out = Json::array();
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            Json value;
            if (!parseValue(value))
                return false;
            out.push(std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(Json &out)
    {
        if (!consume('"'))
            return fail("expected string");
        std::string s;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') {
                out = Json(std::move(s));
                return true;
            }
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'n': s += '\n'; break;
              case 't': s += '\t'; break;
              case 'r': s += '\r'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the (BMP-only) code point.
                if (code < 0x80) {
                    s += static_cast<char>(code);
                } else if (code < 0x800) {
                    s += static_cast<char>(0xC0 | (code >> 6));
                    s += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    s += static_cast<char>(0xE0 | (code >> 12));
                    s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    s += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Json &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool sawDigit = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                sawDigit = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!sawDigit)
            return fail("expected a value");
        auto parsed = parseDouble(text_.substr(start, pos_ - start));
        if (!parsed)
            return fail("malformed number");
        out = Json(*parsed);
        return true;
    }

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

std::pair<Json, bool>
Json::parse(std::string_view text, std::string *error)
{
    Json out;
    Parser parser(text, error);
    bool ok = parser.parseDocument(out);
    return {std::move(out), ok};
}

} // namespace softsku
