#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace softsku {

namespace {

LogLevel globalLevel = LogLevel::Info;

std::function<void(LogLevel, const std::string &)> globalSink;

/** Active LogContext labels on this thread, outermost first. */
thread_local std::vector<std::string> tlContext;

void
vreport(LogLevel level, const char *tag, const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        n = 0;
    std::string body(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(body.data(), body.size() + 1, fmt, args);

    std::string line = LogContext::prefix();
    line += tag;
    line += ": ";
    line += body;

    if (globalSink) {
        globalSink(level, line);
        return;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent:
        return "silent";
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "unknown";
}

bool
logLevelFromName(const std::string &name, LogLevel &out)
{
    for (LogLevel level : {LogLevel::Silent, LogLevel::Error,
                           LogLevel::Warn, LogLevel::Info,
                           LogLevel::Debug}) {
        if (name == logLevelName(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

void
setLogSink(std::function<void(LogLevel, const std::string &)> sink)
{
    globalSink = std::move(sink);
}

LogContext::LogContext(std::string label)
{
    tlContext.push_back(std::move(label));
}

LogContext::~LogContext()
{
    tlContext.pop_back();
}

std::string
LogContext::prefix()
{
    if (tlContext.empty())
        return "";
    std::string out = "[";
    for (std::size_t i = 0; i < tlContext.size(); ++i) {
        if (i)
            out += '|';
        out += tlContext[i];
    }
    out += "] ";
    return out;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Error, "panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Error, "fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Warn, "warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Info, "info", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Debug, "debug", fmt, args);
    va_end(args);
}

} // namespace softsku
