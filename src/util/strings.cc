#include "util/strings.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace softsku {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<long long>
parseInt(std::string_view text)
{
    std::string buf(trim(text));
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(buf.c_str(), &end, 10);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return value;
}

std::optional<double>
parseDouble(std::string_view text)
{
    std::string buf(trim(text));
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return value;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace softsku
