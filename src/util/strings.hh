/**
 * @file
 * Small string utilities used across the library: splitting, trimming,
 * case folding, numeric parsing with error reporting, and printf-style
 * formatting into std::string.
 */

#ifndef SOFTSKU_UTIL_STRINGS_HH
#define SOFTSKU_UTIL_STRINGS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace softsku {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Remove leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Parse a signed integer; nullopt when the whole string is not numeric. */
std::optional<long long> parseInt(std::string_view text);

/** Parse a double; nullopt when the whole string is not numeric. */
std::optional<double> parseDouble(std::string_view text);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

} // namespace softsku

#endif // SOFTSKU_UTIL_STRINGS_HH
