/**
 * @file
 * A compact JSON value model, parser, and serializer.
 *
 * μSKU's input files (Sec. 4 of the paper: target microservice, platform,
 * sweep configuration) and its emitted design-space maps are JSON.  The
 * library is self-contained so the repository has no external
 * dependencies beyond the test/bench frameworks.
 */

#ifndef SOFTSKU_UTIL_JSON_HH
#define SOFTSKU_UTIL_JSON_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace softsku {

/**
 * A JSON document node.  Objects keep key insertion order so emitted
 * reports are stable and diffable.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(int n) : type_(Type::Number), num_(n) {}
    Json(long long n) : type_(Type::Number), num_(static_cast<double>(n)) {}
    Json(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array node. */
    static Json array();
    /** An empty object node. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; panic when the node has the wrong type. */
    bool asBool() const;
    double asNumber() const;
    long long asInt() const;
    const std::string &asString() const;

    /** Array element access; panics on non-array or out-of-range. */
    const Json &at(size_t index) const;
    /** Object member access; panics when the key is missing. */
    const Json &at(std::string_view key) const;
    /** Object member access with a default for missing keys. */
    double numberOr(std::string_view key, double fallback) const;
    bool boolOr(std::string_view key, bool fallback) const;
    std::string stringOr(std::string_view key,
                         const std::string &fallback) const;

    /** True when this object has member @p key. */
    bool contains(std::string_view key) const;

    /** Number of array elements or object members. */
    size_t size() const;

    /** Append an element to an array node. */
    void push(Json value);
    /** Set (or replace) an object member. */
    void set(std::string key, Json value);

    /** Ordered object members. */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /** Array elements. */
    const std::vector<Json> &elements() const;

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse a JSON document.
     * @param text   full document text
     * @param error  receives a message on failure, when non-null
     * @return parsed value, or nullopt-like Null plus error on failure
     */
    static std::pair<Json, bool> parse(std::string_view text,
                                       std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace softsku

#endif // SOFTSKU_UTIL_JSON_HH
