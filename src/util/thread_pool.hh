/**
 * @file
 * A work-stealing thread pool for the parallel μSKU sweep engine.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (hot
 * caches), while idle workers steal FIFO from the opposite end of a
 * victim's deque (oldest task first, the classic work-stealing
 * discipline).  External submitters distribute round-robin across the
 * worker deques.
 *
 * Determinism contract: the pool never reorders *results* — callers
 * that need reproducible output submit independent tasks and reduce
 * them in submission order (see Usku's sweep engine).  The pool itself
 * only decides *when* a task runs, never what it computes.
 */

#ifndef SOFTSKU_UTIL_THREAD_POOL_HH
#define SOFTSKU_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace softsku {

/** Cumulative scheduling counters for one pool (see ThreadPool::stats). */
struct ThreadPoolStats
{
    std::uint64_t submitted = 0;  //!< tasks enqueued over the lifetime
    std::uint64_t executed = 0;   //!< tasks acquired by a worker
    std::uint64_t stolen = 0;     //!< executed tasks taken from a victim
    std::uint64_t maxQueued = 0;  //!< high-water mark of queued tasks
};

/** A fixed-size work-stealing pool of worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware concurrency
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains nothing: outstanding futures are completed before join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p fn and return a future for its result.  Exceptions
     * thrown by the task surface from future::get().  Safe to call
     * from worker threads (nested submission feeds the caller's own
     * deque).
     */
    template <typename F>
    auto submit(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> result = task->get_future();
        enqueue([task] { (*task)(); });
        return result;
    }

    /**
     * Run body(0..n-1) across the pool and wait for all iterations.
     * The calling thread participates in execution, so a pool is never
     * deadlocked by parallelFor issued from one of its own tasks.  If
     * any iteration throws, the lowest-index exception is rethrown
     * after the batch drains.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Point-in-time scheduling counters.  Wall-clock/scheduling facts
     * only — never feed these into deterministic report output.
     */
    ThreadPoolStats stats() const;

    /** Hardware thread count with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    struct Deque
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> task);
    bool tryAcquire(std::size_t self, std::function<void()> &out);
    void workerLoop(std::size_t index);

    std::vector<std::unique_ptr<Deque>> deques_;
    std::vector<std::thread> workers_;
    std::mutex wakeMutex_;
    std::condition_variable wake_;
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::size_t> nextDeque_{0};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};
    std::atomic<std::uint64_t> maxQueued_{0};
    bool stop_ = false;
};

} // namespace softsku

#endif // SOFTSKU_UTIL_THREAD_POOL_HH
