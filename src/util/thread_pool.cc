#include "util/thread_pool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace softsku {

namespace {

/** Identity of the pool worker running on this thread, if any. */
thread_local ThreadPool *tlPool = nullptr;
thread_local std::size_t tlIndex = 0;

} // namespace

ThreadPoolStats
ThreadPool::stats() const
{
    ThreadPoolStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.executed = executed_.load(std::memory_order_relaxed);
    out.stolen = stolen_.load(std::memory_order_relaxed);
    out.maxQueued = maxQueued_.load(std::memory_order_relaxed);
    return out;
}

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    deques_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        deques_.push_back(std::make_unique<Deque>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    // Workers feed their own deque (LIFO hot path); external threads
    // spread round-robin so stealing has somewhere to start.
    std::size_t target = tlPool == this
                             ? tlIndex
                             : nextDeque_.fetch_add(1) % deques_.size();
    {
        std::lock_guard<std::mutex> lock(deques_[target]->mutex);
        deques_[target]->tasks.push_back(std::move(task));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    std::size_t depth;
    {
        // Publishing the count under wakeMutex_ closes the window
        // between a sleeper's predicate check and its actual wait.
        std::lock_guard<std::mutex> lock(wakeMutex_);
        depth = queued_.fetch_add(1) + 1;
    }
    std::uint64_t seen = maxQueued_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !maxQueued_.compare_exchange_weak(seen, depth,
                                             std::memory_order_relaxed)) {
    }
    wake_.notify_one();
}

bool
ThreadPool::tryAcquire(std::size_t self, std::function<void()> &out)
{
    {
        Deque &own = *deques_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.back());
            own.tasks.pop_back();
            queued_.fetch_sub(1);
            executed_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    // Steal the oldest task from the first non-empty victim.
    for (std::size_t k = 1; k < deques_.size(); ++k) {
        Deque &victim = *deques_[(self + k) % deques_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            queued_.fetch_sub(1);
            executed_.fetch_add(1, std::memory_order_relaxed);
            stolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tlPool = this;
    tlIndex = index;
    for (;;) {
        std::function<void()> task;
        if (tryAcquire(index, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(wakeMutex_);
        if (stop_ && queued_.load() == 0)
            return;
        wake_.wait(lock,
                   [this] { return stop_ || queued_.load() > 0; });
        if (stop_ && queued_.load() == 0)
            return;
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;

    struct Batch
    {
        explicit Batch(std::size_t n) : total(n), remaining(n), errors(n) {}
        std::size_t total;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> remaining;
        std::vector<std::exception_ptr> errors;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto batch = std::make_shared<Batch>(n);

    // Runner tasks claim indices dynamically; the caller runs one too,
    // so a parallelFor issued from inside a pool task cannot deadlock.
    auto runner = [batch, &body] {
        for (;;) {
            std::size_t index = batch->next.fetch_add(1);
            if (index >= batch->total)
                return;
            try {
                body(index);
            } catch (...) {
                batch->errors[index] = std::current_exception();
            }
            if (batch->remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(batch->mutex);
                batch->done.notify_all();
            }
        }
    };

    std::size_t helpers = std::min<std::size_t>(threadCount(), n);
    for (std::size_t i = 0; i + 1 < helpers; ++i)
        enqueue(runner);
    runner();

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock,
                     [&] { return batch->remaining.load() == 0; });
    lock.unlock();

    for (std::exception_ptr &error : batch->errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace softsku
