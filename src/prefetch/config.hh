/**
 * @file
 * The five prefetcher configurations μSKU's A/B tester sweeps
 * (paper Sec. 5, knob 5 / Fig 17).
 */

#ifndef SOFTSKU_PREFETCH_CONFIG_HH
#define SOFTSKU_PREFETCH_CONFIG_HH

#include <string>
#include <vector>

#include "arch/platform.hh"

namespace softsku {

/** Named prefetcher presets from the paper. */
enum class PrefetcherPreset
{
    AllOff,            //!< (a) all prefetchers off
    AllOn,             //!< (b) all on — default on Web (Skylake), Ads1
    DcuAndDcuIp,       //!< (c) DCU + DCU IP only
    DcuOnly,           //!< (d) DCU only
    L2StreamAndDcu,    //!< (e) L2 stream + DCU — default on Web (Broadwell)
};

/** Enable bits for a preset. */
PrefetcherSet prefetcherSetFor(PrefetcherPreset preset);

/** Paper-style label, e.g. "DCU & DCU IP on". */
std::string prefetcherPresetName(PrefetcherPreset preset);

/** Parse a preset from its registry key (all_off, all_on, dcu_dcuip,
 *  dcu_only, l2stream_dcu); fatal() on unknown keys. */
PrefetcherPreset prefetcherPresetFromKey(const std::string &key);

/** Registry key for a preset. */
std::string prefetcherPresetKey(PrefetcherPreset preset);

/** All five presets in the paper's order. */
std::vector<PrefetcherPreset> allPrefetcherPresets();

} // namespace softsku

#endif // SOFTSKU_PREFETCH_CONFIG_HH
