#include "prefetch/config.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

PrefetcherSet
prefetcherSetFor(PrefetcherPreset preset)
{
    switch (preset) {
      case PrefetcherPreset::AllOff:
        return {false, false, false, false};
      case PrefetcherPreset::AllOn:
        return {true, true, true, true};
      case PrefetcherPreset::DcuAndDcuIp:
        return {false, false, true, true};
      case PrefetcherPreset::DcuOnly:
        return {false, false, true, false};
      case PrefetcherPreset::L2StreamAndDcu:
        return {true, false, true, false};
    }
    panic("unreachable prefetcher preset");
}

std::string
prefetcherPresetName(PrefetcherPreset preset)
{
    switch (preset) {
      case PrefetcherPreset::AllOff: return "all prefetch off";
      case PrefetcherPreset::AllOn: return "all prefetch on";
      case PrefetcherPreset::DcuAndDcuIp: return "DCU & DCU IP on";
      case PrefetcherPreset::DcuOnly: return "DCU on";
      case PrefetcherPreset::L2StreamAndDcu: return "L2 hardware & DCU on";
    }
    panic("unreachable prefetcher preset");
}

std::string
prefetcherPresetKey(PrefetcherPreset preset)
{
    switch (preset) {
      case PrefetcherPreset::AllOff: return "all_off";
      case PrefetcherPreset::AllOn: return "all_on";
      case PrefetcherPreset::DcuAndDcuIp: return "dcu_dcuip";
      case PrefetcherPreset::DcuOnly: return "dcu_only";
      case PrefetcherPreset::L2StreamAndDcu: return "l2stream_dcu";
    }
    panic("unreachable prefetcher preset");
}

PrefetcherPreset
prefetcherPresetFromKey(const std::string &key)
{
    std::string k = toLower(key);
    for (PrefetcherPreset preset : allPrefetcherPresets()) {
        if (prefetcherPresetKey(preset) == k)
            return preset;
    }
    fatal("unknown prefetcher preset '%s'", key.c_str());
}

std::vector<PrefetcherPreset>
allPrefetcherPresets()
{
    return {PrefetcherPreset::AllOff, PrefetcherPreset::AllOn,
            PrefetcherPreset::DcuAndDcuIp, PrefetcherPreset::DcuOnly,
            PrefetcherPreset::L2StreamAndDcu};
}

} // namespace softsku
