/**
 * @file
 * The four hardware prefetchers of the paper's knob 5 (Sec. 5):
 *
 *  (a) L2 stream ("L2 hardware prefetcher") — detects ascending or
 *      descending miss streams within a 4 KiB region and runs ahead;
 *  (b) L2 adjacent-line — pairs each L2-requested line with its buddy
 *      in the same 128-byte-aligned region;
 *  (c) DCU next-line — fetches the successor line into L1-D;
 *  (d) DCU IP — per-PC stride predictor for L1-D.
 *
 * Prefetchers *observe* demand accesses and emit candidate line
 * addresses; the machine model plays the candidates through the cache
 * hierarchy, so prefetch accuracy, pollution, and the extra memory
 * bandwidth (the mechanism behind Fig 17) all emerge from the same
 * structural simulation as demand traffic.
 */

#ifndef SOFTSKU_PREFETCH_PREFETCHER_HH
#define SOFTSKU_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace softsku {

/** Common interface: observe one access, append prefetch candidates. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe a demand access.
     * @param lineAddr line-granular address of the access
     * @param pc       program counter of the triggering instruction
     * @param wasMiss  whether the demand access missed this cache
     * @param out      receives candidate prefetch line addresses
     */
    virtual void observe(std::uint64_t lineAddr, std::uint64_t pc,
                         bool wasMiss, std::vector<std::uint64_t> &out) = 0;

    /** Clear all predictor state. */
    virtual void reset() = 0;

    /** Human-readable name. */
    virtual const std::string &name() const = 0;
};

/** DCU next-line prefetcher: successor line on each L1-D miss. */
class DcuNextLinePrefetcher : public Prefetcher
{
  public:
    void observe(std::uint64_t lineAddr, std::uint64_t pc, bool wasMiss,
                 std::vector<std::uint64_t> &out) override;
    void reset() override {}
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "dcu-next";
};

/**
 * DCU IP prefetcher: a PC-indexed table tracking last address and
 * stride; after two consecutive identical strides it prefetches one
 * stride ahead.
 */
class DcuIpPrefetcher : public Prefetcher
{
  public:
    explicit DcuIpPrefetcher(int tableEntries = 256);

    void observe(std::uint64_t lineAddr, std::uint64_t pc, bool wasMiss,
                 std::vector<std::uint64_t> &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

  private:
    struct Entry
    {
        std::uint64_t pcTag = 0;
        std::uint64_t lastLine = 0;
        std::int64_t stride = 0;
        int confidence = 0;
        bool valid = false;
    };

    std::string name_ = "dcu-ip";
    std::vector<Entry> table_;
};

/** L2 adjacent-line prefetcher: buddy line in the 128 B pair. */
class L2AdjacentPrefetcher : public Prefetcher
{
  public:
    void observe(std::uint64_t lineAddr, std::uint64_t pc, bool wasMiss,
                 std::vector<std::uint64_t> &out) override;
    void reset() override {}
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "l2-adjacent";
};

/**
 * L2 stream prefetcher: per-4KiB-region stream detector.  Two misses in
 * the same direction arm the stream; once armed it prefetches
 * @p degree lines ahead of the demand.
 */
class L2StreamPrefetcher : public Prefetcher
{
  public:
    explicit L2StreamPrefetcher(int trackerEntries = 16, int degree = 2);

    void observe(std::uint64_t lineAddr, std::uint64_t pc, bool wasMiss,
                 std::vector<std::uint64_t> &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

  private:
    struct Tracker
    {
        std::uint64_t region = 0;     //!< 4 KiB region number
        std::uint64_t lastLine = 0;
        int direction = 0;            //!< +1 / -1 / 0 (unarmed)
        int hits = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::string name_ = "l2-stream";
    std::vector<Tracker> trackers_;
    int degree_;
    std::uint64_t useClock_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_PREFETCH_PREFETCHER_HH
