#include "prefetch/prefetcher.hh"

#include <algorithm>

namespace softsku {

namespace {

constexpr std::uint64_t kLinesPerPage = 4096 / 64;

} // namespace

void
DcuNextLinePrefetcher::observe(std::uint64_t lineAddr, std::uint64_t pc,
                               bool wasMiss,
                               std::vector<std::uint64_t> &out)
{
    (void)pc;
    if (wasMiss)
        out.push_back(lineAddr + 1);
}

DcuIpPrefetcher::DcuIpPrefetcher(int tableEntries)
    : table_(static_cast<size_t>(std::max(tableEntries, 1)))
{
}

void
DcuIpPrefetcher::observe(std::uint64_t lineAddr, std::uint64_t pc,
                         bool wasMiss, std::vector<std::uint64_t> &out)
{
    (void)wasMiss;
    // Hash the PC into the table: aligned PCs (common for compiler-
    // placed loops) must not collide into the same entry.
    std::uint64_t index = (pc ^ (pc >> 7) ^ (pc >> 15)) % table_.size();
    Entry &e = table_[index];
    if (!e.valid || e.pcTag != pc) {
        e = {pc, lineAddr, 0, 0, true};
        return;
    }
    auto stride = static_cast<std::int64_t>(lineAddr) -
                  static_cast<std::int64_t>(e.lastLine);
    if (stride == 0) {
        // Same line again: no information.
        return;
    }
    if (stride == e.stride) {
        e.confidence = std::min(e.confidence + 1, 3);
    } else {
        e.stride = stride;
        e.confidence = 0;
    }
    e.lastLine = lineAddr;
    if (e.confidence >= 2) {
        auto target = static_cast<std::int64_t>(lineAddr) + e.stride;
        if (target > 0)
            out.push_back(static_cast<std::uint64_t>(target));
    }
}

void
DcuIpPrefetcher::reset()
{
    std::fill(table_.begin(), table_.end(), Entry{});
}

void
L2AdjacentPrefetcher::observe(std::uint64_t lineAddr, std::uint64_t pc,
                              bool wasMiss, std::vector<std::uint64_t> &out)
{
    (void)pc;
    if (wasMiss)
        out.push_back(lineAddr ^ 1ULL);
}

L2StreamPrefetcher::L2StreamPrefetcher(int trackerEntries, int degree)
    : trackers_(static_cast<size_t>(std::max(trackerEntries, 1))),
      degree_(std::max(degree, 1))
{
}

void
L2StreamPrefetcher::observe(std::uint64_t lineAddr, std::uint64_t pc,
                            bool wasMiss, std::vector<std::uint64_t> &out)
{
    (void)pc;
    if (!wasMiss)
        return;
    ++useClock_;
    std::uint64_t region = lineAddr / kLinesPerPage;

    // Find the tracker for this region, or allocate the LRU one.
    Tracker *tracker = nullptr;
    Tracker *lru = &trackers_[0];
    for (Tracker &t : trackers_) {
        if (t.valid && t.region == region) {
            tracker = &t;
            break;
        }
        if (!t.valid || t.lastUse < lru->lastUse)
            lru = &t;
    }
    if (!tracker) {
        *lru = {region, lineAddr, 0, 0, useClock_, true};
        return;
    }

    tracker->lastUse = useClock_;
    int dir = lineAddr > tracker->lastLine
                  ? 1
                  : (lineAddr < tracker->lastLine ? -1 : 0);
    if (dir == 0)
        return;
    if (dir == tracker->direction) {
        tracker->hits = std::min(tracker->hits + 1, 4);
    } else {
        tracker->direction = dir;
        tracker->hits = 1;
    }
    tracker->lastLine = lineAddr;

    if (tracker->hits >= 2) {
        for (int d = 1; d <= degree_; ++d) {
            auto target = static_cast<std::int64_t>(lineAddr) +
                          static_cast<std::int64_t>(d) * dir;
            if (target > 0)
                out.push_back(static_cast<std::uint64_t>(target));
        }
    }
}

void
L2StreamPrefetcher::reset()
{
    std::fill(trackers_.begin(), trackers_.end(), Tracker{});
    useClock_ = 0;
}

} // namespace softsku
