/**
 * @file
 * μSKU's input file (paper Sec. 4, Fig 13): the target microservice,
 * the processor platform, and the sweep configuration.
 */

#ifndef SOFTSKU_CORE_INPUT_SPEC_HH
#define SOFTSKU_CORE_INPUT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/bai.hh"
#include "core/knobs.hh"
#include "util/cli.hh"
#include "util/json.hh"

namespace softsku {

/** How the A/B tester walks the design space (Sec. 4, input 3). */
enum class SweepMode
{
    /** Scale knobs one by one; winners are composed (the default —
     *  exhaustive sweeps cannot finish between code pushes). */
    Independent,
    /** Cross product of all knob settings (small subspaces only). */
    Exhaustive,
    /** Greedy hill climbing, the paper's discussion-section extension. */
    HillClimb,
};

/** Parse a sweep-mode string; fatal() on unknown input. */
SweepMode sweepModeFromString(const std::string &text);

/** Registry name of a sweep mode. */
std::string sweepModeName(SweepMode mode);

/** The full μSKU invocation description. */
struct InputSpec
{
    std::string microservice;            //!< e.g. "web"
    std::string platform;                //!< e.g. "skylake18"
    SweepMode sweep = SweepMode::Independent;
    /** Knobs to explore; defaults to every knob the platform offers. */
    std::vector<KnobId> knobs;

    double confidence = 0.95;            //!< significance level
    std::uint64_t maxSamplesPerTest = 30000;  //!< give-up threshold
    std::uint64_t minSamplesPerTest = 400;    //!< before early stopping
    std::uint64_t warmupSamples = 60;    //!< cold-start discard (Sec. 4)
    double sampleSpacingSec = 1.0;       //!< independence spacing
    std::uint64_t seed = 1;

    /**
     * Sample-allocation strategy (see core/bai.hh).  Fixed is the
     * paper's protocol; Race/Halving are the adaptive best-arm modes.
     * Racing derives its error budget delta as 1 - confidence, so the
     * one confidence knob governs both protocols.
     */
    SearchMode search = SearchMode::Fixed;
    /** Accepted samples per racing pull (the chunk / cache unit).
     *  Small chunks are what make racing cheap: a hopeless arm costs
     *  one chunk instead of the fixed protocol's min-sample floor. */
    std::uint64_t raceChunkSamples = 100;

    /** Wall-clock length of the prolonged validation phase. */
    double validationDurationSec = 2.0 * 86400.0;

    /**
     * Fill `knobs` when empty with every registry knob available on the
     * named platform (platform-gated knobs are excluded outright, not
     * listed as skipped).
     */
    void normalize();

    /**
     * Overlay the tool-level --search/--confidence/--knobs flags: an
     * empty search string / zero confidence / empty knob list keeps the
     * spec's own values, so every tool applies the flags the same way.
     */
    void applySearchOverrides(const ToolOptions &tool);

    /** Basic sanity checks; fatal() on user errors. */
    void validate() const;

    /** Serialize to the on-disk JSON format. */
    Json toJson() const;

    /** Parse from JSON; fatal() on malformed documents. */
    static InputSpec fromJson(const Json &doc);

    /** Parse from raw file text. */
    static InputSpec parse(const std::string &text);
};

} // namespace softsku

#endif // SOFTSKU_CORE_INPUT_SPEC_HH
