/**
 * @file
 * Best-arm identification (BAI) for the knob sweep: adaptive sampling
 * rules that stop pulling an arm as soon as the statistics allow it,
 * replacing the paper's fixed ~30 k-sample budget per comparison
 * (ROADMAP item 1).
 *
 * Two engines are provided:
 *
 *  - BaiRace: racing / successive elimination.  All arms of one
 *    contest (e.g. every candidate value of one knob) are pulled in
 *    fixed-size chunks, round by round; after each round an arm whose
 *    confidence interval has separated below the incumbent's is
 *    eliminated and never pulled again.  Each interval runs at
 *    confidence 1 - delta/K (Bonferroni over the K arms), targeting a
 *    race-wide error of at most the configured delta — the property
 *    the Monte-Carlo harness in tests/core/bai_test.cc measures
 *    empirically at seeds 1-50.
 *
 *  - BaiHalving: successive halving over joint knob combinations.
 *    Every survivor receives the same geometrically growing chunk
 *    allowance per round; the bottom half (by mean gain) is dropped
 *    each round until one combination remains.  This searches the
 *    *joint* space the paper's per-knob composition cannot see.
 *
 * Both engines are pure decision logic over RunningStat chunks: they
 * never draw samples themselves.  The caller (the sweep engine) pulls
 * chunks keyed deterministically by (arm, pull ordinal) on Rng::split
 * substreams and feeds them back in arm order, so every decision —
 * and therefore every report byte — is independent of thread count.
 */

#ifndef SOFTSKU_CORE_BAI_HH
#define SOFTSKU_CORE_BAI_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "stats/running_stat.hh"

namespace softsku {

/** How the sweep allocates samples to A/B comparisons. */
enum class SearchMode
{
    /** The paper's protocol: every comparison runs its own fixed-cap
     *  sequential test, independent of the other arms. */
    Fixed,
    /** Racing / successive elimination between the arms of each knob
     *  (or combo batch): chunked pulls, CI-separation stopping. */
    Race,
    /** Successive halving over joint knob combinations. */
    Halving,
};

/** Parse a search-mode string; fatal() on unknown input. */
SearchMode searchModeFromString(const std::string &text);

/** Registry name of a search mode ("fixed", "race", "halving"). */
std::string searchModeName(SearchMode mode);

/** Sampling-rule parameters shared by both engines. */
struct BaiOptions
{
    /** Tolerated probability of eliminating the true best arm at any
     *  point in the race (the delta of the (epsilon=0, delta) BAI
     *  guarantee).  The sweep derives it as 1 - spec.confidence. */
    double delta = 0.05;
    /** Accepted samples per pull.  Chunks are the cache unit: each is
     *  measured on its own (arm, ordinal)-keyed substream. */
    std::uint64_t chunkSamples = 500;
    /** Samples an arm must hold before elimination may strike it. */
    std::uint64_t minSamplesPerArm = 500;
    /** Per-arm budget cap — the same give-up threshold as the fixed
     *  protocol (spec.maxSamplesPerTest). */
    std::uint64_t maxSamplesPerArm = 30000;
    /**
     * Futility floor: an arm whose *upper* confidence bound falls below
     * this gain can never matter (the composer ignores sub-material
     * wins), so the race stops paying for it.  -inf — the default —
     * disables the rule, leaving the pure (epsilon=0, delta) racing
     * guarantee the Monte-Carlo harness measures.  The sweep sets the
     * composer's material threshold here.
     */
    double futilityGain = -std::numeric_limits<double>::infinity();
};

/** One arm's accumulated racing state. */
struct BaiArm
{
    /** Per-pair relative gains (B/A - 1), merged over absorbed chunks. */
    RunningStat gains;
    /** Chunks absorbed so far — the next pull's ordinal. */
    std::uint64_t chunksPulled = 0;
    /** Struck by the elimination rule (or withdrawn by the caller). */
    bool eliminated = false;
    /** Round (1-based) the elimination happened in; 0 = survived. */
    std::uint64_t eliminatedAtRound = 0;
    /** Holds an external verdict (the sweep's fixed-protocol stop);
     *  exempt from elimination, still a contender for best(). */
    bool parked = false;
};

/**
 * Racing / successive-elimination sampling rule.
 *
 * Round protocol: the caller pulls one chunk for every arm in
 * pending(), absorbs the chunk gains in arm order, then calls
 * eliminateRound().  The race is decided() once a single contender
 * survives or every survivor has exhausted its budget; best() then
 * names the selected arm.
 */
class BaiRace
{
  public:
    BaiRace(std::size_t armCount, const BaiOptions &options);

    std::size_t armCount() const { return arms_.size(); }
    const BaiArm &arm(std::size_t i) const { return arms_[i]; }

    /** Arms that need one more chunk this round (empty once decided). */
    std::vector<std::size_t> pending() const;

    /** Fold one chunk of paired gains into arm @p i. */
    void absorb(std::size_t i, const RunningStat &chunkGains);

    /**
     * Replace arm @p i's gains with externally accumulated cumulative
     * statistics (one more chunk pulled).  The sweep engine uses this
     * instead of absorb(): its continued measurement windows grow
     * sample by sample, and sequential accumulation keeps the arm's
     * statistics bit-identical to the fixed protocol's — a Welford
     * merge of per-chunk increments would round differently.
     */
    void update(std::size_t i, const RunningStat &cumulativeGains);

    /**
     * Remove arm @p i from contention without a statistical verdict
     * (QoS guardrail abort, measurement abandoned to faults).
     */
    void withdraw(std::size_t i);

    /**
     * Shield arm @p i from elimination: it reached an external verdict
     * (the sweep's fixed-protocol stop) and its settled statistics will
     * be ranked by the composer no matter what the race concludes.  A
     * parked arm still counts for best() and the incumbent's bound.
     */
    void park(std::size_t i);

    /**
     * Ratchet the futility floor up to @p gain (monotonic max with the
     * configured futilityGain).  The sweep calls this when an arm parks
     * with a significant positive verdict: a racing arm whose upper
     * confidence bound cannot reach the settled contender's gain can
     * never win the composition, so the race stops paying for it.
     */
    void raiseFloor(double gain);

    /**
     * Apply the elimination rule after a full round of absorbs: strike
     * every survivor whose upper confidence bound lies below the
     * incumbent's lower bound.  @return the number struck this round.
     */
    std::size_t eliminateRound();

    /** One contender left, or every survivor has hit its budget cap. */
    bool decided() const;

    /**
     * The incumbent: the surviving arm with the highest mean gain
     * (ties break to the lowest index).  armCount() when every arm was
     * withdrawn.
     */
    std::size_t best() const;

    /**
     * Confidence half-width on arm @p i's mean gain at the
     * Bonferroni-corrected per-arm confidence 1 - delta/K; +inf below
     * two samples.
     */
    double radius(std::size_t i) const;

    /** Rounds of elimination checks run so far. */
    std::uint64_t rounds() const { return rounds_; }

    /** Arms eliminated before reaching the budget cap. */
    std::uint64_t earlyStops() const;

    /** The most chunks any arm can absorb within its budget. */
    std::uint64_t maxRounds() const;

  private:
    BaiOptions options_;
    std::vector<BaiArm> arms_;
    std::uint64_t rounds_ = 0;
    /** Live futility floor: max(options.futilityGain, raiseFloor()s). */
    double floor_;
};

/**
 * Successive halving over a (large) arm set: every survivor gets
 * chunksThisRound() pulls, then the bottom half by mean gain is
 * dropped.  The allowance doubles each round, so early rounds triage
 * cheaply and late rounds resolve the finalists precisely.
 */
class BaiHalving
{
  public:
    BaiHalving(std::size_t armCount, const BaiOptions &options);

    std::size_t armCount() const { return arms_.size(); }
    const BaiArm &arm(std::size_t i) const { return arms_[i]; }

    /** Surviving arms, each owed chunksThisRound() pulls. */
    std::vector<std::size_t> pending() const;

    /** Chunk allowance per survivor this round (doubles per round,
     *  clamped so no arm exceeds maxSamplesPerArm). */
    std::uint64_t chunksThisRound() const;

    /** Fold one chunk of paired gains into arm @p i. */
    void absorb(std::size_t i, const RunningStat &chunkGains);

    /** Replace arm @p i's gains with cumulative statistics (one more
     *  chunk pulled) — see BaiRace::update(). */
    void update(std::size_t i, const RunningStat &cumulativeGains);

    /** Remove arm @p i from contention (guardrail abort, faults). */
    void withdraw(std::size_t i);

    /** Drop the bottom half of the survivors by mean gain (ties keep
     *  the lower index).  @return the number dropped. */
    std::size_t halveRound();

    /** One survivor left (or none after withdrawals). */
    bool decided() const;

    /** The surviving arm with the highest mean gain; armCount() when
     *  every arm was withdrawn. */
    std::size_t best() const;

    std::uint64_t rounds() const { return rounds_; }

  private:
    BaiOptions options_;
    std::vector<BaiArm> arms_;
    std::uint64_t rounds_ = 0;
};

} // namespace softsku

#endif // SOFTSKU_CORE_BAI_HH
