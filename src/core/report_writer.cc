#include "core/report_writer.hh"

#include <cstdio>
#include <filesystem>

#include "util/logging.hh"
#include "util/strings.hh"

namespace softsku {

std::string
renderMarkdownReport(const UskuReport &report)
{
    std::string md;
    md += format("# μSKU soft-SKU report: %s on %s\n\n",
                 report.spec.microservice.c_str(),
                 report.spec.platform.c_str());
    md += format("- report schema: v%d\n", kReportSchemaVersion);
    md += format("- sweep mode: `%s`\n",
                 sweepModeName(report.spec.sweep).c_str());
    md += format("- configurations evaluated: %llu\n",
                 static_cast<unsigned long long>(report.configsEvaluated));
    md += format("- A/B measurement time: %.1f hours\n\n",
                 report.measurementHours);

    md += "## Configurations\n\n";
    md += format("| | configuration |\n|---|---|\n");
    md += format("| stock | `%s` |\n", report.stock.describe().c_str());
    md += format("| production (hand-tuned) | `%s` |\n",
                 report.production.describe().c_str());
    md += format("| **soft SKU** | `%s` |\n\n",
                 report.softSku.describe().c_str());

    md += format("**Gain over stock: %+.2f%%.  Gain over hand-tuned "
                 "production: %+.2f%%.**\n\n",
                 report.gainOverStockPercent(),
                 report.gainOverProductionPercent());

    if (!report.plan.skipped.empty()) {
        md += "## Skipped knobs\n\n";
        for (const SkippedKnob &skipped : report.plan.skipped) {
            md += format("- `%s`: %s\n", knobKey(skipped.id).c_str(),
                         skipped.reason.c_str());
        }
        md += "\n";
    }

    md += "## Design-space map\n\n";
    md += "| knob | setting | gain % | ±CI % | significant | samples |\n";
    md += "|---|---|---|---|---|---|\n";
    for (const KnobSweep &sweep : report.map.sweeps) {
        for (const KnobOutcome &outcome : sweep.outcomes) {
            md += format(
                "| %s | %s | %s | %.2f | %s | %llu |\n",
                knobKey(sweep.id).c_str(), outcome.value.label.c_str(),
                outcome.isBaseline
                    ? "baseline"
                    : format("%+.2f", outcome.gainPercent).c_str(),
                outcome.gainCiPercent,
                outcome.isBaseline ? "-"
                                   : (outcome.significant ? "yes" : "no"),
                static_cast<unsigned long long>(outcome.samples));
        }
    }
    md += "\n";

    md += "## Prolonged validation\n\n";
    md += format("Deployed beside the production configuration for "
                 "%.1f days (%llu fleet telemetry samples): "
                 "**%+.2f%% ± %.2f%%** — %s.\n",
                 report.validation.durationSec / 86400.0,
                 static_cast<unsigned long long>(report.validation.samples),
                 report.validation.meanGainPercent,
                 report.validation.gainCiPercent,
                 report.validation.stable
                     ? "stable advantage"
                     : "no statistically significant advantage");
    return md;
}

void
writeMarkdownReport(const UskuReport &report, const std::string &path)
{
    std::string md = renderMarkdownReport(report);
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        fatal("cannot write report to '%s'", path.c_str());
    std::fwrite(md.data(), 1, md.size(), file);
    std::fclose(file);
    inform("wrote μSKU report to %s", path.c_str());
}

std::string
targetReportFileName(const std::string &service,
                     const std::string &platform)
{
    return toLower(service) + "." + platform + ".v" +
           std::to_string(kReportSchemaVersion) + ".json";
}

std::string
emitTargetReport(const std::string &dir, const std::string &service,
                 const std::string &platform, const Json &doc)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cannot create emit directory '%s': %s", dir.c_str(),
              ec.message().c_str());
    std::string path =
        (std::filesystem::path(dir) /
         targetReportFileName(service, platform))
            .string();
    std::string body = doc.dump(2);
    body += "\n";
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        fatal("cannot write dashboard JSON to '%s'", path.c_str());
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    inform("emitted dashboard JSON to %s", path.c_str());
    return path;
}

} // namespace softsku
