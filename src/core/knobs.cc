#include "core/knobs.hh"

#include "core/knob_registry.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "workload/profile.hh"

namespace softsku {

std::vector<KnobId>
allKnobIds()
{
    std::vector<KnobId> ids;
    for (const KnobDescriptor &d : knobRegistry())
        ids.push_back(d.id);
    return ids;
}

std::string
knobKey(KnobId id)
{
    return knobDescriptor(id).key;
}

KnobId
knobFromKey(const std::string &key)
{
    std::string k = toLower(key);
    if (const KnobDescriptor *d = findKnobDescriptor(k))
        return d->id;
    fatal("unknown knob '%s' (expected one of: %s)", key.c_str(),
          knobKeyList().c_str());
}

std::string
knobDisplayName(KnobId id)
{
    return knobDescriptor(id).displayName;
}

bool
knobRequiresReboot(KnobId id)
{
    return knobDescriptor(id).requiresReboot;
}

int
KnobConfig::resolvedCores(const PlatformSpec &platform) const
{
    if (activeCores <= 0)
        return platform.totalCores();
    return std::min(activeCores, platform.totalCores());
}

KnobConfig
KnobConfig::canonical(const PlatformSpec &platform) const
{
    KnobConfig out = *this;
    out.activeCores = resolvedCores(platform);
    return out;
}

std::string
KnobConfig::describe() const
{
    // Joined descriptor fragments; knobs at "absent" defaults emit
    // nothing, so legacy configs keep their historical string bytes.
    std::string out;
    for (const KnobDescriptor &d : knobRegistry()) {
        std::string fragment = d.describeFragment(*this);
        if (fragment.empty())
            continue;
        if (!out.empty())
            out += ' ';
        out += fragment;
    }
    return out;
}

Json
KnobConfig::toJson() const
{
    Json knobs = Json::object();
    for (const KnobDescriptor &d : knobRegistry())
        d.writeJson(*this, knobs);
    Json doc = Json::object();
    doc.set("knobs", std::move(knobs));
    return doc;
}

KnobConfig
KnobConfig::fromJson(const Json &doc)
{
    KnobConfig cfg;
    if (doc.contains("knobs")) {
        // Schema v3: keyed knobs object, one codec per descriptor.
        const Json &knobs = doc.at("knobs");
        for (const KnobDescriptor &d : knobRegistry())
            d.readJson(knobs, cfg);
        return cfg;
    }

    // Flat v2 layout, kept readable for persisted caches and reports.
    cfg.coreFreqGHz = doc.numberOr("core_freq_ghz", cfg.coreFreqGHz);
    cfg.uncoreFreqGHz = doc.numberOr("uncore_freq_ghz", cfg.uncoreFreqGHz);
    cfg.activeCores =
        static_cast<int>(doc.numberOr("active_cores", cfg.activeCores));
    if (doc.contains("cdp")) {
        const Json &cdpDoc = doc.at("cdp");
        cfg.cdp.enabled = cdpDoc.boolOr("enabled", false);
        cfg.cdp.dataWays =
            static_cast<int>(cdpDoc.numberOr("data_ways", 0));
        cfg.cdp.codeWays =
            static_cast<int>(cdpDoc.numberOr("code_ways", 0));
    }
    if (doc.contains("prefetcher"))
        cfg.prefetch = prefetcherPresetFromKey(doc.at("prefetcher").asString());
    if (doc.contains("thp"))
        cfg.thp = thpModeFromString(doc.at("thp").asString());
    cfg.shpCount = static_cast<int>(doc.numberOr("shp_count", 0));
    return cfg;
}

KnobConfig
productionConfig(const PlatformSpec &platform,
                 const WorkloadProfile &profile)
{
    KnobConfig cfg = stockConfig(platform, profile);
    cfg.thp = ThpMode::Madvise;
    if (platform.microarchitecture == "Intel Broadwell")
        cfg.prefetch = PrefetcherPreset::L2StreamAndDcu;
    if (profile.name == "web" && profile.usesShp) {
        cfg.shpCount =
            platform.microarchitecture == "Intel Broadwell" ? 488 : 200;
    }
    return cfg;
}

KnobConfig
stockConfig(const PlatformSpec &platform, const WorkloadProfile &profile)
{
    KnobConfig cfg;
    cfg.coreFreqGHz = platform.coreFreqMaxGHz;
    if (profile.usesAvx)
        cfg.coreFreqGHz -= 0.2;
    cfg.uncoreFreqGHz = platform.uncoreFreqMaxGHz;
    cfg.activeCores = 0;
    cfg.cdp = CdpSetting{};
    cfg.prefetch = PrefetcherPreset::AllOn;
    cfg.thp = ThpMode::Always;
    cfg.shpCount = 0;
    if (platform.farMemory.present) {
        // Fresh installs on far-memory platforms ship the kernel's
        // balanced tiering daemon and the platform's capacity split.
        cfg.tierPolicy = TierPolicy::Balanced;
        cfg.farMemRatio = platform.farMemory.defaultRatio;
    }
    return cfg;
}

} // namespace softsku
